//! Concurrent serving semantics at the session layer: N sessions on one
//! `Database` must agree byte-for-byte with a sequential run, the query
//! registry must not lose or duplicate records under concurrency, the
//! plan cache must hit on repeats and drain on DDL, admitted reads must
//! genuinely overlap, and the admission controller must time out queued
//! queries with `EngineError::Admission`.
//!
//! The query registry, metrics registry and plan cache are process
//! global and tests run concurrently, so every assertion here filters
//! for this file's own databases/statements (distinct literals, fresh
//! `Database` ids) — none claims exclusive ownership of shared state.

use std::sync::Arc;

use nra::engine::{faultinject, EngineError};
use nra::storage::{Column, ColumnType, Value};
use nra::{AdmissionConfig, Database, FaultKind, NraError, QueryOptions};
use nra_tpch::{generate, q1_sql, q2_sql, Quant, TpchConfig};

const SESSIONS: usize = 4;
const ROUNDS: usize = 3;

fn tpch_db() -> (Database, Vec<String>) {
    let cfg = TpchConfig::scaled(0.02);
    let cat = generate(&cfg);
    let outer = (cfg.orders / 4).max(1);
    let part = (cfg.part / 4).max(1);
    let ps = (cfg.part * cfg.partsupp_per_part / 8).max(1);
    let queries = vec![
        q1_sql(&cat, outer),
        q2_sql(&cat, Quant::Any, part, ps),
        q2_sql(&cat, Quant::All, part, ps),
    ];
    (Database::from_catalog(cat), queries)
}

/// Deterministic options: single-threaded execution so row order is
/// reproducible and byte-comparison across sessions is meaningful.
fn opts() -> QueryOptions {
    QueryOptions::new().threads(1)
}

/// N concurrent sessions hammering Q1/Q2A/Q2B produce results
/// byte-identical to a sequential single-session run.
#[test]
fn concurrent_sessions_match_sequential_byte_for_byte() {
    let (db, queries) = tpch_db();

    let sequential: Vec<String> = queries
        .iter()
        .map(|sql| {
            let out = db.connect().execute_with(sql, &opts()).unwrap();
            format!("{}", out.rows)
        })
        .collect();

    let db = Arc::new(db);
    let expected = Arc::new(sequential);
    let queries = Arc::new(queries);
    let workers: Vec<_> = (0..SESSIONS)
        .map(|_| {
            let db = Arc::clone(&db);
            let expected = Arc::clone(&expected);
            let queries = Arc::clone(&queries);
            std::thread::spawn(move || {
                let session = db.connect();
                for _ in 0..ROUNDS {
                    for (sql, want) in queries.iter().zip(expected.iter()) {
                        let out = session.execute_with(sql, &opts()).unwrap();
                        assert_eq!(&format!("{}", out.rows), want, "diverged on {sql}");
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("session thread");
    }
}

/// Under concurrency the registry records exactly one completion per
/// execution, each carrying the issuing session's id — nothing lost,
/// nothing duplicated.
#[test]
fn registry_is_exact_under_concurrency() {
    let db = Database::new();
    db.create_table(
        "reg_t",
        vec![Column::not_null("k", ColumnType::Int)],
        &["k"],
    )
    .unwrap();
    db.insert("reg_t", (0..50).map(|i| vec![Value::Int(i)]).collect())
        .unwrap();

    let marker = "select k from reg_t where k = 774001";
    let db = Arc::new(db);
    let workers: Vec<_> = (0..SESSIONS)
        .map(|_| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                let session = db.connect();
                for _ in 0..ROUNDS {
                    session.execute(marker).unwrap();
                }
                session.id()
            })
        })
        .collect();
    let session_ids: Vec<u64> = workers.into_iter().map(|w| w.join().unwrap()).collect();

    let records: Vec<_> = nra::obs::queryreg::global()
        .completed()
        .into_iter()
        .filter(|r| r.sql == marker)
        .collect();
    assert_eq!(records.len(), SESSIONS * ROUNDS, "one record per execution");
    let mut ids: Vec<u64> = records.iter().map(|r| r.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), SESSIONS * ROUNDS, "registry ids are unique");
    for r in &records {
        assert!(
            session_ids.contains(&r.session),
            "record session {} is not one of the issuing sessions {session_ids:?}",
            r.session
        );
    }
    for &sid in &session_ids {
        assert_eq!(
            records.iter().filter(|r| r.session == sid).count(),
            ROUNDS,
            "session {sid} recorded exactly its own executions"
        );
    }
}

/// Repeating a query hits the plan cache at a ≥90% rate (the first
/// execution is the lone miss), visible through `nra_sys.plan_cache`;
/// DDL drains the cache for that database and hits restart from zero.
#[test]
fn plan_cache_hits_on_repeats_and_drains_on_ddl() {
    let db = Database::new();
    db.create_table("pc_t", vec![Column::not_null("k", ColumnType::Int)], &["k"])
        .unwrap();
    db.insert("pc_t", (0..20).map(|i| vec![Value::Int(i)]).collect())
        .unwrap();
    let session = db.connect();
    let sql = "select k from pc_t where k < 7";
    let run_opts = QueryOptions::new().plan_cache(true);

    const REPEATS: u64 = 20;
    for _ in 0..REPEATS {
        session.execute_with(sql, &run_opts).unwrap();
    }
    let cached = session
        .execute("select statement, hits from nra_sys.plan_cache")
        .unwrap();
    let row = cached
        .rows
        .rows()
        .iter()
        .find(|r| r[0] == Value::Str(sql.to_string()))
        .expect("repeated statement is cached");
    let hits = match row[1] {
        Value::Int(h) => h as u64,
        ref other => panic!("hits column is an int, got {other:?}"),
    };
    assert_eq!(hits, REPEATS - 1, "every execution after the first hits");
    assert!(
        hits * 10 >= (REPEATS - 1) * 9,
        "≥90% hit rate on repeats, got {hits}/{REPEATS}"
    );

    // DDL invalidates: the database's cache drains, and the next run
    // re-plans (a fresh entry with zero accumulated hits).
    db.create_table("pc_u", vec![Column::new("x", ColumnType::Int)], &[])
        .unwrap();
    let drained = session
        .execute("select statement from nra_sys.plan_cache")
        .unwrap();
    assert!(
        drained.rows.rows().is_empty(),
        "DDL purged this database's cached plans: {:?}",
        drained.rows.rows()
    );
    session.execute_with(sql, &run_opts).unwrap();
    let refreshed = session
        .execute("select statement, hits from nra_sys.plan_cache")
        .unwrap();
    let row = refreshed
        .rows
        .rows()
        .iter()
        .find(|r| r[0] == Value::Str(sql.to_string()))
        .expect("statement re-cached after DDL");
    assert_eq!(row[1], Value::Int(0), "hit count restarts after DDL");
}

/// Inserts and ANALYZE invalidate cached plans too (data and stats
/// changes re-plan, not just schema changes).
#[test]
fn plan_cache_drains_on_insert_and_analyze() {
    let db = Database::new();
    db.create_table("pc_v", vec![Column::not_null("k", ColumnType::Int)], &["k"])
        .unwrap();
    db.insert("pc_v", vec![vec![Value::Int(1)]]).unwrap();
    let session = db.connect();
    let sql = "select k from pc_v where k >= 1";
    let run_opts = QueryOptions::new().plan_cache(true);

    session.execute_with(sql, &run_opts).unwrap();
    db.insert("pc_v", vec![vec![Value::Int(2)]]).unwrap();
    let after_insert = session
        .execute("select statement from nra_sys.plan_cache")
        .unwrap();
    assert!(
        after_insert.rows.rows().is_empty(),
        "insert drains the cache"
    );

    // The re-planned query sees the new row.
    let out = session.execute_with(sql, &run_opts).unwrap();
    assert_eq!(out.rows.len(), 2);

    session.execute("analyze pc_v").unwrap();
    let after_analyze = session
        .execute("select statement from nra_sys.plan_cache")
        .unwrap();
    assert!(
        after_analyze.rows.rows().is_empty(),
        "ANALYZE drains the cache (plans depend on stats)"
    );
}

/// Concurrent read queries genuinely overlap: four sessions each
/// sleeping 120 ms inside execution finish in far less than the
/// 480 ms a serialized catalog would take. (Sleep-based, so this holds
/// even on a single-core host.)
#[test]
fn concurrent_reads_overlap_under_the_catalog_lock() {
    let db = Database::new();
    db.create_table("ov_a", vec![Column::not_null("k", ColumnType::Int)], &["k"])
        .unwrap();
    db.create_table("ov_b", vec![Column::not_null("k", ColumnType::Int)], &["k"])
        .unwrap();
    db.insert("ov_a", (0..8).map(|i| vec![Value::Int(i)]).collect())
        .unwrap();
    db.insert("ov_b", (0..8).map(|i| vec![Value::Int(i)]).collect())
        .unwrap();

    const DELAY_MS: u64 = 120;
    let sql = "select k from ov_a where k in (select k from ov_b)";
    let db = Arc::new(db);
    let start = std::time::Instant::now();
    let workers: Vec<_> = (0..SESSIONS)
        .map(|_| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                db.connect()
                    .execute_with(
                        sql,
                        &QueryOptions::new().fault(
                            faultinject::JOIN_BUILD,
                            1,
                            FaultKind::Delay(DELAY_MS),
                        ),
                    )
                    .unwrap()
            })
        })
        .collect();
    for w in workers {
        w.join().expect("reader thread");
    }
    let elapsed = start.elapsed().as_millis() as u64;
    assert!(
        elapsed < DELAY_MS * SESSIONS as u64,
        "readers serialized: {SESSIONS} × {DELAY_MS} ms sleeps took {elapsed} ms"
    );
}

/// With `max_concurrent = 1` and a short queue timeout, a query queued
/// behind a deliberately slow one fails with `EngineError::Admission`
/// carrying the wait and the limit.
#[test]
fn admission_timeout_rejects_queued_queries() {
    let db = Database::new();
    db.create_table("ad_a", vec![Column::not_null("k", ColumnType::Int)], &["k"])
        .unwrap();
    db.create_table("ad_b", vec![Column::not_null("k", ColumnType::Int)], &["k"])
        .unwrap();
    db.insert("ad_a", (0..4).map(|i| vec![Value::Int(i)]).collect())
        .unwrap();
    db.insert("ad_b", (0..4).map(|i| vec![Value::Int(i)]).collect())
        .unwrap();
    db.set_admission(
        AdmissionConfig::new()
            .max_concurrent(1)
            .queue_timeout_ms(50),
    );

    let slow_sql = "select k from ad_a where k in (select k from ad_b)";
    let db = Arc::new(db);
    let holder = {
        let db = Arc::clone(&db);
        std::thread::spawn(move || {
            db.connect()
                .execute_with(
                    slow_sql,
                    &QueryOptions::new().fault(faultinject::JOIN_BUILD, 1, FaultKind::Delay(600)),
                )
                .unwrap()
        })
    };
    // Let the holder take the single admission slot.
    std::thread::sleep(std::time::Duration::from_millis(100));

    let err = db
        .connect()
        .execute("select k from ad_a where k = 0")
        .unwrap_err();
    match err {
        NraError::Engine(EngineError::Admission {
            waited_ms, limit, ..
        }) => {
            assert!(waited_ms >= 50, "waited at least the queue timeout");
            assert_eq!(limit, 1);
        }
        other => panic!("expected an admission timeout, got {other:?}"),
    }
    holder.join().expect("holder finishes");

    // With the slot free again the same session admits immediately.
    db.connect()
        .execute("select k from ad_a where k = 0")
        .unwrap();
}

/// `Database::execute` (the one-shot wrapper) and an explicit session
/// agree byte-for-byte — the redesign kept the legacy surface intact.
#[test]
fn one_shot_wrapper_matches_session_execution() {
    let (db, queries) = tpch_db();
    for sql in &queries {
        let wrapped = db.execute(sql, &opts()).unwrap();
        let session = db.connect().execute_with(sql, &opts()).unwrap();
        assert_eq!(
            format!("{}", wrapped.rows),
            format!("{}", session.rows),
            "wrapper diverged on {sql}"
        );
    }
}
