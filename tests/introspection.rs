//! Live introspection: the `nra_sys` virtual schema, the process-wide
//! query registry, per-query progress snapshots and the slow-query log.
//!
//! The query registry and metrics registry are process-global and the
//! test harness runs tests concurrently, so every test here uses
//! distinctive SQL and filters for its own records — none asserts
//! exclusive ownership of the shared state.

use std::sync::Arc;

use nra::storage::{Column, ColumnType, Value};
use nra::tpch::paper_example::{rst_catalog, QUERY_Q};
use nra::{Database, QueryOptions, Strategy};

fn db() -> Database {
    Database::from_catalog(rst_catalog())
}

/// Acceptance: on the paper's Query Q the final progress snapshot is
/// 100% done with `rows_processed` equal to the profile's row counters.
#[test]
fn query_q_final_progress_matches_profile() {
    let out = db()
        .connect()
        .execute_with(
            QUERY_Q,
            &QueryOptions::new()
                .strategy(Strategy::Original)
                .collect_profile(true),
        )
        .unwrap();
    let profile = out.profile.expect("profile requested");
    let snap = out.progress.expect("queries carry a final snapshot");
    assert!(snap.done, "finished query is done");
    assert_eq!(snap.percent, 100);
    let rows_in: u64 = profile.ops.iter().map(|(_, s)| s.rows_in).sum();
    assert_eq!(snap.rows_processed, rows_in);
    assert!(snap.rows_estimated > 0, "Query Q has cardinality estimates");
}

/// Completed queries land in the registry ring and are queryable through
/// the ordinary engine via `nra_sys.queries`.
#[test]
fn completed_queries_are_sql_queryable() {
    let marker = "select r.a from r where r.a = 771001";
    let database = db();
    database
        .connect()
        .execute_with(marker, &QueryOptions::new())
        .unwrap();
    let out = database
        .connect().execute_with(
            &format!("select sql, outcome, threads, strategy from nra_sys.queries where sql = '{marker}'"),
            &QueryOptions::new().threads(1),
        )
        .unwrap();
    assert!(!out.rows.rows().is_empty(), "marker query was registered");
    let row = &out.rows.rows()[0];
    assert_eq!(row[0], Value::Str(marker.to_string()));
    assert_eq!(row[1], Value::Str("ok".to_string()));
    assert_ne!(
        row[3],
        Value::Str("auto".to_string()),
        "auto resolves to the concrete strategy in the record: {:?}",
        row[3]
    );
}

/// Failed queries are recorded too, with their outcome label.
#[test]
fn failed_queries_are_recorded_with_outcome() {
    let marker = "select r.a from r where r.a = 771002 and r.b = 771002";
    let database = db();
    let err = database
        .connect()
        .execute_with(marker, &QueryOptions::new().timeout_ms(0))
        .unwrap_err();
    assert!(matches!(
        err,
        nra::NraError::Engine(nra::engine::EngineError::Cancelled { .. })
    ));
    let out = database
        .connect()
        .execute_with(
            &format!("select outcome from nra_sys.queries where sql = '{marker}'"),
            &QueryOptions::new(),
        )
        .unwrap();
    assert_eq!(
        out.rows.rows().last().unwrap()[0],
        Value::Str("cancelled".to_string())
    );
}

/// Introspection queries never register themselves (no self-recursion):
/// querying `nra_sys.queries` must not insert a record whose statement
/// mentions `nra_sys`.
#[test]
fn introspection_queries_stay_out_of_the_registry() {
    let database = db();
    let probe = "select id from nra_sys.queries where id = 881001";
    database
        .connect()
        .execute_with(probe, &QueryOptions::new())
        .unwrap();
    let out = database
        .connect().execute_with(
            "select sql from nra_sys.queries where sql = 'select id from nra_sys.queries where id = 881001'",
            &QueryOptions::new(),
        )
        .unwrap();
    assert!(
        out.rows.rows().is_empty(),
        "introspection query registered itself: {:?}",
        out.rows.rows()
    );
    assert!(
        !nra::obs::queryreg::global()
            .completed()
            .iter()
            .any(|r| r.sql == probe),
        "introspection query in the completed ring"
    );
}

/// `nra_sys.running` exposes live queries with their progress; system
/// tables join against base tables through the ordinary engine.
#[test]
fn running_table_reflects_registered_queries() {
    let progress = Arc::new(nra::obs::progress::ProgressState::new());
    progress.set_estimated(200);
    progress.add_rows(50, "b1/scan");
    let id = nra::obs::queryreg::global().register("select 991001 from fake", progress.clone());
    let database = db();
    let out = database
        .connect()
        .execute_with(
            "select id, phase, percent, rows_processed from nra_sys.running \
             where sql = 'select 991001 from fake'",
            &QueryOptions::new(),
        )
        .unwrap();
    // Clean up before asserting so a failure doesn't leak the entry.
    nra::obs::queryreg::global().complete(nra::obs::queryreg::QueryRecord {
        id,
        sql: "select 991001 from fake".to_string(),
        outcome: "ok".to_string(),
        wall_ms: 0,
        rows: 0,
        threads: 1,
        qerror_x100: 0,
        mem_bytes: 0,
        strategy: "original".to_string(),
        session: 0,
    });
    assert_eq!(out.rows.len(), 1, "registered query is visible");
    let row = &out.rows.rows()[0];
    assert_eq!(row[0], Value::Int(id as i64));
    assert_eq!(row[1], Value::Str("b1/scan".to_string()));
    assert_eq!(row[2], Value::Int(25), "50 of 200 estimated rows");
    assert_eq!(row[3], Value::Int(50));
}

/// Mid-query progress snapshots are monotonically non-decreasing, and
/// the query is visible in the running table while it executes.
#[test]
fn mid_query_snapshots_are_monotonic() {
    let database = Database::new();
    database
        .create_table(
            "big",
            vec![
                Column::not_null("k", ColumnType::Int),
                Column::new("v", ColumnType::Int),
            ],
            &["k"],
        )
        .unwrap();
    let rows: Vec<Vec<Value>> = (0..60_000)
        .map(|i| vec![Value::Int(i), Value::Int(i % 997)])
        .collect();
    database.insert("big", rows).unwrap();
    let marker = "select k from big where v in (select v from big b2 where b2.k < 500)";

    let database = Arc::new(database);
    let worker = {
        let database = Arc::clone(&database);
        std::thread::spawn(move || {
            database
                .connect()
                .execute_with(marker, &QueryOptions::new().threads(1))
                .unwrap()
        })
    };

    // Poll the running table's live handle while the query executes.
    let mut snaps = Vec::new();
    while !worker.is_finished() {
        for q in nra::obs::queryreg::global().running() {
            if q.sql == marker {
                snaps.push(q.progress.snapshot());
            }
        }
    }
    let out = worker.join().unwrap();
    snaps.push(out.progress.expect("final snapshot"));

    for pair in snaps.windows(2) {
        assert!(
            pair[1].rows_processed >= pair[0].rows_processed,
            "rows_processed regressed: {} -> {}",
            pair[0].rows_processed,
            pair[1].rows_processed
        );
        assert!(
            pair[1].percent >= pair[0].percent,
            "percent regressed: {} -> {}",
            pair[0].percent,
            pair[1].percent
        );
    }
    let last = snaps.last().unwrap();
    assert!(last.done && last.percent == 100);
}

/// `nra_sys.metrics` and `nra_sys.operators` project the global metrics
/// registry; `nra_sys.table_stats` reflects `ANALYZE`.
#[test]
fn metrics_operators_and_table_stats_are_queryable() {
    let database = db();
    database
        .connect()
        .execute_with(
            QUERY_Q,
            &QueryOptions::new()
                .strategy(Strategy::Original)
                .collect_profile(true),
        )
        .unwrap();
    database
        .connect()
        .execute_with("analyze r", &QueryOptions::new())
        .unwrap();

    let metrics = database
        .connect()
        .execute_with(
            "select name, kind, value from nra_sys.metrics where name = 'nra_rows_produced_total'",
            &QueryOptions::new(),
        )
        .unwrap();
    assert!(!metrics.rows.rows().is_empty());
    assert_eq!(metrics.rows.rows()[0][1], Value::Str("counter".to_string()));

    let operators = database
        .connect()
        .execute_with(
            "select op, invocations, rows_in, rows_out from nra_sys.operators \
             where op = 'project'",
            &QueryOptions::new(),
        )
        .unwrap();
    assert!(
        !operators.rows.rows().is_empty(),
        "profiled ops are pivoted"
    );

    let stats = database
        .connect()
        .execute_with(
            "select table_name, row_count, ndv from nra_sys.table_stats \
             where table_name = 'r' and column_name = 'a'",
            &QueryOptions::new(),
        )
        .unwrap();
    assert_eq!(stats.rows.len(), 1, "one row per analyzed column");
    assert_eq!(stats.rows.rows()[0][1], Value::Int(4), "r has 4 rows");
}

/// System tables support aliases, subqueries and joins against base
/// tables like any other table (dogfooding the ordinary engine).
#[test]
fn sys_tables_compose_with_the_sql_subset() {
    let database = db();
    database
        .connect()
        .execute_with("select r.a from r where r.a = 661001", &QueryOptions::new())
        .unwrap();
    let out = database
        .connect().execute_with(
            "select q.id from nra_sys.queries q where q.sql = 'select r.a from r where r.a = 661001' \
             and exists (select m.name from nra_sys.metrics m where m.name = 'nra_queries_total')",
            &QueryOptions::new(),
        )
        .unwrap();
    assert!(
        !out.rows.rows().is_empty(),
        "alias + EXISTS over nra_sys works"
    );
}

/// The `nra_sys` schema is reserved: user tables cannot shadow it, and
/// unknown system tables fail with a helpful error.
#[test]
fn reserved_schema_is_guarded() {
    let database = db();
    let err = database
        .create_table("nra_sys.hack", vec![Column::new("x", ColumnType::Int)], &[])
        .unwrap_err();
    assert!(err.to_string().contains("reserved"), "{err}");
    let err = database
        .connect()
        .execute_with("select x from nra_sys.bogus", &QueryOptions::new())
        .unwrap_err();
    assert!(err.to_string().contains("unknown system table"), "{err}");
}

/// The slow-query log records every query at a zero threshold, and the
/// emitted JSONL validates against the record schema.
#[test]
fn slow_log_records_validate() {
    let dir = std::env::temp_dir().join(format!("nra-slowlog-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("slow.jsonl");
    let _ = std::fs::remove_file(&path);

    let database = db();
    let opts = QueryOptions::new()
        .strategy(Strategy::Original)
        .collect_profile(true)
        .slow_ms(0)
        .slow_log(&path);
    database.connect().execute_with(QUERY_Q, &opts).unwrap();
    database
        .connect()
        .execute_with(
            "select r.a from r where r.a > 1",
            &opts.clone().timeout_ms(0),
        )
        .unwrap_err();

    let contents = std::fs::read_to_string(&path).unwrap();
    let n = nra::obs::slowlog::validate_lines(&contents).unwrap();
    assert_eq!(n, 2, "both queries logged:\n{contents}");
    let lines: Vec<&str> = contents.lines().collect();
    assert!(lines[0].contains("\"outcome\": \"ok\""));
    assert!(
        lines[0].contains("\"plan\": \"π"),
        "Algorithm 1 plan embedded"
    );
    assert!(lines[1].contains("\"outcome\": \"cancelled\""));
    let _ = std::fs::remove_file(&path);

    // A high threshold logs nothing.
    database
        .connect()
        .execute_with(
            QUERY_Q,
            &QueryOptions::new().slow_ms(3_600_000).slow_log(&path),
        )
        .unwrap();
    assert!(!path.exists(), "fast query stays out of the log");
}

/// Dotted names parse, bind and display: the schema prefix is stripped
/// for column resolution only when no alias is given.
#[test]
fn dotted_table_names_resolve() {
    let database = db();
    database
        .connect()
        .execute_with("select r.a from r", &QueryOptions::new())
        .unwrap();
    // Unaliased: columns resolve under the bare table name.
    let out = database
        .connect()
        .execute_with(
            "select queries.id from nra_sys.queries where queries.id = 0",
            &QueryOptions::new(),
        )
        .unwrap();
    assert_eq!(out.rows.len(), 0, "ids start at 1");
    // Aliased: the alias wins.
    database
        .connect()
        .execute_with("select z.id from nra_sys.running z", &QueryOptions::new())
        .unwrap();
}
