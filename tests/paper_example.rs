//! Golden tests on the paper's Section 2 running example: Query Q over
//! R(A,B,C,D), S(E,F,G,H,I), T(J,K,L), evaluated by every engine and
//! strategy, checked against the hand-derived answer.

use nra::{Database, Engine, QueryOptions, Strategy};
use nra_storage::{Relation, Schema, Value};
use nra_tpch::paper_example::{expected_query_q_result, rst_catalog, QUERY_Q};

fn expected_relation(sample: &Relation) -> Relation {
    Relation::with_rows(
        Schema::new(sample.schema().columns().to_vec()),
        expected_query_q_result(),
    )
}

#[test]
fn query_q_all_engines_and_strategies() {
    let db = Database::from_catalog(rst_catalog());
    let engines: Vec<(&str, Engine)> = vec![
        ("oracle", Engine::Reference),
        ("baseline", Engine::Baseline),
        ("nr-original", Engine::NestedRelational(Strategy::Original)),
        (
            "nr-optimized",
            Engine::NestedRelational(Strategy::Optimized),
        ),
        ("nr-auto", Engine::NestedRelational(Strategy::Auto)),
    ];
    for (name, engine) in engines {
        let got = db
            .connect()
            .execute_with(QUERY_Q, &QueryOptions::new().engine(engine))
            .unwrap()
            .rows;
        let want = expected_relation(&got);
        assert!(
            got.multiset_eq(&want),
            "{name} disagrees with the hand-derived answer:\ngot\n{got}\nwant\n{want}"
        );
    }
}

#[test]
fn query_q_explain_reports_nested_iteration_baseline() {
    // Query Q has negative links (NOT IN, ALL) and non-adjacent
    // correlation: System A cannot unnest it.
    let db = Database::from_catalog(rst_catalog());
    let plan = db
        .connect()
        .execute_with(QUERY_Q, &QueryOptions::new().explain_only(true))
        .unwrap()
        .plan
        .unwrap();
    assert!(plan.contains("nested iteration"), "plan was: {plan}");
}

/// The Section 2 NULL example: with `R.A = 5` and the subquery returning
/// `{2, 3, 4, NULL}`, `R.A > ALL (...)` is *unknown* — not true — so the
/// antijoin rewrite (`no S.B with R.A <= S.B`) would wrongly keep the row.
#[test]
fn section2_null_example_gt_all() {
    let db = Database::new();
    use nra_storage::{Column, ColumnType};
    db.create_table("ra", vec![Column::not_null("a", ColumnType::Int)], &["a"])
        .unwrap();
    db.insert("ra", vec![vec![Value::Int(5)]]).unwrap();
    db.create_table("sb", vec![Column::new("b", ColumnType::Int)], &[])
        .unwrap();
    db.insert(
        "sb",
        vec![
            vec![Value::Int(2)],
            vec![Value::Int(3)],
            vec![Value::Int(4)],
            vec![Value::Null],
        ],
    )
    .unwrap();

    for engine in [
        Engine::Reference,
        Engine::Baseline,
        Engine::NestedRelational(Strategy::Original),
        Engine::NestedRelational(Strategy::Optimized),
        Engine::NestedRelational(Strategy::Auto),
    ] {
        let out = db
            .connect()
            .execute_with(
                "select a from ra where a > all (select b from sb)",
                &QueryOptions::new().engine(engine),
            )
            .unwrap()
            .rows;
        assert_eq!(
            out.len(),
            0,
            "5 > ALL {{2,3,4,NULL}} must be unknown, engine {engine:?}"
        );
    }

    // ... and it is also not equal to `> (select max(b) ...)`: remove the
    // NULL and the row qualifies.
    let db2 = Database::new();
    use nra_storage::{Column as C2, ColumnType as CT2};
    db2.create_table("ra", vec![C2::not_null("a", CT2::Int)], &["a"])
        .unwrap();
    db2.insert("ra", vec![vec![Value::Int(5)]]).unwrap();
    db2.create_table("sb", vec![C2::new("b", CT2::Int)], &[])
        .unwrap();
    db2.insert(
        "sb",
        vec![
            vec![Value::Int(2)],
            vec![Value::Int(3)],
            vec![Value::Int(4)],
        ],
    )
    .unwrap();
    let out = db2
        .connect()
        .execute_with(
            "select a from ra where a > all (select b from sb)",
            &QueryOptions::new(),
        )
        .unwrap()
        .rows;
    assert_eq!(out.len(), 1);
}

/// NOT IN against a set containing NULL rejects everything — the other
/// direction of the antijoin pitfall.
#[test]
fn not_in_with_null_rejects_all() {
    let db = Database::from_catalog(rst_catalog());
    // t.j contains a NULL: `b not in (select j from t)` can never be true.
    for engine in [
        Engine::Reference,
        Engine::Baseline,
        Engine::NestedRelational(Strategy::Optimized),
    ] {
        let out = db
            .connect()
            .execute_with(
                "select b from r where b not in (select j from t)",
                &QueryOptions::new().engine(engine),
            )
            .unwrap()
            .rows;
        assert_eq!(out.len(), 0, "engine {engine:?}");
    }
}

/// Empty subquery results: `ALL` is vacuously true, `SOME` vacuously
/// false, even for NULL outer values.
#[test]
fn empty_set_quantifier_semantics() {
    let db = Database::from_catalog(rst_catalog());
    let all = db
        .connect()
        .execute_with(
            "select d from r where b > all (select e from s where s.f = 999)",
            &QueryOptions::new(),
        )
        .unwrap()
        .rows;
    assert_eq!(all.len(), 4, "every r row qualifies, including b = NULL");
    let some = db
        .connect()
        .execute_with(
            "select d from r where b > some (select e from s where s.f = 999)",
            &QueryOptions::new(),
        )
        .unwrap()
        .rows;
    assert_eq!(some.len(), 0);
}
