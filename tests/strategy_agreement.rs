//! Property-based agreement tests: random small databases (with NULLs)
//! and randomly shaped nested queries; every execution strategy must match
//! the tuple-iteration oracle. Formerly proptest; now seeded-deterministic
//! so the suite runs with no external crates.
//!
//! Doubles as the parallel-agreement suite: every strategy also runs at
//! thread budgets 2 and 4 (with the morsel floor lowered to 1 row so the
//! tiny inputs actually partition) and must return the *identical*
//! relation — same tuples, same order — as its sequential run. The
//! corpora deliberately include NULL join keys (so σ̄-padded tuples and
//! NULL-key nest groups cross partition boundaries) and empty inputs.

use nra::{Database, Engine, QueryOptions, Strategy as NraStrategy};
use nra_storage::rng::Pcg32;
use nra_storage::{Column, ColumnType, Relation, Value};

/// Thread budgets every strategy is exercised at (1 = the reference
/// sequential run).
const PARALLEL_BUDGETS: [usize; 2] = [2, 4];

/// A cell: small domain so joins actually match; `None` is NULL.
fn cell(rng: &mut Pcg32) -> Option<i64> {
    if rng.bool(1.0 / 9.0) {
        None
    } else {
        Some(rng.range_i64(0, 5))
    }
}

fn rows(rng: &mut Pcg32) -> Vec<(Option<i64>, Option<i64>)> {
    let n = rng.index(10);
    (0..n).map(|_| (cell(rng), cell(rng))).collect()
}

fn to_value(v: Option<i64>) -> Value {
    match v {
        Some(i) => Value::Int(i),
        None => Value::Null,
    }
}

/// A randomly chosen linking predicate, rendered into SQL.
#[derive(Debug, Clone, Copy)]
enum Link {
    Exists,
    NotExists,
    In,
    NotIn,
    Quant(&'static str, &'static str),
    /// Aggregate-subquery comparison: `outer op agg(inner)`.
    Agg(&'static str, &'static str),
}

const CMP_OPS: [&str; 6] = ["<", "<=", ">", ">=", "=", "<>"];

// Without the `*` clippy suggests, `choose`'s element type would be
// inferred as unsized `str`.
#[allow(clippy::explicit_auto_deref)]
fn link(rng: &mut Pcg32) -> Link {
    match rng.index(6) {
        0 => Link::Exists,
        1 => Link::NotExists,
        2 => Link::In,
        3 => Link::NotIn,
        4 => Link::Quant(*rng.choose(&CMP_OPS), *rng.choose(&["some", "all"])),
        _ => Link::Agg(
            *rng.choose(&CMP_OPS),
            *rng.choose(&["min", "max", "sum", "avg", "count"]),
        ),
    }
}

impl Link {
    /// `"{outer} LINK (select {inner} from ... where {body})"`.
    fn render(self, outer: &str, inner: &str, from: &str, body: &str) -> String {
        match self {
            Link::Exists => format!("exists (select * from {from} where {body})"),
            Link::NotExists => format!("not exists (select * from {from} where {body})"),
            Link::In => format!("{outer} in (select {inner} from {from} where {body})"),
            Link::NotIn => format!("{outer} not in (select {inner} from {from} where {body})"),
            Link::Quant(op, q) => {
                format!("{outer} {op} {q} (select {inner} from {from} where {body})")
            }
            Link::Agg(op, f) => {
                format!("{outer} {op} (select {f}({inner}) from {from} where {body})")
            }
        }
    }
}

/// Correlation shape of an inner block.
#[derive(Debug, Clone, Copy)]
enum Corr {
    None,
    /// Equality to the adjacent outer block.
    AdjacentEq,
    /// Non-equality to the adjacent outer block.
    AdjacentNe,
    /// Equality to the root block (non-adjacent for depth-2 blocks).
    RootEq,
}

fn corr(rng: &mut Pcg32) -> Corr {
    // Weights mirror the old proptest distribution: 1/4/2/2.
    match rng.index(9) {
        0 => Corr::None,
        1..=4 => Corr::AdjacentEq,
        5 | 6 => Corr::AdjacentNe,
        _ => Corr::RootEq,
    }
}

fn db_from(
    t0: &[(Option<i64>, Option<i64>)],
    t1: &[(Option<i64>, Option<i64>)],
    t2: &[(Option<i64>, Option<i64>)],
) -> Database {
    let db = Database::new();
    for (name, cols, data) in [
        ("t0", ("a", "b"), t0),
        ("t1", ("c", "d"), t1),
        ("t2", ("e", "f"), t2),
    ] {
        db.create_table(
            name,
            vec![
                Column::new(cols.0, ColumnType::Int),
                Column::new(cols.1, ColumnType::Int),
            ],
            &[],
        )
        .unwrap();
        db.insert(
            name,
            data.iter()
                .map(|&(x, y)| vec![to_value(x), to_value(y)])
                .collect(),
        )
        .unwrap();
    }
    db
}

fn corr_sql(corr: Corr, inner_col: &str, outer_col: &str) -> Option<String> {
    match corr {
        Corr::None => None,
        Corr::AdjacentEq | Corr::RootEq => Some(format!("{inner_col} = {outer_col}")),
        Corr::AdjacentNe => Some(format!("{inner_col} <> {outer_col}")),
    }
}

fn run_at(db: &Database, sql: &str, engine: Engine, threads: usize) -> Relation {
    db.connect()
        .execute_with(sql, &QueryOptions::new().engine(engine).threads(threads))
        .unwrap()
        .rows
}

/// Compare every applicable strategy against the oracle on one query,
/// then re-run each strategy under every parallel budget and demand the
/// byte-identical relation.
fn check_all(db: &Database, sql: &str) {
    let bound = match db.prepare(sql) {
        Ok(b) => b,
        Err(e) => panic!("query failed to bind: {sql}: {e}"),
    };
    let oracle = run_at(db, sql, Engine::Reference, 1);

    let mut engines: Vec<(&str, Engine)> = vec![
        ("baseline", Engine::Baseline),
        (
            "nr-original",
            Engine::NestedRelational(NraStrategy::Original),
        ),
        (
            "nr-optimized",
            Engine::NestedRelational(NraStrategy::Optimized),
        ),
        ("nr-auto", Engine::NestedRelational(NraStrategy::Auto)),
    ];
    if bound.is_linear_correlated() {
        engines.push((
            "nr-bottom-up",
            Engine::NestedRelational(NraStrategy::BottomUp),
        ));
        engines.push((
            "nr-pushdown",
            Engine::NestedRelational(NraStrategy::BottomUpPushdown),
        ));
    }
    if bound.all_links_positive() && bound.root.block_count() > 1 {
        engines.push((
            "nr-positive",
            Engine::NestedRelational(NraStrategy::PositiveRewrite),
        ));
    }

    for (name, engine) in engines {
        let got = run_at(db, sql, engine, 1);
        assert!(
            got.multiset_eq(&oracle),
            "{name} disagrees with oracle on {sql}\ngot:\n{got}\noracle:\n{oracle}"
        );
        // Parallel runs must be indistinguishable from the sequential
        // one: same tuples in the same order, not just multiset-equal.
        let _morsel = nra::engine::exec::set_morsel_rows(1);
        for threads in PARALLEL_BUDGETS {
            let par = run_at(db, sql, engine, threads);
            assert!(
                par.rows() == got.rows(),
                "{name} at {threads} threads differs from its sequential run on {sql}\n\
                 parallel:\n{par}\nsequential:\n{got}"
            );
        }
    }
}

/// One-level nested queries: every link operator × correlation shape.
#[test]
fn one_level_queries_agree() {
    let mut rng = Pcg32::new(0x5eed_3001);
    for _case in 0..64 {
        let t0 = rows(&mut rng);
        let t1 = rows(&mut rng);
        let lk = link(&mut rng);
        let cr = corr(&mut rng);
        let with_local = rng.bool(0.5);

        let db = db_from(&t0, &t1, &[]);
        let mut body_parts = Vec::new();
        if let Some(c) = corr_sql(cr, "t1.c", "t0.a") {
            body_parts.push(c);
        }
        if with_local {
            body_parts.push("t1.d >= 1".to_string());
        }
        if body_parts.is_empty() {
            body_parts.push("1 = 1".to_string());
        }
        let sql = format!(
            "select a, b from t0 where {}",
            lk.render("t0.b", "t1.d", "t1", &body_parts.join(" and "))
        );
        check_all(&db, &sql);
    }
}

/// Two-level chains: link × link × correlation (including non-adjacent
/// correlation back to the root, the paper's Query Q / Query 3 shape).
#[test]
fn two_level_queries_agree() {
    let mut rng = Pcg32::new(0x5eed_3002);
    for _case in 0..64 {
        let t0 = rows(&mut rng);
        let t1 = rows(&mut rng);
        let t2 = rows(&mut rng);
        let lk1 = link(&mut rng);
        let lk2 = link(&mut rng);
        let cr1 = corr(&mut rng);
        let cr2 = corr(&mut rng);

        let db = db_from(&t0, &t1, &t2);
        let inner_corr = match cr2 {
            Corr::RootEq => corr_sql(cr2, "t2.e", "t0.a"),
            other => corr_sql(other, "t2.e", "t1.c"),
        };
        let inner_body = inner_corr.unwrap_or_else(|| "1 = 1".to_string());
        let inner = lk2.render("t1.d", "t2.f", "t2", &inner_body);
        let mid_corr = corr_sql(cr1, "t1.c", "t0.a");
        let mid_body = match mid_corr {
            Some(c) => format!("{c} and {inner}"),
            None => inner,
        };
        let sql = format!(
            "select a, b from t0 where {}",
            lk1.render("t0.b", "t1.d", "t1", &mid_body)
        );
        check_all(&db, &sql);
    }
}

/// Tree queries: two subqueries hanging off the root.
#[test]
fn tree_queries_agree() {
    let mut rng = Pcg32::new(0x5eed_3003);
    for _case in 0..64 {
        let t0 = rows(&mut rng);
        let t1 = rows(&mut rng);
        let t2 = rows(&mut rng);
        let lk1 = link(&mut rng);
        let lk2 = link(&mut rng);
        let cr1 = corr(&mut rng);
        let cr2 = corr(&mut rng);

        let db = db_from(&t0, &t1, &t2);
        let b1 = corr_sql(cr1, "t1.c", "t0.a").unwrap_or_else(|| "1 = 1".to_string());
        let b2 = corr_sql(cr2, "t2.e", "t0.b").unwrap_or_else(|| "1 = 1".to_string());
        let sql = format!(
            "select a, b from t0 where {} and {}",
            lk1.render("t0.b", "t1.d", "t1", &b1),
            lk2.render("t0.a", "t2.f", "t2", &b2)
        );
        check_all(&db, &sql);
    }
}

/// The paper's Query Q over the Section 2 example catalog: every strategy
/// × every thread budget returns the identical relation.
#[test]
fn paper_query_q_parallel_agreement() {
    let db = Database::from_catalog(nra::tpch::paper_example::rst_catalog());
    check_all(&db, nra::tpch::paper_example::QUERY_Q);
}

/// Empty inputs partition to zero morsels everywhere: empty outer, empty
/// inner, and both — with positive and negative links.
#[test]
fn empty_relation_parallel_agreement() {
    type Rows = [(Option<i64>, Option<i64>)];
    let cases: [(&Rows, &Rows); 3] = [
        (&[], &[(Some(1), Some(2)), (None, Some(0))]),
        (&[(Some(1), Some(2)), (Some(0), None)], &[]),
        (&[], &[]),
    ];
    for (t0, t1) in cases {
        let db = db_from(t0, t1, &[]);
        for sql in [
            "select a, b from t0 where b > all (select d from t1 where t1.c = t0.a)",
            "select a, b from t0 where b not in (select d from t1 where t1.c = t0.a)",
            "select a, b from t0 where exists (select * from t1 where t1.c = t0.a)",
        ] {
            check_all(&db, sql);
        }
    }
}

/// All-NULL join keys: every tuple lands in the NULL nest group and the
/// outer join pads everything; partitioning must not change that.
#[test]
fn null_key_parallel_agreement() {
    let t0: Vec<(Option<i64>, Option<i64>)> = (0..8).map(|i| (None, Some(i % 3))).collect();
    let t1: Vec<(Option<i64>, Option<i64>)> = (0..6)
        .map(|i| (None, if i % 2 == 0 { None } else { Some(i) }))
        .collect();
    let db = db_from(&t0, &t1, &[]);
    for sql in [
        "select a, b from t0 where b > all (select d from t1 where t1.c = t0.a)",
        "select a, b from t0 where b in (select d from t1 where t1.c = t0.a)",
        "select a, b from t0 where not exists (select * from t1 where t1.c = t0.a)",
    ] {
        check_all(&db, sql);
    }
}
