//! End-to-end checks for the partition-parallel executor behind the
//! unified `execute(sql, &QueryOptions) -> QueryOutcome` API.
//!
//! The determinism contract under test: for any query, any strategy and
//! any thread budget, the result relation is *identical* — same tuples,
//! same order — to the single-threaded run. Partitioning only changes
//! wall time, never answers.

use nra::engine::exec;
use nra::tpch::gen::{generate, TpchConfig};
use nra::tpch::queries::{q2_sql, Quant};
use nra::{Database, Engine, QueryOptions, Strategy};

fn rows_at(db: &Database, sql: &str, engine: Engine, threads: usize) -> nra::storage::Relation {
    db.connect()
        .execute_with(sql, &QueryOptions::new().engine(engine).threads(threads))
        .unwrap()
        .rows
}

const ENGINES: [Engine; 4] = [
    Engine::Baseline,
    Engine::NestedRelational(Strategy::Original),
    Engine::NestedRelational(Strategy::Optimized),
    Engine::NestedRelational(Strategy::Auto),
];

/// Paper Query 2 (both quantifier variants) on generated TPC-H data,
/// strict and nullable: every engine must return the byte-identical
/// relation at 1, 2 and 4 threads. `lineitem` at this scale exceeds the
/// default morsel floor, so the hash-join build/probe sides genuinely
/// partition.
#[test]
fn tpch_q2_byte_identical_across_thread_counts() {
    let strict = generate(&TpchConfig::tiny());
    let nullable = generate(&TpchConfig::tiny().nullable_links(0.05));
    for cat in [strict, nullable] {
        for quant in [Quant::Any, Quant::All] {
            let sql = q2_sql(&cat, quant, 200, 400);
            let db = Database::from_catalog(cat.clone());
            for engine in ENGINES {
                let seq = rows_at(&db, &sql, engine, 1);
                for threads in [2, 4] {
                    let par = rows_at(&db, &sql, engine, threads);
                    assert!(
                        par.rows() == seq.rows(),
                        "{engine:?} at {threads} threads differs on {quant:?}"
                    );
                }
            }
        }
    }
}

/// Same contract with the morsel floor lowered to one row, forcing every
/// operator — not just the big scans — through the partitioned paths.
#[test]
fn tpch_q2_identical_with_one_row_morsels() {
    let cat = generate(&TpchConfig::tiny().nullable_links(0.05));
    let sql = q2_sql(&cat, Quant::All, 100, 200);
    let db = Database::from_catalog(cat);
    for engine in ENGINES {
        let seq = rows_at(&db, &sql, engine, 1);
        let _morsel = exec::set_morsel_rows(1);
        for threads in [2, 4] {
            let par = rows_at(&db, &sql, engine, threads);
            assert!(par.rows() == seq.rows(), "{engine:?} at {threads} threads");
        }
    }
}

/// `QueryOutcome` carries the effective thread budget, and the profile is
/// stamped with the same number.
#[test]
fn outcome_reports_thread_budget() {
    let db = Database::from_catalog(nra::tpch::paper_example::rst_catalog());
    let q = nra::tpch::paper_example::QUERY_Q;

    let out = db
        .connect()
        .execute_with(q, &QueryOptions::new().threads(3).collect_profile(true))
        .unwrap();
    assert_eq!(out.threads, 3);
    assert_eq!(out.profile.as_ref().unwrap().threads, 3);

    // Without an explicit budget the ambient one (thread-local override,
    // else NRA_THREADS, else 1) applies.
    let guard = exec::set_threads(Some(2));
    let out = db.connect().execute_with(q, &QueryOptions::new()).unwrap();
    assert_eq!(out.threads, 2);
    drop(guard);

    // The per-query override is scoped to the call: the ambient budget is
    // restored afterwards.
    let ambient = exec::threads();
    let _ = db
        .connect()
        .execute_with(q, &QueryOptions::new().threads(7))
        .unwrap();
    assert_eq!(exec::threads(), ambient);
}

/// Plan artifacts: `explain_only` renders without executing; the analyzed
/// plan appears exactly when a profile is collected under the Original
/// strategy.
#[test]
fn plan_artifacts_follow_options() {
    let db = Database::from_catalog(nra::tpch::paper_example::rst_catalog());
    let q = nra::tpch::paper_example::QUERY_Q;

    let out = db
        .connect()
        .execute_with(q, &QueryOptions::new().explain_only(true))
        .unwrap();
    assert!(out.plan.is_some());
    assert!(out.rows.is_empty());
    assert!(out.profile.is_none());

    let analyzed = db
        .connect()
        .execute_with(
            q,
            &QueryOptions::new()
                .strategy(Strategy::Original)
                .collect_profile(true),
        )
        .unwrap();
    assert!(
        analyzed.plan.is_some(),
        "analyzed plan for Original + profile"
    );
    assert!(analyzed.profile.is_some());

    let plain = db
        .connect()
        .execute_with(q, &QueryOptions::new().strategy(Strategy::Original))
        .unwrap();
    assert!(plain.plan.is_none(), "no plan without a profile");
    assert!(!plain.rows.is_empty());
}

/// `NraError` chains sources down to the underlying layer error.
#[test]
fn errors_chain_to_their_sources() {
    let db = Database::new();
    let err = db
        .connect()
        .execute_with("select * from nowhere", &QueryOptions::new())
        .unwrap_err();
    let mut depth = 0;
    let mut cur: Option<&dyn std::error::Error> = Some(&err);
    while let Some(e) = cur {
        depth += 1;
        cur = e.source();
    }
    assert!(depth >= 2, "expected a chained source, got depth {depth}");
    assert!(err.to_string().contains("nowhere"));
}
