//! Concurrent observability: queries running from many OS threads at
//! once must neither interleave their per-query artifacts (profiles,
//! per-query metrics scopes) nor lose records in the process-global
//! registries.

use std::sync::Arc;

use nra::obs::metrics::Metric;
use nra::tpch::paper_example::rst_catalog;
use nra::{Database, QueryOptions, Strategy};

const THREADS: usize = 8;
const QUERIES_PER_THREAD: i64 = 4;

fn marker_sql(thread: usize, q: i64) -> String {
    format!(
        "select r.a from r where r.a > {} and r.b in (select s.e from s where s.g = r.d)",
        1_000_000 + (thread as i64) * 100 + q
    )
}

#[test]
fn concurrent_queries_keep_observability_isolated_and_lossless() {
    let database = Arc::new(Database::from_catalog(rst_catalog()));
    let before_total = global_ok_count();

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let database = Arc::clone(&database);
            std::thread::spawn(move || {
                for q in 0..QUERIES_PER_THREAD {
                    let sql = marker_sql(t, q);
                    let out = database
                        .connect()
                        .execute_with(
                            &sql,
                            &QueryOptions::new()
                                .strategy(Strategy::Original)
                                .collect_profile(true)
                                .collect_metrics(true),
                        )
                        .unwrap();

                    // The per-query metrics scope is thread-local +
                    // handoff-installed: exactly this query's events,
                    // nothing from the 7 sibling threads.
                    let snap = out.metrics.expect("metrics requested");
                    assert_eq!(
                        snap.get("nra_queries_total", &[("outcome", "ok")]),
                        Some(&Metric::Counter(1)),
                        "per-query scope saw a sibling's query"
                    );

                    // The profile is per-query too: Query-shaped ops with
                    // self-consistent row counts (an interleaved profile
                    // would double-count rows_in on the shared names).
                    let profile = out.profile.expect("profile requested");
                    let scan = profile
                        .ops
                        .iter()
                        .find(|(name, _)| name == "scan")
                        .map(|(_, s)| s.rows_out)
                        .expect("outer scan profiled");
                    assert_eq!(scan, 0, "r.a > 1M+ matches nothing");

                    // The final progress snapshot is this query's own.
                    let snap = out.progress.expect("progress tracked");
                    assert!(snap.done && snap.percent == 100);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // No lost records: every one of the 32 distinct statements appears in
    // the completed ring exactly once.
    let completed = nra::obs::queryreg::global().completed();
    for t in 0..THREADS {
        for q in 0..QUERIES_PER_THREAD {
            let sql = marker_sql(t, q);
            let found = completed.iter().filter(|r| r.sql == sql).count();
            assert_eq!(found, 1, "registry lost or duplicated `{sql}`");
        }
    }

    // The process-cumulative registry absorbed all 32 ok-outcomes (other
    // tests in the binary may add more — never fewer).
    let after_total = global_ok_count();
    assert!(
        after_total >= before_total + (THREADS as u64) * QUERIES_PER_THREAD as u64,
        "global counter lost increments: {before_total} -> {after_total}"
    );
}

fn global_ok_count() -> u64 {
    match nra::obs::metrics::global()
        .snapshot()
        .get("nra_queries_total", &[("outcome", "ok")])
    {
        Some(Metric::Counter(v)) => *v,
        _ => 0,
    }
}
