//! The paper's evaluation queries at test scale: every engine must agree
//! on Query 1, Query 2a/2b and all Query 3 variants, and the baseline
//! planner must pick the plan families the paper describes for System A.

use nra::{Database, Engine, QueryOptions, Strategy};
use nra_engine::baseline::{self, BaselineChoice};
use nra_tpch::{generate, q1_sql, q2_sql, q3_sql, ExistsKind, Q3Corr, Quant, TpchConfig};

fn db(scale: f64) -> Database {
    Database::from_catalog(generate(&TpchConfig::scaled(scale)))
}

fn run(db: &Database, sql: &str, engine: Engine) -> nra::storage::Relation {
    db.connect()
        .execute_with(sql, &QueryOptions::new().engine(engine))
        .unwrap()
        .rows
}

fn check_all_engines(db: &Database, sql: &str) {
    let oracle = run(db, sql, Engine::Reference);
    for (name, engine) in [
        ("baseline", Engine::Baseline),
        ("nr-original", Engine::NestedRelational(Strategy::Original)),
        (
            "nr-optimized",
            Engine::NestedRelational(Strategy::Optimized),
        ),
        ("nr-auto", Engine::NestedRelational(Strategy::Auto)),
    ] {
        let got = run(db, sql, engine);
        assert!(
            got.multiset_eq(&oracle),
            "{name} disagrees with oracle ({} vs {} rows) on\n{sql}",
            got.len(),
            oracle.len()
        );
    }
}

#[test]
fn q1_all_engines_agree() {
    let db = db(0.01);
    let sql = q1_sql(&db.catalog(), 150);
    check_all_engines(&db, &sql);
}

#[test]
fn q1_baseline_plan_depends_on_not_null() {
    // With NOT NULL on the money columns System A antijoins; dropping the
    // constraint (even with zero actual NULLs) forces nested iteration.
    let strict = db(0.01);
    let sql = q1_sql(&strict.catalog(), 150);
    let bq = strict.prepare(&sql).unwrap();
    assert_eq!(
        baseline::choose(&bq, &strict.catalog()),
        BaselineChoice::SemiAntiCascade
    );

    let loose = Database::from_catalog(generate(&TpchConfig::scaled(0.01).nullable_links(0.0)));
    let sql = q1_sql(&loose.catalog(), 150);
    let bq = loose.prepare(&sql).unwrap();
    assert_eq!(
        baseline::choose(&bq, &loose.catalog()),
        BaselineChoice::NestedIteration
    );
    check_all_engines(&loose, &sql);
}

#[test]
fn q1_with_actual_nulls_agrees() {
    let db = Database::from_catalog(generate(&TpchConfig::scaled(0.01).nullable_links(0.15)));
    let sql = q1_sql(&db.catalog(), 150);
    check_all_engines(&db, &sql);
}

#[test]
fn q2a_mixed_agrees_and_cascades() {
    let db = db(0.008);
    let sql = q2_sql(&db.catalog(), Quant::Any, 150, 200);
    let bq = db.prepare(&sql).unwrap();
    // ANY + NOT EXISTS: System A unnests bottom-up (semijoin + antijoin).
    assert_eq!(
        baseline::choose(&bq, &db.catalog()),
        BaselineChoice::SemiAntiCascade
    );
    assert!(baseline::describe(&bq, &db.catalog()).contains("semijoin + antijoin"));
    check_all_engines(&db, &sql);
}

#[test]
fn q2b_negative_agrees() {
    let db = db(0.008);
    let sql = q2_sql(&db.catalog(), Quant::All, 150, 200);
    check_all_engines(&db, &sql);
    // ALL with NOT NULL supplycost still cascades (two antijoins) — the
    // paper: "with a NOT NULL constraint ... processing Query 2a with two
    // antijoins instead of one antijoin and one semijoin".
    let bq = db.prepare(&sql).unwrap();
    assert!(baseline::describe(&bq, &db.catalog()).contains("antijoin + antijoin"));
    // Dropping the constraint forces nested iteration for the ALL level.
    let loose = Database::from_catalog(generate(&TpchConfig::scaled(0.008).nullable_links(0.0)));
    let sql = q2_sql(&loose.catalog(), Quant::All, 150, 200);
    let bq = loose.prepare(&sql).unwrap();
    assert_eq!(
        baseline::choose(&bq, &loose.catalog()),
        BaselineChoice::NestedIteration
    );
    check_all_engines(&loose, &sql);
}

#[test]
fn q3_all_variants_agree() {
    let db = db(0.006);
    let variants: Vec<(Quant, ExistsKind)> = vec![
        (Quant::All, ExistsKind::Exists),    // Q3a mixed
        (Quant::All, ExistsKind::NotExists), // Q3b negative
        (Quant::Any, ExistsKind::Exists),    // Q3c positive-ish
    ];
    for (quant, exists) in variants {
        for corr in [Q3Corr::EqEq, Q3Corr::NeEq, Q3Corr::EqNe] {
            let sql = q3_sql(&db.catalog(), quant, exists, corr, 120, 150);
            let bq = db.prepare(&sql).unwrap();
            // Query 3's innermost block references `part` two levels up:
            // the linear cascade is impossible. Q3a/Q3b (ALL present)
            // force nested iteration; Q3c (all positive) still unnests
            // via generalized semijoins.
            let expected = if quant == Quant::Any && exists == ExistsKind::Exists {
                BaselineChoice::PositiveUnnest
            } else {
                BaselineChoice::NestedIteration
            };
            assert_eq!(
                baseline::choose(&bq, &db.catalog()),
                expected,
                "{quant:?} {exists:?} {corr:?}"
            );
            check_all_engines(&db, &sql);
        }
    }
}

#[test]
fn bottom_up_strategies_on_q2() {
    // Query 2 is linear correlated: the §4.2.3 / §4.2.4 strategies apply.
    let db = db(0.008);
    for quant in [Quant::Any, Quant::All] {
        let sql = q2_sql(&db.catalog(), quant, 150, 200);
        let oracle = run(&db, &sql, Engine::Reference);
        for strat in [Strategy::BottomUp, Strategy::BottomUpPushdown] {
            let got = run(&db, &sql, Engine::NestedRelational(strat));
            assert!(got.multiset_eq(&oracle), "{strat:?} on {quant:?}");
        }
    }
}

#[test]
fn positive_rewrite_on_positive_q3c_like_query() {
    // A fully positive variant: EXISTS + EXISTS.
    let db = db(0.006);
    let sql = "select p_partkey from part where p_size <= 10 and exists \
         (select * from partsupp where ps_partkey = p_partkey and exists \
            (select * from lineitem where p_partkey = l_partkey \
             and ps_suppkey = l_suppkey and l_quantity = 1))";
    let oracle = run(&db, sql, Engine::Reference);
    let got = run(
        &db,
        sql,
        Engine::NestedRelational(Strategy::PositiveRewrite),
    );
    assert!(got.multiset_eq(&oracle));
}
