//! The aggregate-subquery extension: `A θ (SELECT agg(B) ...)` evaluated
//! through the same nested relational machinery (the set is folded instead
//! of quantified). Includes the classical "count bug" scenario that naive
//! unnesting rewrites get wrong.

use nra::{Database, Engine, QueryOptions, Strategy};
use nra_storage::{Column, ColumnType, Value};

fn db() -> Database {
    let db = Database::new();
    db.create_table(
        "dept",
        vec![
            Column::not_null("dno", ColumnType::Int),
            Column::new("budget", ColumnType::Int),
        ],
        &["dno"],
    )
    .unwrap();
    db.insert(
        "dept",
        vec![
            vec![Value::Int(1), Value::Int(100)],
            vec![Value::Int(2), Value::Int(50)],
            vec![Value::Int(3), Value::Int(0)],
            vec![Value::Int(4), Value::Null],
        ],
    )
    .unwrap();
    db.create_table(
        "emp",
        vec![
            Column::not_null("eid", ColumnType::Int),
            Column::new("dno", ColumnType::Int),
            Column::new("salary", ColumnType::Int),
        ],
        &["eid"],
    )
    .unwrap();
    db.insert(
        "emp",
        vec![
            vec![Value::Int(10), Value::Int(1), Value::Int(40)],
            vec![Value::Int(11), Value::Int(1), Value::Int(30)],
            vec![Value::Int(12), Value::Int(2), Value::Int(60)],
            vec![Value::Int(13), Value::Int(2), Value::Null],
        ],
    )
    .unwrap();
    db
}

fn engines() -> Vec<(&'static str, Engine)> {
    vec![
        ("oracle", Engine::Reference),
        ("baseline", Engine::Baseline),
        ("nr-original", Engine::NestedRelational(Strategy::Original)),
        (
            "nr-optimized",
            Engine::NestedRelational(Strategy::Optimized),
        ),
        ("nr-auto", Engine::NestedRelational(Strategy::Auto)),
    ]
}

fn check(db: &Database, sql: &str, expected_rows: usize) {
    for (name, engine) in engines() {
        let out = db
            .connect()
            .execute_with(sql, &QueryOptions::new().engine(engine))
            .unwrap()
            .rows;
        assert_eq!(
            out.len(),
            expected_rows,
            "{name} returned wrong cardinality for {sql}:\n{out}"
        );
    }
}

#[test]
fn sum_subquery() {
    // budget > sum of its employees' salaries (NULL salaries skipped):
    // dept 1: 100 > 70 ✓; dept 2: 50 > 60 ✗; dept 3: empty -> SUM NULL ->
    // unknown ✗; dept 4: NULL > ... unknown ✗.
    check(
        &db(),
        "select dno from dept where budget > (select sum(salary) from emp where emp.dno = dept.dno)",
        1,
    );
}

#[test]
fn max_and_min_subqueries() {
    // budget > max(salary): dept 1: 100 > 40 ✓; dept 2: 50 > 60 ✗.
    check(
        &db(),
        "select dno from dept where budget > (select max(salary) from emp where emp.dno = dept.dno)",
        1,
    );
    // budget < min(salary): dept 1: 100 < 30 ✗; dept 2: 50 < 60 ✓.
    check(
        &db(),
        "select dno from dept where budget < (select min(salary) from emp where emp.dno = dept.dno)",
        1,
    );
}

#[test]
fn count_star_with_empty_groups() {
    // The "count bug" scenario: departments with zero employees must
    // compare against COUNT(*) = 0, not vanish.
    check(
        &db(),
        "select dno from dept where 0 = (select count(*) from emp where emp.dno = dept.dno)",
        2, // depts 3 and 4
    );
    check(
        &db(),
        "select dno from dept where 2 = (select count(*) from emp where emp.dno = dept.dno)",
        2, // depts 1 and 2
    );
}

#[test]
fn count_column_skips_nulls() {
    // COUNT(salary): dept 2 has 2 employees but only 1 non-NULL salary.
    check(
        &db(),
        "select dno from dept where 1 = (select count(salary) from emp where emp.dno = dept.dno)",
        1, // dept 2
    );
}

#[test]
fn avg_subquery() {
    // budget > avg(salary): dept 1: 100 > 35 ✓; dept 2: 50 > 60 ✗.
    check(
        &db(),
        "select dno from dept where budget > (select avg(salary) from emp where emp.dno = dept.dno)",
        1,
    );
}

#[test]
fn negated_aggregate_comparison() {
    // NOT (budget > sum(...)) = budget <= sum(...): dept 2 only (dept 3's
    // empty SUM is NULL -> unknown -> still rejected; 3VL preserved).
    check(
        &db(),
        "select dno from dept where not budget > (select sum(salary) from emp where emp.dno = dept.dno)",
        1,
    );
}

#[test]
fn aggregate_below_another_subquery() {
    // Two-level: employees earning more than their department's average.
    let db = db();
    // eid 10: 40 > avg(40,30)=35 ✓; eid 11: 30 > 35 ✗;
    // eid 12: 60 > avg(60)=60 ✗; eid 13: NULL ✗.
    check(
        &db,
        "select eid from emp where salary > (select avg(salary) from emp e2 where e2.dno = emp.dno)",
        1,
    );
}

#[test]
fn explain_shows_aggregate_link() {
    let db = db();
    let bq = db
        .prepare("select dno from dept where budget > (select max(salary) from emp where emp.dno = dept.dno)")
        .unwrap();
    let tree = nra_core::TreeExpr::build(&bq);
    assert!(tree.to_string().contains("max{"), "got: {tree}");
}

#[test]
fn binder_rejects_misplaced_aggregates() {
    let db = db();
    let opts = QueryOptions::new();
    assert!(db
        .connect()
        .execute_with("select max(budget) from dept", &opts)
        .is_err());
    assert!(db
        .connect()
        .execute_with(
            "select dno from dept where budget in (select max(salary) from emp)",
            &opts
        )
        .is_err());
    assert!(db
        .connect()
        .execute_with(
            "select dno from dept where budget > (select salary from emp)",
            &opts
        )
        .is_err());
}

#[test]
fn uncorrelated_aggregate() {
    // budget > global max salary (60): dept 1 only.
    check(
        &db(),
        "select dno from dept where budget > (select max(salary) from emp)",
        1,
    );
}
