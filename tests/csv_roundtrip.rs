//! End-to-end CSV/tbl round-trip: export generated TPC-H tables, reload
//! them into a fresh catalog, and verify a benchmark query returns the
//! same answer — the path a user with real `dbgen` output would take.

use std::io::BufReader;

use nra::storage::csv::{read_rows, write_relation, CsvOptions};
use nra::{Database, Engine};
use nra_tpch::{generate, q1_sql, tables, TpchConfig};

#[test]
fn tpch_roundtrip_through_csv_files() {
    let cat = generate(&TpchConfig::scaled(0.005));
    let dir = std::env::temp_dir().join(format!("nra_csv_roundtrip_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Export orders and lineitem in the dbgen-style dialect.
    let opts = CsvOptions::tbl();
    for name in ["orders", "lineitem"] {
        let path = dir.join(format!("{name}.tbl"));
        let file = std::fs::File::create(&path).unwrap();
        write_relation(file, cat.table(name).unwrap().data(), &opts).unwrap();
    }

    // Reload into a fresh catalog built from the schema definitions.
    let mut fresh = nra_storage::Catalog::new();
    fresh.add_table(tables::orders(true)).unwrap();
    fresh.add_table(tables::lineitem(true)).unwrap();
    for name in ["orders", "lineitem"] {
        let path = dir.join(format!("{name}.tbl"));
        let file = std::fs::File::open(&path).unwrap();
        let schema = fresh.table(name).unwrap().schema().clone();
        let rows = read_rows(BufReader::new(file), &schema, &opts).unwrap();
        fresh.table_mut(name).unwrap().insert_many(rows).unwrap();
    }

    assert_eq!(
        fresh.table("lineitem").unwrap().len(),
        cat.table("lineitem").unwrap().len()
    );

    // The same query over original and round-tripped data must agree.
    let sql = q1_sql(&cat, 60);
    let original = Database::from_catalog(cat);
    let reloaded = Database::from_catalog(fresh);
    let opts = nra::QueryOptions::new().engine(Engine::default());
    let a = original.execute(&sql, &opts).unwrap().rows;
    let b = reloaded.execute(&sql, &opts).unwrap().rows;
    assert!(a.multiset_eq(&b), "round-tripped data changed the answer");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn csv_dialect_roundtrip_preserves_values_exactly() {
    let cat = generate(&TpchConfig::scaled(0.003).nullable_links(0.3));
    let part = cat.table("part").unwrap().data();
    let mut buf = Vec::new();
    write_relation(&mut buf, part, &CsvOptions::default()).unwrap();
    let back = read_rows(buf.as_slice(), part.schema(), &CsvOptions::default()).unwrap();
    assert_eq!(back.len(), part.len());
    let reloaded = nra::storage::Relation::with_rows(part.schema().clone(), back);
    assert!(reloaded.multiset_eq(part), "values drifted through CSV");
}
