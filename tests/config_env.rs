//! Strict environment-variable validation (its own test binary: the
//! environment is process-global, so these tests serialize behind one
//! mutex and never run alongside other suites' processes).
//!
//! A malformed `NRA_FAULT` / `NRA_MEM_LIMIT` / `NRA_BATCH_ROWS` used to
//! be silently ignored by the lenient runtime parsers; it is now a
//! structured `EngineError::Config` from both query execution and
//! `Database::open`.

use std::sync::Mutex;

use nra::engine::EngineError;
use nra::storage::{Column, ColumnType, Value};
use nra::{Database, NraError, QueryOptions};

static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_env<R>(pairs: &[(&str, &str)], f: impl FnOnce() -> R) -> R {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for (k, v) in pairs {
        std::env::set_var(k, v);
    }
    let out = f();
    for (k, _) in pairs {
        std::env::remove_var(k);
    }
    out
}

fn test_db() -> Database {
    let db = Database::new();
    db.create_table("t", vec![Column::not_null("a", ColumnType::Int)], &["a"])
        .unwrap();
    db.insert("t", vec![vec![Value::Int(1)], vec![Value::Int(2)]])
        .unwrap();
    db
}

fn expect_config(result: Result<impl std::fmt::Debug, NraError>, var: &str) {
    match result {
        Err(NraError::Engine(EngineError::Config { var: v, detail, .. })) => {
            assert_eq!(v, var);
            assert!(!detail.is_empty());
        }
        other => panic!("expected a Config error for {var}, got {other:?}"),
    }
}

#[test]
fn malformed_fault_spec_is_a_structured_error() {
    let db = test_db();
    for bad in [
        "nonsense",
        "join-build:x:panic",
        "wal-apend:1:crash",
        "join-build:1:explode",
    ] {
        with_env(&[("NRA_FAULT", bad)], || {
            let err = db.execute("select a from t", &QueryOptions::new());
            expect_config(err, "NRA_FAULT");
            let msg = db
                .execute("select a from t", &QueryOptions::new())
                .unwrap_err()
                .to_string();
            assert!(msg.contains("invalid NRA_FAULT"), "spec `{bad}`: {msg}");
        });
    }
}

#[test]
fn malformed_mem_limit_and_batch_rows_are_structured_errors() {
    let db = test_db();
    with_env(&[("NRA_MEM_LIMIT", "1GB")], || {
        expect_config(
            db.execute("select a from t", &QueryOptions::new()),
            "NRA_MEM_LIMIT",
        );
    });
    with_env(&[("NRA_BATCH_ROWS", "0")], || {
        expect_config(
            db.execute("select a from t", &QueryOptions::new()),
            "NRA_BATCH_ROWS",
        );
    });
    with_env(&[("NRA_BATCH_ROWS", "lots")], || {
        expect_config(
            db.execute("select a from t", &QueryOptions::new()),
            "NRA_BATCH_ROWS",
        );
    });
}

#[test]
fn database_open_applies_the_same_gate() {
    let dir = std::env::temp_dir().join(format!("nra-config-env-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    with_env(&[("NRA_FAULT", "bogus")], || {
        expect_config(Database::open(&dir), "NRA_FAULT");
        assert!(!dir.exists(), "a refused open creates nothing");
    });
    with_env(&[("NRA_CHECKPOINT_EVERY", "often")], || {
        expect_config(Database::open(&dir), "NRA_CHECKPOINT_EVERY");
    });
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn valid_values_still_work() {
    let db = test_db();
    // A well-formed spec naming engine and storage sites passes the
    // gate (the storage entries are simply dormant on a query).
    with_env(
        &[
            ("NRA_MEM_LIMIT", "1073741824"),
            ("NRA_BATCH_ROWS", "512"),
            ("NRA_FAULT", "wal-append:1:short-write"),
        ],
        || {
            let out = db.execute("select a from t", &QueryOptions::new()).unwrap();
            assert_eq!(out.rows.len(), 2);
        },
    );
}
