//! `EXPLAIN ANALYZE` on the paper's running example (Query Q of
//! Section 2): a golden test of the annotated Algorithm-1 plan, plus the
//! accounting invariants the per-operator counters must satisfy.

use nra::obs;
use nra::tpch::paper_example::{rst_catalog, QUERY_Q};
use nra::{Database, QueryOptions, Strategy};

fn db() -> Database {
    Database::from_catalog(rst_catalog())
}

/// `EXPLAIN ANALYZE` through the unified API: profile + simulated I/O
/// under the Original strategy, reading the rendered analyzed plan.
fn analyze(db: &Database) -> String {
    db.connect()
        .execute_with(
            QUERY_Q,
            &QueryOptions::new()
                .strategy(Strategy::Original)
                .collect_profile(true)
                .simulate_io(true),
        )
        .unwrap()
        .plan
        .unwrap()
}

/// The deterministic skeleton of the analyzed plan: operator shapes and
/// cardinalities are fixed by the catalog; only timings vary run to run.
#[test]
fn analyzed_paper_plan_matches_golden_text() {
    let text = analyze(&db());
    for expected in [
        // Root projection passes the two answer tuples through.
        "π (root select)  (rows=2→2, ",
        // Outer linking selection: three nested tuples in, r1 and r3 out.
        "σ r.b <> ALL {s.e}  (rows=3→2, ",
        "pass=2 fail=1 unknown=0",
        // Inner *pseudo*-selection: s1 fails, s3 is unknown — both are
        // NULL-padded rather than discarded, so 3 rows stay 3 rows.
        "σ̄ s.h > ALL {t.j}  (rows=3→3, ",
        "pass=1 fail=1 unknown=1, padded=2",
        // Both nests keep every prefix group.
        "groups=3",
        // The unnesting outer joins and the base scans with their local
        // predicates.
        "⟕ r.d = s.g  (rows=6→3, ",
        "⟕ t.k = r.c ∧ t.l <> s.i  (rows=8→3, ",
        "T1 = r | σ r.a > 1  (rows=4→3, ",
        "T2 = s | σ s.f = 5  (rows=4→3, ",
        "T3 = t  (rows=5→5, ",
        // Footer: the hand-derived answer has two rows, and the scans
        // were charged to the I/O simulator.
        "-- 2 row(s); total operator time ",
        "sequential page(s)",
    ] {
        assert!(text.contains(expected), "missing {expected:?} in:\n{text}");
    }
}

/// Every operator node of the plan must carry measured rows and a
/// non-zero timing — nothing may render as `(not executed)`.
#[test]
fn every_operator_node_is_annotated() {
    let text = analyze(&db());
    let plan_lines: Vec<&str> = text.lines().filter(|l| !l.starts_with("--")).collect();
    assert_eq!(plan_lines.len(), 10, "plan shape changed:\n{text}");
    for line in plan_lines {
        assert!(!line.contains("not executed"), "dead node: {line}");
        assert!(line.contains("(rows="), "no row counts: {line}");
        let annotation = &line[line.find("(rows=").unwrap()..];
        let time = annotation
            .split(", ")
            .nth(1)
            .unwrap_or_else(|| panic!("no timing field: {line}"))
            .trim_end_matches(')');
        assert!(
            time.ends_with("ns")
                || time.ends_with("µs")
                || time.ends_with("ms")
                || time.ends_with('s'),
            "unparsable timing {time:?}: {line}"
        );
        assert!(!time.starts_with("0n"), "zero timing: {line}");
    }
}

/// Cardinality feedback: every operator node renders the planner's
/// estimate next to the measured actual as `est=… act=… (×err)`.
#[test]
fn every_operator_node_carries_cardinality_feedback() {
    let text = analyze(&db());
    for line in text.lines().filter(|l| !l.starts_with("--")) {
        assert!(line.contains("est="), "no estimate: {line}");
        assert!(line.contains(" act="), "no actual: {line}");
        assert!(line.contains("(×"), "no Q-error factor: {line}");
    }
}

/// The estimator covers every node of Query Q's plan: a node the
/// estimator misses renders the explicit `est=?` placeholder (instead
/// of silently omitting the estimate), and none may appear here.
#[test]
fn no_node_renders_the_missing_estimate_placeholder() {
    let text = analyze(&db());
    assert!(
        !text.contains("est=?"),
        "estimator coverage gap on Query Q:\n{text}"
    );
    assert!(!text.contains("not executed"), "dead node:\n{text}");
}

/// The nest operator emits exactly one nested tuple per group.
#[test]
fn nest_rows_out_equals_group_count() {
    let database = db();
    let profile = database
        .connect()
        .execute_with(
            QUERY_Q,
            &QueryOptions::new()
                .strategy(Strategy::Original)
                .collect_profile(true),
        )
        .unwrap()
        .profile
        .unwrap();
    let nests: Vec<_> = profile
        .ops
        .iter()
        .filter(|(name, _)| name.contains("nest["))
        .collect();
    assert!(nests.len() >= 2, "Query Q nests twice: {:?}", profile.ops);
    for (name, stats) in nests {
        assert_eq!(
            stats.rows_out, stats.nest_groups,
            "{name} emits one tuple per group"
        );
        assert!(stats.group_card_hist.iter().sum::<u64>() == stats.nest_groups);
    }
}

/// Pseudo-selection pads exactly the tuples whose linking predicate did
/// not pass (FALSE and UNKNOWN alike), instead of discarding them.
#[test]
fn padded_tuples_equal_failing_tuples() {
    let database = db();
    let profile = database
        .connect()
        .execute_with(
            QUERY_Q,
            &QueryOptions::new()
                .strategy(Strategy::Original)
                .collect_profile(true),
        )
        .unwrap()
        .profile
        .unwrap();
    let padded: Vec<_> = profile
        .ops
        .iter()
        .filter(|(_, stats)| stats.padded > 0)
        .collect();
    assert!(
        !padded.is_empty(),
        "Query Q pseudo-selects: {:?}",
        profile.ops
    );
    for (name, stats) in padded {
        assert_eq!(
            stats.padded,
            stats.fail + stats.unknown,
            "{name} pads each non-passing tuple exactly once"
        );
        assert_eq!(stats.rows_in, stats.rows_out, "{name} discards nothing");
    }
}

/// With the collector off, instrumented queries record nothing, and
/// `explain_analyze` leaves the collector off once it returns.
#[test]
fn counters_stay_zero_when_disabled() {
    let database = db();
    assert!(!obs::is_enabled());
    database
        .connect()
        .execute_with(QUERY_Q, &QueryOptions::new())
        .unwrap();
    let snap = obs::snapshot();
    assert!(snap.is_empty(), "disabled run must record nothing");
    assert!(snap.ops.is_empty());

    analyze(&database);
    assert!(
        !obs::is_enabled(),
        "profile collection restores disabled state"
    );
    assert!(obs::snapshot().is_empty());
}
