//! Differential property tests for the vectorized columnar core
//! (DESIGN.md §13): seeded-deterministic random data, NULL-laden, checked
//! against the row-at-a-time reference evaluators at several batch
//! widths — including width 1 and 3 (every row/almost every row is a
//! batch seam) and the default 1024.
//!
//! Covered here, per the issue's checklist: vectorized predicate/3VL
//! evaluation vs `CPred::eval` on NULL-heavy data; empty batches;
//! all-false selection vectors; and nest groups straddling batch
//! boundaries (`group_bounds` vs a scalar adjacent-equality scan).

use nra_engine::expr::{CExpr, CPred};
use nra_engine::vec::{self, select_rows, ValueBatch};
use nra_engine::{exec, ops};
use nra_storage::rng::Pcg32;
use nra_storage::{
    relation, tuple::group_eq_on, CmpOp, Column, ColumnType, Relation, Schema, Truth, Tuple, Value,
};

const BATCH_WIDTHS: [usize; 3] = [1, 3, 1024];

/// A random NULL-heavy value over all scalar kinds (strings included, so
/// mixed columns exercise the `Ref` fallback lane).
fn any_value(rng: &mut Pcg32) -> Value {
    match rng.index(8) {
        0 => Value::Null,
        1 => Value::Bool(rng.bool(0.5)),
        2 => Value::Int(rng.range_i64(-3, 4)),
        3 => Value::Decimal(rng.range_i64(-3, 4) * 100),
        4 => Value::Float(rng.range_i64(-3, 4) as f64 / 2.0),
        5 => Value::Float(f64::NAN),
        6 => Value::str(["a", "b", "c"][rng.index(3)]),
        _ => Value::Date(rng.range_i64(0, 4) as i32),
    }
}

/// A random *mostly typed* value: one kind per column, NULL-laden.
fn typed_value(rng: &mut Pcg32, kind: usize) -> Value {
    if rng.bool(0.3) {
        return Value::Null;
    }
    match kind {
        0 => Value::Int(rng.range_i64(-5, 6)),
        1 => Value::Decimal(rng.range_i64(-5, 6) * 100),
        2 => Value::Float(rng.range_i64(-5, 6) as f64 / 2.0),
        3 => Value::Date(rng.range_i64(0, 6) as i32),
        _ => Value::Bool(rng.bool(0.5)),
    }
}

fn random_rows(rng: &mut Pcg32, width: usize, n: usize, typed: bool) -> Vec<Tuple> {
    let kinds: Vec<usize> = (0..width).map(|_| rng.index(5)).collect();
    (0..n)
        .map(|_| {
            (0..width)
                .map(|c| {
                    if typed {
                        typed_value(rng, kinds[c])
                    } else {
                        any_value(rng)
                    }
                })
                .collect()
        })
        .collect()
}

/// A random predicate over `width` columns, depth-bounded.
fn random_pred(rng: &mut Pcg32, width: usize, depth: usize) -> CPred {
    let expr = |rng: &mut Pcg32| -> CExpr {
        if rng.bool(0.7) {
            CExpr::Col(rng.index(width))
        } else {
            CExpr::Lit(any_value(rng))
        }
    };
    let ops = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];
    if depth == 0 || rng.bool(0.5) {
        return match rng.index(4) {
            0 => CPred::Cmp {
                left: expr(rng),
                op: *rng.choose(&ops),
                right: expr(rng),
            },
            1 => CPred::Between {
                expr: expr(rng),
                low: expr(rng),
                high: expr(rng),
                negated: rng.bool(0.5),
            },
            2 => CPred::IsNull {
                expr: expr(rng),
                negated: rng.bool(0.5),
            },
            _ => CPred::InList {
                expr: expr(rng),
                list: (0..rng.index(3) + 1).map(|_| expr(rng)).collect(),
                negated: rng.bool(0.5),
            },
        };
    }
    match rng.index(3) {
        0 => CPred::And(
            Box::new(random_pred(rng, width, depth - 1)),
            Box::new(random_pred(rng, width, depth - 1)),
        ),
        1 => CPred::Or(
            Box::new(random_pred(rng, width, depth - 1)),
            Box::new(random_pred(rng, width, depth - 1)),
        ),
        _ => CPred::Not(Box::new(random_pred(rng, width, depth - 1))),
    }
}

#[test]
fn vectorized_predicates_match_row_reference() {
    let mut rng = Pcg32::new(0x5EED_0001);
    for case in 0..200 {
        let width = rng.index(3) + 1;
        let n = rng.index(40); // includes n = 0: empty batches
        let typed = rng.bool(0.5);
        let rows = random_rows(&mut rng, width, n, typed);
        let pred = random_pred(&mut rng, width, 2);
        let reference: Vec<Truth> = rows.iter().map(|r| pred.eval(r)).collect();
        for bsz in BATCH_WIDTHS {
            let _g = vec::set_batch_rows(Some(bsz));
            let mut got: Vec<Truth> = Vec::with_capacity(n);
            for window in rows.chunks(vec::batch_rows()) {
                let batch = ValueBatch::with_columns(window, width, &pred.columns());
                got.extend(vec::eval_pred(&pred, &batch));
            }
            assert_eq!(got, reference, "case {case} bsz {bsz} pred {pred:?}");
        }
    }
}

#[test]
fn selection_vectors_match_accepts() {
    let mut rng = Pcg32::new(0x5EED_0002);
    for case in 0..100 {
        let width = rng.index(3) + 1;
        let n = rng.index(50);
        let rows = random_rows(&mut rng, width, n, false);
        let pred = random_pred(&mut rng, width, 1);
        let expect: Vec<usize> = rows
            .iter()
            .enumerate()
            .filter(|(_, r)| pred.accepts(r))
            .map(|(i, _)| i)
            .collect();
        let batch = ValueBatch::with_columns(&rows, width, &pred.columns());
        let got: Vec<usize> = select_rows(&pred, &batch).iter().collect();
        assert_eq!(got, expect, "case {case} pred {pred:?}");
    }
}

#[test]
fn all_false_selection_vector_is_empty() {
    // A predicate that is never TRUE (column < itself) yields an empty
    // selection at every batch width, NULLs included.
    let mut rng = Pcg32::new(0x5EED_0003);
    let rows = random_rows(&mut rng, 1, 64, true);
    let pred = CPred::Cmp {
        left: CExpr::Col(0),
        op: CmpOp::Lt,
        right: CExpr::Col(0),
    };
    for bsz in BATCH_WIDTHS {
        let _g = vec::set_batch_rows(Some(bsz));
        for window in rows.chunks(vec::batch_rows()) {
            let batch = ValueBatch::with_columns(window, 1, &[0]);
            assert!(select_rows(&pred, &batch).is_empty());
        }
    }
}

/// Scalar reference for group boundaries: adjacent grouping equality.
fn scalar_bounds(rows: &[Tuple], cols: &[usize]) -> Vec<(usize, usize)> {
    let mut bounds = Vec::new();
    let mut lo = 0;
    while lo < rows.len() {
        let mut hi = lo + 1;
        while hi < rows.len() && group_eq_on(&rows[lo], &rows[hi], cols) {
            hi += 1;
        }
        bounds.push((lo, hi));
        lo = hi;
    }
    bounds
}

#[test]
fn group_bounds_match_scalar_scan_across_batch_seams() {
    let mut rng = Pcg32::new(0x5EED_0004);
    for case in 0..100 {
        let width = rng.index(2) + 1;
        let cols: Vec<usize> = (0..width).collect();
        // Sorted runs with repeats: group keys drawn from a tiny domain,
        // then sorted, so runs regularly straddle 1- and 3-row batches.
        let n = rng.index(60);
        let mut rows = random_rows(&mut rng, width, n, true);
        rows.sort_by(|a, b| nra_storage::tuple::cmp_on(a, b, &cols));
        let expect = scalar_bounds(&rows, &cols);
        for bsz in BATCH_WIDTHS {
            let _g = vec::set_batch_rows(Some(bsz));
            let got = vec::group_bounds(&rows, &cols, "test").unwrap();
            assert_eq!(got, expect, "case {case} bsz {bsz}");
        }
    }
}

#[test]
fn filter_is_batch_width_invariant() {
    // The vectorized ops::filter must emit identical relations at every
    // batch width and thread count.
    let mut rng = Pcg32::new(0x5EED_0005);
    let rows = random_rows(&mut rng, 2, 300, false);
    let rel = Relation::with_rows(
        Schema::new(vec![
            Column::new("t.a", ColumnType::Int),
            Column::new("t.b", ColumnType::Int),
        ]),
        rows,
    );
    let pred = CPred::Cmp {
        left: CExpr::Col(0),
        op: CmpOp::Le,
        right: CExpr::Col(1),
    };
    let reference = {
        let _g = vec::set_batch_rows(Some(1024));
        ops::filter(&rel, &pred)
    };
    let scalar: Vec<Tuple> = rel
        .rows()
        .iter()
        .filter(|r| pred.accepts(r))
        .cloned()
        .collect();
    assert_eq!(reference.rows(), &scalar[..], "vectorized == row filter");
    for bsz in [1, 3, 7] {
        let _g = vec::set_batch_rows(Some(bsz));
        assert_eq!(ops::filter(&rel, &pred).rows(), reference.rows());
    }
}

#[test]
fn nest_groups_straddling_batch_boundaries() {
    // One long run (all rows in one group) plus runs of length 2 around
    // every seam of a 3-row batch; both nest implementations must agree
    // with themselves across widths, at 1 and 4 threads.
    let rel: Relation = relation!(
        [("r.a", ColumnType::Int), ("s.b", ColumnType::Int)],
        [
            [Value::Int(1), Value::Int(0)],
            [Value::Int(1), Value::Int(1)],
            [Value::Int(1), Value::Int(2)],
            [Value::Int(1), Value::Int(3)],
            [Value::Int(2), Value::Int(4)],
            [Value::Int(2), Value::Int(5)],
            [Value::Null, Value::Int(6)],
            [Value::Null, Value::Int(7)],
            [Value::Int(3), Value::Int(8)]
        ]
    );
    let reference = {
        let _g = vec::set_batch_rows(Some(1024));
        let _t = exec::set_threads(Some(1));
        nra_core::nest::nest_sorted(&rel, &["r.a"], &["s.b"], "s").unwrap()
    };
    assert_eq!(reference.len(), 4);
    for bsz in BATCH_WIDTHS {
        let _g = vec::set_batch_rows(Some(bsz));
        for threads in [1, 4] {
            let _t = exec::set_threads(Some(threads));
            let got = nra_core::nest::nest_sorted(&rel, &["r.a"], &["s.b"], "s").unwrap();
            assert_eq!(got, reference, "bsz {bsz} threads {threads}");
        }
    }
}
