//! Query-lifecycle tracing on the paper's running example (Query Q of
//! Section 2): a golden test of the span tree, the planner decision log,
//! and the disabled-path guarantees.

use nra::obs::trace::{self, TraceEvent};
use nra::obs::{self, json::Json};
use nra::tpch::paper_example::{rst_catalog, QUERY_Q};
use nra::{Database, QueryOptions};

fn db() -> Database {
    Database::from_catalog(rst_catalog())
}

/// Run traced through the unified API, returning (rows, trace).
fn traced(db: &Database, sql: &str) -> (nra::storage::Relation, nra::obs::trace::Trace) {
    let out = db
        .connect()
        .execute_with(sql, &QueryOptions::new().collect_trace(true))
        .unwrap();
    (out.rows, out.trace.unwrap())
}

/// The deterministic skeleton of the trace: the event sequence and every
/// count are fixed by the catalog; only timings vary run to run.
#[test]
fn paper_query_trace_matches_golden_tree() {
    let (rel, trace) = traced(&db(), QUERY_Q);
    assert_eq!(rel.len(), 2);
    let tree = trace.render_tree();
    for expected in [
        // Lifecycle bookends.
        "● query: select r.b, r.c, r.d from r",
        "● done: 2 row(s) in ",
        // Front-end phases with their summaries.
        "▶ parse",
        "· parsed: 79 token(s)",
        "◀ parse done in ",
        "▶ bind",
        "· bound: 3 block(s); links: <> all, > all",
        "◀ bind done in ",
        // The planner decision log: why the cascade, why not the others.
        "▶ plan",
        "· strategy[b1]: optimized — linear chain of 3 blocks",
        "rejected positive-rewrite: negative linking operator(s) `<> all`, `> all`",
        "rejected bottom-up-pushdown: correlated predicates reference a non-adjacent outer block",
        "· strategy[b2]: optimized — cascade level 1: linking predicate `<> all`",
        "· strategy[b3]: optimized — cascade level 2: linking predicate `> all`",
        // The §4.2.1 rewrite applied by the optimized strategy.
        "· rewrite single-sort-cascade: 10 → 9 node(s)",
        // Operators reuse the profile's qualified names, nested under
        // their block scopes.
        "• op scan: rows 4→3 in ",
        "• op b2/scan: rows 4→3 in ",
        "• op b2/join[left_outer]: rows 6→3 in ",
        "• op b3/scan: rows 5→5 in ",
        "• op b3/join[left_outer]: rows 8→3 in ",
        "• op nest[sort]: ",
        "• op project: rows 2→2 in ",
        "◀ execute done in ",
        "rows=2",
    ] {
        assert!(tree.contains(expected), "missing {expected:?} in:\n{tree}");
    }
}

/// Structured assertions: phases carry wall times, `Bound` carries the
/// linking operators, and every block gets a `StrategyChosen` with a
/// non-empty reason (the root also names the rejected alternatives).
#[test]
fn trace_events_carry_phases_and_per_block_decisions() {
    let (_, trace) = traced(&db(), QUERY_Q);
    for phase in ["parse", "bind", "plan", "execute"] {
        let wall = trace.phase_wall_ns(phase);
        assert!(wall.is_some_and(|ns| ns > 0), "phase {phase}: {wall:?}");
    }
    assert!(trace.events().any(|e| matches!(
        e,
        TraceEvent::Bound { blocks: 3, linking_ops }
            if linking_ops == &["<> all".to_string(), "> all".to_string()]
    )));

    let strategies = trace.strategy_events();
    assert_eq!(strategies.len(), 3, "one decision per block");
    for (i, event) in strategies.iter().enumerate() {
        let TraceEvent::StrategyChosen {
            block,
            name,
            reason,
            alternatives,
        } = event
        else {
            unreachable!()
        };
        assert_eq!(*block, i + 1, "decisions arrive in block order");
        assert_eq!(name, "optimized");
        assert!(!reason.is_empty(), "block {block} must explain itself");
        if i == 0 {
            let named: Vec<&str> = alternatives.iter().map(|(n, _)| n.as_str()).collect();
            assert_eq!(named, ["positive-rewrite", "bottom-up-pushdown"]);
            assert!(alternatives.iter().all(|(_, why)| !why.is_empty()));
        } else {
            assert!(alternatives.is_empty());
        }
    }

    assert!(trace.events().any(|e| matches!(
        e,
        TraceEvent::RewriteStep { rule, nodes_before: 10, nodes_after: 9 }
            if rule == "single-sort-cascade"
    )));
    assert!(trace.events().any(|e| matches!(
        e,
        TraceEvent::QueryEnd { rows: 2, wall_ns } if *wall_ns > 0
    )));
}

/// The JSONL serialization of a real trace is valid line-delimited JSON
/// whose fields round-trip (including the SQL string with its quotes).
#[test]
fn trace_jsonl_round_trips_through_the_json_parser() {
    let sql = "select r.b, r.c, r.d from r where r.b not in \
               (select s.e from s where s.g = r.d and s.i <> 'x \"quoted\" \\ υ')";
    let (_, trace) = traced(&db(), sql);
    let jsonl = trace.to_jsonl();
    let mut kinds = Vec::new();
    for line in jsonl.lines() {
        let doc = Json::parse(line).unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e}"));
        assert!(doc.get("depth").and_then(Json::as_u64).is_some());
        kinds.push(doc.get("event").unwrap().as_str().unwrap().to_string());
        if let Some(s) = doc.get("sql") {
            assert_eq!(s.as_str().unwrap(), sql, "sql string survives escaping");
        }
    }
    for kind in [
        "query_start",
        "parsed",
        "bound",
        "strategy_chosen",
        "op",
        "query_end",
    ] {
        assert!(
            kinds.iter().any(|k| k == kind),
            "missing {kind} in {kinds:?}"
        );
    }
}

/// Tracing is strictly opt-in: a plain `query()` emits nothing, installs
/// no sink, and `trace_query` leaves the tracer disabled on return —
/// including on error paths.
#[test]
fn disabled_path_emits_nothing_and_trace_query_cleans_up() {
    let database = db();
    assert!(!trace::enabled());
    database
        .connect()
        .execute_with(QUERY_Q, &QueryOptions::new())
        .unwrap();
    assert!(!trace::enabled(), "plain query must not install a tracer");
    // Nothing leaked into the collector either.
    assert!(obs::snapshot().is_empty());

    let (_, trace_out) = traced(&database, QUERY_Q);
    assert!(!trace_out.is_empty());
    assert_eq!(trace_out.dropped, 0);
    assert!(!trace::enabled(), "a traced run restores disabled state");
    assert!(
        !obs::is_enabled(),
        "trace collection does not enable the profiler"
    );

    // Error path: parse failure still uninstalls the tracer.
    assert!(database
        .connect()
        .execute_with("not sql at all", &QueryOptions::new().collect_trace(true))
        .is_err());
    assert!(!trace::enabled());

    // A subsequent traced run is unaffected by the failed one.
    let (rel, t2) = traced(&database, QUERY_Q);
    assert_eq!(rel.len(), 2);
    assert!(t2.phase_wall_ns("execute").is_some());
}

/// Failed parses trace the attempt (QueryStart, the parse phase) but no
/// `Parsed` summary and no downstream phases.
#[test]
fn failed_parse_traces_no_parsed_event() {
    let err = db()
        .connect()
        .execute_with(
            "select from where",
            &QueryOptions::new().collect_trace(true),
        )
        .unwrap_err();
    let _ = err; // the trace is discarded on error; re-run capturing manually
    let (ring, handle) = trace::RingSink::with_capacity(64);
    trace::start(vec![Box::new(ring)]);
    let _ = nra::sql::parse_query("select from where");
    trace::stop();
    let t = handle.take();
    assert!(t
        .events()
        .any(|e| matches!(e, TraceEvent::PhaseDone { phase, .. } if phase == "parse")));
    assert!(!t.events().any(|e| matches!(e, TraceEvent::Parsed { .. })));
}
