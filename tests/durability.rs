//! Crash-safe durability: WAL + snapshot recovery semantics end to end.
//!
//! The centerpiece is a deterministic crash matrix: every I/O fault
//! site (`wal-append`, `wal-fsync`, `checkpoint-write`,
//! `snapshot-rename`) crossed with every failure kind (`short-write`,
//! `crash`, `io-error`), each cell killing the database mid-mutation
//! and reopening the directory — the recovered catalog must answer the
//! headline queries (Q1/Q2A/Q2B) byte-identically to the pre-crash
//! committed state, and a failed (unacknowledged) mutation must never
//! surface after recovery.
//!
//! Fault plans install thread-locally (`nra::storage::iofault`), so
//! these tests are safe under the default concurrent test runner.

use std::path::PathBuf;

use nra::engine::EngineError;
use nra::storage::iofault::{self, IoFaultKind, IoFaultPlan};
use nra::storage::{Column, ColumnType, Tuple, Value};
use nra::{Database, NraError, QueryOptions};
use nra_tpch::{generate, q1_sql, q2_sql, Quant, TpchConfig};

/// A fresh scratch directory per test (removed up front so a crashed
/// previous run cannot leak state in).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nra-durability-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic execution: sequential, so row order is reproducible
/// and byte-comparison across reopens is meaningful.
fn opts() -> QueryOptions {
    QueryOptions::new().threads(1)
}

fn rows(db: &Database, sql: &str) -> Vec<Tuple> {
    db.execute(sql, &opts()).expect(sql).rows.rows().to_vec()
}

fn kv_columns() -> Vec<Column> {
    vec![
        Column::not_null("k", ColumnType::Int),
        Column::new("v", ColumnType::Str),
    ]
}

fn kv_rows(range: std::ops::Range<i64>) -> Vec<Tuple> {
    range
        .map(|i| vec![Value::Int(i), Value::Str(format!("v{i}"))])
        .collect()
}

#[test]
fn mutations_survive_reopen_and_version_tracks_lsn() {
    let dir = scratch("roundtrip");
    {
        let db = Database::open(&dir).unwrap();
        db.create_table("kv", kv_columns(), &["k"]).unwrap();
        db.insert("kv", kv_rows(0..50)).unwrap();
        db.execute("analyze kv", &opts()).unwrap();
        let info = db.durability().unwrap();
        assert_eq!(info.last_lsn, 3, "create + insert + analyze");
        assert!(!info.poisoned);
    }
    let db = Database::open(&dir).unwrap();
    let report = db.recovery().unwrap();
    assert_eq!(report.replayed, 3);
    assert_eq!(report.dropped_records, 0);
    assert!(!report.repaired);
    assert!(report.messages.is_empty(), "clean open reports nothing");

    let info = db.durability().unwrap();
    assert_eq!(info.last_lsn, 3, "LSN watermark restored");

    let cat = db.catalog();
    let kv = cat.table("kv").unwrap();
    assert_eq!(kv.len(), 50);
    assert_eq!(kv.primary_key(), &[0], "primary key recovered");
    let stats = kv.stats().expect("ANALYZE stats recovered");
    assert_eq!(stats.row_count, 50);
    assert_eq!(stats.columns[0].ndv, 50);
    drop(cat);

    assert_eq!(
        rows(&db, "select k, v from kv where k < 5").len(),
        5,
        "recovered table answers queries"
    );

    // The schema version is the last applied LSN, so any plan cached
    // against a different lineage can never match this database.
    assert!(format!("{db:?}").contains("version: 3"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_folds_the_log_and_later_records_replay_on_top() {
    let dir = scratch("checkpoint");
    {
        let db = Database::open(&dir).unwrap();
        db.create_table("kv", kv_columns(), &["k"]).unwrap();
        db.insert("kv", kv_rows(0..30)).unwrap();
        let lsn = db.checkpoint().unwrap();
        assert_eq!(lsn, 2);
        assert_eq!(db.durability().unwrap().snapshot_lsn, 2);
        // Mutations after the checkpoint live only in the fresh log.
        db.insert("kv", kv_rows(30..40)).unwrap();
    }
    let db = Database::open(&dir).unwrap();
    let report = db.recovery().unwrap();
    assert_eq!(report.snapshot_lsn, 2, "recovery starts from the snapshot");
    assert!(report.snapshot_file.is_some());
    assert_eq!(
        report.replayed, 1,
        "only the post-checkpoint insert replays"
    );
    assert_eq!(db.catalog().table("kv").unwrap().len(), 40);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_tail_is_truncated_and_reported_not_fatal() {
    use std::io::Write;
    let dir = scratch("torn");
    {
        let db = Database::open(&dir).unwrap();
        db.create_table("kv", kv_columns(), &["k"]).unwrap();
        db.insert("kv", kv_rows(0..10)).unwrap();
    }
    // Simulate a crash mid-append: a record header promising 100 bytes
    // followed by only 10 — exactly what a torn final write leaves.
    let wal = dir.join("wal.log");
    let before = std::fs::metadata(&wal).unwrap().len();
    let mut f = std::fs::OpenOptions::new().append(true).open(&wal).unwrap();
    f.write_all(&100u32.to_le_bytes()).unwrap();
    f.write_all(&[0xAB; 10]).unwrap();
    drop(f);

    let db = Database::open(&dir).unwrap();
    let report = db.recovery().unwrap();
    assert_eq!(report.replayed, 2, "intact records still replay");
    assert_eq!(report.dropped_records, 1);
    assert_eq!(report.dropped_bytes, 14);
    assert!(report.repaired);
    assert!(
        report.messages.iter().any(|m| m.contains("torn tail")),
        "degradation is reported: {:?}",
        report.messages
    );
    assert_eq!(db.catalog().table("kv").unwrap().len(), 10);
    assert_eq!(
        std::fs::metadata(&wal).unwrap().len(),
        before,
        "repair truncated the tail back to the last good record"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_is_idempotent_second_open_is_a_noop() {
    use std::io::Write;
    let dir = scratch("idempotent");
    {
        let db = Database::open(&dir).unwrap();
        db.create_table("kv", kv_columns(), &["k"]).unwrap();
        db.insert("kv", kv_rows(0..10)).unwrap();
    }
    let wal = dir.join("wal.log");
    let mut f = std::fs::OpenOptions::new().append(true).open(&wal).unwrap();
    f.write_all(&64u32.to_le_bytes()).unwrap();
    f.write_all(&[0x55; 3]).unwrap();
    drop(f);

    let (first_report, first_lsn, first_rows) = {
        let db = Database::open(&dir).unwrap();
        assert!(db.recovery().unwrap().repaired);
        (
            db.recovery().unwrap(),
            db.durability().unwrap().last_lsn,
            rows(&db, "select k, v from kv"),
        )
    };

    // Second open: the repair already happened, so nothing is dropped,
    // the same records replay, and the catalog version is identical —
    // no duplicate replay, no further mutation of the directory.
    let db = Database::open(&dir).unwrap();
    let second = db.recovery().unwrap();
    assert_eq!(second.dropped_records, 0);
    assert_eq!(second.dropped_bytes, 0);
    assert!(!second.repaired, "second open finds a clean log");
    assert_eq!(second.replayed, first_report.replayed);
    assert_eq!(
        db.durability().unwrap().last_lsn,
        first_lsn,
        "identical catalog version (the restored LSN)"
    );
    assert_eq!(rows(&db, "select k, v from kv"), first_rows);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mid_log_bit_flip_refuses_startup_with_structured_corruption() {
    let dir = scratch("bitflip");
    {
        let db = Database::open(&dir).unwrap();
        db.create_table("kv", kv_columns(), &["k"]).unwrap();
        db.insert("kv", kv_rows(0..10)).unwrap();
    }
    // Flip one byte inside the FIRST record's body. A later record
    // follows, so this cannot be a torn tail: startup must refuse with
    // the structured error instead of silently dropping committed data.
    let wal = dir.join("wal.log");
    let mut bytes = std::fs::read(&wal).unwrap();
    bytes[20] ^= 0x01;
    std::fs::write(&wal, bytes).unwrap();

    match Database::open(&dir) {
        Err(NraError::Engine(EngineError::Corruption { file, detail, .. })) => {
            assert_eq!(file, "wal.log");
            assert!(detail.contains("checksum"), "detail: {detail}");
        }
        other => panic!("expected structured corruption, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failed_append_poisons_durable_mutations_until_reopen() {
    let dir = scratch("poison");
    let db = Database::open(&dir).unwrap();
    db.create_table("kv", kv_columns(), &["k"]).unwrap();

    // A short write leaves the tail in an unknown state: the writer
    // poisons itself and refuses further appends on this handle.
    let mut plan = IoFaultPlan::default();
    plan.push(iofault::WAL_APPEND, 1, IoFaultKind::ShortWrite);
    let guard = iofault::install(plan);
    assert!(db.insert("kv", kv_rows(0..5)).is_err());
    drop(guard);

    assert!(db.durability().unwrap().poisoned);
    let err = db.insert("kv", kv_rows(0..5)).unwrap_err();
    assert!(
        err.to_string().contains("reopen"),
        "poisoned handle points at recovery: {err}"
    );
    assert!(
        db.checkpoint().is_err(),
        "checkpoint refuses a poisoned log"
    );
    drop(db);

    // Reopen repairs the torn half-record; the unacknowledged insert is
    // gone and the database accepts mutations again.
    let db = Database::open(&dir).unwrap();
    assert!(db.recovery().unwrap().repaired);
    assert_eq!(db.catalog().table("kv").unwrap().len(), 0);
    db.insert("kv", kv_rows(0..5)).unwrap();
    assert_eq!(db.catalog().table("kv").unwrap().len(), 5);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fsync_failure_rolls_back_without_poisoning() {
    let dir = scratch("fsync");
    let db = Database::open(&dir).unwrap();
    db.create_table("kv", kv_columns(), &["k"]).unwrap();

    let mut plan = IoFaultPlan::default();
    plan.push(iofault::WAL_FSYNC, 1, IoFaultKind::IoError);
    let guard = iofault::install(plan);
    assert!(db.insert("kv", kv_rows(0..5)).is_err());
    drop(guard);

    // The append was rolled back to the pre-record length, so the
    // writer stays healthy and the retry lands cleanly.
    assert!(!db.durability().unwrap().poisoned);
    db.insert("kv", kv_rows(0..5)).unwrap();
    drop(db);

    let db = Database::open(&dir).unwrap();
    let report = db.recovery().unwrap();
    assert!(!report.repaired, "rollback left no torn tail");
    assert_eq!(db.catalog().table("kv").unwrap().len(), 5);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The crash matrix: every I/O site crossed with every failure kind.
/// Each cell opens the database, arms exactly one fault, drives a
/// mutation into it (an insert for the WAL sites, a checkpoint for the
/// snapshot sites), "kills the process" by dropping the handle, reopens
/// the directory, and asserts the recovered state answers the headline
/// queries byte-identically to the pre-crash committed state.
#[test]
fn crash_matrix_recovers_committed_state_byte_identically() {
    let dir = scratch("matrix");

    // Committed state: a tiny nullable TPC-H catalog (imported through
    // the durable path) plus a scratch table, partially checkpointed so
    // recovery exercises snapshot + log together.
    let cfg = TpchConfig::scaled(0.01).nullable_links(0.0);
    let outer = (cfg.orders / 4).max(1);
    let part = (cfg.part / 4).max(1);
    let ps = (cfg.part * cfg.partsupp_per_part / 8).max(1);
    let queries: Vec<String>;
    let expected: Vec<Vec<Tuple>>;
    {
        let db = Database::open(&dir).unwrap();
        let cat = generate(&cfg);
        queries = vec![
            q1_sql(&cat, outer),
            q2_sql(&cat, Quant::Any, part, ps),
            q2_sql(&cat, Quant::All, part, ps),
            "select k, v from t_commit where k >= 0".to_string(),
        ];
        for name in cat.table_names() {
            db.add_table(cat.table(name).unwrap().clone()).unwrap();
        }
        db.checkpoint().unwrap();
        db.create_table("t_commit", kv_columns(), &["k"]).unwrap();
        db.insert("t_commit", kv_rows(0..25)).unwrap();
        expected = queries.iter().map(|q| rows(&db, q)).collect();
        assert!(expected[0..3].iter().any(|r| !r.is_empty()));
        assert_eq!(expected[3].len(), 25);
    }

    let cells: Vec<(&str, IoFaultKind)> = iofault::IO_SITES
        .iter()
        .flat_map(|site| {
            [
                IoFaultKind::ShortWrite,
                IoFaultKind::Crash,
                IoFaultKind::IoError,
            ]
            .into_iter()
            .map(move |kind| (*site, kind))
        })
        .collect();
    assert_eq!(cells.len(), 12);

    for (site, kind) in cells {
        let db =
            Database::open(&dir).unwrap_or_else(|e| panic!("reopen before {site}:{kind:?}: {e}"));

        let mut plan = IoFaultPlan::default();
        plan.push(site, 1, kind);
        let guard = iofault::install(plan);
        // Drive a mutation into the armed site: WAL sites fire on the
        // insert's append/fsync, snapshot sites on the checkpoint.
        let attempt = match site {
            iofault::WAL_APPEND | iofault::WAL_FSYNC => {
                db.insert("t_commit", kv_rows(1000..1010)).map(|_| 0)
            }
            _ => db.checkpoint(),
        };
        drop(guard);
        assert!(
            attempt.is_err(),
            "{site}:{kind:?}: the injected fault must fail the mutation"
        );
        drop(db); // kill

        let db =
            Database::open(&dir).unwrap_or_else(|e| panic!("recovery after {site}:{kind:?}: {e}"));
        for (q, want) in queries.iter().zip(&expected) {
            let got = rows(&db, q);
            assert_eq!(
                &got, want,
                "{site}:{kind:?}: recovered results differ for {q}"
            );
        }
        drop(db);
    }

    // Delay is a latency fault, not a failure: the mutation succeeds.
    {
        let db = Database::open(&dir).unwrap();
        let mut plan = IoFaultPlan::default();
        plan.push(iofault::WAL_APPEND, 1, IoFaultKind::Delay(1));
        let guard = iofault::install(plan);
        db.insert("t_commit", kv_rows(2000..2005)).unwrap();
        drop(guard);
        drop(db);
        let db = Database::open(&dir).unwrap();
        assert_eq!(
            rows(&db, "select k, v from t_commit where k >= 0").len(),
            30,
            "the delayed (but acknowledged) insert survives"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// `nra_sys.wal` exposes the durability state to plain SQL.
#[test]
fn sys_wal_table_reports_durability_state() {
    let dir = scratch("syswal");
    let db = Database::open(&dir).unwrap();
    db.create_table("kv", kv_columns(), &["k"]).unwrap();
    let out = rows(
        &db,
        "select dir, last_lsn, poisoned, repaired from nra_sys.wal",
    );
    assert_eq!(out.len(), 1);
    assert_eq!(out[0][1], Value::Int(1), "one record logged");
    assert_eq!(out[0][2], Value::Bool(false));
    assert_eq!(out[0][3], Value::Bool(false));

    // In-memory databases have no durability row.
    let mem = Database::new();
    assert!(rows(&mem, "select dir from nra_sys.wal").is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}
