//! Integration tests for the disk-I/O simulation: the access patterns the
//! paper's cost argument rests on must show up in the counters — nested
//! iteration pays random probes proportional to the outer block, the
//! set-oriented plans pay sequential scans only.

use nra_engine::baseline::nested_iter::NestedIterPlan;
use nra_engine::baseline::{self, BaselineChoice};
use nra_storage::iosim::{self, IoConfig, IoStats};
use nra_tpch::{generate, q1_sql, TpchConfig};

fn measure<F: FnOnce()>(cfg: IoConfig, f: F) -> IoStats {
    iosim::enable(cfg);
    f();
    iosim::disable().unwrap()
}

fn small_cache() -> IoConfig {
    IoConfig {
        cache_pages: 16,
        ..IoConfig::default()
    }
}

#[test]
fn nested_iteration_pays_random_io_proportional_to_outer_block() {
    let cat = generate(&TpchConfig::scaled(0.02).nullable_links(0.0));
    let sizes = [100usize, 400];
    let mut misses = Vec::new();
    for &outer in &sizes {
        let bq = nra_sql::parse_and_bind(&q1_sql(&cat, outer), &cat).unwrap();
        assert_eq!(baseline::choose(&bq, &cat), BaselineChoice::NestedIteration);
        let plan = NestedIterPlan::prepare(&bq, &cat).unwrap();
        let stats = measure(small_cache(), || {
            plan.run().unwrap();
        });
        assert!(stats.rand_misses > 0, "probes must hit the disk model");
        misses.push(stats.rand_misses);
    }
    // 4x the outer block => roughly 4x the probes (within slack).
    assert!(
        misses[1] > misses[0] * 2,
        "random I/O must grow with the outer block: {misses:?}"
    );
}

#[test]
fn nr_strategies_do_only_sequential_io() {
    let cat = generate(&TpchConfig::scaled(0.02));
    let bq = nra_sql::parse_and_bind(&q1_sql(&cat, 300), &cat).unwrap();
    for (name, stats) in [
        (
            "original",
            measure(small_cache(), || {
                nra_core::execute_original(&bq, &cat).unwrap();
            }),
        ),
        (
            "optimized",
            measure(small_cache(), || {
                nra_core::execute_optimized(&bq, &cat).unwrap();
            }),
        ),
    ] {
        assert_eq!(stats.total_random(), 0, "{name} must not probe");
        assert!(stats.seq_pages > 0, "{name} scans its base tables");
    }
}

#[test]
fn cascade_baseline_matches_nr_io() {
    // With NOT NULL, the native Q1 plan is a cascade: same scans as NR.
    let cat = generate(&TpchConfig::scaled(0.02));
    let bq = nra_sql::parse_and_bind(&q1_sql(&cat, 300), &cat).unwrap();
    assert_eq!(baseline::choose(&bq, &cat), BaselineChoice::SemiAntiCascade);
    let native = measure(small_cache(), || {
        baseline::execute(&bq, &cat).unwrap();
    });
    let nr = measure(small_cache(), || {
        nra_core::execute_optimized(&bq, &cat).unwrap();
    });
    assert_eq!(native.total_random(), 0);
    assert_eq!(native.seq_pages, nr.seq_pages, "identical scan footprint");
}

#[test]
fn larger_cache_means_more_hits() {
    let cat = generate(&TpchConfig::scaled(0.02).nullable_links(0.0));
    let bq = nra_sql::parse_and_bind(&q1_sql(&cat, 400), &cat).unwrap();
    let plan = NestedIterPlan::prepare(&bq, &cat).unwrap();
    let small = measure(small_cache(), || {
        plan.run().unwrap();
    });
    let big = measure(
        IoConfig {
            cache_pages: 1 << 20,
            ..IoConfig::default()
        },
        || {
            plan.run().unwrap();
        },
    );
    assert!(
        big.rand_misses < small.rand_misses,
        "a cache covering everything turns repeats into hits: {} vs {}",
        big.rand_misses,
        small.rand_misses
    );
    assert_eq!(
        big.total_random(),
        small.total_random(),
        "same accesses either way"
    );
}

#[test]
fn simulation_is_off_by_default_and_does_not_leak() {
    let cat = generate(&TpchConfig::scaled(0.01));
    let bq = nra_sql::parse_and_bind(&q1_sql(&cat, 100), &cat).unwrap();
    nra_core::execute_optimized(&bq, &cat).unwrap();
    assert!(!iosim::is_enabled());
    assert_eq!(iosim::stats(), IoStats::default());
}
