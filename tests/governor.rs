//! Integration tests for the query resource governor: memory budgets,
//! cooperative cancellation, panic containment, and the deterministic
//! fault-injection matrix — all over the paper's Query Q so the
//! "database stays usable" half of each test checks a real answer.

use nra::engine::{faultinject, EngineError};
use nra::obs::trace::{self, RingSink, TraceEvent};
use nra::tpch::paper_example::{rst_catalog, QUERY_Q};
use nra::{CancelToken, Database, Engine, FaultKind, NraError, QueryOptions, Strategy};
use nra_storage::Relation;

fn paper_db() -> Database {
    Database::from_catalog(rst_catalog())
}

fn engine_err(err: NraError) -> EngineError {
    match err {
        NraError::Engine(e) => e,
        other => panic!("expected an engine error, got {other:?}"),
    }
}

fn baseline(db: &Database, opts: &QueryOptions) -> Relation {
    db.connect()
        .execute_with(QUERY_Q, opts)
        .expect("clean run")
        .rows
}

/// A budget far too small for Query Q fails with ResourceExhausted, and
/// the same Database then answers the query correctly — both without a
/// limit and under a generous one.
#[test]
fn mem_limit_fails_then_database_recovers() {
    let db = paper_db();
    let clean = baseline(&db, &QueryOptions::new());

    let err = db
        .connect()
        .execute_with(QUERY_Q, &QueryOptions::new().mem_limit_bytes(256))
        .expect_err("256 bytes cannot hold Query Q's intermediates");
    match engine_err(err) {
        EngineError::ResourceExhausted {
            operator,
            requested,
            limit,
        } => {
            assert!(!operator.is_empty());
            assert!(requested > limit, "{requested} vs {limit}");
            assert_eq!(limit, 256);
        }
        other => panic!("expected ResourceExhausted, got {other:?}"),
    }

    let again = baseline(&db, &QueryOptions::new());
    assert_eq!(clean.rows(), again.rows());

    let generous = baseline(&db, &QueryOptions::new().mem_limit_bytes(64 << 20));
    assert_eq!(clean.rows(), generous.rows());
}

/// A pre-cancelled token stops the query at the first checkpoint at
/// every thread count, and the same Database immediately runs a
/// profiled query to completion afterwards (no leaked observability
/// state: the later profile reports outcome "ok" with operator stats).
#[test]
fn cancellation_across_thread_counts() {
    for threads in [1usize, 2, 4] {
        let db = paper_db();
        let token = CancelToken::new();
        token.cancel();
        let err = db
            .connect()
            .execute_with(
                QUERY_Q,
                &QueryOptions::new()
                    .threads(threads)
                    .cancel(token)
                    .collect_profile(true),
            )
            .expect_err("pre-cancelled token must stop the query");
        assert!(
            matches!(engine_err(err), EngineError::Cancelled { .. }),
            "threads={threads}"
        );

        let out = db
            .connect()
            .execute_with(
                QUERY_Q,
                &QueryOptions::new().threads(threads).collect_profile(true),
            )
            .expect("database stays usable after cancellation");
        let profile = out.profile.expect("profile requested");
        assert_eq!(profile.outcome.as_deref(), Some("ok"), "threads={threads}");
        assert!(!profile.ops.is_empty(), "threads={threads}");
    }
}

/// timeout_ms(0) cancels at the first checkpoint; the error names the
/// interrupted phase and the trace carries a matching governor event.
#[test]
fn timeout_zero_reports_interrupted_phase_in_trace() {
    let db = paper_db();
    // execute() drops its own trace on error, so install a ring sink on
    // this thread directly and read it back after the failure.
    let (ring, handle) = RingSink::with_capacity(256);
    trace::start(vec![Box::new(ring)]);
    let result = db
        .connect()
        .execute_with(QUERY_Q, &QueryOptions::new().timeout_ms(0));
    trace::stop();
    let captured = handle.take();

    let phase = match engine_err(result.expect_err("timeout 0 must cancel")) {
        EngineError::Cancelled { phase } => phase,
        other => panic!("expected Cancelled, got {other:?}"),
    };
    assert!(!phase.is_empty());
    assert!(
        captured.entries.iter().any(|e| matches!(
            &e.event,
            TraceEvent::Governor { action, detail }
                if action == "cancelled" && detail == &phase
        )),
        "no governor-cancelled event for phase {phase:?} in {} trace entries",
        captured.entries.len()
    );
}

/// Every fault site × {alloc-fail, panic} × {1, 4} threads returns a
/// structured error (never an abort), and the same Database then
/// executes Query Q byte-identically to the pre-fault baseline. Uses
/// the Original two-pass strategy, under which all four sites fire:
/// hash-join build, nest flush, linking scan, and partition merge.
#[test]
fn fault_matrix_structured_errors_and_recovery() {
    let db = paper_db();
    let opts = || QueryOptions::new().engine(Engine::NestedRelational(Strategy::Original));
    let clean = baseline(&db, &opts());

    for threads in [1usize, 4] {
        for site in faultinject::SITES {
            for kind in [FaultKind::AllocFail, FaultKind::Panic] {
                let err = db
                    .connect()
                    .execute_with(QUERY_Q, &opts().threads(threads).fault(site, 1, kind))
                    .map(|out| out.rows.len())
                    .expect_err(&format!(
                        "fault {site}:{kind:?} at {threads} threads must surface"
                    ));
                let err = engine_err(err);
                match kind {
                    FaultKind::AllocFail => assert!(
                        matches!(err, EngineError::ResourceExhausted { .. }),
                        "{site}:{kind:?} threads={threads}: {err:?}"
                    ),
                    FaultKind::Panic => assert!(
                        matches!(err, EngineError::WorkerPanicked { .. }),
                        "{site}:{kind:?} threads={threads}: {err:?}"
                    ),
                    FaultKind::Delay(_) => unreachable!(),
                }

                let again = baseline(&db, &opts().threads(threads));
                assert_eq!(
                    clean.rows(),
                    again.rows(),
                    "result drifted after fault {site}:{kind:?} threads={threads}"
                );
            }
        }
    }
}

/// A delay fault is observable (the query still succeeds) — the knob the
/// cancellation tests lean on for widening race windows stays wired up.
#[test]
fn delay_fault_does_not_change_results() {
    let db = paper_db();
    let clean = baseline(&db, &QueryOptions::new());
    let delayed = baseline(
        &db,
        &QueryOptions::new().fault(faultinject::JOIN_BUILD, 1, FaultKind::Delay(1)),
    );
    assert_eq!(clean.rows(), delayed.rows());
}

/// The nest-push-down strategy (§4.2.4) hash-groups the child inline
/// rather than calling the shared nest operator — it must charge the
/// budget and honor fault sites all the same (regression: this path
/// originally slipped past the governor entirely).
#[test]
fn pushdown_strategy_is_governed() {
    use nra::storage::{Column, ColumnType, Value};
    let db = Database::new();
    db.create_table(
        "p",
        vec![
            Column::not_null("id", ColumnType::Int),
            Column::new("v", ColumnType::Int),
        ],
        &["id"],
    )
    .unwrap();
    db.create_table(
        "c",
        vec![
            Column::not_null("id", ColumnType::Int),
            Column::new("pid", ColumnType::Int),
            Column::new("w", ColumnType::Int),
        ],
        &["id"],
    )
    .unwrap();
    db.insert(
        "p",
        (0..64)
            .map(|i| vec![Value::Int(i), Value::Int(i % 7)])
            .collect(),
    )
    .unwrap();
    db.insert(
        "c",
        (0..256)
            .map(|i| vec![Value::Int(i), Value::Int(i % 64), Value::Int(i % 5)])
            .collect(),
    )
    .unwrap();
    let sql = "select id from p where v > all (select w from c where c.pid = p.id)";
    let opts = || QueryOptions::new().strategy(Strategy::BottomUpPushdown);

    let clean = db
        .connect()
        .execute_with(sql, &opts())
        .expect("clean run")
        .rows;

    let err = engine_err(
        db.connect()
            .execute_with(sql, &opts().mem_limit_bytes(512))
            .map(|o| o.rows.len())
            .expect_err("512 bytes cannot hold the pushed-down group map"),
    );
    assert!(
        matches!(err, EngineError::ResourceExhausted { .. }),
        "{err:?}"
    );

    for kind in [FaultKind::AllocFail, FaultKind::Panic] {
        let err = engine_err(
            db.connect()
                .execute_with(sql, &opts().fault(faultinject::NEST_FLUSH, 1, kind))
                .map(|o| o.rows.len())
                .expect_err("injected nest-flush fault must surface"),
        );
        match kind {
            FaultKind::AllocFail => {
                assert!(
                    matches!(err, EngineError::ResourceExhausted { .. }),
                    "{err:?}"
                )
            }
            FaultKind::Panic => {
                assert!(matches!(err, EngineError::WorkerPanicked { .. }), "{err:?}")
            }
            FaultKind::Delay(_) => unreachable!(),
        }
    }

    let again = db
        .connect()
        .execute_with(sql, &opts())
        .expect("recovered run")
        .rows;
    assert_eq!(clean.rows(), again.rows());
}
