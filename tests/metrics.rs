//! The metrics registry through the public API: per-query scope
//! determinism across thread counts, cardinality feedback (Q-error) on a
//! known-skewed join, `ANALYZE` idempotence, and the Prometheus/JSONL
//! exposition formats.

use nra::obs::metrics::{Metric, Registry};
use nra::storage::{Column, ColumnType, Value};
use nra::tpch::paper_example::{rst_catalog, QUERY_Q};
use nra::{Database, QueryOptions, Strategy};

/// Per-query metrics exclude wall times and partition counts by
/// construction, so the rendered snapshot must be byte-identical no
/// matter how many workers executed the query.
#[test]
fn per_query_metrics_are_identical_across_thread_counts() {
    let cat = nra::tpch::generate(&nra::tpch::TpchConfig::scaled(0.01));
    let sql = nra::tpch::q1_sql(&cat, 100);
    let db = Database::from_catalog(cat);
    let mut rendered = Vec::new();
    for threads in [1usize, 2, 4] {
        let out = db
            .connect()
            .execute_with(
                &sql,
                &QueryOptions::new()
                    .strategy(Strategy::Original)
                    .collect_metrics(true)
                    .threads(threads),
            )
            .unwrap();
        assert_eq!(out.threads, threads);
        let snap = out.metrics.expect("metrics requested");
        assert!(!snap.is_empty());
        rendered.push((threads, snap.render_prometheus(), snap.to_jsonl()));
    }
    let (_, base_prom, base_jsonl) = &rendered[0];
    for (threads, prom, jsonl) in &rendered[1..] {
        assert_eq!(
            prom, base_prom,
            "Prometheus exposition differs at {threads} threads"
        );
        assert_eq!(
            jsonl, base_jsonl,
            "JSONL export differs at {threads} threads"
        );
    }
}

/// A join the estimator must get wrong: column statistics say `v` is
/// near-unique, but every row carries the same join value, so the
/// measured actuals blow past the estimate and the Q-error histogram
/// records the miss.
#[test]
fn qerror_is_recorded_on_skewed_joins() {
    let db = Database::new();
    db.create_table(
        "big",
        vec![
            Column::not_null("id", ColumnType::Int),
            Column::new("v", ColumnType::Int),
        ],
        &["id"],
    )
    .unwrap();
    db.create_table(
        "probe",
        vec![
            Column::not_null("pid", ColumnType::Int),
            Column::new("w", ColumnType::Int),
        ],
        &["pid"],
    )
    .unwrap();
    // 50 outer rows, all matching w = 7: a maximally skewed correlation.
    db.insert(
        "big",
        (0..50)
            .map(|i| vec![Value::Int(i), Value::Int(7)])
            .collect(),
    )
    .unwrap();
    db.insert(
        "probe",
        (0..10)
            .map(|i| vec![Value::Int(i), Value::Int(7)])
            .collect(),
    )
    .unwrap();
    db.connect()
        .execute_with("analyze big", &QueryOptions::new())
        .unwrap();
    db.connect()
        .execute_with("analyze probe", &QueryOptions::new())
        .unwrap();

    let out = db
        .connect()
        .execute_with(
            "select id from big where v in (select w from probe where probe.w = big.v)",
            &QueryOptions::new()
                .strategy(Strategy::Original)
                .collect_metrics(true)
                .collect_trace(true),
        )
        .unwrap();
    assert_eq!(out.rows.len(), 50);

    let snap = out.metrics.expect("metrics requested");
    let hist = snap
        .get("nra_qerror_x100", &[])
        .expect("Q-error histogram recorded");
    match hist {
        Metric::Hist { count, .. } => assert!(*count > 0, "no Q-error observations"),
        other => panic!("nra_qerror_x100 is not a histogram: {other:?}"),
    }

    let trace = out.trace.expect("trace requested");
    let summary = trace
        .entries
        .iter()
        .find(|e| e.event.kind() == "qerror_summary")
        .expect("per-query Q-error summary event");
    let json = summary.event.to_json(0);
    assert!(json.contains("\"nodes\""), "{json}");
    // ANALYZE told the planner the probe side is a single value (ndv=1),
    // yet 10 rows match each outer tuple; the worst node must be well
    // over a perfect ×1.0 (=100).
    let max = json
        .split("\"max_x100\": ")
        .nth(1)
        .and_then(|s| s.split([',', '}']).next())
        .and_then(|s| s.trim().parse::<u64>().ok())
        .expect("max_x100 field");
    assert!(max > 100, "skewed join should miss: max_x100={max}");
}

/// `ANALYZE` is idempotent — re-running it over unchanged data yields
/// identical statistics — and inserts invalidate the stored stats.
#[test]
fn analyze_is_idempotent_and_invalidated_by_inserts() {
    let db = Database::new();
    db.create_table(
        "t",
        vec![
            Column::not_null("k", ColumnType::Int),
            Column::new("v", ColumnType::Int),
        ],
        &["k"],
    )
    .unwrap();
    db.insert(
        "t",
        vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(2), Value::Int(10)],
            vec![Value::Int(3), Value::Null],
        ],
    )
    .unwrap();
    let first = db
        .connect()
        .execute_with("analyze t", &QueryOptions::new())
        .unwrap();
    let second = db
        .connect()
        .execute_with("analyze t", &QueryOptions::new())
        .unwrap();
    assert_eq!(first.plan, second.plan, "ANALYZE must be idempotent");
    let stats = db.catalog().table("t").unwrap().stats().unwrap();
    assert_eq!(stats.row_count, 3);
    assert_eq!(stats.column("v").unwrap().ndv, 1);
    assert_eq!(stats.column("v").unwrap().null_count, 1);

    db.insert("t", vec![vec![Value::Int(4), Value::Int(20)]])
        .unwrap();
    assert!(
        db.catalog().table("t").unwrap().stats().is_none(),
        "inserts must invalidate statistics"
    );
    let third = db
        .connect()
        .execute_with("analyze t", &QueryOptions::new())
        .unwrap();
    assert!(third.plan.unwrap().contains("analyze t: 4 row(s)"));
}

/// Prometheus exposition golden, including label-value escaping through
/// the shared JSON writer.
#[test]
fn prometheus_exposition_golden() {
    let reg = Registry::new();
    reg.counter_add("nra_queries_total", &[("outcome", "ok")], 3);
    reg.counter_add(
        "nra_errors_total",
        &[("variant", "needs \"quotes\"\\and\nnewlines")],
        1,
    );
    reg.gauge_set("nra_query_mem_high_water_bytes", &[], 4096);
    let text = reg.snapshot().render_prometheus();
    let expected = "\
# TYPE nra_errors_total counter
nra_errors_total{variant=\"needs \\\"quotes\\\"\\\\and\\nnewlines\"} 1
# TYPE nra_queries_total counter
nra_queries_total{outcome=\"ok\"} 3
# TYPE nra_query_mem_high_water_bytes gauge
nra_query_mem_high_water_bytes 4096
";
    assert_eq!(text, expected);
}

/// The trace's governor event and the process gauge agree on the memory
/// high-water mark of a governed query.
#[test]
fn governor_high_water_trace_and_gauge_agree() {
    let db = Database::from_catalog(rst_catalog());
    let out = db
        .connect()
        .execute_with(
            QUERY_Q,
            &QueryOptions::new()
                .mem_limit_bytes(64 * 1024 * 1024)
                .collect_trace(true),
        )
        .unwrap();
    let trace = out.trace.expect("trace requested");
    let hw_event = trace
        .entries
        .iter()
        .map(|e| e.event.to_json(0))
        .find(|j| j.contains("mem-high-water"))
        .expect("governed query publishes its memory high-water mark");
    let bytes: u64 = hw_event
        .split("\"detail\": \"")
        .nth(1)
        .and_then(|s| s.split(' ').next())
        .and_then(|s| s.parse().ok())
        .expect("detail carries a byte count");
    let gauge = nra::obs::metrics::global()
        .snapshot()
        .get("nra_query_mem_high_water_bytes", &[])
        .cloned()
        .expect("process gauge recorded");
    match gauge {
        Metric::Gauge(v) => assert!(
            v >= bytes,
            "gauge (max over queries, {v}) below this query's high water ({bytes})"
        ),
        other => panic!("high-water metric is not a gauge: {other:?}"),
    }
}
