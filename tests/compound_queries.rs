//! Compound queries (`UNION`/`INTERSECT`/`EXCEPT [ALL]`) with `ORDER BY`
//! and `LIMIT`, evaluated through the facade over the set-operation
//! algebra.

use nra::storage::{Column, ColumnType, Value};
use nra::{Database, Engine, QueryOptions, Strategy};

fn db() -> Database {
    let db = Database::new();
    for name in ["t", "u"] {
        db.create_table(
            name,
            vec![
                Column::not_null("k", ColumnType::Int),
                Column::new("v", ColumnType::Int),
            ],
            &["k"],
        )
        .unwrap();
    }
    db.insert(
        "t",
        vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(2), Value::Int(20)],
            vec![Value::Int(3), Value::Null],
        ],
    )
    .unwrap();
    db.insert(
        "u",
        vec![
            vec![Value::Int(2), Value::Int(20)],
            vec![Value::Int(4), Value::Int(40)],
            vec![Value::Int(5), Value::Null],
        ],
    )
    .unwrap();
    db
}

fn q(db: &Database, sql: &str) -> nra_storage::Relation {
    db.connect()
        .execute_with(sql, &QueryOptions::new())
        .unwrap()
        .rows
}

#[test]
fn union_dedups_across_blocks() {
    let out = q(&db(), "select v from t union select v from u");
    // {10, 20, NULL, 40} — set semantics merge the NULLs and the 20s.
    assert_eq!(out.len(), 4);
}

#[test]
fn union_all_keeps_everything() {
    let out = q(&db(), "select v from t union all select v from u");
    assert_eq!(out.len(), 6);
}

#[test]
fn intersect_and_except() {
    let db = db();
    let i = q(&db, "select k, v from t intersect select k, v from u");
    assert_eq!(i.len(), 1, "only (2, 20) is in both");
    let e = q(&db, "select k from t except select k from u");
    assert_eq!(e.len(), 2, "k = 1 and 3");
}

#[test]
fn order_by_and_limit() {
    let out = q(&db(), "select k, v from t order by v desc limit 2");
    assert_eq!(out.len(), 2);
    assert_eq!(out.rows()[0][1], Value::Int(20), "descending: 20 first");
    // Positional ORDER BY.
    let by_pos = q(&db(), "select k, v from t order by 1 desc");
    assert_eq!(by_pos.rows()[0][0], Value::Int(3));
    // Ascending puts NULL first (total order).
    let asc = q(&db(), "select v from t order by v");
    assert!(asc.rows()[0][0].is_null());
}

#[test]
fn compound_arms_can_hold_subqueries() {
    let db = db();
    let sql = "select k from t where v > all (select v from u where u.k = t.k) \
               union select k from u where not exists \
                 (select * from t t2 where t2.k = u.k)";
    let oracle = db
        .connect()
        .execute_with(sql, &QueryOptions::new().engine(Engine::Reference))
        .unwrap()
        .rows;
    for engine in [
        Engine::Baseline,
        Engine::NestedRelational(Strategy::Original),
        Engine::NestedRelational(Strategy::Optimized),
    ] {
        let got = db
            .connect()
            .execute_with(sql, &QueryOptions::new().engine(engine))
            .unwrap()
            .rows;
        assert!(got.multiset_eq(&oracle), "{engine:?}");
    }
}

#[test]
fn errors_surface() {
    let db = db();
    let opts = QueryOptions::new();
    assert!(
        db.connect()
            .execute_with("select k, v from t union select k from u", &opts)
            .is_err(),
        "arity"
    );
    assert!(db
        .connect()
        .execute_with("select k from t order by nope", &opts)
        .is_err());
    assert!(db
        .connect()
        .execute_with("select k from t limit -1", &opts)
        .is_err());
    // prepare() remains single-block only.
    assert!(db.prepare("select k from t union select k from u").is_err());
}

#[test]
fn display_roundtrip_compound() {
    let q = nra_sql::parse_query(
        "select k from t union all select k from u order by k desc, v limit 3",
    )
    .unwrap();
    let again = nra_sql::parse_query(&q.to_string()).unwrap();
    assert_eq!(q, again);
}
