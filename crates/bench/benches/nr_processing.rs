//! The §5.2 in-text cost table: the nest + linking-selection *processing
//! stage* of the nested relational approach, original (two passes:
//! materialize the nested relation, then select) vs optimized (fused
//! single pass), as a function of the intermediate-result size.
//!
//! The two stages are isolated by benchmarking the full strategy and the
//! shared join phase separately; their difference is the processing cost.

use nra_bench::harness;
use nra_bench::*;
use nra_core::optimize::pipeline::unnest_join_phase;

fn main() {
    let scale = bench_scale();
    let cat = bench_catalog(scale);
    let grid = paper_grid(scale);
    let mut g = harness::group("nr_processing_q1");
    for &outer in &grid.q1_outer {
        let sql = q1_sql(&cat, outer);
        let bound = nra_sql::parse_and_bind(&sql, &cat).unwrap();
        let rows = unnest_join_phase(&bound, &cat).unwrap().len();
        g.bench("join-phase", rows, || {
            harness::black_box(unnest_join_phase(&bound, &cat).unwrap());
        });
        g.bench("original-total", rows, || {
            harness::black_box(nra_core::execute_original(&bound, &cat).unwrap());
        });
        g.bench("optimized-total", rows, || {
            harness::black_box(nra_core::execute_optimized(&bound, &cat).unwrap());
        });
    }
    g.finish();
}
