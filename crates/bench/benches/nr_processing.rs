//! The §5.2 in-text cost table: the nest + linking-selection *processing
//! stage* of the nested relational approach, original (two passes:
//! materialize the nested relation, then select) vs optimized (fused
//! single pass), as a function of the intermediate-result size.
//!
//! The two stages are isolated by benchmarking the full strategy and the
//! shared join phase separately; their difference is the processing cost.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nra_bench::*;
use nra_core::optimize::pipeline::unnest_join_phase;

fn nr_processing(c: &mut Criterion) {
    let scale = bench_scale();
    let cat = bench_catalog(scale);
    let grid = paper_grid(scale);
    let mut g = c.benchmark_group("nr_processing_q1");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for &outer in &grid.q1_outer {
        let sql = q1_sql(&cat, outer);
        let bound = nra_sql::parse_and_bind(&sql, &cat).unwrap();
        let rows = unnest_join_phase(&bound, &cat).unwrap().len();
        g.bench_with_input(BenchmarkId::new("join-phase", rows), &bound, |b, bq| {
            b.iter(|| unnest_join_phase(bq, &cat).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("original-total", rows), &bound, |b, bq| {
            b.iter(|| nra_core::execute_original(bq, &cat).unwrap());
        });
        g.bench_with_input(
            BenchmarkId::new("optimized-total", rows),
            &bound,
            |b, bq| {
                b.iter(|| nra_core::execute_optimized(bq, &cat).unwrap());
            },
        );
    }
    g.finish();
}

criterion_group!(benches, nr_processing);
criterion_main!(benches);
