//! Figure 5 — Query 2a (mixed `ANY`/`NOT EXISTS`, linear), first block
//! sweep. Native plan: bottom-up semijoin + antijoin.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nra_bench::*;

fn fig5(c: &mut Criterion) {
    let scale = bench_scale();
    let cat = bench_catalog(scale);
    let grid = paper_grid(scale);
    let mut g = c.benchmark_group("fig5_q2a");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for &part in &grid.q23_part {
        let pq =
            PreparedQuery::new(&cat, q2_sql(&cat, Quant::Any, part, grid.q23_partsupp)).unwrap();
        for series in Series::ALL {
            g.bench_with_input(BenchmarkId::new(series.label(), part), &pq, |b, pq| {
                b.iter(|| pq.run(series).unwrap());
            });
        }
    }
    g.finish();
}

criterion_group!(benches, fig5);
criterion_main!(benches);
