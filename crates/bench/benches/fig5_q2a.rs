//! Figure 5 — Query 2a (mixed `ANY`/`NOT EXISTS`, linear), first block
//! sweep. Native plan: bottom-up semijoin + antijoin.

use nra_bench::harness;
use nra_bench::*;

fn main() {
    let scale = bench_scale();
    let cat = bench_catalog(scale);
    let grid = paper_grid(scale);
    let mut g = harness::group("fig5_q2a");
    for &part in &grid.q23_part {
        let pq =
            PreparedQuery::new(&cat, q2_sql(&cat, Quant::Any, part, grid.q23_partsupp)).unwrap();
        for series in Series::ALL {
            g.bench(series.label(), part, || {
                harness::black_box(pq.run(series).unwrap());
            });
        }
    }
    g.finish();
}
