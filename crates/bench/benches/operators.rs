//! Micro-benchmarks of the core nested relational operators: nest (hash
//! vs sort), linking selection (two-pass vs fused) and the hash joins the
//! approach is built on.

use nra_bench::harness;
use nra_core::linking::{LinkSelection, SetQuant};
use nra_core::nest::{nest_hash_idx, nest_sort_idx};
use nra_core::optimize::fused::{fused_nest_select, FusedLink};
use nra_engine::{join, JoinKind, JoinSpec};
use nra_storage::rng::Pcg32;
use nra_storage::{CmpOp, Column, ColumnType, Relation, Schema, Value};

fn flat_relation(groups: usize, per_group: usize) -> Relation {
    let mut rng = Pcg32::new(7);
    let schema = Schema::new(vec![
        Column::new("g.a", ColumnType::Int),
        Column::new("g.k", ColumnType::Int),
        Column::new("m.v", ColumnType::Int),
        Column::new("m.rid", ColumnType::Int),
    ]);
    let mut rows = Vec::with_capacity(groups * per_group);
    for g in 0..groups as i64 {
        for m in 0..per_group as i64 {
            rows.push(vec![
                Value::Int(rng.range_i64(0, 1000)),
                Value::Int(g),
                Value::Int(rng.range_i64(0, 1000)),
                Value::Int(g * per_group as i64 + m),
            ]);
        }
    }
    Relation::with_rows(schema, rows)
}

fn main() {
    let mut g = harness::group("operators");

    for &(groups, per) in &[(2_000usize, 4usize), (20_000, 4)] {
        let rel = flat_relation(groups, per);
        let rows = rel.len();
        g.bench("nest-hash", rows, || {
            harness::black_box(nest_hash_idx(&rel, &[1], &[2, 3], "s").unwrap());
        });
        g.bench("nest-sort", rows, || {
            harness::black_box(nest_sort_idx(&rel, &[1], &[2, 3], "s").unwrap());
        });
        let sel = LinkSelection::quant("g.a", CmpOp::Gt, SetQuant::All, "m.v", Some("m.rid"));
        g.bench("two-pass-select", rows, || {
            let nested = nest_sort_idx(&rel, &[0, 1], &[2, 3], "s").unwrap();
            harness::black_box(sel.select(&nested, "s").unwrap().atoms_as_relation());
        });
        let link = FusedLink::from_selection(&sel, rel.schema(), &[0, 1]).unwrap();
        g.bench("fused-select", rows, || {
            harness::black_box(fused_nest_select(&rel, &[0, 1], link.clone(), false, &[]).unwrap());
        });
        // Hash joins: self outer join on the group key.
        g.bench("left-outer-join", rows, || {
            harness::black_box(
                join(
                    &rel,
                    &rel,
                    &JoinSpec::new(JoinKind::LeftOuter, vec![(1, 1)], None),
                )
                .unwrap(),
            );
        });
    }
    g.finish();
}
