//! Micro-benchmarks of the core nested relational operators: nest (hash
//! vs sort), linking selection (two-pass vs fused) and the hash joins the
//! approach is built on.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nra_core::linking::{LinkSelection, SetQuant};
use nra_core::nest::{nest_hash_idx, nest_sort_idx};
use nra_core::optimize::fused::{fused_nest_select, FusedLink};
use nra_engine::{join, JoinKind, JoinSpec};
use nra_storage::{CmpOp, Column, ColumnType, Relation, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn flat_relation(groups: usize, per_group: usize) -> Relation {
    let mut rng = StdRng::seed_from_u64(7);
    let schema = Schema::new(vec![
        Column::new("g.a", ColumnType::Int),
        Column::new("g.k", ColumnType::Int),
        Column::new("m.v", ColumnType::Int),
        Column::new("m.rid", ColumnType::Int),
    ]);
    let mut rows = Vec::with_capacity(groups * per_group);
    for g in 0..groups as i64 {
        for m in 0..per_group as i64 {
            rows.push(vec![
                Value::Int(rng.gen_range(0..1000)),
                Value::Int(g),
                Value::Int(rng.gen_range(0..1000)),
                Value::Int(g * per_group as i64 + m),
            ]);
        }
    }
    Relation::with_rows(schema, rows)
}

fn operators(c: &mut Criterion) {
    let mut g = c.benchmark_group("operators");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for &(groups, per) in &[(2_000usize, 4usize), (20_000, 4)] {
        let rel = flat_relation(groups, per);
        let rows = rel.len();
        g.bench_with_input(BenchmarkId::new("nest-hash", rows), &rel, |b, rel| {
            b.iter(|| nest_hash_idx(rel, &[1], &[2, 3], "s"));
        });
        g.bench_with_input(BenchmarkId::new("nest-sort", rows), &rel, |b, rel| {
            b.iter(|| nest_sort_idx(rel, &[1], &[2, 3], "s"));
        });
        let sel = LinkSelection::quant("g.a", CmpOp::Gt, SetQuant::All, "m.v", Some("m.rid"));
        g.bench_with_input(BenchmarkId::new("two-pass-select", rows), &rel, |b, rel| {
            b.iter(|| {
                let nested = nest_sort_idx(rel, &[0, 1], &[2, 3], "s");
                sel.select(&nested, "s").unwrap().atoms_as_relation()
            });
        });
        let link = FusedLink::from_selection(&sel, rel.schema(), &[0, 1]).unwrap();
        g.bench_with_input(BenchmarkId::new("fused-select", rows), &rel, |b, rel| {
            b.iter(|| fused_nest_select(rel, &[0, 1], link.clone(), false, &[]));
        });
        // Hash joins: self outer join on the group key.
        g.bench_with_input(BenchmarkId::new("left-outer-join", rows), &rel, |b, rel| {
            b.iter(|| {
                join(
                    rel,
                    rel,
                    &JoinSpec::new(JoinKind::LeftOuter, vec![(1, 1)], None),
                )
                .unwrap()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, operators);
criterion_main!(benches);
