//! Figure 4 — Query 1 (`> ALL`, one level), outer block sweep.
//!
//! Criterion measures pure CPU time of each series (the simulated-I/O
//! figures that reproduce the paper's disk-bound shape come from the
//! `experiments` binary). Data scale via `NRA_BENCH_SCALE` (default 0.05).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nra_bench::*;

fn fig4(c: &mut Criterion) {
    let scale = bench_scale();
    // The paper's Figure 4 drops the NOT NULL constraint (forcing the
    // native plan into nested iteration).
    let cat = bench_catalog_nullable(scale);
    let grid = paper_grid(scale);
    let mut g = c.benchmark_group("fig4_q1");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for &outer in &grid.q1_outer {
        let pq = PreparedQuery::new(&cat, q1_sql(&cat, outer)).unwrap();
        for series in Series::ALL {
            g.bench_with_input(BenchmarkId::new(series.label(), outer), &pq, |b, pq| {
                b.iter(|| pq.run(series).unwrap());
            });
        }
    }
    g.finish();

    // In-text ablation: with NOT NULL, the native plan is an antijoin.
    let strict = bench_catalog(scale);
    let mut g = c.benchmark_group("fig4_q1_not_null");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let outer = *grid.q1_outer.last().unwrap();
    let pq = PreparedQuery::new(&strict, q1_sql(&strict, outer)).unwrap();
    for series in Series::ALL {
        g.bench_with_input(BenchmarkId::new(series.label(), outer), &pq, |b, pq| {
            b.iter(|| pq.run(series).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, fig4);
criterion_main!(benches);
