//! Figure 4 — Query 1 (`> ALL`, one level), outer block sweep.
//!
//! The harness measures pure CPU time of each series (the simulated-I/O
//! figures that reproduce the paper's disk-bound shape come from the
//! `experiments` binary). Data scale via `NRA_BENCH_SCALE` (default 0.05).

use nra_bench::harness;
use nra_bench::*;

fn main() {
    let scale = bench_scale();
    // The paper's Figure 4 drops the NOT NULL constraint (forcing the
    // native plan into nested iteration).
    let cat = bench_catalog_nullable(scale);
    let grid = paper_grid(scale);
    let mut g = harness::group("fig4_q1");
    for &outer in &grid.q1_outer {
        let pq = PreparedQuery::new(&cat, q1_sql(&cat, outer)).unwrap();
        for series in Series::ALL {
            g.bench(series.label(), outer, || {
                harness::black_box(pq.run(series).unwrap());
            });
        }
    }
    g.finish();

    // In-text ablation: with NOT NULL, the native plan is an antijoin.
    let strict = bench_catalog(scale);
    let mut g = harness::group("fig4_q1_not_null");
    let outer = *grid.q1_outer.last().unwrap();
    let pq = PreparedQuery::new(&strict, q1_sql(&strict, outer)).unwrap();
    for series in Series::ALL {
        g.bench(series.label(), outer, || {
            harness::black_box(pq.run(series).unwrap());
        });
    }
    g.finish();
}
