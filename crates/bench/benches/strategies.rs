//! Ablation across every nested relational strategy (§4.1 and §4.2) on
//! the paper's Query 2b — the design-choice comparison DESIGN.md calls
//! out: two-pass vs fused, top-down vs bottom-up, nest push-down.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nra_bench::*;
use nra_core::Strategy;

fn strategies(c: &mut Criterion) {
    let scale = bench_scale();
    let cat = bench_catalog(scale);
    let grid = paper_grid(scale);
    let part = *grid.q23_part.last().unwrap();
    let sql = q2_sql(&cat, Quant::All, part, grid.q23_partsupp);
    let bound = nra_sql::parse_and_bind(&sql, &cat).unwrap();

    let mut g = c.benchmark_group("strategies_q2b");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for (name, strategy) in [
        ("original", Strategy::Original),
        ("optimized", Strategy::Optimized),
        ("bottom-up", Strategy::BottomUp),
        ("bottom-up-pushdown", Strategy::BottomUpPushdown),
    ] {
        g.bench_with_input(BenchmarkId::new(name, part), &bound, |b, bq| {
            b.iter(|| nra_core::execute(bq, &cat, strategy).unwrap());
        });
    }
    g.finish();

    // The positive rewrite, on the positive variant of the query.
    let sql = q2_sql(&cat, Quant::Any, part, grid.q23_partsupp).replace("not exists", "exists");
    let bound = nra_sql::parse_and_bind(&sql, &cat).unwrap();
    let mut g = c.benchmark_group("strategies_q2_positive");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for (name, strategy) in [
        ("optimized", Strategy::Optimized),
        ("positive-rewrite", Strategy::PositiveRewrite),
    ] {
        g.bench_with_input(BenchmarkId::new(name, part), &bound, |b, bq| {
            b.iter(|| nra_core::execute(bq, &cat, strategy).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, strategies);
criterion_main!(benches);
