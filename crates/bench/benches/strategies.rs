//! Ablation across every nested relational strategy (§4.1 and §4.2) on
//! the paper's Query 2b — the design-choice comparison DESIGN.md calls
//! out: two-pass vs fused, top-down vs bottom-up, nest push-down.

use nra_bench::harness;
use nra_bench::*;
use nra_core::Strategy;

fn main() {
    let scale = bench_scale();
    let cat = bench_catalog(scale);
    let grid = paper_grid(scale);
    let part = *grid.q23_part.last().unwrap();
    let sql = q2_sql(&cat, Quant::All, part, grid.q23_partsupp);
    let bound = nra_sql::parse_and_bind(&sql, &cat).unwrap();

    let mut g = harness::group("strategies_q2b");
    for (name, strategy) in [
        ("original", Strategy::Original),
        ("optimized", Strategy::Optimized),
        ("bottom-up", Strategy::BottomUp),
        ("bottom-up-pushdown", Strategy::BottomUpPushdown),
    ] {
        g.bench(name, part, || {
            harness::black_box(nra_core::execute(&bound, &cat, strategy).unwrap());
        });
    }
    g.finish();

    // The positive rewrite, on the positive variant of the query.
    let sql = q2_sql(&cat, Quant::Any, part, grid.q23_partsupp).replace("not exists", "exists");
    let bound = nra_sql::parse_and_bind(&sql, &cat).unwrap();
    let mut g = harness::group("strategies_q2_positive");
    for (name, strategy) in [
        ("optimized", Strategy::Optimized),
        ("positive-rewrite", Strategy::PositiveRewrite),
    ] {
        g.bench(name, part, || {
            harness::black_box(nra_core::execute(&bound, &cat, strategy).unwrap());
        });
    }
    g.finish();
}
