//! Figure 7 — Query q3a, the three correlated-predicate variants
//! (a/b/c), first block sweep.

use nra_bench::harness;
use nra_bench::*;

fn main() {
    let scale = bench_scale();
    let cat = bench_catalog(scale);
    let grid = paper_grid(scale);
    for corr in [Q3Corr::EqEq, Q3Corr::NeEq, Q3Corr::EqNe] {
        let variant = match corr {
            Q3Corr::EqEq => "a",
            Q3Corr::NeEq => "b",
            Q3Corr::EqNe => "c",
        };
        let mut g = harness::group(format!("fig7{variant}_q3a"));
        for &part in &grid.q23_part {
            let sql = q3_sql(
                &cat,
                Quant::All,
                ExistsKind::Exists,
                corr,
                part,
                grid.q23_partsupp,
            );
            let pq = PreparedQuery::new(&cat, sql).unwrap();
            for series in Series::ALL {
                g.bench(series.label(), part, || {
                    harness::black_box(pq.run(series).unwrap());
                });
            }
        }
        g.finish();
    }
}
