//! Figure 7 — Query q3a, the three correlated-predicate variants
//! (a/b/c), first block sweep.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nra_bench::*;

fn fig7(c: &mut Criterion) {
    let scale = bench_scale();
    let cat = bench_catalog(scale);
    let grid = paper_grid(scale);
    for corr in [Q3Corr::EqEq, Q3Corr::NeEq, Q3Corr::EqNe] {
        let variant = match corr {
            Q3Corr::EqEq => "a",
            Q3Corr::NeEq => "b",
            Q3Corr::EqNe => "c",
        };
        let mut g = c.benchmark_group(format!("fig7{variant}_q3a"));
        g.sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_secs(1));
        for &part in &grid.q23_part {
            let sql = q3_sql(
                &cat,
                Quant::All,
                ExistsKind::Exists,
                corr,
                part,
                grid.q23_partsupp,
            );
            let pq = PreparedQuery::new(&cat, sql).unwrap();
            for series in Series::ALL {
                g.bench_with_input(BenchmarkId::new(series.label(), part), &pq, |b, pq| {
                    b.iter(|| pq.run(series).unwrap());
                });
            }
        }
        g.finish();
    }
}

criterion_group!(benches, fig7);
criterion_main!(benches);
