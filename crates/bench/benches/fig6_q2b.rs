//! Figure 6 — Query 2b (negative `ALL`/`NOT EXISTS`, linear), first block
//! sweep. The NOT NULL constraint is dropped, so the native plan falls
//! back to nested iteration for the `ALL` level.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nra_bench::*;

fn fig6(c: &mut Criterion) {
    let scale = bench_scale();
    let cat = bench_catalog_nullable(scale);
    let grid = paper_grid(scale);
    let mut g = c.benchmark_group("fig6_q2b");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for &part in &grid.q23_part {
        let pq =
            PreparedQuery::new(&cat, q2_sql(&cat, Quant::All, part, grid.q23_partsupp)).unwrap();
        for series in Series::ALL {
            g.bench_with_input(BenchmarkId::new(series.label(), part), &pq, |b, pq| {
                b.iter(|| pq.run(series).unwrap());
            });
        }
    }
    g.finish();
}

criterion_group!(benches, fig6);
criterion_main!(benches);
