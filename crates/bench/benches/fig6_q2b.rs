//! Figure 6 — Query 2b (negative `ALL`/`NOT EXISTS`, linear), first block
//! sweep. The NOT NULL constraint is dropped, so the native plan falls
//! back to nested iteration for the `ALL` level.

use nra_bench::harness;
use nra_bench::*;

fn main() {
    let scale = bench_scale();
    let cat = bench_catalog_nullable(scale);
    let grid = paper_grid(scale);
    let mut g = harness::group("fig6_q2b");
    for &part in &grid.q23_part {
        let pq =
            PreparedQuery::new(&cat, q2_sql(&cat, Quant::All, part, grid.q23_partsupp)).unwrap();
        for series in Series::ALL {
            g.bench(series.label(), part, || {
                harness::black_box(pq.run(series).unwrap());
            });
        }
    }
    g.finish();
}
