//! Committed wall-time trajectory for the headline queries.
//!
//! `experiments --record` appends one JSONL entry per (query, threads)
//! point to `crates/bench/trajectory/BENCH_TRAJECTORY.jsonl`, which is
//! committed so the repo accumulates a wall-time history across hardware
//! and revisions. Unlike the per-operator baselines (exact-counter
//! regression gates), the trajectory is append-only observational data:
//! CI only validates the schema and that existing entries were not
//! rewritten.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use nra_obs::json::{self, Json};

/// One recorded measurement point.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryEntry {
    /// Seconds since the Unix epoch at record time.
    pub ts_unix: u64,
    /// Data scale the measurement ran at.
    pub scale: f64,
    /// Query label (`Q1`, `Q2A`, `Q2B`).
    pub query: String,
    /// Worker-thread budget the point ran with.
    pub threads: usize,
    /// Series label (see [`crate::Series::label`]).
    pub series: String,
    /// Repetitions averaged into `wall_secs`.
    pub reps: usize,
    /// Mean wall-clock seconds per run.
    pub wall_secs: f64,
    /// Result cardinality (sanity check across entries).
    pub rows: usize,
}

impl TrajectoryEntry {
    /// Render as one JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"ts_unix\": ");
        let _ = write!(out, "{}", self.ts_unix);
        out.push_str(", \"scale\": ");
        let _ = write!(out, "{}", self.scale);
        out.push_str(", \"query\": ");
        json::write_string(&mut out, &self.query);
        out.push_str(", \"threads\": ");
        let _ = write!(out, "{}", self.threads);
        out.push_str(", \"series\": ");
        json::write_string(&mut out, &self.series);
        out.push_str(", \"reps\": ");
        let _ = write!(out, "{}", self.reps);
        out.push_str(", \"wall_secs\": ");
        let _ = write!(out, "{:.6}", self.wall_secs);
        out.push_str(", \"rows\": ");
        let _ = write!(out, "{}", self.rows);
        out.push('}');
        out
    }

    /// Parse one JSONL line, validating the full schema.
    pub fn parse(line: &str) -> Result<TrajectoryEntry, String> {
        let v = Json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
        let field = |k: &str| v.get(k).ok_or_else(|| format!("missing field `{k}`"));
        let num = |k: &str| -> Result<f64, String> {
            field(k)?.as_f64().ok_or(format!("`{k}` not a number"))
        };
        let uint = |k: &str| -> Result<u64, String> {
            field(k)?
                .as_u64()
                .ok_or(format!("`{k}` not a non-negative integer"))
        };
        let s = |k: &str| -> Result<String, String> {
            Ok(field(k)?
                .as_str()
                .ok_or(format!("`{k}` not a string"))?
                .to_string())
        };
        Ok(TrajectoryEntry {
            ts_unix: uint("ts_unix")?,
            scale: num("scale")?,
            query: s("query")?,
            threads: uint("threads")? as usize,
            series: s("series")?,
            reps: uint("reps")? as usize,
            wall_secs: num("wall_secs")?,
            rows: uint("rows")? as usize,
        })
    }
}

/// The committed trajectory file (inside the bench crate, so it travels
/// with the baselines).
pub fn default_path() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/trajectory/BENCH_TRAJECTORY.jsonl"
    ))
}

/// Append entries to the trajectory file, creating it (and its parent
/// directory) if needed.
pub fn append(path: &Path, entries: &[TrajectoryEntry]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    for e in entries {
        writeln!(f, "{}", e.to_json())?;
    }
    Ok(())
}

/// Validate every line of a trajectory file: schema-correct JSONL with
/// non-decreasing timestamps (append-only discipline). Returns the parsed
/// entries.
pub fn validate_file(path: &Path) -> Result<Vec<TrajectoryEntry>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut entries = Vec::new();
    let mut last_ts = 0u64;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let entry = TrajectoryEntry::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if entry.ts_unix < last_ts {
            return Err(format!(
                "line {}: timestamp {} goes backwards (previous {last_ts}); \
                 the trajectory is append-only",
                i + 1,
                entry.ts_unix
            ));
        }
        last_ts = entry.ts_unix;
        entries.push(entry);
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> TrajectoryEntry {
        TrajectoryEntry {
            ts_unix: 1_754_000_000,
            scale: 0.02,
            query: "Q1".to_string(),
            threads: 4,
            series: "nr-optimized".to_string(),
            reps: 3,
            wall_secs: 0.001234,
            rows: 17,
        }
    }

    #[test]
    fn entry_roundtrips_through_json() {
        let e = entry();
        assert_eq!(TrajectoryEntry::parse(&e.to_json()).unwrap(), e);
    }

    #[test]
    fn parse_rejects_missing_fields() {
        let err = TrajectoryEntry::parse("{\"ts_unix\": 1}").unwrap_err();
        assert!(err.contains("missing field"), "{err}");
    }

    #[test]
    fn validate_enforces_append_only_timestamps() {
        let dir = std::env::temp_dir().join(format!("nra-traj-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        let mut a = entry();
        let mut b = entry();
        a.ts_unix = 200;
        b.ts_unix = 100;
        append(&path, &[a.clone(), b]).unwrap();
        let err = validate_file(&path).unwrap_err();
        assert!(err.contains("append-only"), "{err}");
        std::fs::remove_file(&path).unwrap();
        append(&path, &[a]).unwrap();
        assert_eq!(validate_file(&path).unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn committed_trajectory_is_schema_valid() {
        let path = default_path();
        assert!(
            path.exists(),
            "committed trajectory file missing: {}",
            path.display()
        );
        let entries = validate_file(&path).expect("committed trajectory validates");
        assert!(
            !entries.is_empty(),
            "committed trajectory must hold at least one entry"
        );
    }
}
