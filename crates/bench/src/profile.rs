//! Machine-readable execution profiles (`BENCH_*.json`).
//!
//! [`profile_query`] runs one series of a [`PreparedQuery`] with the
//! observability collector ([`nra_obs`]) and the I/O simulator enabled,
//! and returns the per-operator [`nra_obs::Profile`]. [`QueryProfile`]
//! bundles the profiles of every series for one query and serializes the
//! bundle as JSON (hand-rolled — the workspace carries no serde), which
//! the `experiments` binary writes as `BENCH_<name>.json` under
//! `--profile` (or `NRA_OBS=1`).

use std::io::Write as _;

use nra_obs::json::write_string as json_string;
use nra_obs::Profile;
use nra_storage::iosim::{self, IoConfig};

use crate::{PreparedQuery, Series};

/// Run one series once under the collector + I/O simulator and return the
/// profile. Pre-existing collector/simulator state is replaced (the
/// collector is thread-local; benchmarks are single-threaded).
pub fn profile_query(pq: &PreparedQuery<'_>, series: Series, io_cfg: &IoConfig) -> Profile {
    nra_obs::enable();
    iosim::enable(*io_cfg);
    pq.run(series).expect("profiled query runs");
    let profile = nra_obs::disable().expect("collector was enabled");
    iosim::disable();
    profile
}

/// The profiles of every series for one query, ready to serialize.
pub struct QueryProfile {
    /// Artifact stem: the file is written as `BENCH_<name>.json`.
    pub name: String,
    pub sql: String,
    pub scale: f64,
    pub series: Vec<(&'static str, Profile)>,
}

impl QueryProfile {
    /// Profile every series of `pq`.
    pub fn collect(name: &str, pq: &PreparedQuery<'_>, scale: f64) -> QueryProfile {
        let io_cfg = crate::io_config_for(pq.catalog);
        QueryProfile {
            name: name.to_string(),
            sql: pq.sql.clone(),
            scale,
            series: Series::ALL
                .iter()
                .map(|&s| (s.label(), profile_query(pq, s, &io_cfg)))
                .collect(),
        }
    }

    /// Schema:
    /// ```json
    /// {"name": "Q1", "sql": "...", "scale": 0.5,
    ///  "series": [{"name": "native", "profile": {<Profile::to_json>}}]}
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"name\": ");
        json_string(&mut out, &self.name);
        out.push_str(", \"sql\": ");
        json_string(&mut out, &self.sql);
        out.push_str(&format!(", \"scale\": {}", self.scale));
        out.push_str(", \"series\": [");
        for (i, (label, profile)) in self.series.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str("{\"name\": ");
            json_string(&mut out, label);
            out.push_str(", \"profile\": ");
            out.push_str(&profile.to_json());
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Write `BENCH_<name>.json` into `dir` and return the path.
    pub fn write_to(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        let path = dir.join(format!("BENCH_{}.json", self.name));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(self.to_json().as_bytes())?;
        f.write_all(b"\n")?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bench_catalog, q1_sql};

    #[test]
    fn profiles_carry_operator_and_io_stats() {
        let cat = bench_catalog(0.005);
        let sql = q1_sql(&cat, 50);
        let pq = PreparedQuery::new(&cat, sql).unwrap();
        let qp = QueryProfile::collect("TEST", &pq, 0.005);
        assert_eq!(qp.series.len(), 3);
        for (label, profile) in &qp.series {
            assert!(!profile.ops.is_empty(), "{label} profile has operators");
            assert!(profile.total_wall_ns() > 0, "{label} has timing");
            assert!(profile.io.is_some(), "{label} folds in I/O stats");
        }
        // NR series must expose nest groups and linking outcomes.
        for label in ["nr-original", "nr-optimized"] {
            let profile = &qp.series.iter().find(|(l, _)| *l == label).unwrap().1;
            assert!(
                profile.ops.iter().any(|(_, s)| s.nest_groups > 0),
                "{label} records nest groups"
            );
            assert!(
                profile
                    .ops
                    .iter()
                    .any(|(_, s)| s.pass + s.fail + s.unknown > 0),
                "{label} records 3VL outcomes"
            );
        }
        let json = qp.to_json();
        assert!(json.contains("\"series\""));
        assert!(json.contains("\"nr-optimized\""));
        assert!(json.contains("\"seq_pages\""));
    }

    #[test]
    fn profiling_leaves_collector_disabled() {
        let cat = bench_catalog(0.005);
        let sql = q1_sql(&cat, 50);
        let pq = PreparedQuery::new(&cat, sql).unwrap();
        let io_cfg = crate::io_config_for(&cat);
        let _ = profile_query(&pq, Series::Native, &io_cfg);
        assert!(!nra_obs::is_enabled());
        assert!(!iosim::is_enabled());
    }
}
