//! Continuous perf-regression tracking against committed baselines.
//!
//! The `experiments` binary's `--profile` run produces `BENCH_<name>.json`
//! execution profiles (see [`crate::profile`]). This module compares a
//! freshly collected profile against a *committed baseline* of the same
//! artifact under `crates/bench/baselines/`:
//!
//! * **Exact** comparison on everything deterministic — result/operator
//!   cardinalities (`rows_in`/`rows_out`), `invocations`, `batches`,
//!   hash-build sizes, nest group counts and cardinality histograms,
//!   σ̄ padding, 3VL outcomes, and the simulated I/O page counts. The
//!   benchmark data is generated from a fixed seed, so any drift here is
//!   a behaviour change, not noise.
//! * **Tolerance band** on wall-clock time: a series only fails when both
//!   the baseline and the current total exceed a floor (default 50 ms)
//!   *and* their ratio exceeds a factor (default 10×). Baselines are
//!   recorded on whatever machine ran `--baseline-write`, so the band is
//!   deliberately wide — it catches complexity-class regressions, not
//!   scheduler jitter.
//!
//! `experiments --baseline-check` runs the comparison and exits non-zero
//! with a per-operator delta table on any regression;
//! `experiments --baseline-write` refreshes the committed files.

use std::fmt::Write as _;
use std::path::PathBuf;

use nra_obs::json::Json;

use crate::profile::QueryProfile;

/// The committed baselines directory (`crates/bench/baselines/`).
pub fn baselines_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/baselines"))
}

/// Tolerances for the non-deterministic (timing) fields.
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Maximum allowed ratio between current and baseline wall time.
    pub wall_factor: f64,
    /// Wall times below this (ns) are never compared.
    pub wall_floor_ns: u64,
}

impl Default for Tolerance {
    fn default() -> Tolerance {
        Tolerance {
            wall_factor: 10.0,
            wall_floor_ns: 50_000_000,
        }
    }
}

/// One divergence from the baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Series label (`native`, `nr-original`, `nr-optimized`).
    pub series: String,
    /// Qualified operator name, `io`, or `(profile)` for structural drift.
    pub op: String,
    /// The counter that diverged.
    pub counter: String,
    pub baseline: String,
    pub current: String,
}

/// Outcome of checking one query's profile against its baseline.
#[derive(Debug, Clone)]
pub struct Report {
    pub query: String,
    pub regressions: Vec<Regression>,
    /// Per-series `(label, baseline total_wall_ns, current total_wall_ns)`,
    /// informational even when within tolerance.
    pub wall: Vec<(String, u64, u64)>,
}

impl Report {
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Markdown rendering: a per-operator delta table when the check
    /// failed, a one-liner when it passed.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        if self.passed() {
            let _ = writeln!(out, "- `{}`: ok ({})", self.query, self.wall_summary());
            return out;
        }
        let _ = writeln!(
            out,
            "- `{}`: **{} regression(s)** ({})\n",
            self.query,
            self.regressions.len(),
            self.wall_summary()
        );
        let _ = writeln!(out, "| series | operator | counter | baseline | current |");
        let _ = writeln!(out, "|---|---|---|---|---|");
        for r in &self.regressions {
            let _ = writeln!(
                out,
                "| {} | `{}` | {} | {} | {} |",
                r.series, r.op, r.counter, r.baseline, r.current
            );
        }
        out
    }

    fn wall_summary(&self) -> String {
        self.wall
            .iter()
            .map(|(s, base, cur)| {
                format!(
                    "{s}: {:.1}ms→{:.1}ms",
                    *base as f64 / 1e6,
                    *cur as f64 / 1e6
                )
            })
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// Check a freshly collected profile against the committed
/// `baselines/BENCH_<name>.json`. Errors (as opposed to regressions) are
/// reserved for unusable inputs: missing/corrupt baseline file, or a
/// baseline recorded at a different scale.
pub fn check_profile(qp: &QueryProfile, tol: &Tolerance) -> Result<Report, String> {
    let path = baselines_dir().join(format!("BENCH_{}.json", qp.name));
    let text = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "no baseline for {} at {} ({e}); run `experiments --profile --baseline-write` \
             and commit the result",
            qp.name,
            path.display()
        )
    })?;
    let base =
        Json::parse(&text).map_err(|e| format!("corrupt baseline {}: {e}", path.display()))?;
    let cur = Json::parse(&qp.to_json()).expect("own serialization parses");
    diff(&qp.name, &base, &cur, tol)
}

/// Write the profile into the baselines directory (`--baseline-write`).
pub fn write_baseline(qp: &QueryProfile) -> std::io::Result<PathBuf> {
    let dir = baselines_dir();
    std::fs::create_dir_all(&dir)?;
    qp.write_to(&dir)
}

/// Keys that hold wall-clock time (compared with tolerance, not exactly).
fn is_wall_key(key: &str) -> bool {
    key == "wall_ns" || key == "total_wall_ns"
}

/// Keys that record the run configuration rather than plan behaviour —
/// the thread budget and the partition counts that follow from it. They
/// vary with `NRA_THREADS`/`--threads` (and may be absent from baselines
/// recorded before parallel execution existed), so they are never
/// compared.
fn is_env_key(key: &str) -> bool {
    key == "partitions" || key == "threads"
}

/// Structural diff of two parsed `BENCH_*.json` documents.
pub fn diff(query: &str, base: &Json, cur: &Json, tol: &Tolerance) -> Result<Report, String> {
    let scale = |j: &Json| j.get("scale").and_then(Json::as_f64);
    match (scale(base), scale(cur)) {
        (Some(b), Some(c)) if b == c => {}
        (b, c) => {
            return Err(format!(
                "scale mismatch for {query}: baseline {b:?} vs current {c:?}; re-record the \
                 baseline at the checked scale"
            ))
        }
    }
    let mut report = Report {
        query: query.to_string(),
        regressions: Vec::new(),
        wall: Vec::new(),
    };
    let series_of = |j: &Json| -> Vec<(String, Json)> {
        j.get("series")
            .and_then(Json::as_arr)
            .map(|arr| {
                arr.iter()
                    .filter_map(|s| {
                        Some((
                            s.get("name")?.as_str()?.to_string(),
                            s.get("profile")?.clone(),
                        ))
                    })
                    .collect()
            })
            .unwrap_or_default()
    };
    let base_series = series_of(base);
    let cur_series = series_of(cur);
    for (name, base_profile) in &base_series {
        match cur_series.iter().find(|(n, _)| n == name) {
            None => report.regressions.push(Regression {
                series: name.clone(),
                op: "(profile)".to_string(),
                counter: "series".to_string(),
                baseline: "present".to_string(),
                current: "missing".to_string(),
            }),
            Some((_, cur_profile)) => {
                diff_profile(name, base_profile, cur_profile, tol, &mut report)
            }
        }
    }
    for (name, _) in &cur_series {
        if !base_series.iter().any(|(n, _)| n == name) {
            report.regressions.push(Regression {
                series: name.clone(),
                op: "(profile)".to_string(),
                counter: "series".to_string(),
                baseline: "missing".to_string(),
                current: "present".to_string(),
            });
        }
    }
    Ok(report)
}

fn diff_profile(series: &str, base: &Json, cur: &Json, tol: &Tolerance, report: &mut Report) {
    let ops_of = |j: &Json| -> Vec<(String, Json)> {
        j.get("ops")
            .and_then(Json::as_arr)
            .map(|arr| {
                arr.iter()
                    .filter_map(|o| Some((o.get("name")?.as_str()?.to_string(), o.clone())))
                    .collect()
            })
            .unwrap_or_default()
    };
    let base_ops = ops_of(base);
    let cur_ops = ops_of(cur);
    for (op, base_stats) in &base_ops {
        match cur_ops.iter().find(|(n, _)| n == op) {
            None => report.regressions.push(Regression {
                series: series.to_string(),
                op: op.clone(),
                counter: "operator".to_string(),
                baseline: "present".to_string(),
                current: "missing".to_string(),
            }),
            Some((_, cur_stats)) => {
                diff_counters(series, op, base_stats, cur_stats, report);
            }
        }
    }
    for (op, _) in &cur_ops {
        if !base_ops.iter().any(|(n, _)| n == op) {
            report.regressions.push(Regression {
                series: series.to_string(),
                op: op.clone(),
                counter: "operator".to_string(),
                baseline: "missing".to_string(),
                current: "present".to_string(),
            });
        }
    }
    // Simulated I/O: exact (page counts are a function of the plan and the
    // deterministic data, not of the machine).
    diff_counters(
        series,
        "io",
        base.get("io").unwrap_or(&Json::Null),
        cur.get("io").unwrap_or(&Json::Null),
        report,
    );
    // Wall time: tolerance band.
    let wall = |j: &Json| j.get("total_wall_ns").and_then(Json::as_u64).unwrap_or(0);
    let (b, c) = (wall(base), wall(cur));
    report.wall.push((series.to_string(), b, c));
    if b > tol.wall_floor_ns && c > tol.wall_floor_ns {
        let ratio = c as f64 / b as f64;
        if ratio > tol.wall_factor {
            report.regressions.push(Regression {
                series: series.to_string(),
                op: "(profile)".to_string(),
                counter: format!(
                    "total_wall_ns ({:.1}x > {:.1}x band)",
                    ratio, tol.wall_factor
                ),
                baseline: format!("{:.1}ms", b as f64 / 1e6),
                current: format!("{:.1}ms", c as f64 / 1e6),
            });
        }
    }
}

/// Exact comparison of two flat-ish counter objects, recursing one level
/// into nested objects (`group_card_hist`), skipping wall-time keys.
fn diff_counters(series: &str, op: &str, base: &Json, cur: &Json, report: &mut Report) {
    let render = |j: &Json| -> String {
        match j {
            Json::Null => "null".to_string(),
            Json::Bool(b) => b.to_string(),
            Json::Num(n) => format!("{n}"),
            Json::Str(s) => s.clone(),
            _ => "(nested)".to_string(),
        }
    };
    let empty: [(String, Json); 0] = [];
    let base_keys = base.as_obj().unwrap_or(&empty);
    let cur_keys = cur.as_obj().unwrap_or(&empty);
    if base.as_obj().is_none() != cur.as_obj().is_none() {
        report.regressions.push(Regression {
            series: series.to_string(),
            op: op.to_string(),
            counter: "(shape)".to_string(),
            baseline: render(base),
            current: render(cur),
        });
        return;
    }
    for (key, bval) in base_keys {
        if key == "name" || is_wall_key(key) || is_env_key(key) {
            continue;
        }
        match cur_keys.iter().find(|(k, _)| k == key) {
            None => report.regressions.push(Regression {
                series: series.to_string(),
                op: op.to_string(),
                counter: key.clone(),
                baseline: render(bval),
                current: "missing".to_string(),
            }),
            Some((_, cval)) => match (bval.as_obj(), cval.as_obj()) {
                (Some(_), Some(_)) => {
                    diff_counters(series, &format!("{op}.{key}"), bval, cval, report)
                }
                _ => {
                    if bval != cval {
                        report.regressions.push(Regression {
                            series: series.to_string(),
                            op: op.to_string(),
                            counter: key.clone(),
                            baseline: render(bval),
                            current: render(cval),
                        });
                    }
                }
            },
        }
    }
    for (key, cval) in cur_keys {
        if key == "name" || is_wall_key(key) || is_env_key(key) {
            continue;
        }
        if !base_keys.iter().any(|(k, _)| k == key) {
            report.regressions.push(Regression {
                series: series.to_string(),
                op: op.to_string(),
                counter: key.clone(),
                baseline: "missing".to_string(),
                current: render(cval),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: Tolerance = Tolerance {
        wall_factor: 10.0,
        wall_floor_ns: 50_000_000,
    };

    fn doc(rows_out: u64, seq_pages: u64, wall: u64) -> String {
        format!(
            r#"{{"name": "T", "sql": "select 1", "scale": 0.02, "series": [
                {{"name": "native", "profile": {{"ops": [
                    {{"name": "b2/join", "invocations": 1, "rows_in": 10, "rows_out": {rows_out},
                      "wall_ns": 5, "group_card_hist": {{"0": 1, "1": 2}}}}],
                  "io": {{"seq_pages": {seq_pages}, "rand_hits": 0, "rand_misses": 0}},
                  "total_wall_ns": {wall}}}}}]}}"#
        )
    }

    fn parse(s: &str) -> Json {
        Json::parse(s).unwrap()
    }

    #[test]
    fn identical_profiles_pass() {
        let r = diff("T", &parse(&doc(7, 3, 10)), &parse(&doc(7, 3, 999)), &TOL).unwrap();
        assert!(r.passed(), "{:?}", r.regressions);
        assert_eq!(r.wall, vec![("native".to_string(), 10, 999)]);
    }

    #[test]
    fn row_count_drift_is_a_regression() {
        let r = diff("T", &parse(&doc(7, 3, 10)), &parse(&doc(8, 3, 10)), &TOL).unwrap();
        assert_eq!(r.regressions.len(), 1);
        let reg = &r.regressions[0];
        assert_eq!(
            (reg.op.as_str(), reg.counter.as_str()),
            ("b2/join", "rows_out")
        );
        assert_eq!((reg.baseline.as_str(), reg.current.as_str()), ("7", "8"));
        assert!(r
            .render_markdown()
            .contains("| native | `b2/join` | rows_out | 7 | 8 |"));
    }

    #[test]
    fn io_page_drift_is_a_regression() {
        let r = diff("T", &parse(&doc(7, 3, 10)), &parse(&doc(7, 4, 10)), &TOL).unwrap();
        assert_eq!(r.regressions.len(), 1);
        assert_eq!(r.regressions[0].op, "io");
        assert_eq!(r.regressions[0].counter, "seq_pages");
    }

    #[test]
    fn histogram_buckets_compare_exactly() {
        let base = doc(7, 3, 10);
        let cur = base.replace(r#""0": 1"#, r#""0": 2"#);
        let r = diff("T", &parse(&base), &parse(&cur), &TOL).unwrap();
        assert_eq!(r.regressions.len(), 1);
        assert_eq!(r.regressions[0].op, "b2/join.group_card_hist");
        assert_eq!(r.regressions[0].counter, "0");
    }

    #[test]
    fn wall_time_within_band_passes_beyond_band_fails() {
        // Both above the floor, ratio 4x < 10x: pass.
        let r = diff(
            "T",
            &parse(&doc(7, 3, 100_000_000)),
            &parse(&doc(7, 3, 400_000_000)),
            &TOL,
        )
        .unwrap();
        assert!(r.passed());
        // Ratio 20x: fail.
        let r = diff(
            "T",
            &parse(&doc(7, 3, 100_000_000)),
            &parse(&doc(7, 3, 2_000_000_000)),
            &TOL,
        )
        .unwrap();
        assert_eq!(r.regressions.len(), 1);
        assert!(r.regressions[0].counter.starts_with("total_wall_ns"));
        // Huge ratio but below the floor: pass (timer noise at tiny scale).
        let r = diff(
            "T",
            &parse(&doc(7, 3, 10)),
            &parse(&doc(7, 3, 10_000)),
            &TOL,
        )
        .unwrap();
        assert!(r.passed());
    }

    #[test]
    fn partition_and_thread_fields_are_ignored() {
        // A profile recorded by the parallel executor carries op-level
        // `partitions` and a top-level `threads` the committed baselines
        // predate; neither may fail the check, in either direction.
        let base = doc(7, 3, 10);
        let cur = base
            .replace(r#""wall_ns": 5"#, r#""wall_ns": 5, "partitions": 4"#)
            .replace(
                r#""total_wall_ns": 10"#,
                r#""threads": 4, "total_wall_ns": 10"#,
            );
        let r = diff("T", &parse(&base), &parse(&cur), &TOL).unwrap();
        assert!(r.passed(), "{:?}", r.regressions);
        let r = diff("T", &parse(&cur), &parse(&base), &TOL).unwrap();
        assert!(r.passed(), "{:?}", r.regressions);
    }

    #[test]
    fn missing_operator_and_scale_mismatch() {
        let base = doc(7, 3, 10);
        let cur = base.replace("b2/join", "b2/hashjoin");
        let r = diff("T", &parse(&base), &parse(&cur), &TOL).unwrap();
        // One op vanished, a new one appeared.
        assert_eq!(r.regressions.len(), 2);
        assert!(r.regressions.iter().any(|x| x.current == "missing"));
        assert!(r.regressions.iter().any(|x| x.baseline == "missing"));

        let other_scale = base.replace("0.02", "0.5");
        assert!(diff("T", &parse(&base), &parse(&other_scale), &TOL).is_err());
    }
}
