//! Reproduce every figure/table of the paper's evaluation (Section 5) and
//! print paper-style series as markdown.
//!
//! ```sh
//! cargo run --release -p nra-bench --bin experiments -- [--scale 0.5] [--reps 3] [fig4 fig5 ...]
//! ```
//!
//! Observability flags (see `nra_bench::baseline` for the regression
//! tracker; baselines are committed at scale 0.02, so pass `--scale 0.02`
//! when writing or checking):
//!
//! * `--profile` — write `BENCH_*.json` per-operator profiles to the cwd
//! * `--baseline-write` — refresh `crates/bench/baselines/BENCH_*.json`
//! * `--baseline-check` — diff fresh profiles against the committed
//!   baselines; non-zero exit + per-operator delta table on regression
//! * `--wall-factor <f>` — wall-time tolerance band for the check
//! * `--trace` — trace the paper's Query Q, write `TRACE_QQ.jsonl`
//! * `--serve` — start the TCP front end on an ephemeral port and drive
//!   it with concurrent protocol clients (1, then `--clients`, default
//!   8) running the headline queries; report client-observed per-query
//!   p50/p99 latency and aggregate throughput scaling
//! * `--threads <n>` — worker budget for the partition-parallel executor
//!   (also enables the `parallel` section: sequential vs parallel wall
//!   time on Q2a/Q2b for the nested relational series)
//! * `--batch-size <n>` — rows per `ValueBatch` for the vectorized
//!   executors (default 1024; also settable via `NRA_BATCH_ROWS`)
//! * `--record` — append timestamped wall-time entries for Q1/Q2A/Q2B at
//!   1 and 4 threads to the committed trajectory file
//!   (`crates/bench/trajectory/BENCH_TRAJECTORY.jsonl`)
//! * `--trajectory <path>` — record/check against this file instead
//! * `--check-trajectory` — validate the trajectory file (JSONL schema,
//!   append-only timestamps); non-zero exit on violation
//! * `--metrics <path>` — run the headline queries through the facade
//!   with metrics collection and write the process-cumulative registry
//!   as JSONL to `<path>`
//! * `--slow-log <path>` — run the headline queries with a zero
//!   slow-query threshold appending to `<path>`, then schema-validate
//!   the whole log; non-zero exit on a malformed record
//! * `--db <dir>` — durability mode: open (or create) a persistent
//!   database at `<dir>`, importing the bench catalog on the first run
//!   and recovering it (snapshot + WAL replay) on later runs, then run
//!   the headline queries and checkpoint; no figures are produced
//!
//! Passing any unknown positional (e.g. `none`) selects no figures, so
//! `experiments --scale 0.02 --record none` runs only the recorder.
//!
//! Figures (paper → here):
//!
//! * Fig 4  — Query 1 (`> ALL`), outer 4K–16K; native = nested iteration
//!   (constraint dropped), plus the NOT-NULL ablation where the native
//!   plan becomes an antijoin.
//! * Fig 5  — Query 2a (mixed `ANY`/`NOT EXISTS`); native = bottom-up
//!   semijoin + antijoin.
//! * Fig 6  — Query 2b (negative `ALL`/`NOT EXISTS`); native falls back to
//!   nested iteration (constraint dropped).
//! * Fig 7a–c — Query 3a (mixed `ALL`/`EXISTS`), three correlation
//!   variants; Fig 8a–c — Query 3b (negative); Fig 9a–c — Query 3c
//!   (positive).
//! * nrcost — the §5.2 in-text numbers: nest+linking-selection processing
//!   time, original vs optimized, against intermediate-result size.

use nra_bench::*;
use nra_storage::Catalog;

struct Args {
    scale: f64,
    reps: usize,
    /// Write `BENCH_*.json` per-operator execution profiles
    /// (`--profile`, or the `NRA_OBS=1` environment variable).
    profile: bool,
    /// Refresh the committed baselines under `crates/bench/baselines/`.
    baseline_write: bool,
    /// Compare fresh profiles against the committed baselines; exit
    /// non-zero with a per-operator delta table on regression.
    baseline_check: bool,
    /// Wall-time tolerance factor for `--baseline-check`
    /// (`--wall-factor`, default 10).
    wall_factor: f64,
    /// Write `TRACE_QQ.jsonl`: the query-lifecycle trace of the paper's
    /// Query Q.
    trace: bool,
    /// Worker budget for the partition-parallel executor (`--threads`;
    /// default: the `NRA_THREADS` environment variable, else 1).
    threads: Option<usize>,
    /// Rows per `ValueBatch` for the vectorized executors
    /// (`--batch-size`; default: `NRA_BATCH_ROWS`, else 1024).
    batch_rows: Option<usize>,
    /// Append headline wall times to the committed trajectory file.
    record: bool,
    /// Override the trajectory file path for `--record`/`--check-trajectory`.
    trajectory: Option<std::path::PathBuf>,
    /// Validate the trajectory file and exit non-zero on violation.
    check_trajectory: bool,
    /// Write the process-cumulative metrics registry as JSONL here.
    metrics: Option<std::path::PathBuf>,
    /// Run the headline queries with a zero slow-query threshold,
    /// appending their records to this JSONL log, then schema-validate
    /// the whole file; exit non-zero on a malformed record.
    slow_log: Option<std::path::PathBuf>,
    /// Start the TCP front end and drive it with concurrent protocol
    /// clients; report per-query p50/p99 latency and 1-client vs
    /// N-client throughput (`--serve`).
    serve: bool,
    /// Client count for `--serve` (default 8).
    clients: usize,
    /// Durability mode (`--db <dir>`): open a persistent database at
    /// the directory, importing the bench catalog on first run and
    /// recovering it (snapshot + WAL replay) on later runs, then run
    /// the headline queries and checkpoint. No figures are produced.
    db: Option<std::path::PathBuf>,
    figures: Vec<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 0.5,
        reps: 3,
        profile: std::env::var("NRA_OBS").is_ok_and(|v| v == "1"),
        baseline_write: false,
        baseline_check: false,
        wall_factor: baseline::Tolerance::default().wall_factor,
        trace: false,
        threads: None,
        batch_rows: None,
        record: false,
        trajectory: None,
        check_trajectory: false,
        metrics: None,
        slow_log: None,
        serve: false,
        clients: 8,
        db: None,
        figures: vec![],
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                args.scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale takes a number")
            }
            "--reps" => {
                args.reps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--reps takes an integer")
            }
            "--profile" => args.profile = true,
            "--baseline-write" => args.baseline_write = true,
            "--baseline-check" => args.baseline_check = true,
            "--wall-factor" => {
                args.wall_factor = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--wall-factor takes a number")
            }
            "--trace" => args.trace = true,
            "--serve" => args.serve = true,
            "--clients" => {
                args.clients = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--clients takes a client count")
            }
            "--record" => args.record = true,
            "--trajectory" => {
                args.trajectory = Some(
                    it.next()
                        .map(std::path::PathBuf::from)
                        .expect("--trajectory takes a path"),
                )
            }
            "--check-trajectory" => args.check_trajectory = true,
            "--metrics" => {
                args.metrics = Some(
                    it.next()
                        .map(std::path::PathBuf::from)
                        .expect("--metrics takes a path"),
                )
            }
            "--slow-log" => {
                args.slow_log = Some(
                    it.next()
                        .map(std::path::PathBuf::from)
                        .expect("--slow-log takes a path"),
                )
            }
            "--threads" => {
                args.threads = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--threads takes a worker count"),
                )
            }
            "--batch-size" => {
                args.batch_rows = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--batch-size takes a row count"),
                )
            }
            "--db" => {
                args.db = Some(
                    it.next()
                        .map(std::path::PathBuf::from)
                        .expect("--db takes a directory path"),
                )
            }
            other => args.figures.push(other.to_string()),
        }
    }
    args
}

fn wanted(args: &Args, fig: &str) -> bool {
    args.figures.is_empty() || args.figures.iter().any(|f| f == fig)
}

/// Run one figure: a sweep of prepared queries, one row per size label.
///
/// Each point is reported as the *estimated elapsed time in the paper's
/// environment* — measured CPU time plus simulated disk I/O (sequential
/// scans vs random index probes through a buffer cache covering ~3.2% of
/// the data, as in the paper's 1 GB / 32 MB setup) — followed by the CPU
/// and I/O breakdown.
fn figure(title: &str, rows: Vec<(String, PreparedQuery<'_>)>, reps: usize) {
    println!("### {title}\n");
    if let Some((_, pq)) = rows.first() {
        println!("native plan: {}\n", pq.native_plan_label());
    }
    println!(
        "| block sizes | native est (s) | nr-original est (s) | nr-optimized est (s)          | native cpu/io | nr-orig cpu/io | nr-opt cpu/io | rows |"
    );
    println!("|---|---|---|---|---|---|---|---|");
    for (label, pq) in rows {
        let io_cfg = io_config_for(pq.catalog);
        let mut est = Vec::new();
        let mut brk = Vec::new();
        let mut rows_out = None;
        for series in Series::ALL {
            let m = pq.measure(series, reps, &io_cfg);
            match rows_out {
                None => rows_out = Some(m.rows),
                Some(r) => assert_eq!(r, m.rows, "series disagree on {label} ({})", pq.sql),
            }
            est.push(format!("{:.3}", m.est_secs));
            brk.push(format!(
                "{:.3}s / {}s+{}r",
                m.cpu_secs, m.io.seq_pages, m.io.rand_misses
            ));
        }
        println!(
            "| {label} | {} | {} | {} | {} | {} | {} | {} |",
            est[0],
            est[1],
            est[2],
            brk[0],
            brk[1],
            brk[2],
            rows_out.unwrap()
        );
    }
    println!();
}

fn fig4(cat_nullable: &Catalog, cat_strict: &Catalog, args: &Args) {
    let grid = paper_grid(args.scale);
    let rows = grid
        .q1_outer
        .iter()
        .map(|&outer| {
            let sql = q1_sql(cat_nullable, outer);
            (
                format!("{outer}/q1-inner"),
                PreparedQuery::new(cat_nullable, sql).unwrap(),
            )
        })
        .collect();
    figure(
        "Figure 4 — Query 1 (> ALL, one level); NOT NULL dropped",
        rows,
        args.reps,
    );

    // The in-text ablation: with the NOT NULL constraint, System A uses an
    // antijoin and "the performance is about the same as ours".
    let rows = grid
        .q1_outer
        .iter()
        .map(|&outer| {
            let sql = q1_sql(cat_strict, outer);
            (
                format!("{outer}/q1-inner"),
                PreparedQuery::new(cat_strict, sql).unwrap(),
            )
        })
        .collect();
    figure(
        "Figure 4 ablation — Query 1 with NOT NULL (native antijoins)",
        rows,
        args.reps,
    );
}

fn fig_q2(cat: &Catalog, quant: Quant, title: &str, args: &Args) {
    let grid = paper_grid(args.scale);
    let rows = grid
        .q23_part
        .iter()
        .map(|&part| {
            let sql = q2_sql(cat, quant, part, grid.q23_partsupp);
            (
                format!("{part}/{}/li", grid.q23_partsupp),
                PreparedQuery::new(cat, sql).unwrap(),
            )
        })
        .collect();
    figure(title, rows, args.reps);
}

fn fig_q3(cat: &Catalog, quant: Quant, exists: ExistsKind, fig_no: usize, name: &str, args: &Args) {
    let grid = paper_grid(args.scale);
    for corr in [Q3Corr::EqEq, Q3Corr::NeEq, Q3Corr::EqNe] {
        let rows = grid
            .q23_part
            .iter()
            .map(|&part| {
                let sql = q3_sql(cat, quant, exists, corr, part, grid.q23_partsupp);
                (
                    format!("{part}/{}/li", grid.q23_partsupp),
                    PreparedQuery::new(cat, sql).unwrap(),
                )
            })
            .collect();
        figure(
            &format!(
                "Figure {fig_no}{} — {name}, correlated predicates {}",
                match corr {
                    Q3Corr::EqEq => "a",
                    Q3Corr::NeEq => "b",
                    Q3Corr::EqNe => "c",
                },
                corr.label()
            ),
            rows,
            args.reps,
        );
    }
}

/// Extension (beyond the paper): the aggregate form of Query 1
/// (`o_totalprice > (select max(l_extendedprice) ...)`), evaluated by the
/// same machinery — the set is folded instead of quantified. The native
/// plan must nested-iterate (no antijoin form exists for aggregates here).
fn ext_agg(cat: &Catalog, args: &Args) {
    let grid = paper_grid(args.scale);
    let rows = grid
        .q1_outer
        .iter()
        .map(|&outer| {
            let sql = q1_agg_sql(cat, outer);
            (
                format!("{outer}/q1-inner"),
                PreparedQuery::new(cat, sql).unwrap(),
            )
        })
        .collect();
    figure(
        "Extension — Query 1 with `> (select max(...))` (aggregate subquery)",
        rows,
        args.reps,
    );
}

/// Render a speedup ratio, refusing to divide noise by noise: below
/// ~0.5 ms the subtraction-based isolation is inside timer jitter.
fn speedup(original: f64, optimized: f64) -> String {
    if original < 5e-4 || optimized < 5e-4 {
        "n/a (below timer resolution; raise --scale/--reps)".to_string()
    } else {
        format!("{:.1}x", original / optimized)
    }
}

fn nrcost(cat: &Catalog, args: &Args) {
    println!("### §5.2 in-text — NR processing cost (nest + linking selection only)\n");
    println!("| query | intermediate rows | original (s) | optimized (s) | speedup |");
    println!("|---|---|---|---|---|");
    let grid = paper_grid(args.scale);
    for &outer in &grid.q1_outer {
        let sql = q1_sql(cat, outer);
        let c = nr_processing_cost(cat, &sql, args.reps).unwrap();
        println!(
            "| Q1 outer={outer} | {} | {:.4} | {:.4} | {} |",
            c.intermediate_rows,
            c.original_secs,
            c.optimized_secs,
            speedup(c.original_secs, c.optimized_secs)
        );
    }
    for &part in &grid.q23_part {
        let sql = q2_sql(cat, Quant::All, part, grid.q23_partsupp);
        let c = nr_processing_cost(cat, &sql, args.reps).unwrap();
        println!(
            "| Q2 part={part} | {} | {:.4} | {:.4} | {} |",
            c.intermediate_rows,
            c.original_secs,
            c.optimized_secs,
            speedup(c.original_secs, c.optimized_secs)
        );
    }
    println!();
}

fn main() {
    let args = parse_args();
    if let Some(dir) = &args.db {
        durable_bench(dir, args.scale, args.reps);
        return;
    }
    let _thread_budget = args
        .threads
        .map(|n| nra::engine::exec::set_threads(Some(n)));
    let _batch_width = args
        .batch_rows
        .map(|n| nra::engine::vec::set_batch_rows(Some(n)));
    println!(
        "# Paper experiment reproduction (scale {}, {} reps per point, {} thread(s), {} batch rows)\n",
        args.scale,
        args.reps,
        nra::engine::exec::threads(),
        nra::engine::vec::batch_rows()
    );
    eprintln!("generating data at scale {} ...", args.scale);
    let strict = bench_catalog(args.scale);
    let nullable = bench_catalog_nullable(args.scale);
    for t in ["orders", "lineitem", "part", "partsupp"] {
        println!("- {t}: {} rows", strict.table(t).unwrap().len());
    }
    println!();

    if wanted(&args, "fig4") {
        fig4(&nullable, &strict, &args);
    }
    if wanted(&args, "fig5") {
        fig_q2(
            &strict,
            Quant::Any,
            "Figure 5 — Query 2a (mixed ANY / NOT EXISTS, linear)",
            &args,
        );
    }
    if wanted(&args, "fig6") {
        fig_q2(
            &nullable,
            Quant::All,
            "Figure 6 — Query 2b (negative ALL / NOT EXISTS); NOT NULL dropped",
            &args,
        );
    }
    if wanted(&args, "fig7") {
        fig_q3(
            &strict,
            Quant::All,
            ExistsKind::Exists,
            7,
            "Query 3a (mixed ALL / EXISTS)",
            &args,
        );
    }
    if wanted(&args, "fig8") {
        fig_q3(
            &strict,
            Quant::All,
            ExistsKind::NotExists,
            8,
            "Query 3b (negative ALL / NOT EXISTS)",
            &args,
        );
    }
    if wanted(&args, "fig9") {
        fig_q3(
            &strict,
            Quant::Any,
            ExistsKind::Exists,
            9,
            "Query 3c (positive ANY / EXISTS)",
            &args,
        );
    }
    if wanted(&args, "nrcost") {
        nrcost(&strict, &args);
    }
    if wanted(&args, "ext-agg") {
        ext_agg(&strict, &args);
    }
    if wanted(&args, "parallel") && args.threads.is_some_and(|n| n > 1) {
        parallel_speedup(&strict, &nullable, &args);
    }
    if args.trace {
        trace_query_q();
    }
    if args.serve {
        serve_bench(&nullable, &args);
    }
    if args.record {
        record_trajectory(&strict, &nullable, &args);
    }
    if args.check_trajectory {
        check_trajectory(&args);
    }
    if let Some(path) = &args.metrics {
        write_metrics(path, &strict, &nullable, &args);
    }
    if let Some(path) = &args.slow_log {
        write_slow_log(path, &strict, &nullable, &args);
    }
    if args.profile || args.baseline_write || args.baseline_check {
        let profiles = collect_profiles(&strict, &nullable, &args);
        if args.profile {
            let dir = std::env::current_dir().expect("cwd");
            println!("### Execution profiles\n");
            for qp in &profiles {
                let path = qp.write_to(&dir).expect("write profile artifact");
                println!("- wrote {}", path.display());
            }
            println!();
        }
        if args.baseline_write {
            println!("### Baselines\n");
            for qp in &profiles {
                let path = baseline::write_baseline(qp).expect("write baseline");
                println!("- wrote {}", path.display());
            }
            println!();
        }
        if args.baseline_check {
            check_baselines(&profiles, &args);
        }
    }
}

/// The tentpole's headline measurement: wall time of the nested relational
/// series on the join-heavy Query 2 variants, sequential vs the
/// `--threads` budget, on identical data. The result relations are
/// asserted identical, so any speedup is pure scheduling.
fn parallel_speedup(strict: &Catalog, nullable: &Catalog, args: &Args) {
    let threads = args.threads.unwrap_or(1);
    let grid = paper_grid(args.scale);
    let part = *grid.q23_part.last().unwrap();
    let queries: Vec<(&str, &Catalog, String)> = vec![
        (
            "Q2A",
            strict,
            q2_sql(strict, Quant::Any, part, grid.q23_partsupp),
        ),
        (
            "Q2B",
            nullable,
            q2_sql(nullable, Quant::All, part, grid.q23_partsupp),
        ),
    ];
    println!("### Partition-parallel speedup (1 thread vs {threads} threads)\n");
    println!("| query | series | 1 thread (s) | {threads} threads (s) | speedup | rows |");
    println!("|---|---|---|---|---|---|");
    for (name, cat, sql) in &queries {
        let pq = PreparedQuery::new(cat, sql.clone()).unwrap();
        for series in [Series::NrOriginal, Series::NrOptimized] {
            let (seq_secs, seq_rows) = {
                let _g = nra::engine::exec::set_threads(Some(1));
                pq.time(series, args.reps)
            };
            let (par_secs, par_rows) = {
                let _g = nra::engine::exec::set_threads(Some(threads));
                pq.time(series, args.reps)
            };
            assert_eq!(
                seq_rows, par_rows,
                "parallel execution changed the result of {name} ({series:?})"
            );
            println!(
                "| {name} | {} | {seq_secs:.4} | {par_secs:.4} | {} | {seq_rows} |",
                series.label(),
                speedup(seq_secs, par_secs)
            );
        }
    }
    println!();
}

/// The three headline queries (largest grid point each) shared by the
/// profile baselines, the trajectory recorder, and the metrics export.
fn headline_queries<'a>(
    strict: &'a Catalog,
    nullable: &'a Catalog,
    scale: f64,
) -> Vec<(&'static str, &'a Catalog, String)> {
    let grid = paper_grid(scale);
    let q1_outer = *grid.q1_outer.last().unwrap();
    let part = *grid.q23_part.last().unwrap();
    vec![
        ("Q1", nullable, q1_sql(nullable, q1_outer)),
        (
            "Q2A",
            strict,
            q2_sql(strict, Quant::Any, part, grid.q23_partsupp),
        ),
        (
            "Q2B",
            nullable,
            q2_sql(nullable, Quant::All, part, grid.q23_partsupp),
        ),
    ]
}

/// Collect per-operator execution profiles for the headline queries: every
/// series runs once under the observability collector + I/O simulator.
fn collect_profiles(
    strict: &Catalog,
    nullable: &Catalog,
    args: &Args,
) -> Vec<profile::QueryProfile> {
    headline_queries(strict, nullable, args.scale)
        .into_iter()
        .map(|(name, cat, sql)| {
            let pq = PreparedQuery::new(cat, sql).unwrap();
            profile::QueryProfile::collect(name, &pq, args.scale)
        })
        .collect()
}

/// `--record`: time the headline queries (both nested relational series)
/// at 1 and 4 worker threads and append the points to the wall-time
/// trajectory file. Unlike the figure tables (simulated-I/O estimates),
/// the trajectory records raw wall-clock seconds on the current host —
/// the *median* over `--reps` runs (after warm-up), so a single
/// scheduler stall on a shared host cannot inflate a recorded point.
fn record_trajectory(strict: &Catalog, nullable: &Catalog, args: &Args) {
    let ts_unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after the epoch")
        .as_secs();
    let path = args
        .trajectory
        .clone()
        .unwrap_or_else(trajectory::default_path);
    let mut entries = Vec::new();
    for (name, cat, sql) in headline_queries(strict, nullable, args.scale) {
        let pq = PreparedQuery::new(cat, sql).unwrap();
        for threads in [1usize, 4] {
            let _g = nra::engine::exec::set_threads(Some(threads));
            for series in [Series::NrOriginal, Series::NrOptimized] {
                let (wall_secs, rows) = pq.time_median(series, args.reps);
                entries.push(trajectory::TrajectoryEntry {
                    ts_unix,
                    scale: args.scale,
                    query: name.to_string(),
                    threads,
                    series: series.label().to_string(),
                    reps: args.reps,
                    wall_secs,
                    rows,
                });
            }
        }
    }
    trajectory::append(&path, &entries).expect("append trajectory entries");
    println!(
        "### Wall-time trajectory\n\n- appended {} entries to {}\n",
        entries.len(),
        path.display()
    );
}

/// `--check-trajectory`: schema + append-only validation; non-zero exit
/// on any violation so CI can gate on it.
fn check_trajectory(args: &Args) {
    let path = args
        .trajectory
        .clone()
        .unwrap_or_else(trajectory::default_path);
    match trajectory::validate_file(&path) {
        Ok(entries) => println!(
            "trajectory check passed: {} entries in {}\n",
            entries.len(),
            path.display()
        ),
        Err(e) => {
            eprintln!("trajectory check FAILED: {e}");
            std::process::exit(1);
        }
    }
}

/// `--db <dir>`: the CI durability mode. The first run against an empty
/// directory imports the nullable bench catalog through the durable
/// path (each table one atomic WAL `CreateTable` record); later runs
/// recover the catalog from snapshot + log and report what replay did.
/// Both runs execute the headline queries against the durable catalog
/// and end with an explicit checkpoint. The `durable-catalog:` /
/// `reopen-replay:` / `checkpoint:` lines are stable grep targets for
/// the CI `durability-check` job.
fn durable_bench(dir: &std::path::Path, scale: f64, reps: usize) {
    let db = match nra::Database::open(dir) {
        Ok(db) => db,
        Err(e) => {
            eprintln!(
                "error: cannot open durable database at {}: {e}",
                dir.display()
            );
            std::process::exit(1);
        }
    };
    let report = db
        .recovery()
        .expect("durable database has a recovery report");
    let fresh = db.catalog().table_names().is_empty();
    if fresh {
        eprintln!("generating data at scale {scale} ...");
        let cat = bench_catalog_nullable(scale);
        for name in cat.table_names() {
            db.add_table(cat.table(name).unwrap().clone())
                .expect("import bench table");
        }
        println!(
            "durable-catalog: imported {} table(s) into {}",
            db.catalog().table_names().len(),
            dir.display()
        );
    } else {
        println!(
            "durable-catalog: recovered {} table(s) from {} \
             (snapshot lsn {}, {} record(s) replayed)",
            db.catalog().table_names().len(),
            dir.display(),
            report.snapshot_lsn,
            report.replayed
        );
        println!("reopen-replay: ok");
    }
    for msg in &report.messages {
        println!("recovery: {msg}");
    }

    let grid = paper_grid(scale);
    let q1_outer = *grid.q1_outer.last().unwrap();
    let part = *grid.q23_part.last().unwrap();
    let queries: Vec<(&'static str, String)> = {
        let cat = db.catalog();
        vec![
            ("Q1", q1_sql(&cat, q1_outer)),
            ("Q2A", q2_sql(&cat, Quant::Any, part, grid.q23_partsupp)),
            ("Q2B", q2_sql(&cat, Quant::All, part, grid.q23_partsupp)),
        ]
    };
    let session = db.connect();
    println!("\n| query | median (ms) over {reps} rep(s) | rows |");
    println!("|---|---|---|");
    for (name, sql) in &queries {
        let mut times = Vec::new();
        let mut rows = 0;
        for _ in 0..reps.max(1) {
            let start = std::time::Instant::now();
            let out = session
                .execute(sql)
                .unwrap_or_else(|e| panic!("headline query {name} runs durably: {e}"));
            times.push(start.elapsed().as_secs_f64() * 1e3);
            rows = out.rows.len();
        }
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        println!("| {name} | {:.2} | {rows} |", times[times.len() / 2]);
    }

    let lsn = db.checkpoint().expect("checkpoint durable database");
    println!("\ncheckpoint: lsn {lsn} at {}", dir.display());
}

/// `--metrics <path>`: run the headline queries through the facade with
/// per-query metrics collection, then write the process-cumulative
/// registry (queries, rows, operator counters, Q-error histogram) as
/// JSONL.
fn write_metrics(path: &std::path::Path, strict: &Catalog, nullable: &Catalog, args: &Args) {
    for (name, cat, sql) in headline_queries(strict, nullable, args.scale) {
        let db = nra::Database::from_catalog(cat.clone());
        let session = db.connect();
        session
            .execute_with(
                &sql,
                &nra::QueryOptions::new()
                    .strategy(nra::Strategy::Original)
                    .collect_metrics(true),
            )
            .unwrap_or_else(|e| panic!("headline query {name} runs: {e}"));
    }
    let snapshot = nra::obs::metrics::global().snapshot();
    std::fs::write(path, snapshot.to_jsonl()).expect("write metrics export");
    println!("- wrote {}\n", path.display());
}

/// `--slow-log <path>`: run the headline queries with a zero slow-query
/// threshold (every query logs) appending to `path`, then re-parse the
/// whole file against the record schema — the CI gate that keeps the
/// slow-query log machine-readable.
fn write_slow_log(path: &std::path::Path, strict: &Catalog, nullable: &Catalog, args: &Args) {
    for (name, cat, sql) in headline_queries(strict, nullable, args.scale) {
        let db = nra::Database::from_catalog(cat.clone());
        let session = db.connect();
        session
            .execute_with(
                &sql,
                &nra::QueryOptions::new()
                    .strategy(nra::Strategy::Original)
                    .collect_profile(true)
                    .slow_ms(0)
                    .slow_log(path),
            )
            .unwrap_or_else(|e| panic!("headline query {name} runs: {e}"));
    }
    let contents = std::fs::read_to_string(path).expect("read slow-query log");
    match nra::obs::slowlog::validate_lines(&contents) {
        Ok(n) => println!(
            "- slow-query log {} valid ({n} record(s))\n",
            path.display()
        ),
        Err(e) => {
            eprintln!("slow-query log {} INVALID: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// `--serve`: start the TCP front end over the nullable headline
/// catalog and hammer it with protocol clients — first one, then
/// `--clients` — running the headline queries (Q1/Q2A/Q2B, all valid on
/// the nullable schema) in rounds. Reports per-query p50/p99 latency as
/// observed by the clients, plus aggregate throughput; the N-client
/// phase is expected to sustain well above 1-client throughput since
/// read queries share the catalog lock and the plan cache.
fn serve_bench(nullable: &Catalog, args: &Args) {
    let grid = paper_grid(args.scale);
    let q1_outer = *grid.q1_outer.last().unwrap();
    let part = *grid.q23_part.last().unwrap();
    let queries: Vec<(&'static str, String)> = vec![
        ("Q1", q1_sql(nullable, q1_outer)),
        ("Q2A", q2_sql(nullable, Quant::Any, part, grid.q23_partsupp)),
        ("Q2B", q2_sql(nullable, Quant::All, part, grid.q23_partsupp)),
    ];
    let rounds = (args.reps * 8).max(8);

    let db = nra::Database::from_catalog(nullable.clone());
    let handle = nra_server::serve(db, "127.0.0.1:0").expect("bind ephemeral port");
    let addr = handle.addr();
    println!(
        "### Serving benchmark ({} round(s) of {} queries per client, scale {})\n",
        rounds,
        queries.len(),
        args.scale
    );
    println!("| clients | query | p50 (ms) | p99 (ms) | queries/s (all) |");
    println!("|---|---|---|---|---|");

    let mut throughput_1 = None;
    for clients in [1usize, args.clients.max(1)] {
        let phase_start = std::time::Instant::now();
        let workers: Vec<_> = (0..clients)
            .map(|_| {
                let queries = queries.clone();
                std::thread::spawn(move || {
                    let mut client =
                        nra_server::Client::connect(addr).expect("connect to bench server");
                    let mut lat: Vec<Vec<f64>> = vec![Vec::new(); queries.len()];
                    let mut rows: Vec<usize> = vec![0; queries.len()];
                    for _ in 0..rounds {
                        for (qi, (name, sql)) in queries.iter().enumerate() {
                            let start = std::time::Instant::now();
                            let resp = client
                                .query(sql)
                                .unwrap_or_else(|e| panic!("{name} over the wire: {e}"));
                            lat[qi].push(start.elapsed().as_secs_f64() * 1e3);
                            match rows[qi] {
                                0 => rows[qi] = resp.rows.len().max(1),
                                r => assert_eq!(
                                    r,
                                    resp.rows.len().max(1),
                                    "{name} answer changed across rounds"
                                ),
                            }
                        }
                    }
                    lat
                })
            })
            .collect();
        let mut per_query: Vec<Vec<f64>> = vec![Vec::new(); queries.len()];
        for w in workers {
            for (qi, lat) in w.join().expect("client thread").into_iter().enumerate() {
                per_query[qi].extend(lat);
            }
        }
        let phase_secs = phase_start.elapsed().as_secs_f64();
        let total_queries = clients * rounds * queries.len();
        let qps = total_queries as f64 / phase_secs;
        if clients == 1 {
            throughput_1 = Some(qps);
        }
        for (qi, (name, _)) in queries.iter().enumerate() {
            let lat = &mut per_query[qi];
            lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let p50 = lat[lat.len() / 2];
            let p99 = lat[(lat.len() * 99) / 100];
            println!("| {clients} | {name} | {p50:.3} | {p99:.3} | {qps:.1} |");
        }
        if clients > 1 {
            let base = throughput_1.expect("1-client phase ran first");
            println!(
                "\n{clients}-client throughput is {:.2}x the 1-client baseline\n",
                qps / base
            );
        }
    }
    handle.shutdown();
}

/// `--baseline-check`: exact diff on counters and I/O pages, tolerance
/// band on wall time, non-zero exit with a delta table on regression.
fn check_baselines(profiles: &[profile::QueryProfile], args: &Args) {
    let tol = baseline::Tolerance {
        wall_factor: args.wall_factor,
        ..baseline::Tolerance::default()
    };
    println!("### Baseline check\n");
    let mut failed = false;
    for qp in profiles {
        match baseline::check_profile(qp, &tol) {
            Ok(report) => {
                print!("{}", report.render_markdown());
                failed |= !report.passed();
            }
            Err(e) => {
                println!("- `{}`: **error** — {e}", qp.name);
                failed = true;
            }
        }
    }
    println!();
    if failed {
        eprintln!("baseline check FAILED (see delta tables above)");
        std::process::exit(1);
    }
    println!("baseline check passed\n");
}

/// `--trace`: run the paper's Query Q over the Section 2 example catalog
/// with query-lifecycle tracing, print the span tree, and write the JSONL
/// event stream as `TRACE_QQ.jsonl` (the CI artifact).
fn trace_query_q() {
    let db = nra::Database::from_catalog(nra::tpch::paper_example::rst_catalog());
    let out = db
        .connect()
        .execute_with(
            nra::tpch::paper_example::QUERY_Q,
            &nra::QueryOptions::new().collect_trace(true),
        )
        .expect("paper's Query Q runs");
    let trace = out.trace.expect("trace collected");
    println!("### Query-lifecycle trace of the paper's Query Q\n");
    println!("```");
    print!("{}", trace.render_tree());
    println!("-- {} row(s)", out.rows.len());
    println!("```\n");
    let path = std::env::current_dir().expect("cwd").join("TRACE_QQ.jsonl");
    std::fs::write(&path, trace.to_jsonl()).expect("write trace artifact");
    println!("- wrote {}\n", path.display());
}
