//! Shared harness for the paper-reproduction benchmarks.
//!
//! Both the Criterion benches (one per figure) and the `experiments`
//! binary (which prints paper-style tables) go through this module, so a
//! "series" is defined in exactly one place:
//!
//! * **native** — the System-A-style baseline plans (index probes are
//!   prepared before timing, as the paper's pre-built indexes are);
//! * **NR-original** — Algorithm 1 with separate nest and linking
//!   selection passes;
//! * **NR-optimized** — the single-sort pipelined cascade.

pub mod baseline;
pub mod harness;
pub mod profile;
pub mod trajectory;

use std::time::{Duration, Instant};

use nra_engine::baseline::nested_iter::NestedIterPlan;
use nra_engine::baseline::{self as native_baseline, BaselineChoice};
use nra_engine::EngineError;
use nra_sql::BoundQuery;
use nra_storage::iosim::{self, IoConfig, IoStats};
use nra_storage::{Catalog, Relation};
use nra_tpch::{generate, TpchConfig};

pub use nra_tpch::{q1_agg_sql, q1_sql, q2_sql, q3_sql, ExistsKind, Q3Corr, Quant};

/// The three series every figure plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Series {
    Native,
    NrOriginal,
    NrOptimized,
}

impl Series {
    pub const ALL: [Series; 3] = [Series::Native, Series::NrOriginal, Series::NrOptimized];

    pub fn label(self) -> &'static str {
        match self {
            Series::Native => "native",
            Series::NrOriginal => "nr-original",
            Series::NrOptimized => "nr-optimized",
        }
    }
}

/// A query prepared for repeated timed execution.
pub struct PreparedQuery<'a> {
    pub catalog: &'a Catalog,
    pub bound: BoundQuery,
    pub sql: String,
    /// Pre-built nested-iteration plan when that is the native choice
    /// (probe indexes built once, as in the paper's setup).
    native_plan: Option<NestedIterPlan>,
}

impl<'a> PreparedQuery<'a> {
    pub fn new(catalog: &'a Catalog, sql: String) -> Result<PreparedQuery<'a>, EngineError> {
        let bound = nra_sql::parse_and_bind(&sql, catalog)?;
        let native_plan = match native_baseline::choose(&bound, catalog) {
            BaselineChoice::NestedIteration => Some(NestedIterPlan::prepare(&bound, catalog)?),
            BaselineChoice::SemiAntiCascade | BaselineChoice::PositiveUnnest => None,
        };
        Ok(PreparedQuery {
            catalog,
            bound,
            sql,
            native_plan,
        })
    }

    /// Execute one series once.
    pub fn run(&self, series: Series) -> Result<Relation, EngineError> {
        match series {
            Series::Native => match &self.native_plan {
                Some(plan) => plan.run(),
                None => native_baseline::execute(&self.bound, self.catalog),
            },
            Series::NrOriginal => nra_core::execute_original(&self.bound, self.catalog),
            Series::NrOptimized => nra_core::execute_optimized(&self.bound, self.catalog),
        }
    }

    /// What the native series actually does (for table footnotes).
    pub fn native_plan_label(&self) -> String {
        native_baseline::describe(&self.bound, self.catalog)
    }

    /// Time one series: runs `reps` times, returns (mean seconds, rows).
    pub fn time(&self, series: Series, reps: usize) -> (f64, usize) {
        let mut rows = 0;
        let mut total = Duration::ZERO;
        for _ in 0..reps.max(1) {
            let start = Instant::now();
            let out = self.run(series).expect("benchmark query runs");
            total += start.elapsed();
            rows = out.len();
        }
        (total.as_secs_f64() / reps.max(1) as f64, rows)
    }

    /// Time one series robustly: two untimed warm-up runs, then `reps`
    /// timed runs, returning the *median* per-run seconds plus the row
    /// count. The trajectory recorder uses this instead of
    /// [`Self::time`]: on shared hosts a single scheduler stall can
    /// inflate one rep by 10-25%, which a mean never recovers from but
    /// a median shrugs off; the warm-up keeps cold caches out of the
    /// sample entirely.
    pub fn time_median(&self, series: Series, reps: usize) -> (f64, usize) {
        let mut rows = 0;
        for _ in 0..2 {
            rows = self.run(series).expect("benchmark query runs").len();
        }
        let mut samples: Vec<f64> = Vec::with_capacity(reps.max(1));
        for _ in 0..reps.max(1) {
            let start = Instant::now();
            let out = self.run(series).expect("benchmark query runs");
            samples.push(start.elapsed().as_secs_f64());
            rows = out.len();
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let mid = samples.len() / 2;
        let median = if samples.len() % 2 == 1 {
            samples[mid]
        } else {
            (samples[mid - 1] + samples[mid]) / 2.0
        };
        (median, rows)
    }
}

/// One measured point: CPU time (pure in-memory execution) plus simulated
/// disk I/O under the paper's environment (disk-resident data, small
/// buffer cache).
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    pub cpu_secs: f64,
    pub io: IoStats,
    /// Estimated elapsed seconds in the simulated environment:
    /// `cpu + seq_pages·t_seq + rand_misses·t_rand`.
    pub est_secs: f64,
    pub rows: usize,
}

impl<'a> PreparedQuery<'a> {
    /// Measure one series: CPU time averaged over `reps` runs with the
    /// simulator off, then one run with the simulator on (cold cache, as
    /// the paper flushed the buffer cache before each run).
    pub fn measure(&self, series: Series, reps: usize, io_cfg: &IoConfig) -> Measurement {
        let (cpu_secs, rows) = self.time(series, reps);
        iosim::enable(*io_cfg);
        self.run(series).expect("benchmark query runs");
        let io = iosim::disable().unwrap_or_default();
        Measurement {
            cpu_secs,
            io,
            est_secs: cpu_secs + io.estimated_secs(io_cfg),
            rows,
        }
    }
}

/// Total pages of every base table in the catalog under `cfg`.
pub fn catalog_pages(catalog: &Catalog, cfg: &IoConfig) -> u64 {
    catalog
        .table_names()
        .iter()
        .map(|name| {
            let t = catalog.table(name).unwrap();
            nra_storage::iosim::table_pages(t.len(), t.schema().len(), cfg)
        })
        .sum()
}

/// The I/O configuration matching the paper's environment *ratio*: the
/// testbed held ~1 GB of data against a 32 MB buffer cache, i.e. the cache
/// covers ~3.2% of the data. Absolute device parameters (8 KiB pages,
/// 0.1 ms/page sequential, 6 ms random) model the 2004-era SCSI disk.
pub fn io_config_for(catalog: &Catalog) -> IoConfig {
    let base = IoConfig::default();
    let total = catalog_pages(catalog, &base);
    IoConfig {
        cache_pages: ((total as f64 * 0.032).ceil() as usize).max(16),
        ..base
    }
}

/// The §5.2 in-text ablation: isolate the nest + linking-selection
/// processing cost from the (identical) join cost.
pub struct ProcessingCost {
    pub intermediate_rows: usize,
    pub original_secs: f64,
    pub optimized_secs: f64,
}

/// Measure the NR processing stage of a *linear* query: total strategy
/// time minus the shared unnesting-join time.
pub fn nr_processing_cost(
    catalog: &Catalog,
    sql: &str,
    reps: usize,
) -> Result<ProcessingCost, EngineError> {
    let bound = nra_sql::parse_and_bind(sql, catalog)?;
    let reps = reps.max(1);

    let time_it = |f: &dyn Fn() -> Result<usize, EngineError>| -> Result<f64, EngineError> {
        let mut total = Duration::ZERO;
        for _ in 0..reps {
            let start = Instant::now();
            f()?;
            total += start.elapsed();
        }
        Ok(total.as_secs_f64() / reps as f64)
    };

    let join_secs =
        time_it(&|| Ok(nra_core::optimize::pipeline::unnest_join_phase(&bound, catalog)?.len()))?;
    let intermediate_rows = nra_core::optimize::pipeline::unnest_join_phase(&bound, catalog)?.len();
    let original_total = time_it(&|| Ok(nra_core::execute_original(&bound, catalog)?.len()))?;
    let optimized_total = time_it(&|| Ok(nra_core::execute_optimized(&bound, catalog)?.len()))?;

    Ok(ProcessingCost {
        intermediate_rows,
        original_secs: (original_total - join_secs).max(0.0),
        optimized_secs: (optimized_total - join_secs).max(0.0),
    })
}

/// Build the shared benchmark catalog at a relative scale (1.0 = the
/// paper's block sizes).
pub fn bench_catalog(scale: f64) -> Catalog {
    generate(&TpchConfig::scaled(scale))
}

/// The catalog variant without NOT NULL constraints (Query 1 ablation).
pub fn bench_catalog_nullable(scale: f64) -> Catalog {
    generate(&TpchConfig::scaled(scale).nullable_links(0.0))
}

/// Scale for `cargo bench` runs (`NRA_BENCH_SCALE`, default 0.05 to keep
/// Criterion runs quick; the `experiments` binary defaults higher).
pub fn bench_scale() -> f64 {
    std::env::var("NRA_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05)
}

/// The paper's X-axis block-size grid, scaled: Query 1 sweeps the outer
/// block over 4K/8K/12K/16K (of 40K orders); Queries 2–3 sweep the first
/// block over 12K/24K/36K/48K (of 60K parts) with the second and third
/// fixed at 16K and 12K.
pub struct Grid {
    pub q1_outer: Vec<usize>,
    pub q23_part: Vec<usize>,
    pub q23_partsupp: usize,
}

pub fn paper_grid(scale: f64) -> Grid {
    let s = |n: f64| ((n * scale).round() as usize).max(4);
    Grid {
        q1_outer: vec![s(4_000.0), s(8_000.0), s(12_000.0), s(16_000.0)],
        q23_part: vec![s(12_000.0), s(24_000.0), s(36_000.0), s(48_000.0)],
        q23_partsupp: s(16_000.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepared_query_runs_all_series() {
        let cat = bench_catalog(0.005);
        let sql = q1_sql(&cat, 50);
        let pq = PreparedQuery::new(&cat, sql).unwrap();
        let mut rows = None;
        for series in Series::ALL {
            let out = pq.run(series).unwrap();
            match rows {
                None => rows = Some(out.len()),
                Some(r) => assert_eq!(r, out.len(), "{series:?}"),
            }
        }
    }

    #[test]
    fn processing_cost_is_measurable() {
        let cat = bench_catalog(0.01);
        let sql = q1_sql(&cat, 100);
        let cost = nr_processing_cost(&cat, &sql, 2).unwrap();
        assert!(cost.intermediate_rows > 0);
        assert!(cost.original_secs >= 0.0);
        assert!(cost.optimized_secs >= 0.0);
    }

    #[test]
    fn grid_scales() {
        let g = paper_grid(1.0);
        assert_eq!(g.q1_outer, vec![4_000, 8_000, 12_000, 16_000]);
        assert_eq!(g.q23_partsupp, 16_000);
    }
}
