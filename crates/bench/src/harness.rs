//! Minimal timing harness for the figure benches.
//!
//! Replaces criterion so the `[[bench]]` targets resolve and run with no
//! network access. Semantics are deliberately simple: per benchmark, a
//! short warm-up, then repeated timed runs until a measurement budget is
//! spent, reporting mean / min over the runs. The criterion-era knobs
//! (sample size, warm-up and measurement time) keep their defaults from
//! the old benches.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// A named group of benchmarks, printed as a markdown-ish block.
pub struct Group {
    name: String,
    warm_up: Duration,
    measurement: Duration,
    min_runs: usize,
}

/// Start a benchmark group (criterion's `benchmark_group`).
pub fn group(name: impl Into<String>) -> Group {
    let name = name.into();
    println!("\n## {name}");
    Group {
        name,
        warm_up: Duration::from_millis(300),
        measurement: Duration::from_secs(1),
        min_runs: 10,
    }
}

impl Group {
    /// Benchmark one closure under `label/param`, printing mean and min.
    pub fn bench(&mut self, label: &str, param: impl std::fmt::Display, mut f: impl FnMut()) {
        // Warm-up: run until the warm-up budget is spent (at least once).
        let start = Instant::now();
        while start.elapsed() < self.warm_up {
            f();
        }

        let mut runs: Vec<Duration> = Vec::with_capacity(self.min_runs);
        let budget = Instant::now();
        while runs.len() < self.min_runs || budget.elapsed() < self.measurement {
            let t = Instant::now();
            f();
            runs.push(t.elapsed());
            if runs.len() >= 10_000 {
                break;
            }
        }
        let total: Duration = runs.iter().sum();
        let mean = total / runs.len() as u32;
        let min = runs.iter().min().copied().unwrap_or_default();
        println!(
            "{}/{label}/{param}: mean {} min {} ({} runs)",
            self.name,
            fmt_duration(mean),
            fmt_duration(min),
            runs.len()
        );
    }

    /// Criterion-compat no-op: groups flush as they print.
    pub fn finish(self) {}
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else {
        format!("{:.3}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_the_closure() {
        let mut g = group("harness_selftest");
        g.warm_up = Duration::from_millis(1);
        g.measurement = Duration::from_millis(5);
        g.min_runs = 2;
        let mut n = 0u64;
        g.bench("noop", 0, || n += 1);
        assert!(n >= 2);
    }
}
