//! Error type for the execution engine.

use std::fmt;

use nra_sql::SqlError;
use nra_storage::StorageError;

/// Errors raised while compiling or executing a plan.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A column name could not be resolved against an operator's input
    /// schema (indicates a planning bug or a malformed bound query).
    Column(String),
    /// A feature outside the supported subset was requested.
    Unsupported(String),
    /// An operator tried to grow a materialized structure past the
    /// query's memory budget (`QueryOptions::mem_limit_bytes` or
    /// `NRA_MEM_LIMIT`). `requested` is the size of the allocation that
    /// tripped the budget, not the total.
    ResourceExhausted {
        operator: String,
        requested: u64,
        limit: u64,
    },
    /// The query was cancelled cooperatively (explicit [`CancelToken`]
    /// or `timeout_ms` deadline). `phase` names the checkpoint that
    /// observed the cancellation.
    ///
    /// [`CancelToken`]: crate::governor::CancelToken
    Cancelled {
        phase: String,
    },
    /// A worker (or the coordinating thread) panicked mid-query; the
    /// panic was contained, remaining morsels were drained, and the
    /// database is still usable. `site` is the nearest execution site.
    WorkerPanicked {
        site: String,
        message: String,
    },
    /// The admission controller refused the query: the concurrency or
    /// aggregate-memory cap stayed saturated for the whole queue
    /// timeout. `running` is the number of admitted queries observed
    /// when the wait gave up, `limit` the configured cap that blocked
    /// admission (`detail` says which).
    Admission {
        detail: String,
        waited_ms: u64,
        running: usize,
        limit: u64,
    },
    /// Unrecoverable damage in a persistent file (snapshot or
    /// write-ahead log). Raised by `Database::open` when recovery finds
    /// damage that the torn-tail rule cannot repair; the database
    /// refuses to start rather than silently drop committed data.
    Corruption {
        file: String,
        lsn: u64,
        detail: String,
    },
    /// A malformed configuration value (`NRA_FAULT`, `NRA_MEM_LIMIT`,
    /// `NRA_BATCH_ROWS`, ...). Reported up front instead of silently
    /// ignoring the setting.
    Config {
        var: String,
        value: String,
        detail: String,
    },
    Storage(StorageError),
    Sql(SqlError),
}

impl EngineError {
    pub fn unsupported(msg: impl Into<String>) -> EngineError {
        EngineError::Unsupported(msg.into())
    }

    /// Stable kebab-case variant name, used as the `variant` label on the
    /// `nra_errors_total` metric (and matching the profile `outcome`
    /// vocabulary where the two overlap).
    pub fn variant_name(&self) -> &'static str {
        match self {
            EngineError::Column(_) => "column",
            EngineError::Unsupported(_) => "unsupported",
            EngineError::ResourceExhausted { .. } => "resource-exhausted",
            EngineError::Cancelled { .. } => "cancelled",
            EngineError::WorkerPanicked { .. } => "worker-panicked",
            EngineError::Admission { .. } => "admission",
            EngineError::Corruption { .. } => "corruption",
            EngineError::Config { .. } => "config",
            EngineError::Storage(_) => "storage",
            EngineError::Sql(_) => "sql",
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Column(c) => write!(f, "cannot resolve column `{c}` in operator input"),
            EngineError::Unsupported(m) => write!(f, "unsupported: {m}"),
            EngineError::ResourceExhausted {
                operator,
                requested,
                limit,
            } => write!(
                f,
                "memory budget exhausted in `{operator}`: requested {requested} bytes, limit {limit} bytes"
            ),
            EngineError::Cancelled { phase } => {
                write!(f, "query cancelled during `{phase}`")
            }
            EngineError::WorkerPanicked { site, message } => {
                write!(f, "worker panicked at `{site}`: {message}")
            }
            EngineError::Admission {
                detail,
                waited_ms,
                running,
                limit,
            } => write!(
                f,
                "admission refused after {waited_ms} ms: {detail} \
                 ({running} running, limit {limit})"
            ),
            EngineError::Corruption { file, lsn, detail } => {
                write!(f, "corruption in `{file}` at lsn {lsn}: {detail}")
            }
            EngineError::Config { var, value, detail } => {
                write!(f, "invalid {var}=`{value}`: {detail}")
            }
            EngineError::Storage(e) => write!(f, "{e}"),
            EngineError::Sql(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Storage(e) => Some(e),
            EngineError::Sql(e) => Some(e),
            EngineError::Column(_)
            | EngineError::Unsupported(_)
            | EngineError::ResourceExhausted { .. }
            | EngineError::Cancelled { .. }
            | EngineError::WorkerPanicked { .. }
            | EngineError::Admission { .. }
            | EngineError::Corruption { .. }
            | EngineError::Config { .. } => None,
        }
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> EngineError {
        match e {
            // Keep corruption structured end-to-end: `Database::open`
            // and the recovery harness match on file/lsn/detail.
            StorageError::Corruption { file, lsn, detail } => {
                EngineError::Corruption { file, lsn, detail }
            }
            e => EngineError::Storage(e),
        }
    }
}

impl From<SqlError> for EngineError {
    fn from(e: SqlError) -> EngineError {
        EngineError::Sql(e)
    }
}
