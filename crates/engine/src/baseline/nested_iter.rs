//! Nested iteration — System A's tuple-at-a-time plan.
//!
//! For each tuple of an outer block that passes its local predicates, the
//! subquery is re-evaluated: the inner table is accessed through a hash
//! index on the equality correlated columns (the paper: "lineitem is
//! accessed by index rowid"), residual predicates are applied, the inner
//! block's own subqueries are evaluated recursively, and finally the
//! linking operator is folded under three-valued logic.
//!
//! [`NestedIterPlan::prepare`] builds the per-block access structures
//! (scans, compiled predicates, probe indexes) once; [`NestedIterPlan::run`]
//! iterates. Benchmarks measure `run` so that index construction — which
//! System A amortizes across queries — is not charged to the query, exactly
//! as in the paper's setup where indexes pre-exist.

use nra_sql::{BoundQuery, LinkOp, QueryBlock, SubqueryEdge};
use nra_storage::index::HashIndex;
use nra_storage::{Catalog, GroupKey, Relation, Schema, Truth, Value};

use crate::error::EngineError;
use crate::expr::{CExpr, CPred};
use crate::ops;

/// A prepared nested-iteration plan.
pub struct NestedIterPlan {
    root_base: Relation,
    edges: Vec<IterEdge>,
    select: Vec<CExpr>,
    out_schema: Schema,
    distinct: bool,
    /// `(rows, cols)` of the root block's base tables, charged to the I/O
    /// simulator as sequential scans per run.
    root_io: Vec<(usize, usize)>,
}

struct IterBlock {
    /// The block's FROM product (unfiltered for probed blocks, local
    /// predicates pre-applied for full-scan blocks).
    base: Relation,
    access: Access,
    /// Residual predicates (local + non-probe correlated), compiled against
    /// `env ++ base`.
    residual: CPred,
    edges: Vec<IterEdge>,
    /// Disk geometry for the I/O simulator: base tables as `(name, rows,
    /// cols)`; probed blocks are single-table.
    io_tables: Vec<(String, usize, usize)>,
}

enum Access {
    /// Scan every base row.
    Full,
    /// Probe a hash index with keys computed from the environment.
    Probe {
        index: HashIndex,
        outer_keys: Vec<CExpr>,
    },
}

struct IterEdge {
    link: LinkOp,
    outer_expr: Option<CExpr>,
    inner_expr: Option<CExpr>,
    block: IterBlock,
    /// Precomputed stats name: `eval` runs once per outer tuple, so it
    /// records under a fixed qualified name instead of opening spans.
    obs_name: String,
}

impl NestedIterPlan {
    pub fn prepare(query: &BoundQuery, catalog: &Catalog) -> Result<NestedIterPlan, EngineError> {
        let root_base = super::unnest::block_base(&query.root, catalog)?;
        let mut edges = Vec::new();
        for child in &query.root.children {
            edges.push(IterEdge::build(child, catalog, root_base.schema())?);
        }
        let select: Vec<CExpr> = query
            .root
            .select
            .iter()
            .map(|(_, e)| CExpr::compile(e, root_base.schema()))
            .collect::<Result<_, _>>()?;
        let out_schema = Schema::new(
            query
                .root
                .select
                .iter()
                .zip(&select)
                .map(|((name, _), c)| match c.as_col() {
                    Some(i) => {
                        let col = root_base.schema().column(i);
                        nra_storage::Column {
                            name: name.clone(),
                            ty: col.ty,
                            nullable: col.nullable,
                        }
                    }
                    None => nra_storage::Column::new(name.clone(), nra_storage::ColumnType::Int),
                })
                .collect(),
        );
        let root_io = query
            .root
            .tables
            .iter()
            .map(|t| {
                let table = catalog.table(&t.table)?;
                Ok((table.len(), table.schema().len()))
            })
            .collect::<Result<_, EngineError>>()?;
        Ok(NestedIterPlan {
            root_base,
            edges,
            select,
            out_schema,
            distinct: query.root.distinct,
            root_io,
        })
    }

    pub fn run(&self) -> Result<Relation, EngineError> {
        let mut sp = nra_obs::span(|| "scan".to_string());
        sp.rows_in(self.root_base.len());
        // The outer block is read once, sequentially.
        for &(rows, cols) in &self.root_io {
            nra_storage::iosim::charge_seq_scan(rows, cols);
        }
        let mut out = Relation::new(self.out_schema.clone());
        'rows: for row in self.root_base.rows() {
            for edge in &self.edges {
                if edge.eval(row) != Truth::True {
                    continue 'rows;
                }
            }
            out.push_unchecked(self.select.iter().map(|e| e.eval(row)).collect());
        }
        let out = if self.distinct { out.distinct() } else { out };
        sp.rows_out(out.len());
        Ok(out)
    }
}

impl IterEdge {
    fn build(
        edge: &SubqueryEdge,
        catalog: &Catalog,
        env: &Schema,
    ) -> Result<IterEdge, EngineError> {
        let block = IterBlock::build(&edge.block, catalog, env)?;
        let outer_expr = edge
            .outer_expr
            .as_ref()
            .map(|e| CExpr::compile(e, env))
            .transpose()?;
        let inner_schema = env.concat(block.base.schema());
        let inner_expr = edge
            .inner_expr
            .as_ref()
            .map(|e| CExpr::compile(e, &inner_schema))
            .transpose()?;
        Ok(IterEdge {
            link: edge.link,
            outer_expr,
            inner_expr,
            block,
            obs_name: format!("b{}/link", edge.block.id),
        })
    }

    /// Evaluate the linking predicate for one environment row, recording
    /// the probe and its 3VL outcome.
    fn eval(&self, env_row: &[Value]) -> Truth {
        let t = self.eval_inner(env_row);
        nra_obs::record(&self.obs_name, |s| {
            s.rows_in += 1;
            s.batches += 1;
            s.record_outcome(t);
            if t == Truth::True {
                s.rows_out += 1;
            }
        });
        t
    }

    fn eval_inner(&self, env_row: &[Value]) -> Truth {
        let outer_val = self.outer_expr.as_ref().map(|e| e.eval(env_row));

        let mut acc = match self.link {
            LinkOp::Exists | LinkOp::Some(_) => Truth::False,
            LinkOp::NotExists | LinkOp::All(_) | LinkOp::Agg { .. } => Truth::True,
        };
        // Aggregate links fold the whole candidate set; no early exit.
        let mut agg_values: Vec<Value> = Vec::new();

        let mut extended: Vec<Value> =
            Vec::with_capacity(env_row.len() + self.block.base.schema().len());

        let candidates: Candidates = match &self.block.access {
            Access::Full => {
                // Without an index, every evaluation of the subquery
                // re-reads the inner table(s).
                for (_, rows, cols) in &self.block.io_tables {
                    nra_storage::iosim::charge_seq_scan(*rows, *cols);
                }
                Candidates::All(self.block.base.len())
            }
            Access::Probe { index, outer_keys } => {
                let key = GroupKey(outer_keys.iter().map(|e| e.eval(env_row)).collect());
                let ids = index.probe(&key);
                if nra_storage::iosim::is_enabled() {
                    let (name, rows, cols) = &self.block.io_tables[0];
                    // One random index page, then one random page per
                    // matching row ("accessed by index rowid").
                    use std::hash::{Hash, Hasher};
                    let mut h = std::collections::hash_map::DefaultHasher::new();
                    key.hash(&mut h);
                    nra_storage::iosim::charge_index_probe(name, *rows, h.finish());
                    for &rid in ids {
                        nra_storage::iosim::charge_random_row(name, *cols, rid);
                    }
                }
                Candidates::Ids(ids)
            }
        };

        // Scope `consider` so its borrow of `agg_values` ends before the
        // aggregate fold below.
        let early = {
            let mut consider = |rid: usize, acc: &mut Truth| -> Option<Truth> {
                let inner_row = &self.block.base.rows()[rid];
                extended.clear();
                extended.extend(env_row.iter().cloned());
                extended.extend(inner_row.iter().cloned());
                if !self.block.residual.accepts(&extended) {
                    return None;
                }
                for child in &self.block.edges {
                    if child.eval(&extended) != Truth::True {
                        return None;
                    }
                }
                match self.link {
                    LinkOp::Exists => Some(Truth::True),
                    LinkOp::NotExists => Some(Truth::False),
                    LinkOp::Some(op) => {
                        let inner_val = self
                            .inner_expr
                            .as_ref()
                            .expect("SOME inner")
                            .eval(&extended);
                        let outer = outer_val.as_ref().expect("SOME outer");
                        *acc = acc.or(outer.sql_compare(op, &inner_val));
                        (*acc == Truth::True).then_some(Truth::True)
                    }
                    LinkOp::All(op) => {
                        let inner_val =
                            self.inner_expr.as_ref().expect("ALL inner").eval(&extended);
                        let outer = outer_val.as_ref().expect("ALL outer");
                        *acc = acc.and(outer.sql_compare(op, &inner_val));
                        (*acc == Truth::False).then_some(Truth::False)
                    }
                    LinkOp::Agg { .. } => {
                        agg_values.push(
                            self.inner_expr
                                .as_ref()
                                .map(|e| e.eval(&extended))
                                .unwrap_or(Value::Null),
                        );
                        None
                    }
                }
            };

            let mut early = None;
            match candidates {
                Candidates::All(n) => {
                    for rid in 0..n {
                        if let Some(t) = consider(rid, &mut acc) {
                            early = Some(t);
                            break;
                        }
                    }
                }
                Candidates::Ids(ids) => {
                    for &rid in ids {
                        if let Some(t) = consider(rid, &mut acc) {
                            early = Some(t);
                            break;
                        }
                    }
                }
            }
            early
        };
        if let Some(t) = early {
            return t;
        }
        if let LinkOp::Agg { op, func } = self.link {
            let folded = nra_storage::aggregate(func, agg_values.iter());
            let outer = outer_val.as_ref().expect("aggregate link has outer expr");
            return outer.sql_compare(op, &folded);
        }
        acc
    }
}

enum Candidates<'a> {
    All(usize),
    Ids(&'a [usize]),
}

impl IterBlock {
    fn build(
        block: &QueryBlock,
        catalog: &Catalog,
        env: &Schema,
    ) -> Result<IterBlock, EngineError> {
        // Single-table blocks with equality correlated predicates get an
        // index probe; everything else scans.
        let single_table = block.tables.len() == 1;

        // Materialize the FROM product, *without* local predicates when we
        // intend to probe (the index covers the raw table, as in System A;
        // local predicates are then applied residually per probe).
        let mut base: Option<Relation> = None;
        let mut io_tables = Vec::new();
        for t in &block.tables {
            let table = catalog.table(&t.table)?;
            io_tables.push((t.table.clone(), table.len(), table.schema().len()));
            let scanned = ops::scan(table, &t.exposed);
            base = Some(match base {
                None => scanned,
                Some(acc) => ops::cartesian(&acc, &scanned),
            });
        }
        let base = base.expect("binder guarantees at least one table");

        // Partition correlated predicates into probe keys and residuals.
        let mut probe_inner: Vec<usize> = Vec::new();
        let mut probe_outer: Vec<CExpr> = Vec::new();
        let mut residual_preds = Vec::new();
        for pred in &block.correlated_preds {
            if single_table {
                if let Some((a, op, b)) = pred.as_column_cmp() {
                    if op == nra_storage::CmpOp::Eq {
                        let (a_in, b_in) =
                            (base.schema().try_resolve(a), base.schema().try_resolve(b));
                        let (a_env, b_env) = (env.try_resolve(a), env.try_resolve(b));
                        match (a_in, a_env, b_in, b_env) {
                            (Some(i), None, None, Some(o)) => {
                                probe_inner.push(i);
                                probe_outer.push(CExpr::Col(o));
                                continue;
                            }
                            (None, Some(o), Some(i), None) => {
                                probe_inner.push(i);
                                probe_outer.push(CExpr::Col(o));
                                continue;
                            }
                            _ => {}
                        }
                    }
                }
            }
            residual_preds.push(pred.clone());
        }

        let env_and_base = env.concat(base.schema());
        let (access, base, residual) = if !probe_inner.is_empty() {
            let index = HashIndex::build(base.rows(), &probe_inner);
            // Local predicates are applied residually after the probe.
            let mut all = residual_preds;
            all.extend(block.local_preds.iter().cloned());
            let residual = CPred::compile_all(&all, &env_and_base)?;
            (
                Access::Probe {
                    index,
                    outer_keys: probe_outer,
                },
                base,
                residual,
            )
        } else {
            // Full scan: pre-apply local predicates; correlated residuals
            // stay per-row. Note the residual is compiled against
            // env ++ base before filtering (filtering does not change the
            // schema).
            let local = CPred::compile_all(&block.local_preds, base.schema())?;
            let filtered = ops::filter(&base, &local);
            let residual = CPred::compile_all(&residual_preds, &env_and_base)?;
            (Access::Full, filtered, residual)
        };

        let mut edges = Vec::new();
        let child_env = env.concat(base.schema());
        for child in &block.children {
            edges.push(IterEdge::build(child, catalog, &child_env)?);
        }
        Ok(IterBlock {
            base,
            access,
            residual,
            edges,
            io_tables,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use nra_sql::parse_and_bind;
    use nra_storage::{Column, ColumnType};

    /// Catalog with nullable columns and NULL data, where the antijoin
    /// transform would be wrong.
    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let mut r = Table::new(
            "r",
            Schema::new(vec![
                Column::new("a", ColumnType::Int),
                Column::new("b", ColumnType::Int),
            ]),
        );
        r.insert_many((0..25).map(|i| {
            vec![
                if i % 6 == 5 {
                    Value::Null
                } else {
                    Value::Int(i % 7)
                },
                Value::Int(i),
            ]
        }))
        .unwrap();
        cat.add_table(r).unwrap();
        let mut s = Table::new(
            "s",
            Schema::new(vec![
                Column::new("x", ColumnType::Int),
                Column::new("y", ColumnType::Int),
            ]),
        );
        s.insert_many((0..18).map(|i| {
            vec![
                Value::Int(i % 5),
                if i % 7 == 3 {
                    Value::Null
                } else {
                    Value::Int(i * 2)
                },
            ]
        }))
        .unwrap();
        cat.add_table(s).unwrap();
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                Column::new("u", ColumnType::Int),
                Column::new("v", ColumnType::Int),
            ]),
        );
        t.insert_many((0..14).map(|i| vec![Value::Int(i % 5), Value::Int(i * 3 % 11)]))
            .unwrap();
        cat.add_table(t).unwrap();
        cat
    }

    use nra_storage::Table;

    fn check(sql: &str) {
        let cat = catalog();
        let bq = parse_and_bind(sql, &cat).unwrap();
        let plan = NestedIterPlan::prepare(&bq, &cat).unwrap();
        let got = plan.run().unwrap();
        let want = reference::evaluate(&bq, &cat).unwrap();
        assert!(
            got.multiset_eq(&want),
            "nested iteration disagrees with oracle for {sql}\ngot:\n{got}\nwant:\n{want}"
        );
    }

    #[test]
    fn all_link_with_nulls() {
        check("select a, b from r where b > all (select y from s where s.x = r.a)");
    }

    #[test]
    fn not_in_with_nulls() {
        check("select a, b from r where a not in (select y from s where s.x = r.a)");
    }

    #[test]
    fn exists_probed() {
        check("select a, b from r where exists (select * from s where s.x = r.a and s.y > 4)");
    }

    #[test]
    fn two_level_mixed() {
        check(
            "select a, b from r where b > all (select y from s where s.x = r.a \
             and exists (select * from t where t.u = s.x and t.v < s.y))",
        );
    }

    #[test]
    fn non_adjacent_correlation() {
        check(
            "select a, b from r where b > all (select y from s where s.x = r.a \
             and exists (select * from t where t.u = r.a and t.v <> s.x))",
        );
    }

    #[test]
    fn non_equality_correlation_scans() {
        check("select a, b from r where exists (select * from s where s.x < r.a)");
    }

    #[test]
    fn uncorrelated_all() {
        check("select a, b from r where b >= all (select y from s where s.x = 2)");
    }
}
