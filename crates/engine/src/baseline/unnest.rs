//! Bottom-up semijoin/antijoin cascade — System A's set-oriented plan for
//! linear correlated queries with unnestable linking operators.
//!
//! For each edge, deepest first:
//!
//! * `EXISTS` / `θ SOME` / `IN`  → semijoin of the parent with the reduced
//!   child on the correlated predicates (plus the linking comparison as a
//!   residual for `θ SOME`). Null-safe unconditionally: a `NULL` on either
//!   side of any condition simply fails to match, which is exactly the
//!   three-valued result (`FALSE`/`UNKNOWN` both reject).
//! * `NOT EXISTS` → antijoin, null-safe for the same reason.
//! * `A θ ALL`/`NOT IN` → antijoin on the *negated* comparison
//!   (`A θ̄ B`). Correct **only** when neither `A` nor `B` can be `NULL` —
//!   which is why [`super::choose`] gates this plan on the `NOT NULL`
//!   constraints, mirroring the paper's System A observation.

use nra_sql::{BPred, BoundQuery, LinkOp, QueryBlock};
use nra_storage::{Catalog, Relation};

use crate::error::EngineError;
use crate::ops::{join, JoinKind, JoinSpec};
use crate::planning::split_join_conds;

/// Execute a linear correlated query bottom-up.
pub fn execute(query: &BoundQuery, catalog: &Catalog) -> Result<Relation, EngineError> {
    let reduced = reduce(&query.root, catalog)?;
    crate::planning::project_select(&reduced, &query.root)
}

/// Materialize a block's base (FROM product + local predicates).
pub(crate) fn block_base(block: &QueryBlock, catalog: &Catalog) -> Result<Relation, EngineError> {
    crate::planning::block_base(block, catalog)
}

/// Reduce a block to the set of its tuples satisfying all linking
/// predicates, by reducing children first and then semi/antijoining.
fn reduce(block: &QueryBlock, catalog: &Catalog) -> Result<Relation, EngineError> {
    let mut rel = block_base(block, catalog)?;

    for edge in &block.children {
        let _sc = nra_obs::scope(|| format!("b{}", edge.block.id));
        let child = reduce(&edge.block, catalog)?;

        // Join conditions: the child's correlated predicates, plus the
        // linking comparison for quantified links.
        let mut conds: Vec<BPred> = edge.block.correlated_preds.clone();
        let (kind, negate_link) = match edge.link {
            LinkOp::Exists => (JoinKind::Semi, false),
            LinkOp::Some(_) => (JoinKind::Semi, false),
            LinkOp::NotExists => (JoinKind::Anti, false),
            LinkOp::All(_) => (JoinKind::Anti, true),
            LinkOp::Agg { .. } => {
                return Err(EngineError::unsupported(
                    "the semijoin/antijoin cascade does not evaluate aggregate links",
                ))
            }
        };
        match edge.link {
            LinkOp::Some(op) => conds.push(BPred::Cmp {
                left: edge.outer_expr.clone().expect("SOME has outer expr"),
                op,
                right: edge.inner_expr.clone().expect("SOME has inner expr"),
            }),
            LinkOp::All(op) => {
                debug_assert!(negate_link);
                conds.push(BPred::Cmp {
                    left: edge.outer_expr.clone().expect("ALL has outer expr"),
                    op: op.negate(),
                    right: edge.inner_expr.clone().expect("ALL has inner expr"),
                });
            }
            _ => {}
        }

        let split = split_join_conds(&conds, rel.schema(), child.schema())?;
        rel = join(&rel, &child, &JoinSpec::new(kind, split.eq, split.residual))?;
    }
    Ok(rel)
}

/// General positive unnesting: a query whose linking operators are all
/// positive (`EXISTS`, `θ SOME/ANY`, `IN`) unnests into a cascade of
/// (generalized) semijoins even when the correlation is non-adjacent —
/// ancestor columns are kept alongside while descending (inner join),
/// deeper blocks reduce further, and a distinct on the prefix restores
/// semijoin multiplicity exactly (each prefix row is unique thanks to a
/// synthesized row id per block). This is the plan family System A uses
/// for the paper's Query 3c.
pub fn execute_positive(query: &BoundQuery, catalog: &Catalog) -> Result<Relation, EngineError> {
    if !query.root.children.is_empty() && !query.link_ops().iter().all(|op| op.is_positive()) {
        return Err(EngineError::unsupported(
            "positive unnesting applies only when every linking operator is positive",
        ));
    }
    let rel = with_rid(&block_base(&query.root, catalog)?, query.root.id);
    let rel = reduce_positive(&query.root, rel, catalog)?;
    crate::planning::project_select(&rel, &query.root)
}

/// Append a synthesized non-null row id (`__b{id}.rid`) to a relation.
fn with_rid(rel: &Relation, id: usize) -> Relation {
    let mut cols = rel.schema().columns().to_vec();
    cols.push(nra_storage::Column::not_null(
        format!("__b{id}.rid"),
        nra_storage::ColumnType::Int,
    ));
    let mut out = Relation::new(nra_storage::Schema::new(cols));
    for (i, row) in rel.rows().iter().enumerate() {
        let mut r = row.clone();
        r.push(nra_storage::Value::Int(i as i64));
        out.push_unchecked(r);
    }
    out
}

fn reduce_positive(
    block: &QueryBlock,
    mut rel: Relation,
    catalog: &Catalog,
) -> Result<Relation, EngineError> {
    for edge in &block.children {
        let _sc = nra_obs::scope(|| format!("b{}", edge.block.id));
        let child = with_rid(&block_base(&edge.block, catalog)?, edge.block.id);

        let mut conds: Vec<BPred> = edge.block.correlated_preds.clone();
        if let LinkOp::Some(op) = edge.link {
            conds.push(BPred::Cmp {
                left: edge.outer_expr.clone().expect("SOME has outer expr"),
                op,
                right: edge.inner_expr.clone().expect("SOME has inner expr"),
            });
        }

        let split = split_join_conds(&conds, rel.schema(), child.schema())?;
        if edge.block.children.is_empty() {
            rel = join(
                &rel,
                &child,
                &JoinSpec::new(JoinKind::Semi, split.eq, split.residual),
            )?;
        } else {
            let width = rel.schema().len();
            let joined = join(
                &rel,
                &child,
                &JoinSpec::new(JoinKind::Inner, split.eq, split.residual),
            )?;
            let reduced = reduce_positive(&edge.block, joined, catalog)?;
            let prefix: Vec<usize> = (0..width).collect();
            rel = reduced.project(&prefix).distinct();
        }
    }
    Ok(rel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use nra_sql::parse_and_bind;
    use nra_storage::{Column, ColumnType, Schema, Table, Value};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let mut r = Table::new(
            "r",
            Schema::new(vec![
                Column::not_null("a", ColumnType::Int),
                Column::not_null("b", ColumnType::Int),
            ]),
        );
        r.insert_many((0..20).map(|i| vec![Value::Int(i % 7), Value::Int(i)]))
            .unwrap();
        cat.add_table(r).unwrap();
        let mut s = Table::new(
            "s",
            Schema::new(vec![
                Column::not_null("x", ColumnType::Int),
                Column::not_null("y", ColumnType::Int),
            ]),
        );
        s.insert_many((0..15).map(|i| vec![Value::Int(i % 5), Value::Int(i * 2)]))
            .unwrap();
        cat.add_table(s).unwrap();
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                Column::not_null("u", ColumnType::Int),
                Column::not_null("v", ColumnType::Int),
            ]),
        );
        t.insert_many((0..12).map(|i| vec![Value::Int(i % 5), Value::Int(i * 3)]))
            .unwrap();
        cat.add_table(t).unwrap();
        cat
    }

    fn check(sql: &str) {
        let cat = catalog();
        let bq = parse_and_bind(sql, &cat).unwrap();
        let got = execute(&bq, &cat).unwrap();
        let want = reference::evaluate(&bq, &cat).unwrap();
        assert!(
            got.multiset_eq(&want),
            "cascade disagrees with oracle for {sql}\ngot:\n{got}\nwant:\n{want}"
        );
    }

    #[test]
    fn semijoin_matches_oracle_exists() {
        check("select a, b from r where exists (select * from s where s.x = r.a)");
    }

    #[test]
    fn antijoin_matches_oracle_not_exists() {
        check(
            "select a, b from r where not exists (select * from s where s.x = r.a and s.y > r.b)",
        );
    }

    #[test]
    fn some_link_with_comparison() {
        check("select a, b from r where b < some (select y from s where s.x = r.a)");
    }

    #[test]
    fn all_link_with_not_null_columns() {
        check("select a, b from r where b > all (select y from s where s.x = r.a)");
    }

    #[test]
    fn two_level_linear_cascade() {
        check(
            "select a, b from r where b > all (select y from s where s.x = r.a \
             and not exists (select * from t where t.u = s.x and t.v > s.y))",
        );
    }

    #[test]
    fn uncorrelated_subquery() {
        check("select a, b from r where a in (select x from s where y > 10)");
    }
}
