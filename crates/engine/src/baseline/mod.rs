//! The baseline: "System A"'s native strategies, as described in the
//! paper's Section 5.
//!
//! The commercial system the paper benchmarks against picks between two
//! plan families for non-aggregate subqueries:
//!
//! 1. **Set-oriented unnesting** into a cascade of semijoins/antijoins,
//!    bottom-up — possible when the query is linear correlated and every
//!    linking operator is positive or `NOT EXISTS`. An `ALL`/`NOT IN` link
//!    can only join this family when `NOT NULL` constraints on both the
//!    linking and linked attributes license the antijoin transform (the
//!    paper's Query 1 observation: with the constraint System A antijoins,
//!    without it — even if no NULL is actually present — it cannot).
//! 2. **Nested iteration** otherwise: for each outer tuple, re-evaluate the
//!    subquery, probing the inner table through an index on the equality
//!    correlated columns.
//!
//! [`choose`] reproduces that decision, [`execute`] runs the chosen plan.

pub mod nested_iter;
pub mod unnest;

use nra_sql::{BExpr, BoundQuery, LinkOp, QueryBlock, SubqueryEdge};
use nra_storage::{Catalog, Relation};

use crate::error::EngineError;

/// Which plan family the baseline optimizer picked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineChoice {
    /// Bottom-up semijoin/antijoin cascade (set-oriented).
    SemiAntiCascade,
    /// Generalized semijoin unnesting for all-positive queries (handles
    /// non-adjacent correlation — the paper's Query 3c case).
    PositiveUnnest,
    /// Tuple-at-a-time nested iteration with index probes.
    NestedIteration,
}

/// Reproduce System A's plan choice for `query`.
pub fn choose(query: &BoundQuery, catalog: &Catalog) -> BaselineChoice {
    if query.is_linear_correlated() && all_edges_unnestable(&query.root, catalog) {
        BaselineChoice::SemiAntiCascade
    } else if query.all_links_positive() && query.root.block_count() > 1 {
        BaselineChoice::PositiveUnnest
    } else {
        BaselineChoice::NestedIteration
    }
}

fn all_edges_unnestable(block: &QueryBlock, catalog: &Catalog) -> bool {
    block.children.iter().all(|edge| {
        edge_unnestable(block, edge, catalog) && all_edges_unnestable(&edge.block, catalog)
    })
}

/// Is a single linking edge transformable to a semijoin/antijoin?
fn edge_unnestable(parent: &QueryBlock, edge: &SubqueryEdge, catalog: &Catalog) -> bool {
    match edge.link {
        // EXISTS / θ SOME / IN -> semijoin; NOT EXISTS -> antijoin. These
        // are null-safe (see `unnest`).
        LinkOp::Exists | LinkOp::NotExists | LinkOp::Some(_) => true,
        // ALL / NOT IN -> antijoin only when neither side can be NULL.
        LinkOp::All(_) => {
            expr_not_null(edge.outer_expr.as_ref(), parent, catalog)
                && expr_not_null(edge.inner_expr.as_ref(), &edge.block, catalog)
        }
        // Aggregate subqueries are evaluated by nested iteration in the
        // baseline (a Kim-style group-by rewrite is future work there; the
        // nested relational engine handles them natively).
        LinkOp::Agg { .. } => false,
    }
}

/// Conservative NULL-freedom: a non-null literal, or a column declared
/// `NOT NULL` on its base table.
fn expr_not_null(expr: Option<&BExpr>, block: &QueryBlock, catalog: &Catalog) -> bool {
    let Some(expr) = expr else { return false };
    match expr {
        BExpr::Lit(v) => !v.is_null(),
        BExpr::Col(qualified) => {
            let Some((qualifier, col)) = qualified.rsplit_once('.') else {
                return false;
            };
            let Some(bt) = block.tables.iter().find(|t| t.exposed == qualifier) else {
                return false;
            };
            let Ok(table) = catalog.table(&bt.table) else {
                return false;
            };
            match table.schema().resolve(col) {
                Ok(idx) => !table.schema().column(idx).nullable,
                Err(_) => false,
            }
        }
        BExpr::Arith { .. } => false,
    }
}

impl BaselineChoice {
    /// Stable kebab-case name (used in trace events).
    pub fn name(self) -> &'static str {
        match self {
            BaselineChoice::SemiAntiCascade => "semi-anti-cascade",
            BaselineChoice::PositiveUnnest => "positive-unnest",
            BaselineChoice::NestedIteration => "nested-iteration",
        }
    }
}

/// Emit a `StrategyChosen` trace event for the baseline optimizer's
/// decision, with the rejected plan families and why System A's rules
/// exclude them. No-op when tracing is off.
fn emit_choice(query: &BoundQuery, catalog: &Catalog, choice: BaselineChoice) {
    nra_obs::trace::emit(|| {
        let unnestable = all_edges_unnestable(&query.root, catalog);
        let mut alternatives = Vec::new();
        let reason = match choice {
            BaselineChoice::SemiAntiCascade => {
                "linear correlated query, every link transformable: bottom-up \
                 semijoin/antijoin cascade (set-oriented unnesting)"
                    .to_string()
            }
            BaselineChoice::PositiveUnnest => {
                alternatives.push((
                    BaselineChoice::SemiAntiCascade.name().to_string(),
                    if unnestable {
                        "correlation is not linear (adjacent-block only)".to_string()
                    } else {
                        "an ALL/NOT IN edge lacks NOT NULL on both linking \
                         attributes, or an aggregate link blocks the antijoin"
                            .to_string()
                    },
                ));
                "all linking operators positive: generalized semijoin unnesting \
                 (tolerates non-adjacent correlation)"
                    .to_string()
            }
            BaselineChoice::NestedIteration => {
                alternatives.push((
                    BaselineChoice::SemiAntiCascade.name().to_string(),
                    if query.is_linear_correlated() {
                        "an ALL/NOT IN edge lacks NOT NULL on both linking \
                         attributes, or an aggregate link blocks the antijoin"
                            .to_string()
                    } else {
                        "query is not linear correlated".to_string()
                    },
                ));
                alternatives.push((
                    BaselineChoice::PositiveUnnest.name().to_string(),
                    "a negative or aggregate linking operator rules out pure \
                     semijoin unnesting"
                        .to_string(),
                ));
                "no unnesting transform applies: tuple-at-a-time nested \
                 iteration with index probes"
                    .to_string()
            }
        };
        nra_obs::trace::TraceEvent::StrategyChosen {
            block: query.root.id,
            name: format!("baseline/{}", choice.name()),
            reason,
            alternatives,
        }
    });
}

/// Execute `query` with the plan family System A would pick.
pub fn execute(query: &BoundQuery, catalog: &Catalog) -> Result<Relation, EngineError> {
    let choice = choose(query, catalog);
    emit_choice(query, catalog, choice);
    match choice {
        BaselineChoice::SemiAntiCascade => unnest::execute(query, catalog),
        BaselineChoice::PositiveUnnest => unnest::execute_positive(query, catalog),
        BaselineChoice::NestedIteration => {
            let plan = nested_iter::NestedIterPlan::prepare(query, catalog)?;
            plan.run()
        }
    }
}

/// Human-readable description of the chosen plan (used by the experiment
/// harness to label series the way the paper labels System A's plans).
pub fn describe(query: &BoundQuery, catalog: &Catalog) -> String {
    match choose(query, catalog) {
        BaselineChoice::SemiAntiCascade => {
            let mut parts = Vec::new();
            let mut walk: &QueryBlock = &query.root;
            while let Some(edge) = walk.children.first() {
                parts.push(match edge.link {
                    LinkOp::Exists | LinkOp::Some(_) => "semijoin",
                    LinkOp::NotExists | LinkOp::All(_) => "antijoin",
                    LinkOp::Agg { .. } => unreachable!("gated by edge_unnestable"),
                });
                walk = &edge.block;
            }
            format!("bottom-up {}", parts.join(" + "))
        }
        BaselineChoice::PositiveUnnest => "generalized semijoin unnesting".to_string(),
        BaselineChoice::NestedIteration => "nested iteration with index probes".to_string(),
    }
}

/// Sum of `NULL`-free checks used by tests: expose for unit testing.
#[doc(hidden)]
pub fn __expr_not_null_for_tests(
    expr: Option<&BExpr>,
    block: &QueryBlock,
    catalog: &Catalog,
) -> bool {
    expr_not_null(expr, block, catalog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nra_sql::parse_and_bind;
    use nra_storage::{Column, ColumnType, Schema, Table, Value};

    fn catalog(not_null_y: bool) -> Catalog {
        let mut cat = Catalog::new();
        let mut r = Table::new(
            "r",
            Schema::new(vec![
                Column::not_null("a", ColumnType::Int),
                Column::not_null("b", ColumnType::Int),
            ]),
        );
        r.insert_many(vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(2), Value::Int(20)],
        ])
        .unwrap();
        cat.add_table(r).unwrap();
        let y = if not_null_y {
            Column::not_null("y", ColumnType::Int)
        } else {
            Column::new("y", ColumnType::Int)
        };
        let mut s = Table::new("s", Schema::new(vec![Column::new("x", ColumnType::Int), y]));
        s.insert_many(vec![vec![Value::Int(1), Value::Int(5)]])
            .unwrap();
        cat.add_table(s).unwrap();
        cat
    }

    #[test]
    fn all_link_needs_not_null_for_cascade() {
        let sql = "select a from r where b > all (select y from s where s.x = r.a)";
        let with = catalog(true);
        let without = catalog(false);
        let bq_with = parse_and_bind(sql, &with).unwrap();
        let bq_without = parse_and_bind(sql, &without).unwrap();
        assert_eq!(choose(&bq_with, &with), BaselineChoice::SemiAntiCascade);
        assert_eq!(
            choose(&bq_without, &without),
            BaselineChoice::NestedIteration,
            "dropping the constraint forces nested iteration even though no NULL exists"
        );
    }

    #[test]
    fn positive_links_always_cascade() {
        let sql = "select a from r where b > any (select y from s where s.x = r.a)";
        let cat = catalog(false);
        let bq = parse_and_bind(sql, &cat).unwrap();
        assert_eq!(choose(&bq, &cat), BaselineChoice::SemiAntiCascade);
        assert!(describe(&bq, &cat).contains("semijoin"));
    }

    #[test]
    fn non_adjacent_positive_correlation_unnests_generally() {
        // Inner-most block references r (two levels up): not linear
        // correlated, but all links are positive — System A still unnests
        // (the paper's Query 3c behavior).
        let sql = "select a from r where exists (select * from s where s.x = r.a \
                   and exists (select * from s s2 where s2.x = r.b))";
        let cat = catalog(true);
        let bq = parse_and_bind(sql, &cat).unwrap();
        assert_eq!(choose(&bq, &cat), BaselineChoice::PositiveUnnest);
        assert!(describe(&bq, &cat).contains("generalized semijoin"));
    }

    #[test]
    fn non_adjacent_negative_correlation_forces_iteration() {
        let sql = "select a from r where exists (select * from s where s.x = r.a \
                   and not exists (select * from s s2 where s2.x = r.b))";
        let cat = catalog(true);
        let bq = parse_and_bind(sql, &cat).unwrap();
        assert_eq!(choose(&bq, &cat), BaselineChoice::NestedIteration);
    }
}
