//! The reference oracle: direct tuple-iteration SQL semantics.
//!
//! This evaluator executes a bound query exactly the way the SQL standard
//! defines nested queries — for every candidate tuple of an outer block,
//! the subquery is (conceptually) re-evaluated and the linking predicate
//! applied under three-valued logic. It uses no indexes and no rewrites, so
//! it is deliberately simple and slow: its job is to be *obviously correct*
//! and serve as the ground truth every other strategy (baseline and nested
//! relational) is tested against.

use nra_sql::{BoundQuery, LinkOp, QueryBlock, SubqueryEdge};
use nra_storage::{Catalog, Relation, Schema, Truth, Value};

use crate::error::EngineError;
use crate::expr::{CExpr, CPred};
use crate::ops;

/// Evaluate `query` against `catalog` by brute-force tuple iteration.
pub fn evaluate(query: &BoundQuery, catalog: &Catalog) -> Result<Relation, EngineError> {
    let root = OracleBlock::build(&query.root, catalog, &Schema::empty())?;

    let select_exprs: Vec<CExpr> = query
        .root
        .select
        .iter()
        .map(|(_, e)| CExpr::compile(e, root.base.schema()))
        .collect::<Result<_, _>>()?;
    let out_schema = Schema::new(
        query
            .root
            .select
            .iter()
            .map(|(name, expr)| {
                // Preserve the source column's type when the item is a bare
                // column; computed expressions get Float-compatible Int.
                match expr
                    .as_column()
                    .and_then(|c| root.base.schema().try_resolve(c))
                {
                    Some(idx) => {
                        let c = root.base.schema().column(idx);
                        nra_storage::Column {
                            name: name.clone(),
                            ty: c.ty,
                            nullable: true,
                        }
                    }
                    None => nra_storage::Column::new(name.clone(), nra_storage::ColumnType::Int),
                }
            })
            .collect(),
    );

    let mut out = Relation::new(out_schema);
    for row in root.base.rows() {
        if root.links_hold(row)? {
            out.push_unchecked(select_exprs.iter().map(|e| e.eval(row)).collect());
        }
    }
    if query.root.distinct {
        out = out.distinct();
    }
    Ok(out)
}

/// A block prepared for oracle evaluation.
struct OracleBlock {
    /// Cartesian product of the block's tables, filtered by its local
    /// predicates (`Δ_i` in the paper).
    base: Relation,
    /// Correlated predicates, compiled against `env ++ base`.
    corr: CPred,
    edges: Vec<OracleEdge>,
}

struct OracleEdge {
    link: LinkOp,
    /// Compiled against the *environment* (ancestor rows concatenated).
    outer_expr: Option<CExpr>,
    /// Compiled against `env ++ child base`.
    inner_expr: Option<CExpr>,
    block: OracleBlock,
}

impl OracleBlock {
    fn build(
        block: &QueryBlock,
        catalog: &Catalog,
        env: &Schema,
    ) -> Result<OracleBlock, EngineError> {
        // Materialize the block's FROM product.
        let mut base: Option<Relation> = None;
        for t in &block.tables {
            let scanned = ops::scan(catalog.table(&t.table)?, &t.exposed);
            base = Some(match base {
                None => scanned,
                Some(acc) => ops::cartesian(&acc, &scanned),
            });
        }
        let mut base = base.expect("binder guarantees at least one table");
        let local = CPred::compile_all(&block.local_preds, base.schema())?;
        base = ops::filter(&base, &local);

        let env_and_base = env.concat(base.schema());
        let corr = CPred::compile_all(&block.correlated_preds, &env_and_base)?;

        let mut edges = Vec::new();
        for child in &block.children {
            edges.push(OracleEdge::build(child, catalog, &env_and_base)?);
        }
        Ok(OracleBlock { base, corr, edges })
    }

    /// Do all linking predicates of this block hold for `env_row`
    /// (ancestor values ++ this block's candidate row)?
    fn links_hold(&self, env_row: &[Value]) -> Result<bool, EngineError> {
        for edge in &self.edges {
            if edge.eval(env_row)? != Truth::True {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

impl OracleEdge {
    fn build(
        edge: &SubqueryEdge,
        catalog: &Catalog,
        env: &Schema,
    ) -> Result<OracleEdge, EngineError> {
        let block = OracleBlock::build(&edge.block, catalog, env)?;
        let outer_expr = edge
            .outer_expr
            .as_ref()
            .map(|e| CExpr::compile(e, env))
            .transpose()?;
        let inner_schema = env.concat(block.base.schema());
        let inner_expr = edge
            .inner_expr
            .as_ref()
            .map(|e| CExpr::compile(e, &inner_schema))
            .transpose()?;
        Ok(OracleEdge {
            link: edge.link,
            outer_expr,
            inner_expr,
            block,
        })
    }

    /// Evaluate the linking predicate for one outer environment row, with
    /// standard-SQL three-valued folding:
    ///
    /// * `A θ SOME q`: `OR` over the subquery rows, `FALSE` on empty.
    /// * `A θ ALL q`: `AND` over the subquery rows, `TRUE` on empty.
    /// * `[NOT] EXISTS q`: two-valued emptiness.
    fn eval(&self, env_row: &[Value]) -> Result<Truth, EngineError> {
        let outer_val = self.outer_expr.as_ref().map(|e| e.eval(env_row));

        let mut acc = match self.link {
            LinkOp::Exists => Truth::False,
            LinkOp::NotExists => Truth::True,
            LinkOp::Some(_) => Truth::False,
            LinkOp::All(_) | LinkOp::Agg { .. } => Truth::True,
        };
        // Aggregate links fold the whole set; no early exit.
        let mut agg_values: Vec<Value> = Vec::new();

        let mut extended: Vec<Value> =
            Vec::with_capacity(env_row.len() + self.block.base.schema().len());
        for inner_row in self.block.base.rows() {
            extended.clear();
            extended.extend(env_row.iter().cloned());
            extended.extend(inner_row.iter().cloned());
            // The inner row qualifies if the correlated predicates hold and
            // its own subqueries (if any) accept it.
            if !self.block.corr.accepts(&extended) {
                continue;
            }
            if !self.block.links_hold(&extended)? {
                continue;
            }
            match self.link {
                LinkOp::Exists => return Ok(Truth::True),
                LinkOp::NotExists => return Ok(Truth::False),
                LinkOp::Some(op) => {
                    let inner_val = self
                        .inner_expr
                        .as_ref()
                        .expect("quantified link has inner expr")
                        .eval(&extended);
                    let outer = outer_val.as_ref().expect("quantified link has outer expr");
                    acc = acc.or(outer.sql_compare(op, &inner_val));
                    if acc == Truth::True {
                        return Ok(Truth::True);
                    }
                }
                LinkOp::All(op) => {
                    let inner_val = self
                        .inner_expr
                        .as_ref()
                        .expect("quantified link has inner expr")
                        .eval(&extended);
                    let outer = outer_val.as_ref().expect("quantified link has outer expr");
                    acc = acc.and(outer.sql_compare(op, &inner_val));
                    if acc == Truth::False {
                        return Ok(Truth::False);
                    }
                }
                LinkOp::Agg { .. } => {
                    // COUNT(*) has no argument: any placeholder row marker
                    // works, since `aggregate` only counts rows for it.
                    agg_values.push(
                        self.inner_expr
                            .as_ref()
                            .map(|e| e.eval(&extended))
                            .unwrap_or(Value::Null),
                    );
                }
            }
        }
        if let LinkOp::Agg { op, func } = self.link {
            let folded = nra_storage::aggregate(func, agg_values.iter());
            let outer = outer_val.as_ref().expect("aggregate link has outer expr");
            return Ok(outer.sql_compare(op, &folded));
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nra_sql::parse_and_bind;
    use nra_storage::{Column, ColumnType, Schema, Table};

    /// Small catalog: r(a, b) and s(x, y), with NULLs sprinkled in.
    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let mut r = Table::new(
            "r",
            Schema::new(vec![
                Column::new("a", ColumnType::Int),
                Column::new("b", ColumnType::Int),
            ]),
        );
        r.insert_many(vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(2), Value::Int(20)],
            vec![Value::Int(3), Value::Null],
            vec![Value::Null, Value::Int(40)],
        ])
        .unwrap();
        cat.add_table(r).unwrap();

        let mut s = Table::new(
            "s",
            Schema::new(vec![
                Column::new("x", ColumnType::Int),
                Column::new("y", ColumnType::Int),
            ]),
        );
        s.insert_many(vec![
            vec![Value::Int(1), Value::Int(5)],
            vec![Value::Int(1), Value::Null],
            vec![Value::Int(2), Value::Int(100)],
        ])
        .unwrap();
        cat.add_table(s).unwrap();
        cat
    }

    fn run(sql: &str) -> Relation {
        let cat = catalog();
        let bq = parse_and_bind(sql, &cat).unwrap();
        evaluate(&bq, &cat).unwrap()
    }

    #[test]
    fn flat_query() {
        let out = run("select a from r where b >= 20");
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn exists_correlated() {
        let out = run("select a from r where exists (select * from s where s.x = r.a)");
        // a=1 and a=2 have partners; 3 and NULL do not.
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn not_exists_correlated() {
        let out = run("select a from r where not exists (select * from s where s.x = r.a)");
        assert_eq!(out.len(), 2, "a=3 and a=NULL kept");
    }

    #[test]
    fn gt_all_with_null_in_subquery_result() {
        // b > ALL (y of s where x = a):
        //   a=1 -> {5, NULL}: 10>5 true, 10>NULL unknown -> unknown -> drop.
        //   a=2 -> {100}: 20>100 false -> drop.
        //   a=3 -> {} -> TRUE (empty ALL) -> keep.
        //   a=NULL -> {} -> TRUE -> keep.
        let out = run("select a from r where b > all (select y from s where s.x = r.a)");
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn gt_some_with_null() {
        // b > SOME {5, NULL} for a=1: 10>5 true -> keep.
        // a=2: 20>100 false -> drop. a=3, a=NULL: empty -> false -> drop.
        let out = run("select a from r where b > some (select y from s where s.x = r.a)");
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn not_in_blocked_by_null() {
        // a NOT IN (select x from s): x = {1, 1, 2}. a=3: 3<>1,3<>1,3<>2
        // all true -> keep. a=NULL: unknown -> drop. a=1, a=2: false.
        let out = run("select a from r where a not in (select x from s)");
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::Int(3));
    }

    #[test]
    fn not_in_with_null_in_subquery_drops_everything() {
        // a NOT IN (select y from s where x = 1): y = {5, NULL}. Every a
        // compares unknown against NULL -> nothing qualifies.
        let out = run("select a from r where a not in (select y from s where s.x = 1)");
        assert_eq!(out.len(), 0);
    }

    #[test]
    fn uncorrelated_in() {
        let out = run("select a from r where a in (select x from s)");
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn distinct_projection() {
        let out = run("select distinct x from s where x in (select a from r)");
        assert_eq!(out.len(), 2, "x=1 deduplicated");
    }

    #[test]
    fn two_level_nesting() {
        // r tuples whose a has an s partner whose y is above all r.b values
        // with matching a... exercises env propagation through two levels.
        let out = run(
            "select a from r where exists (select * from s where s.x = r.a \
             and s.y > all (select b from r r2 where r2.a = s.x))",
        );
        // a=1: s rows {(1,5),(1,NULL)}; inner ALL for x=1: {10}; 5>10 false,
        // NULL>10 unknown -> neither s row qualifies -> drop.
        // a=2: s row (2,100); inner: {20}; 100>20 true -> keep.
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::Int(2));
    }
}
