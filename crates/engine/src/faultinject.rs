//! Deterministic fault injection at named execution sites.
//!
//! The governor's recovery guarantees — structured errors instead of
//! process death, no poisoned state — are only trustworthy if every
//! failure path is actually exercised. This module lets tests (and the
//! `NRA_FAULT` environment variable) plant a synthetic failure at a
//! *named site* in the execution stack:
//!
//! * [`JOIN_BUILD`] — right before a hash join materializes its build
//!   tables;
//! * [`NEST_FLUSH`] — right before a `υ` nest flushes its group buffers
//!   into nested tuples;
//! * [`LINKING_SCAN`] — at the start of a linking/pseudo-selection scan
//!   (including the fused cascades);
//! * [`PARTITION_MERGE`] — inside [`crate::exec::run_partitioned`],
//!   before partition results are merged back in partition order.
//!
//! A fault spec is `site:nth[:kind[:ms]]` — the `nth` pass through the
//! site (1-based, counted on shared atomics so the count is independent
//! of worker scheduling) triggers the fault. Kinds: `alloc` (a synthetic
//! allocation failure surfacing as
//! [`EngineError::ResourceExhausted`]), `panic` (an injected panic the
//! worker harness must contain), and `delay` (sleep `ms` milliseconds —
//! for widening cancellation windows in tests). Multiple specs are
//! comma-separated: `NRA_FAULT=join-build:1:panic,nest-flush:2:alloc`.
//!
//! Sites compile to [`hit`], which is an `#[inline]` check of a
//! thread-local flag armed only while a governor with a non-empty
//! [`FaultPlan`] is installed — release-mode overhead when disabled is a
//! single thread-local byte load.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::EngineError;
use crate::governor;

/// Hash-join build-table materialization.
pub const JOIN_BUILD: &str = "join-build";
/// Nest (`υ`) group-buffer flush (hash, sort, and fused variants).
pub const NEST_FLUSH: &str = "nest-flush";
/// Linking / pseudo-selection scan start (including fused cascades).
pub const LINKING_SCAN: &str = "linking-scan";
/// Partition-result merge in `exec::run_partitioned`.
pub const PARTITION_MERGE: &str = "partition-merge";

/// Every named fault site, for test matrices.
pub const SITES: [&str; 4] = [JOIN_BUILD, NEST_FLUSH, LINKING_SCAN, PARTITION_MERGE];

/// Synthetic request size reported by an injected allocation failure.
pub const INJECTED_ALLOC_BYTES: u64 = 1 << 40;

/// What an armed fault does when its site is hit for the `nth` time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Report a synthetic allocation failure
    /// ([`EngineError::ResourceExhausted`] with
    /// [`INJECTED_ALLOC_BYTES`] requested).
    AllocFail,
    /// Panic (`panic!`) — exercises the worker containment paths.
    Panic,
    /// Sleep for the given number of milliseconds, then continue.
    Delay(u64),
}

impl FaultKind {
    fn parse(kind: &str, ms: Option<u64>) -> Option<FaultKind> {
        match kind {
            "alloc" => Some(FaultKind::AllocFail),
            "panic" => Some(FaultKind::Panic),
            "delay" => Some(FaultKind::Delay(ms.unwrap_or(10))),
            _ => None,
        }
    }
}

/// One armed fault: trigger `kind` on the `nth` (1-based) pass through
/// `site`. The hit counter is shared across all workers of the query via
/// the governor's `Arc`, so "nth pass" is counted globally.
#[derive(Debug)]
pub struct FaultSpec {
    pub site: String,
    pub nth: u64,
    pub kind: FaultKind,
    hits: AtomicU64,
}

/// The set of faults armed for one query. Empty by default; built from
/// `QueryOptions::fault(..)` or parsed from `NRA_FAULT`.
#[derive(Debug, Default)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Arm `kind` on the `nth` (1-based; 0 is treated as 1) pass through
    /// `site`.
    pub fn push(&mut self, site: impl Into<String>, nth: u64, kind: FaultKind) {
        self.specs.push(FaultSpec {
            site: site.into(),
            nth: nth.max(1),
            kind,
            hits: AtomicU64::new(0),
        });
    }

    /// Parse a comma-separated `site:nth[:kind[:ms]]` list (the
    /// `NRA_FAULT` grammar). Malformed entries are skipped — fault
    /// injection is a test harness, not an input surface worth failing
    /// a query over.
    pub fn parse(spec: &str) -> FaultPlan {
        let mut plan = FaultPlan::default();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let mut parts = entry.split(':');
            let (Some(site), Some(nth)) = (parts.next(), parts.next()) else {
                continue;
            };
            let Ok(nth) = nth.trim().parse::<u64>() else {
                continue;
            };
            let kind = parts.next().unwrap_or("panic").trim();
            let ms = parts.next().and_then(|m| m.trim().parse::<u64>().ok());
            let Some(kind) = FaultKind::parse(kind, ms) else {
                continue;
            };
            plan.push(site.trim(), nth, kind);
        }
        plan
    }

    /// The plan described by `NRA_FAULT`, empty when unset.
    pub fn from_env() -> FaultPlan {
        match std::env::var("NRA_FAULT") {
            Ok(spec) => FaultPlan::parse(&spec),
            Err(_) => FaultPlan::default(),
        }
    }

    /// Count one pass through `site` and trigger any fault whose turn it
    /// is. `limit` is the installed memory limit (reported by synthetic
    /// allocation failures).
    pub(crate) fn observe(&self, site: &str, limit: u64) -> Result<(), EngineError> {
        for spec in &self.specs {
            if spec.site != site {
                continue;
            }
            let n = spec.hits.fetch_add(1, Ordering::Relaxed) + 1;
            if n != spec.nth {
                continue;
            }
            match spec.kind {
                FaultKind::AllocFail => {
                    nra_obs::trace::emit(|| nra_obs::trace::TraceEvent::Governor {
                        action: "fault-injected".into(),
                        detail: format!("{site} (alloc-fail, hit {n})"),
                    });
                    return Err(EngineError::ResourceExhausted {
                        operator: site.to_string(),
                        requested: INJECTED_ALLOC_BYTES,
                        limit,
                    });
                }
                FaultKind::Panic => {
                    nra_obs::trace::emit(|| nra_obs::trace::TraceEvent::Governor {
                        action: "fault-injected".into(),
                        detail: format!("{site} (panic, hit {n})"),
                    });
                    panic!("injected fault at `{site}` (hit {n})");
                }
                FaultKind::Delay(ms) => {
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                }
            }
        }
        Ok(())
    }
}

/// Pass through the named fault site. A single thread-local flag check
/// when no fault plan is armed (the common case, including all release
/// deployments with `NRA_FAULT` unset).
#[inline]
pub fn hit(site: &str) -> Result<(), EngineError> {
    if !governor::faults_armed() {
        return Ok(());
    }
    governor::observe_fault(site)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_grammar() {
        let plan = FaultPlan::parse("join-build:1:panic, nest-flush:3:alloc,linking-scan:2");
        assert_eq!(plan.specs.len(), 3);
        assert_eq!(plan.specs[0].site, "join-build");
        assert_eq!(plan.specs[0].nth, 1);
        assert_eq!(plan.specs[0].kind, FaultKind::Panic);
        assert_eq!(plan.specs[1].kind, FaultKind::AllocFail);
        // Kind defaults to panic.
        assert_eq!(plan.specs[2].kind, FaultKind::Panic);
    }

    #[test]
    fn parse_skips_malformed_entries() {
        let plan = FaultPlan::parse("nonsense,,join-build:x:panic,join-build:2:explode,ok:1:alloc");
        assert_eq!(plan.specs.len(), 1);
        assert_eq!(plan.specs[0].site, "ok");
    }

    #[test]
    fn parse_delay_with_ms() {
        let plan = FaultPlan::parse("nest-flush:1:delay:25");
        assert_eq!(plan.specs[0].kind, FaultKind::Delay(25));
        let plan = FaultPlan::parse("nest-flush:1:delay");
        assert_eq!(plan.specs[0].kind, FaultKind::Delay(10));
    }

    #[test]
    fn nth_counting_triggers_once() {
        let mut plan = FaultPlan::default();
        plan.push(JOIN_BUILD, 2, FaultKind::AllocFail);
        assert!(plan.observe(JOIN_BUILD, 0).is_ok());
        let err = plan.observe(JOIN_BUILD, 42).unwrap_err();
        match err {
            EngineError::ResourceExhausted {
                operator,
                requested,
                limit,
            } => {
                assert_eq!(operator, JOIN_BUILD);
                assert_eq!(requested, INJECTED_ALLOC_BYTES);
                assert_eq!(limit, 42);
            }
            other => panic!("unexpected error {other:?}"),
        }
        // Only the nth pass triggers; later passes sail through.
        assert!(plan.observe(JOIN_BUILD, 0).is_ok());
        // Other sites are never affected.
        assert!(plan.observe(NEST_FLUSH, 0).is_ok());
    }

    #[test]
    fn hit_is_inert_without_governor() {
        for site in SITES {
            assert!(hit(site).is_ok());
        }
    }
}
