//! Morsel-style partition scheduler for the nested-relational pipeline.
//!
//! The paper's operators are built from hash-partitionable primitives —
//! outer hash joins on correlation predicates, `nest` grouped by the same
//! outer keys, and per-tuple linking/pseudo-selections — so each of them
//! decomposes into independent units of work. This module provides the
//! shared machinery those operators use to run the units on worker
//! threads while keeping the output **byte-identical** to the sequential
//! engine:
//!
//! * a thread-local worker budget ([`threads`]), settable per query
//!   ([`set_threads`], driven by `QueryOptions::threads`) with an
//!   `NRA_THREADS` environment fallback;
//! * a morsel-size floor ([`partitions`]) so tiny inputs never pay the
//!   spawn cost;
//! * [`run_partitioned`] — scoped fork/join (`std::thread::scope`, no
//!   external dependencies) that returns worker results *in partition
//!   order* and merges worker-side [`nra_obs`] collections back into the
//!   coordinating thread deterministically;
//! * [`chunks`] — contiguous input splitting, so concatenating worker
//!   outputs in partition order reproduces the sequential scan order;
//! * [`sort_rows_by`] — a stable parallel merge sort whose output equals
//!   `slice::sort_by` exactly (stable-sort output is unique).
//!
//! Determinism argument: every parallel operator in this engine follows
//! one of two shapes. Either it chunks a scan whose per-tuple results are
//! independent and concatenates the chunk outputs in partition order
//! (linking selections, join probes), or it hash-partitions on a grouping
//! key so that all tuples of one group land in one partition and the
//! groups are re-emitted in a globally defined order (hash-join builds,
//! hash nest). Both shapes reproduce the sequential output order, not
//! just the same multiset.

use std::cell::Cell;
use std::cmp::Ordering;
use std::ops::Range;

/// Default minimum rows per worker before an operator partitions.
/// Spawning a scoped thread costs ~10µs; below this floor the sequential
/// path is faster and (more importantly for tests) the committed
/// baselines at small scales keep their sequential shape.
pub const DEFAULT_MORSEL_ROWS: usize = 1024;

/// Hard cap on the worker budget (a runaway `NRA_THREADS` should not
/// spawn thousands of threads).
pub const MAX_THREADS: usize = 64;

thread_local! {
    /// Per-thread override of the worker budget (`None` = consult the
    /// `NRA_THREADS` environment variable).
    static THREADS: Cell<Option<usize>> = const { Cell::new(None) };
    /// Per-thread morsel floor (tests shrink it to exercise the parallel
    /// paths on small corpora).
    static MORSEL_ROWS: Cell<usize> = const { Cell::new(DEFAULT_MORSEL_ROWS) };
}

fn env_threads() -> Option<usize> {
    std::env::var("NRA_THREADS")
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
}

/// The worker budget for operators on this thread: the per-query override
/// when set, else `NRA_THREADS`, else 1 (sequential). Always in
/// `1..=MAX_THREADS`.
pub fn threads() -> usize {
    THREADS
        .with(Cell::get)
        .or_else(env_threads)
        .unwrap_or(1)
        .clamp(1, MAX_THREADS)
}

/// Restores the previous worker budget on drop (see [`set_threads`]).
#[must_use = "dropping the guard immediately restores the previous budget"]
pub struct ThreadsGuard {
    prev: Option<usize>,
}

impl Drop for ThreadsGuard {
    fn drop(&mut self) {
        THREADS.with(|t| t.set(self.prev));
    }
}

/// Set (or with `None`, clear) this thread's worker-budget override for
/// the lifetime of the returned guard. Queries install this from
/// `QueryOptions::threads`; clearing falls back to `NRA_THREADS`.
pub fn set_threads(n: Option<usize>) -> ThreadsGuard {
    ThreadsGuard {
        prev: THREADS.with(|t| t.replace(n.map(|n| n.clamp(1, MAX_THREADS)))),
    }
}

/// The current morsel floor (minimum rows per worker).
pub fn morsel_rows() -> usize {
    MORSEL_ROWS.with(Cell::get)
}

/// Restores the previous morsel floor on drop (see [`set_morsel_rows`]).
#[must_use = "dropping the guard immediately restores the previous floor"]
pub struct MorselGuard {
    prev: usize,
}

impl Drop for MorselGuard {
    fn drop(&mut self) {
        MORSEL_ROWS.with(|m| m.set(self.prev));
    }
}

/// Override the morsel floor for the lifetime of the returned guard.
/// Agreement tests set this to 1 so that even 10-row corpora exercise
/// every parallel code path.
pub fn set_morsel_rows(n: usize) -> MorselGuard {
    MorselGuard {
        prev: MORSEL_ROWS.with(|m| m.replace(n.max(1))),
    }
}

/// How many partitions a scan of `rows` rows should use: bounded by the
/// worker budget and by the morsel floor, never zero. With the default
/// budget of 1 this is always 1, which keeps every operator on its
/// original sequential path.
pub fn partitions(rows: usize) -> usize {
    threads().min(rows / morsel_rows().max(1)).max(1)
}

/// Split `0..len` into `parts` contiguous ranges of near-equal size (the
/// first `len % parts` ranges carry one extra element). Concatenating
/// per-range outputs in order reproduces a sequential scan of `0..len`.
pub fn chunks(len: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1);
    let (base, extra) = (len / parts, len % parts);
    let mut out = Vec::with_capacity(parts);
    let mut lo = 0;
    for p in 0..parts {
        let hi = lo + base + usize::from(p < extra);
        out.push(lo..hi);
        lo = hi;
    }
    out
}

/// Run `f(p)` for every partition `p in 0..parts` and return the results
/// in partition order.
///
/// Partition 0 runs inline on the calling thread (its observability spans
/// reach the parent collector directly); partitions `1..` run on scoped
/// worker threads under an [`nra_obs::Handoff`], and their collected
/// profiles are absorbed into the parent collector *in partition order*
/// after the join — so merged counters are deterministic regardless of
/// how the OS schedules the workers. With `parts == 1` this degenerates
/// to a plain call with zero thread overhead.
pub fn run_partitioned<T, F>(parts: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if parts <= 1 {
        return vec![f(0)];
    }
    let handoff = nra_obs::Handoff::capture();
    let mut results: Vec<T> = Vec::with_capacity(parts);
    let mut profiles: Vec<Option<nra_obs::Profile>> = Vec::with_capacity(parts - 1);
    std::thread::scope(|s| {
        let handles: Vec<_> = (1..parts)
            .map(|p| {
                let handoff = &handoff;
                let f = &f;
                s.spawn(move || handoff.run(|| f(p)))
            })
            .collect();
        results.push(f(0));
        for handle in handles {
            let (out, profile) = handle.join().expect("exec worker panicked");
            results.push(out);
            profiles.push(profile);
        }
    });
    for profile in profiles.into_iter().flatten() {
        nra_obs::absorb(&profile);
    }
    results
}

/// Stable parallel sort of `rows`, byte-identical to
/// `rows.sort_by(&cmp)`: contiguous chunks are stably sorted on workers,
/// then adjacent sorted runs are merged pairwise with ties always taken
/// from the left (lower-index) run. The composition is a stable sort, and
/// a stable sort's output permutation is unique, so the result equals the
/// sequential one. Falls back to `sort_by` when [`partitions`] says the
/// input is too small.
///
/// Sorting happens on an index vector (workers share `&rows` read-only),
/// and the final permutation moves each row exactly once.
pub fn sort_rows_by<T, F>(rows: &mut Vec<T>, cmp: F)
where
    T: Sync + Send + Default,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let parts = partitions(rows.len());
    if parts <= 1 {
        rows.sort_by(&cmp);
        return;
    }
    let n = rows.len();
    let mut runs = chunks(n, parts);
    let mut src: Vec<u32> = Vec::with_capacity(n);
    let mut dst: Vec<u32> = vec![0; n];
    {
        let view = &rows[..];
        let cmp = &cmp;
        // Phase 1: stable-sort each chunk's indices in parallel. Equal
        // rows keep ascending index order within a chunk.
        let sorted = run_partitioned(parts, |p| {
            let r = runs[p].clone();
            let mut idx: Vec<u32> = (r.start as u32..r.end as u32).collect();
            idx.sort_by(|&a, &b| cmp(&view[a as usize], &view[b as usize]));
            idx
        });
        for chunk in sorted {
            src.extend_from_slice(&chunk);
        }
        // Phase 2: merge adjacent runs pairwise until one run remains.
        // Each pair writes a disjoint slice of `dst`; ties take the left
        // run, whose indices are the smaller ones — overall stability.
        while runs.len() > 1 {
            let mut next_runs = Vec::with_capacity(runs.len().div_ceil(2));
            std::thread::scope(|s| {
                let mut dst_rest: &mut [u32] = &mut dst;
                let mut i = 0;
                while i < runs.len() {
                    if i + 1 == runs.len() {
                        // Odd run out: carried over verbatim.
                        let r = runs[i].clone();
                        let (out, rest) = dst_rest.split_at_mut(r.len());
                        dst_rest = rest;
                        out.copy_from_slice(&src[r.clone()]);
                        next_runs.push(r);
                        i += 1;
                        continue;
                    }
                    let (a, b) = (runs[i].clone(), runs[i + 1].clone());
                    let merged = a.start..b.end;
                    let (out, rest) = dst_rest.split_at_mut(merged.len());
                    dst_rest = rest;
                    let src = &src;
                    s.spawn(move || {
                        merge_runs(&src[a], &src[b], out, |&x, &y| {
                            cmp(&view[x as usize], &view[y as usize])
                        })
                    });
                    next_runs.push(merged);
                    i += 2;
                }
            });
            std::mem::swap(&mut src, &mut dst);
            runs = next_runs;
        }
    }
    // Phase 3: apply the permutation. Every index occurs exactly once, so
    // each row is taken out of the old vector exactly once.
    let mut old = std::mem::take(rows);
    rows.extend(src.iter().map(|&i| std::mem::take(&mut old[i as usize])));
}

/// Stable two-run merge: on ties the left run wins.
fn merge_runs<T: Copy>(a: &[T], b: &[T], out: &mut [T], mut cmp: impl FnMut(&T, &T) -> Ordering) {
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        let take_left = i < a.len() && (j >= b.len() || cmp(&a[i], &b[j]) != Ordering::Greater);
        if take_left {
            *slot = a[i];
            i += 1;
        } else {
            *slot = b[j];
            j += 1;
        }
    }
}

/// Hash a grouping key with the standard library's deterministic
/// `DefaultHasher` (fixed-key SipHash — the same key always lands in the
/// same partition, across runs and across build/probe sides).
pub fn key_hash<K: std::hash::Hash>(key: &K) -> u64 {
    use std::hash::Hasher;
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run `f` with a given budget and a morsel floor of 1.
    fn with_budget<T>(threads: usize, f: impl FnOnce() -> T) -> T {
        let _t = set_threads(Some(threads));
        let _m = set_morsel_rows(1);
        f()
    }

    #[test]
    fn default_budget_is_sequential() {
        // No override and (in the test environment) no NRA_THREADS: every
        // operator sees exactly one partition.
        if std::env::var("NRA_THREADS").is_err() {
            assert_eq!(threads(), 1);
            assert_eq!(partitions(1 << 20), 1);
        }
    }

    #[test]
    fn morsel_floor_keeps_small_inputs_sequential() {
        let _t = set_threads(Some(8));
        assert_eq!(partitions(DEFAULT_MORSEL_ROWS - 1), 1);
        assert_eq!(partitions(2 * DEFAULT_MORSEL_ROWS), 2);
        assert_eq!(partitions(100 * DEFAULT_MORSEL_ROWS), 8);
    }

    #[test]
    fn chunks_cover_contiguously() {
        for (len, parts) in [(10, 3), (3, 10), (0, 4), (7, 1), (8, 4)] {
            let cs = chunks(len, parts);
            assert_eq!(cs.len(), parts.max(1));
            let mut expect = 0;
            for c in &cs {
                assert_eq!(c.start, expect);
                expect = c.end;
            }
            assert_eq!(expect, len);
        }
    }

    #[test]
    fn run_partitioned_returns_in_partition_order() {
        let out = with_budget(4, || {
            run_partitioned(4, |p| {
                // Make later partitions finish first.
                std::thread::sleep(std::time::Duration::from_millis(4 - p as u64));
                p * 10
            })
        });
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn run_partitioned_merges_worker_stats_deterministically() {
        nra_obs::enable();
        with_budget(4, || {
            run_partitioned(4, |p| {
                let mut sp = nra_obs::span(|| "work".to_string());
                sp.rows_out(p + 1);
            })
        });
        let profile = nra_obs::disable().unwrap();
        let s = profile.get("work").unwrap();
        assert_eq!(s.invocations, 4);
        assert_eq!(s.rows_out, 1 + 2 + 3 + 4);
    }

    #[test]
    fn parallel_sort_equals_sequential_stable_sort() {
        // Pairs sorted by the first component only: the second component
        // witnesses stability.
        let mut rng = 0x2545_F491u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for len in [0usize, 1, 2, 7, 100, 1000, 4097] {
            let data: Vec<(u64, usize)> = (0..len).map(|i| (next() % 17, i)).collect();
            let mut expect = data.clone();
            expect.sort_by_key(|a| a.0);
            for t in [2, 3, 4] {
                let mut got = data.clone();
                with_budget(t, || sort_rows_by(&mut got, |a, b| a.0.cmp(&b.0)));
                assert_eq!(got, expect, "len={len} threads={t}");
            }
        }
    }

    #[test]
    fn key_hash_is_stable_across_calls() {
        assert_eq!(key_hash(&42u64), key_hash(&42u64));
        assert_ne!(key_hash(&1u64), key_hash(&2u64));
    }
}
