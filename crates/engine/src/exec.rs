//! Morsel-style partition scheduler for the nested-relational pipeline.
//!
//! The paper's operators are built from hash-partitionable primitives —
//! outer hash joins on correlation predicates, `nest` grouped by the same
//! outer keys, and per-tuple linking/pseudo-selections — so each of them
//! decomposes into independent units of work. This module provides the
//! shared machinery those operators use to run the units on worker
//! threads while keeping the output **byte-identical** to the sequential
//! engine:
//!
//! * a thread-local worker budget ([`threads`]), settable per query
//!   ([`set_threads`], driven by `QueryOptions::threads`) with an
//!   `NRA_THREADS` environment fallback;
//! * a morsel-size floor ([`partitions`]) so tiny inputs never pay the
//!   spawn cost;
//! * [`run_partitioned`] — scoped fork/join (`std::thread::scope`, no
//!   external dependencies) that returns worker results *in partition
//!   order*, merges worker-side [`nra_obs`] collections back into the
//!   coordinating thread deterministically, carries the installed
//!   [`crate::governor`] onto every worker, and **contains worker
//!   panics**: a panic anywhere inside a partition closure surfaces as
//!   [`EngineError::WorkerPanicked`] after all sibling partitions have
//!   drained, never as a process abort;
//! * [`chunks`] — contiguous input splitting, so concatenating worker
//!   outputs in partition order reproduces the sequential scan order;
//! * [`sort_rows_by`] — a stable parallel merge sort whose output equals
//!   `slice::sort_by` exactly (stable-sort output is unique).
//!
//! Determinism argument: every parallel operator in this engine follows
//! one of two shapes. Either it chunks a scan whose per-tuple results are
//! independent and concatenates the chunk outputs in partition order
//! (linking selections, join probes), or it hash-partitions on a grouping
//! key so that all tuples of one group land in one partition and the
//! groups are re-emitted in a globally defined order (hash-join builds,
//! hash nest). Both shapes reproduce the sequential output order, not
//! just the same multiset. Errors are deterministic too: when several
//! partitions fail, the error of the lowest-numbered partition is the
//! one reported (first-error-wins in partition order, not in completion
//! order).

use std::cell::Cell;
use std::cmp::Ordering;
use std::ops::Range;

use crate::error::EngineError;
use crate::{faultinject, governor};

/// Default minimum rows per worker before an operator partitions.
/// Spawning a scoped thread costs ~10µs; below this floor the sequential
/// path is faster and (more importantly for tests) the committed
/// baselines at small scales keep their sequential shape.
pub const DEFAULT_MORSEL_ROWS: usize = 1024;

/// Hard cap on the worker budget (a runaway `NRA_THREADS` should not
/// spawn thousands of threads).
pub const MAX_THREADS: usize = 64;

thread_local! {
    /// Per-thread override of the worker budget (`None` = consult the
    /// `NRA_THREADS` environment variable).
    static THREADS: Cell<Option<usize>> = const { Cell::new(None) };
    /// Per-thread morsel floor (tests shrink it to exercise the parallel
    /// paths on small corpora).
    static MORSEL_ROWS: Cell<usize> = const { Cell::new(DEFAULT_MORSEL_ROWS) };
}

fn env_threads() -> Option<usize> {
    std::env::var("NRA_THREADS")
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
}

/// The worker budget for operators on this thread: the per-query override
/// when set, else `NRA_THREADS`, else 1 (sequential). Always in
/// `1..=MAX_THREADS`.
pub fn threads() -> usize {
    THREADS
        .with(Cell::get)
        .or_else(env_threads)
        .unwrap_or(1)
        .clamp(1, MAX_THREADS)
}

/// Restores the previous worker budget on drop (see [`set_threads`]).
#[must_use = "dropping the guard immediately restores the previous budget"]
pub struct ThreadsGuard {
    prev: Option<usize>,
}

impl Drop for ThreadsGuard {
    fn drop(&mut self) {
        THREADS.with(|t| t.set(self.prev));
    }
}

/// Set (or with `None`, clear) this thread's worker-budget override for
/// the lifetime of the returned guard. Queries install this from
/// `QueryOptions::threads`; clearing falls back to `NRA_THREADS`.
pub fn set_threads(n: Option<usize>) -> ThreadsGuard {
    ThreadsGuard {
        prev: THREADS.with(|t| t.replace(n.map(|n| n.clamp(1, MAX_THREADS)))),
    }
}

/// The current morsel floor (minimum rows per worker).
pub fn morsel_rows() -> usize {
    MORSEL_ROWS.with(Cell::get)
}

/// Restores the previous morsel floor on drop (see [`set_morsel_rows`]).
#[must_use = "dropping the guard immediately restores the previous floor"]
pub struct MorselGuard {
    prev: usize,
}

impl Drop for MorselGuard {
    fn drop(&mut self) {
        MORSEL_ROWS.with(|m| m.set(self.prev));
    }
}

/// Override the morsel floor for the lifetime of the returned guard.
/// Agreement tests set this to 1 so that even 10-row corpora exercise
/// every parallel code path.
pub fn set_morsel_rows(n: usize) -> MorselGuard {
    MorselGuard {
        prev: MORSEL_ROWS.with(|m| m.replace(n.max(1))),
    }
}

/// How many partitions a scan of `rows` rows should use: bounded by the
/// worker budget and by the morsel floor, never zero. With the default
/// budget of 1 this is always 1, which keeps every operator on its
/// original sequential path.
pub fn partitions(rows: usize) -> usize {
    threads().min(rows / morsel_rows().max(1)).max(1)
}

/// Split `0..len` into `parts` contiguous ranges of near-equal size (the
/// first `len % parts` ranges carry one extra element). Concatenating
/// per-range outputs in order reproduces a sequential scan of `0..len`.
pub fn chunks(len: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1);
    let (base, extra) = (len / parts, len % parts);
    let mut out = Vec::with_capacity(parts);
    let mut lo = 0;
    for p in 0..parts {
        let hi = lo + base + usize::from(p < extra);
        out.push(lo..hi);
        lo = hi;
    }
    out
}

/// Best-effort rendering of a panic payload for
/// [`EngineError::WorkerPanicked`] messages (`panic!` payloads are
/// `&str` or `String` in practice).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `f`, converting a panic into a structured
/// [`EngineError::WorkerPanicked`] instead of unwinding further. Used
/// around every partition closure (including partition 0, which runs
/// inline on the coordinator) so a panicking operator can never abort
/// the process or poison the scheduler.
fn contain<T>(site: &str, f: impl FnOnce() -> Result<T, EngineError>) -> Result<T, EngineError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(payload) => Err(EngineError::WorkerPanicked {
            site: site.to_string(),
            message: panic_message(payload.as_ref()),
        }),
    }
}

/// Run `f(p)` for every partition `p in 0..parts` and return the results
/// in partition order.
///
/// Partition 0 runs inline on the calling thread (its observability spans
/// reach the parent collector directly); partitions `1..` run on scoped
/// worker threads under an [`nra_obs::Handoff`] plus the calling thread's
/// [`crate::governor`], and their collected profiles are absorbed into
/// the parent collector *in partition order* after the join — so merged
/// counters are deterministic regardless of how the OS schedules the
/// workers. With `parts == 1` this degenerates to a plain call with zero
/// thread overhead.
///
/// Failure semantics: a cancelled query fails at dispatch (before any
/// spawn); a partition that returns `Err` or panics does not interrupt
/// its siblings — every partition runs to completion (remaining morsels
/// drain, worker collectors unwind cleanly) and the error of the
/// lowest-numbered failing partition is returned.
pub fn run_partitioned<T, F>(parts: usize, f: F) -> Result<Vec<T>, EngineError>
where
    T: Send,
    F: Fn(usize) -> Result<T, EngineError> + Sync,
{
    governor::checkpoint("partition-dispatch")?;
    faultinject::hit(faultinject::PARTITION_MERGE)?;
    if parts <= 1 {
        return Ok(vec![contain("partition-0", || f(0))?]);
    }
    let handoff = nra_obs::Handoff::capture();
    let gov = governor::current();
    let batch_rows = crate::vec::batch_rows_override();
    let mut results: Vec<Result<T, EngineError>> = Vec::with_capacity(parts);
    let mut profiles: Vec<Option<nra_obs::Profile>> = Vec::with_capacity(parts - 1);
    std::thread::scope(|s| {
        let handles: Vec<_> = (1..parts)
            .map(|p| {
                let handoff = &handoff;
                let gov = gov.clone();
                let f = &f;
                s.spawn(move || {
                    let _gov = governor::install(gov);
                    let _bsz = crate::vec::set_batch_rows(batch_rows);
                    // Contain inside the handoff so the worker's
                    // collector is torn down normally even on panic.
                    handoff.run(|| {
                        contain("worker", || {
                            governor::checkpoint("worker-start")?;
                            f(p)
                        })
                    })
                })
            })
            .collect();
        results.push(contain("partition-0", || f(0)));
        for handle in handles {
            match handle.join() {
                Ok((out, profile)) => {
                    results.push(out);
                    profiles.push(profile);
                }
                // `contain` already catches panics inside the closure;
                // this arm only fires if unwinding escaped it (e.g. a
                // panic in the handoff teardown itself).
                Err(payload) => {
                    results.push(Err(EngineError::WorkerPanicked {
                        site: "worker".to_string(),
                        message: panic_message(payload.as_ref()),
                    }));
                    profiles.push(None);
                }
            }
        }
    });
    // Worker profiles merge in partition order even when some partition
    // failed: the counters that were collected stay deterministic, and
    // nothing leaks into the next query.
    for profile in profiles.into_iter().flatten() {
        nra_obs::absorb(&profile);
    }
    results.into_iter().collect()
}

/// Stable parallel sort of `rows`, byte-identical to
/// `rows.sort_by(&cmp)`: contiguous chunks are stably sorted on workers,
/// then adjacent sorted runs are merged pairwise with ties always taken
/// from the left (lower-index) run. The composition is a stable sort, and
/// a stable sort's output permutation is unique, so the result equals the
/// sequential one. Falls back to `sort_by` when [`partitions`] says the
/// input is too small.
///
/// Sorting happens on an index vector (workers share `&rows` read-only),
/// and the final permutation moves each row exactly once. The index
/// scratch (two `u32` vectors) is charged to the governor as sort
/// scratch before it is allocated.
pub fn sort_rows_by<T, F>(rows: &mut Vec<T>, cmp: F) -> Result<(), EngineError>
where
    T: Sync + Send + Default,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let parts = partitions(rows.len());
    if parts <= 1 {
        governor::checkpoint("sort")?;
        rows.sort_by(&cmp);
        return Ok(());
    }
    governor::charge("sort", 8 * rows.len() as u64)?;
    let n = rows.len();
    let mut runs = chunks(n, parts);
    let mut src: Vec<u32> = Vec::with_capacity(n);
    let mut dst: Vec<u32> = vec![0; n];
    {
        let view = &rows[..];
        let cmp = &cmp;
        // Phase 1: stable-sort each chunk's indices in parallel. Equal
        // rows keep ascending index order within a chunk.
        let sorted = run_partitioned(parts, |p| {
            let r = runs[p].clone();
            let mut idx: Vec<u32> = (r.start as u32..r.end as u32).collect();
            idx.sort_by(|&a, &b| cmp(&view[a as usize], &view[b as usize]));
            Ok(idx)
        })?;
        for chunk in sorted {
            src.extend_from_slice(&chunk);
        }
        // Phase 2: merge adjacent runs pairwise until one run remains.
        // Each pair writes a disjoint slice of `dst`; ties take the left
        // run, whose indices are the smaller ones — overall stability.
        while runs.len() > 1 {
            governor::checkpoint("sort-merge")?;
            let mut next_runs = Vec::with_capacity(runs.len().div_ceil(2));
            std::thread::scope(|s| {
                let mut dst_rest: &mut [u32] = &mut dst;
                let mut i = 0;
                while i < runs.len() {
                    if i + 1 == runs.len() {
                        // Odd run out: carried over verbatim.
                        let r = runs[i].clone();
                        let (out, rest) = dst_rest.split_at_mut(r.len());
                        dst_rest = rest;
                        out.copy_from_slice(&src[r.clone()]);
                        next_runs.push(r);
                        i += 1;
                        continue;
                    }
                    let (a, b) = (runs[i].clone(), runs[i + 1].clone());
                    let merged = a.start..b.end;
                    let (out, rest) = dst_rest.split_at_mut(merged.len());
                    dst_rest = rest;
                    let src = &src;
                    s.spawn(move || {
                        merge_runs(&src[a], &src[b], out, |&x, &y| {
                            cmp(&view[x as usize], &view[y as usize])
                        })
                    });
                    next_runs.push(merged);
                    i += 2;
                }
            });
            std::mem::swap(&mut src, &mut dst);
            runs = next_runs;
        }
    }
    // Phase 3: apply the permutation. Every index occurs exactly once, so
    // each row is taken out of the old vector exactly once.
    let mut old = std::mem::take(rows);
    rows.extend(src.iter().map(|&i| std::mem::take(&mut old[i as usize])));
    Ok(())
}

/// Stable two-run merge: on ties the left run wins.
fn merge_runs<T: Copy>(a: &[T], b: &[T], out: &mut [T], mut cmp: impl FnMut(&T, &T) -> Ordering) {
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        let take_left = i < a.len() && (j >= b.len() || cmp(&a[i], &b[j]) != Ordering::Greater);
        if take_left {
            *slot = a[i];
            i += 1;
        } else {
            *slot = b[j];
            j += 1;
        }
    }
}

/// Hash a grouping key with the standard library's deterministic
/// `DefaultHasher` (fixed-key SipHash — the same key always lands in the
/// same partition, across runs and across build/probe sides).
pub fn key_hash<K: std::hash::Hash>(key: &K) -> u64 {
    use std::hash::Hasher;
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Run `f` with a given budget and a morsel floor of 1.
    fn with_budget<T>(threads: usize, f: impl FnOnce() -> T) -> T {
        let _t = set_threads(Some(threads));
        let _m = set_morsel_rows(1);
        f()
    }

    #[test]
    fn default_budget_is_sequential() {
        // No override and (in the test environment) no NRA_THREADS: every
        // operator sees exactly one partition.
        if std::env::var("NRA_THREADS").is_err() {
            assert_eq!(threads(), 1);
            assert_eq!(partitions(1 << 20), 1);
        }
    }

    #[test]
    fn morsel_floor_keeps_small_inputs_sequential() {
        let _t = set_threads(Some(8));
        assert_eq!(partitions(DEFAULT_MORSEL_ROWS - 1), 1);
        assert_eq!(partitions(2 * DEFAULT_MORSEL_ROWS), 2);
        assert_eq!(partitions(100 * DEFAULT_MORSEL_ROWS), 8);
    }

    #[test]
    fn chunks_cover_contiguously() {
        for (len, parts) in [(10, 3), (3, 10), (0, 4), (7, 1), (8, 4)] {
            let cs = chunks(len, parts);
            assert_eq!(cs.len(), parts.max(1));
            let mut expect = 0;
            for c in &cs {
                assert_eq!(c.start, expect);
                expect = c.end;
            }
            assert_eq!(expect, len);
        }
    }

    #[test]
    fn run_partitioned_returns_in_partition_order() -> Result<(), EngineError> {
        let out = with_budget(4, || {
            run_partitioned(4, |p| {
                // Make later partitions finish first.
                std::thread::sleep(std::time::Duration::from_millis(4 - p as u64));
                Ok(p * 10)
            })
        })?;
        assert_eq!(out, vec![0, 10, 20, 30]);
        Ok(())
    }

    #[test]
    fn run_partitioned_merges_worker_stats_deterministically() -> Result<(), String> {
        nra_obs::enable();
        with_budget(4, || {
            run_partitioned(4, |p| {
                let mut sp = nra_obs::span(|| "work".to_string());
                sp.rows_out(p + 1);
                Ok(())
            })
        })
        .map_err(|e| e.to_string())?;
        let profile = nra_obs::disable().ok_or("collection was not enabled")?;
        let s = profile.get("work").ok_or("missing `work` entry")?;
        assert_eq!(s.invocations, 4);
        assert_eq!(s.rows_out, 1 + 2 + 3 + 4);
        Ok(())
    }

    #[test]
    fn partition_panics_become_structured_errors() {
        for t in [1usize, 2, 4] {
            let result = with_budget(t, || {
                run_partitioned(t, |p| -> Result<(), EngineError> {
                    if p == t - 1 {
                        panic!("boom in partition {p}");
                    }
                    Ok(())
                })
            });
            match result {
                Err(EngineError::WorkerPanicked { message, .. }) => {
                    assert!(message.contains("boom"), "threads={t}: {message}");
                }
                other => panic!("threads={t}: expected WorkerPanicked, got {other:?}"),
            }
        }
    }

    #[test]
    fn first_error_wins_in_partition_order() {
        let result = with_budget(4, || {
            run_partitioned(4, |p| -> Result<(), EngineError> {
                // Lower-numbered partitions fail later in wall time: the
                // reported error must still be partition 0's.
                std::thread::sleep(std::time::Duration::from_millis(p as u64));
                Err(EngineError::Unsupported(format!("p{p}")))
            })
        });
        assert_eq!(result, Err(EngineError::Unsupported("p0".into())));
    }

    #[test]
    fn failing_partition_drains_siblings() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let ran = Arc::new(AtomicUsize::new(0));
        let result = with_budget(4, || {
            run_partitioned(4, |p| {
                ran.fetch_add(1, Ordering::SeqCst);
                if p == 0 {
                    Err(EngineError::Unsupported("p0 fails".into()))
                } else {
                    Ok(())
                }
            })
        });
        assert!(result.is_err());
        assert_eq!(ran.load(Ordering::SeqCst), 4, "all partitions must run");
    }

    #[test]
    fn cancelled_dispatch_refuses_to_spawn() {
        let token = governor::CancelToken::new();
        token.cancel();
        let gov = Arc::new(governor::Governor::new().cancel_token(token));
        let _g = governor::install(Some(gov));
        let result = with_budget(4, || run_partitioned(4, Ok));
        assert!(matches!(result, Err(EngineError::Cancelled { .. })));
    }

    #[test]
    fn workers_inherit_the_governor() {
        use nra_storage::{Tuple, Value};
        // A 2-byte budget must trip charges made from worker threads.
        // Each worker transposes a real batch and charges its actual
        // lane allocation (not a flat per-worker constant) through the
        // batch-amortized path.
        let gov = Arc::new(governor::Governor::new().mem_limit(2));
        let _g = governor::install(Some(gov));
        let result = with_budget(4, || {
            run_partitioned(4, |p| {
                let rows: Vec<Tuple> = (0..64).map(|i| vec![Value::Int((p + i) as i64)]).collect();
                let batch = crate::vec::ValueBatch::with_columns(&rows, 1, &[0]);
                assert!(batch.alloc_bytes() >= 64 * 8, "charges real lane bytes");
                crate::vec::charge_batch("worker-alloc", &batch)?;
                Ok(())
            })
        });
        assert!(matches!(result, Err(EngineError::ResourceExhausted { .. })));
    }

    #[test]
    fn parallel_sort_equals_sequential_stable_sort() -> Result<(), EngineError> {
        // Pairs sorted by the first component only: the second component
        // witnesses stability.
        let mut rng = 0x2545_F491u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for len in [0usize, 1, 2, 7, 100, 1000, 4097] {
            let data: Vec<(u64, usize)> = (0..len).map(|i| (next() % 17, i)).collect();
            let mut expect = data.clone();
            expect.sort_by_key(|a| a.0);
            for t in [2, 3, 4] {
                let mut got = data.clone();
                with_budget(t, || sort_rows_by(&mut got, |a, b| a.0.cmp(&b.0)))?;
                assert_eq!(got, expect, "len={len} threads={t}");
            }
        }
        Ok(())
    }

    #[test]
    fn key_hash_is_stable_across_calls() {
        assert_eq!(key_hash(&42u64), key_hash(&42u64));
        assert_ne!(key_hash(&1u64), key_hash(&2u64));
    }
}
