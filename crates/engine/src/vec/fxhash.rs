//! A vendored, zero-dependency FxHash-style hasher.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3, a keyed hash
//! hardened against HashDoS. The engine's hash-join builds and ν-nest /
//! set-operation grouping tables hash only values the engine itself
//! produced, so that hardening buys nothing and costs a long dependency
//! chain of rounds per key. This is the multiply-xor-rotate hash used by
//! the Rust compiler (widely known as FxHash): a couple of arithmetic
//! instructions per 8 bytes, no external crate.
//!
//! Determinism note: the hasher is unkeyed, so hashes are stable across
//! runs and threads — but no engine output may depend on map *iteration*
//! order anyway (emission orders are driven by row scan order and
//! first-insertion bookkeeping). Swapping the hasher therefore changes
//! no result bytes and no profile counters; `hash_entries`/`hash_bytes`
//! count logical entries and bytes, not hasher internals.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit seed constant (π-derived, from the rustc/firefox lineage).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The FxHash state: `hash = (hash.rotate_left(5) ^ word) * SEED` per
/// machine word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let mut word = [0u8; 8];
            word.copy_from_slice(&bytes[..8]);
            self.add_to_hash(u64::from_le_bytes(word));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let mut word = [0u8; 4];
            word.copy_from_slice(&bytes[..4]);
            self.add_to_hash(u64::from(u32::from_le_bytes(word)));
            bytes = &bytes[4..];
        }
        for &b in bytes {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]; plug into any `HashMap`/`HashSet`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`] — the engine-standard table for
/// hash-join builds and hash-grouping.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn fx_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(fx_of(&42u64), fx_of(&42u64));
        assert_eq!(fx_of(&"subquery"), fx_of(&"subquery"));
        assert_ne!(fx_of(&1u64), fx_of(&2u64));
    }

    #[test]
    fn byte_stream_chunking_is_consistent() {
        // write() must consume 8/4/1-byte chunks deterministically.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13]);
        assert_eq!(a.finish(), b.finish());
        assert_ne!(a.finish(), 0);
    }

    #[test]
    fn map_and_set_work_with_group_keys() {
        use nra_storage::{GroupKey, Value};
        let mut m: FxHashMap<GroupKey, usize> = FxHashMap::default();
        let k1 = GroupKey(vec![Value::Int(1), Value::Null]);
        let k2 = GroupKey(vec![Value::Int(1), Value::Null]);
        m.insert(k1, 7);
        assert_eq!(m.get(&k2), Some(&7));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(5);
        assert!(s.contains(&5));
    }
}
