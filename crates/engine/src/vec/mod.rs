//! Vectorized columnar execution core (DESIGN.md §13).
//!
//! The engine's operators are row-at-a-time over `Vec<Tuple>`; the hot
//! scans — filters, hash-join probes, ν-nest group-boundary detection,
//! linking predicates — pay an enum-tag dispatch per value plus per-row
//! observability/governor bookkeeping. This module provides the columnar
//! counterpart those scans batch into:
//!
//! * [`ValueBatch`] — a column-major window over a run of tuples:
//!   per-column typed lanes (`i64`/`f64` vectors plus a validity bitmap)
//!   when a column's non-NULL values share one type, with a zero-copy
//!   fallback to the row storage for mixed or string columns;
//! * [`eval_pred`] / [`SelVec`] — a vectorized 3VL expression evaluator
//!   computing [`Truth`](nra_storage::Truth) over whole columns and
//!   producing selection vectors instead of filtered row copies;
//! * [`group_bounds`] — batch-windowed adjacent-row grouping-equality
//!   over sorted runs, the kernel behind the sort-based ν-nest and the
//!   fused nest+linking cascade;
//! * [`fxhash`] — a vendored zero-dependency FxHash-style hasher backing
//!   every hash-join build and nest/setop hash-grouping table.
//!
//! Every kernel is *exact*: typed fast paths replicate
//! `Value::sql_cmp`/`Value::group_eq` semantics bit-for-bit (including
//! `Int`↔`Decimal` scaling overflow and `NULL` propagation), and the
//! generic fallback simply calls the row-at-a-time code per element. The
//! row-at-a-time evaluator remains in `crate::expr` as the differential-
//! testing reference. Results, profile counters, goldens and committed
//! baselines are byte-identical at any batch size and thread count.
//!
//! The batch width defaults to [`DEFAULT_BATCH_ROWS`] (matching the
//! morsel floor and the governor's `CHECK_ROWS` cadence) and can be
//! overridden per thread with [`set_batch_rows`] or globally with the
//! `NRA_BATCH_ROWS` environment variable.

pub mod batch;
pub mod eval;
pub mod fxhash;

pub use batch::{Lane, LaneKind, SelVec, Validity, ValueBatch};
pub use eval::{eval_expr_column, eval_pred, select_rows, ExprCol};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};

use std::cell::Cell;

use crate::error::EngineError;
use crate::governor;
use nra_storage::tuple::group_eq_on;
use nra_storage::Tuple;

/// Default rows per [`ValueBatch`]: matches the morsel floor
/// (`exec::DEFAULT_MORSEL_ROWS`) and the governor's cancellation cadence
/// (`governor::CHECK_ROWS`), so one batch is one unit of cooperative
/// bookkeeping.
pub const DEFAULT_BATCH_ROWS: usize = 1024;

thread_local! {
    /// Per-thread override of the batch width (`None` = consult the
    /// `NRA_BATCH_ROWS` environment variable).
    static BATCH_ROWS: Cell<Option<usize>> = const { Cell::new(None) };
}

fn env_batch_rows() -> Option<usize> {
    std::env::var("NRA_BATCH_ROWS")
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
}

/// The batch width for vectorized scans on this thread: the per-query
/// override when set, else `NRA_BATCH_ROWS`, else
/// [`DEFAULT_BATCH_ROWS`]. Always at least 1.
pub fn batch_rows() -> usize {
    BATCH_ROWS
        .with(Cell::get)
        .or_else(env_batch_rows)
        .unwrap_or(DEFAULT_BATCH_ROWS)
        .max(1)
}

/// Restores the previous batch width on drop (see [`set_batch_rows`]).
#[must_use = "dropping the guard immediately restores the previous width"]
pub struct BatchRowsGuard {
    prev: Option<usize>,
}

impl Drop for BatchRowsGuard {
    fn drop(&mut self) {
        BATCH_ROWS.with(|b| b.set(self.prev));
    }
}

/// Set (or with `None`, clear) this thread's batch-width override for the
/// lifetime of the returned guard. Tests shrink it to 1 or 3 to shake
/// batch-boundary handling; clearing falls back to `NRA_BATCH_ROWS`.
pub fn set_batch_rows(n: Option<usize>) -> BatchRowsGuard {
    BatchRowsGuard {
        prev: BATCH_ROWS.with(|b| b.replace(n.map(|n| n.max(1)))),
    }
}

/// This thread's raw batch-width override, for handoff to worker threads:
/// `exec::run_partitioned` captures it on the dispatching thread and
/// re-installs it on each worker (like the governor), so a per-query
/// override applies across all partitions.
pub fn batch_rows_override() -> Option<usize> {
    BATCH_ROWS.with(Cell::get)
}

/// Group boundaries of a relation sorted (or grouped) on `cols`:
/// half-open `(lo, hi)` runs of adjacent rows equal under grouping
/// semantics (`NULL` matches `NULL`), exactly what the sequential
/// `group_eq_on` scan in the sort-based ν-nest produces.
///
/// The scan runs in batch windows (one governor checkpoint's worth of
/// rows at a time) comparing adjacent pairs with the short-circuiting
/// `group_eq_on`. Measured against a transposed-lane kernel
/// ([`ValueBatch::mark_adjacent_neq`] per column), the pairwise compare
/// wins on this access pattern: each value is consumed exactly once, so
/// paying a transposition to set up branch-light lane loops costs more
/// than it saves — unlike predicate evaluation, where the amortized
/// expression-tree walk makes lanes profitable. Batch seams compare the
/// last row of the previous window against the first of the next, so
/// groups straddling batch boundaries are never split. The governor is
/// polled on the same per-group cadence as the scalar scan
/// (`tick(groups, phase)`).
pub fn group_bounds(
    rows: &[Tuple],
    cols: &[usize],
    phase: &str,
) -> Result<Vec<(usize, usize)>, EngineError> {
    let mut bounds: Vec<(usize, usize)> = Vec::new();
    if rows.is_empty() {
        return Ok(bounds);
    }
    let bsz = batch_rows();
    // Row indices that start a new group; row 0 always does.
    let mut starts: Vec<usize> = vec![0];
    let mut base = 0;
    for window in rows.chunks(bsz) {
        if base > 0 && !group_eq_on(&rows[base - 1], &rows[base], cols) {
            starts.push(base);
        }
        for i in 1..window.len() {
            if !group_eq_on(&window[i - 1], &window[i], cols) {
                starts.push(base + i);
            }
        }
        base += window.len();
    }
    bounds.reserve(starts.len());
    for (g, &lo) in starts.iter().enumerate() {
        // Same cooperative-cancellation cadence as the scalar
        // boundary scan: one poll per CHECK_ROWS groups.
        governor::tick(g, phase)?;
        let hi = starts.get(g + 1).copied().unwrap_or(rows.len());
        bounds.push((lo, hi));
    }
    Ok(bounds)
}

/// Charge a batch's actual lane allocations to the governor in one call
/// (the batch-amortized charging path: exact bytes, one flag check per
/// batch instead of one per row).
#[inline]
pub fn charge_batch(site: &str, batch: &ValueBatch<'_>) -> Result<(), EngineError> {
    governor::charge(site, batch.alloc_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nra_storage::Value;

    #[test]
    fn batch_rows_default_and_override() {
        if std::env::var("NRA_BATCH_ROWS").is_err() {
            assert_eq!(batch_rows(), DEFAULT_BATCH_ROWS);
        }
        {
            let _g = set_batch_rows(Some(3));
            assert_eq!(batch_rows(), 3);
            {
                let _g2 = set_batch_rows(Some(0));
                assert_eq!(batch_rows(), 1, "width clamps to at least 1");
            }
            assert_eq!(batch_rows(), 3);
        }
    }

    #[test]
    fn group_bounds_matches_scalar_scan() -> Result<(), EngineError> {
        let rows: Vec<Tuple> = vec![
            vec![Value::Int(1), Value::Int(0)],
            vec![Value::Int(1), Value::Int(1)],
            vec![Value::Int(2), Value::Int(2)],
            vec![Value::Null, Value::Int(3)],
            vec![Value::Null, Value::Int(4)],
            vec![Value::Int(3), Value::Int(5)],
        ];
        let expect = vec![(0, 2), (2, 3), (3, 5), (5, 6)];
        for bsz in [1, 2, 3, 1024] {
            let _g = set_batch_rows(Some(bsz));
            assert_eq!(group_bounds(&rows, &[0], "t")?, expect, "bsz={bsz}");
        }
        assert!(group_bounds(&[], &[0], "t")?.is_empty());
        Ok(())
    }

    #[test]
    fn group_bounds_mixed_types_fall_back() -> Result<(), EngineError> {
        // Int vs Decimal differ under grouping equality even when
        // numerically equal; a mixed column must use the generic path.
        let rows: Vec<Tuple> = vec![
            vec![Value::Int(5)],
            vec![Value::Decimal(500)],
            vec![Value::Decimal(500)],
            vec![Value::str("x")],
        ];
        for bsz in [1, 2, 1024] {
            let _g = set_batch_rows(Some(bsz));
            assert_eq!(
                group_bounds(&rows, &[0], "t")?,
                vec![(0, 1), (1, 3), (3, 4)],
                "bsz={bsz}"
            );
        }
        Ok(())
    }
}
