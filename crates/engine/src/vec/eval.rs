//! Vectorized 3VL expression evaluation over [`ValueBatch`]es.
//!
//! [`eval_pred`] computes a whole column of [`Truth`] values for a
//! [`CPred`](crate::expr::CPred); [`select_rows`] turns that into a
//! [`SelVec`] (SQL `WHERE` semantics: only `TRUE` selects). Comparisons
//! between typed lanes run as tight machine-word loops that replicate
//! [`Value::sql_cmp`] exactly — including `Int`↔`Decimal` scaling
//! overflow (`checked_mul(100)` failure is *unknown*), `NULL`
//! propagation via the validity bitmaps, and incomparable type pairs.
//! Everything else (string columns, mixed columns, arithmetic) falls
//! back to the row-at-a-time evaluator per element, so results are
//! bit-identical to `CPred::eval` by construction; the differential
//! property tests in `tests/vectorized.rs` hold both paths to that.
//!
//! Kleene `AND`/`OR` are commutative and associative, so the columnar
//! or-fold used for `IN` lists matches the row evaluator's early-`TRUE`
//! break, and `AND`/`OR` zips match its (non-short-circuiting) two-sided
//! evaluation.

use std::cmp::Ordering;

use nra_storage::{CmpOp, Truth, Value};

use super::batch::{Lane, LaneKind, SelVec, Validity, ValueBatch};
use crate::expr::{CExpr, CPred};

/// A scalar expression resolved against one batch: either a column of
/// the batch (possibly with a typed lane), a broadcast literal, or
/// row-wise computed values (arithmetic).
pub enum ExprCol {
    Col(usize),
    Const(Value),
    Owned(Vec<Value>),
}

/// Resolve `expr` against `batch`. Bare columns and literals are
/// zero-cost; arithmetic materializes one value per row via the
/// row-at-a-time evaluator (exactness over speed for the rare case).
pub fn eval_expr_column(expr: &CExpr, batch: &ValueBatch<'_>) -> ExprCol {
    match expr {
        CExpr::Col(i) => ExprCol::Col(*i),
        CExpr::Lit(v) => ExprCol::Const(v.clone()),
        CExpr::Arith { .. } => ExprCol::Owned(batch.rows().iter().map(|r| expr.eval(r)).collect()),
    }
}

impl ExprCol {
    /// Generic per-row accessor (the row-at-a-time fallback).
    #[inline]
    fn value<'x>(&'x self, batch: &'x ValueBatch<'_>, row: usize) -> &'x Value {
        match self {
            ExprCol::Col(i) => batch.value(row, *i),
            ExprCol::Const(v) => v,
            ExprCol::Owned(vs) => &vs[row],
        }
    }
}

/// `Value::sql_cmp` restricted to two `i64`-mapped lanes. `None` is
/// *incomparable* (→ `Unknown`), matching the scalar table: same kind
/// compares directly; `Int`↔`Decimal` rescale with overflow → `None`;
/// every other kind pair is `None`.
#[inline]
fn ord_i64(ka: LaneKind, a: i64, kb: LaneKind, b: i64) -> Option<Ordering> {
    if ka == kb {
        return Some(a.cmp(&b));
    }
    match (ka, kb) {
        (LaneKind::Int, LaneKind::Decimal) => a.checked_mul(100).map(|a| a.cmp(&b)),
        (LaneKind::Decimal, LaneKind::Int) => b.checked_mul(100).map(|b| a.cmp(&b)),
        _ => None,
    }
}

/// `Value::sql_cmp` for an `i64`-mapped value against a float. `Bool`
/// and `Date` do not compare with `Float` (scalar table: `None`).
#[inline]
fn ord_i64_f64(k: LaneKind, a: i64, b: f64) -> Option<Ordering> {
    match k {
        LaneKind::Int => (a as f64).partial_cmp(&b),
        LaneKind::Decimal => (a as f64 / 100.0).partial_cmp(&b),
        LaneKind::Bool | LaneKind::Date => None,
    }
}

#[inline]
fn truth_of(op: CmpOp, ord: Option<Ordering>) -> Truth {
    match ord {
        Some(ord) => Truth::from_bool(op.eval(ord)),
        None => Truth::Unknown,
    }
}

/// A literal classified for lane-typed comparison.
enum ConstSide {
    I64(LaneKind, i64),
    F64(f64),
    Null,
    Other,
}

fn classify(v: &Value) -> ConstSide {
    match v {
        Value::Null => ConstSide::Null,
        Value::Bool(b) => ConstSide::I64(LaneKind::Bool, i64::from(*b)),
        Value::Int(i) => ConstSide::I64(LaneKind::Int, *i),
        Value::Decimal(d) => ConstSide::I64(LaneKind::Decimal, *d),
        Value::Date(d) => ConstSide::I64(LaneKind::Date, i64::from(*d)),
        Value::Float(f) => ConstSide::F64(*f),
        Value::Str(_) => ConstSide::Other,
    }
}

/// Vectorized `a op b`, one [`Truth`] per batch row appended to `out`.
fn cmp_cols(batch: &ValueBatch<'_>, a: &ExprCol, op: CmpOp, b: &ExprCol, out: &mut Vec<Truth>) {
    let n = batch.len();
    match (a, b) {
        (ExprCol::Col(i), ExprCol::Col(j)) => match (batch.lane(*i), batch.lane(*j)) {
            (
                Some(Lane::I64 {
                    kind: ka,
                    vals: va,
                    valid: la,
                }),
                Some(Lane::I64 {
                    kind: kb,
                    vals: vb,
                    valid: lb,
                }),
            ) => {
                for r in 0..n {
                    out.push(if la.get(r) && lb.get(r) {
                        truth_of(op, ord_i64(*ka, va[r], *kb, vb[r]))
                    } else {
                        Truth::Unknown
                    });
                }
            }
            (
                Some(Lane::I64 {
                    kind: ka,
                    vals: va,
                    valid: la,
                }),
                Some(Lane::F64 {
                    vals: vb,
                    valid: lb,
                }),
            ) => {
                for r in 0..n {
                    out.push(if la.get(r) && lb.get(r) {
                        truth_of(op, ord_i64_f64(*ka, va[r], vb[r]))
                    } else {
                        Truth::Unknown
                    });
                }
            }
            (
                Some(Lane::F64 {
                    vals: va,
                    valid: la,
                }),
                Some(Lane::I64 {
                    kind: kb,
                    vals: vb,
                    valid: lb,
                }),
            ) => {
                // `a θ b ⇔ b θ.flip() a`; reuse the i64-vs-f64 kernel.
                for r in 0..n {
                    out.push(if la.get(r) && lb.get(r) {
                        truth_of(op.flip(), ord_i64_f64(*kb, vb[r], va[r]))
                    } else {
                        Truth::Unknown
                    });
                }
            }
            (
                Some(Lane::F64 {
                    vals: va,
                    valid: la,
                }),
                Some(Lane::F64 {
                    vals: vb,
                    valid: lb,
                }),
            ) => {
                for r in 0..n {
                    out.push(if la.get(r) && lb.get(r) {
                        truth_of(op, va[r].partial_cmp(&vb[r]))
                    } else {
                        Truth::Unknown
                    });
                }
            }
            _ => cmp_generic(batch, a, op, b, out),
        },
        (ExprCol::Col(i), ExprCol::Const(v)) => {
            cmp_lane_const(batch, *i, op, v, out);
        }
        (ExprCol::Const(v), ExprCol::Col(j)) => {
            // Swap operands, flip the operator.
            cmp_lane_const(batch, *j, op.flip(), v, out);
        }
        _ => cmp_generic(batch, a, op, b, out),
    }
}

/// `lane(col) op const` (operands already oriented lane-first).
fn cmp_lane_const(batch: &ValueBatch<'_>, col: usize, op: CmpOp, v: &Value, out: &mut Vec<Truth>) {
    let n = batch.len();
    match (batch.lane(col), classify(v)) {
        (_, ConstSide::Null) => {
            // Anything compared with NULL is unknown, valid or not.
            out.resize(out.len() + n, Truth::Unknown);
        }
        (Some(Lane::I64 { kind, vals, valid }), ConstSide::I64(kc, c)) => {
            for (r, &val) in vals.iter().enumerate().take(n) {
                out.push(if valid.get(r) {
                    truth_of(op, ord_i64(*kind, val, kc, c))
                } else {
                    Truth::Unknown
                });
            }
        }
        (Some(Lane::I64 { kind, vals, valid }), ConstSide::F64(c)) => {
            for (r, &val) in vals.iter().enumerate().take(n) {
                out.push(if valid.get(r) {
                    truth_of(op, ord_i64_f64(*kind, val, c))
                } else {
                    Truth::Unknown
                });
            }
        }
        (Some(Lane::F64 { vals, valid }), ConstSide::F64(c)) => {
            for (r, &val) in vals.iter().enumerate().take(n) {
                out.push(if valid.get(r) {
                    truth_of(op, val.partial_cmp(&c))
                } else {
                    Truth::Unknown
                });
            }
        }
        (Some(Lane::F64 { vals, valid }), ConstSide::I64(kc, c)) => {
            for (r, &val) in vals.iter().enumerate().take(n) {
                out.push(if valid.get(r) {
                    truth_of(op.flip(), ord_i64_f64(kc, c, val))
                } else {
                    Truth::Unknown
                });
            }
        }
        _ => {
            for r in 0..n {
                out.push(batch.value(r, col).sql_compare(op, v));
            }
        }
    }
}

/// Row-at-a-time fallback: exactly `left.sql_compare(op, right)` per row.
fn cmp_generic(batch: &ValueBatch<'_>, a: &ExprCol, op: CmpOp, b: &ExprCol, out: &mut Vec<Truth>) {
    for r in 0..batch.len() {
        out.push(a.value(batch, r).sql_compare(op, b.value(batch, r)));
    }
}

fn maybe_not(t: Truth, negated: bool) -> Truth {
    if negated {
        t.not()
    } else {
        t
    }
}

/// Null-ness of a resolved expression per row; typed lanes answer from
/// the validity bitmap without touching row storage.
fn nulls_of(batch: &ValueBatch<'_>, e: &ExprCol, out: &mut Vec<bool>) {
    match e {
        ExprCol::Col(i) => match batch.lane(*i) {
            Some(Lane::I64 { valid, .. }) => push_invalid(valid, out),
            Some(Lane::F64 { valid, .. }) => push_invalid(valid, out),
            _ => {
                for r in 0..batch.len() {
                    out.push(batch.value(r, *i).is_null());
                }
            }
        },
        ExprCol::Const(v) => out.resize(out.len() + batch.len(), v.is_null()),
        ExprCol::Owned(vs) => out.extend(vs.iter().map(Value::is_null)),
    }
}

fn push_invalid(valid: &Validity, out: &mut Vec<bool>) {
    for r in 0..valid.len() {
        out.push(!valid.get(r));
    }
}

/// Evaluate `pred` over every row of `batch`, returning one [`Truth`]
/// per row — the columnar equivalent of mapping `CPred::eval`.
pub fn eval_pred(pred: &CPred, batch: &ValueBatch<'_>) -> Vec<Truth> {
    let mut out = Vec::with_capacity(batch.len());
    eval_into(pred, batch, &mut out);
    out
}

fn eval_into(pred: &CPred, batch: &ValueBatch<'_>, out: &mut Vec<Truth>) {
    let n = batch.len();
    match pred {
        CPred::Cmp { left, op, right } => {
            let a = eval_expr_column(left, batch);
            let b = eval_expr_column(right, batch);
            cmp_cols(batch, &a, *op, &b, out);
        }
        CPred::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval_expr_column(expr, batch);
            let lo = eval_expr_column(low, batch);
            let hi = eval_expr_column(high, batch);
            let mut ge = Vec::with_capacity(n);
            cmp_cols(batch, &v, CmpOp::Ge, &lo, &mut ge);
            let mut le = Vec::with_capacity(n);
            cmp_cols(batch, &v, CmpOp::Le, &hi, &mut le);
            out.extend(
                ge.into_iter()
                    .zip(le)
                    .map(|(a, b)| maybe_not(a.and(b), *negated)),
            );
        }
        CPred::IsNull { expr, negated } => {
            let e = eval_expr_column(expr, batch);
            let mut nulls = Vec::with_capacity(n);
            nulls_of(batch, &e, &mut nulls);
            // IS [NOT] NULL is two-valued.
            out.extend(nulls.into_iter().map(|b| Truth::from_bool(b != *negated)));
        }
        CPred::InList {
            expr,
            list,
            negated,
        } => {
            // Kleene or-fold over the list; or is commutative and
            // absorbing on TRUE, so this matches the row evaluator's
            // early break.
            let v = eval_expr_column(expr, batch);
            let mut acc = vec![Truth::False; n];
            let mut tmp = Vec::with_capacity(n);
            for e in list {
                let ec = eval_expr_column(e, batch);
                tmp.clear();
                cmp_cols(batch, &v, CmpOp::Eq, &ec, &mut tmp);
                for (a, t) in acc.iter_mut().zip(&tmp) {
                    *a = a.or(*t);
                }
            }
            out.extend(acc.into_iter().map(|t| maybe_not(t, *negated)));
        }
        CPred::And(a, b) => {
            let ta = eval_pred(a, batch);
            let tb = eval_pred(b, batch);
            out.extend(ta.into_iter().zip(tb).map(|(x, y)| x.and(y)));
        }
        CPred::Or(a, b) => {
            let ta = eval_pred(a, batch);
            let tb = eval_pred(b, batch);
            out.extend(ta.into_iter().zip(tb).map(|(x, y)| x.or(y)));
        }
        CPred::Not(p) => {
            let t = eval_pred(p, batch);
            out.extend(t.into_iter().map(Truth::not));
        }
        CPred::Const(t) => out.resize(out.len() + n, *t),
    }
}

/// The rows of `batch` where `pred` is `TRUE`, as a selection vector.
pub fn select_rows(pred: &CPred, batch: &ValueBatch<'_>) -> SelVec {
    SelVec::from_truths(&eval_pred(pred, batch))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nra_storage::Tuple;

    fn col(i: usize) -> CExpr {
        CExpr::Col(i)
    }

    fn lit(v: Value) -> CExpr {
        CExpr::Lit(v)
    }

    /// The reference: row-at-a-time `CPred::eval` over every row.
    fn reference(pred: &CPred, rows: &[Tuple]) -> Vec<Truth> {
        rows.iter().map(|r| pred.eval(r)).collect()
    }

    fn check(pred: &CPred, rows: &[Tuple], width: usize, cols: &[usize]) {
        let batch = ValueBatch::with_columns(rows, width, cols);
        assert_eq!(eval_pred(pred, &batch), reference(pred, rows), "{pred:?}");
    }

    #[test]
    fn typed_cmp_matches_reference() {
        let rows: Vec<Tuple> = vec![
            vec![Value::Int(1), Value::Int(5)],
            vec![Value::Int(7), Value::Null],
            vec![Value::Null, Value::Int(2)],
            vec![Value::Int(3), Value::Int(3)],
        ];
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            let p = CPred::Cmp {
                left: col(0),
                op,
                right: col(1),
            };
            check(&p, &rows, 2, &[0, 1]);
            let p2 = CPred::Cmp {
                left: col(0),
                op,
                right: lit(Value::Int(3)),
            };
            check(&p2, &rows, 2, &[0, 1]);
            let p3 = CPred::Cmp {
                left: lit(Value::Int(3)),
                op,
                right: col(1),
            };
            check(&p3, &rows, 2, &[0, 1]);
        }
    }

    #[test]
    fn int_decimal_rescale_and_overflow() {
        let big = i64::MAX / 50; // overflows when scaled by 100
        let rows: Vec<Tuple> = vec![
            vec![Value::Int(5), Value::Decimal(500)],
            vec![Value::Int(big), Value::Decimal(0)],
            vec![Value::Int(-2), Value::Decimal(-150)],
        ];
        let p = CPred::Cmp {
            left: col(0),
            op: CmpOp::Gt,
            right: col(1),
        };
        // Mixed Int/Decimal columns fall back per-lane, but a literal
        // against an Int lane exercises the typed rescale path:
        check(&p, &rows, 2, &[0, 1]);
        let p2 = CPred::Cmp {
            left: col(0),
            op: CmpOp::Eq,
            right: lit(Value::Decimal(500)),
        };
        check(&p2, &rows, 2, &[0]);
        let overflow = CPred::Cmp {
            left: lit(Value::Int(big)),
            op: CmpOp::Lt,
            right: col(1),
        };
        check(&overflow, &rows, 2, &[1]);
    }

    #[test]
    fn float_lanes_and_nan() {
        let rows: Vec<Tuple> = vec![
            vec![Value::Float(1.5), Value::Float(2.5)],
            vec![Value::Float(f64::NAN), Value::Float(0.0)],
            vec![Value::Null, Value::Float(-1.0)],
            vec![Value::Float(3.0), Value::Null],
        ];
        for op in [CmpOp::Eq, CmpOp::Lt, CmpOp::Ge] {
            let p = CPred::Cmp {
                left: col(0),
                op,
                right: col(1),
            };
            check(&p, &rows, 2, &[0, 1]);
            let p2 = CPred::Cmp {
                left: col(0),
                op,
                right: lit(Value::Int(2)),
            };
            check(&p2, &rows, 2, &[0]);
            let p3 = CPred::Cmp {
                left: col(1),
                op,
                right: lit(Value::Decimal(50)),
            };
            check(&p3, &rows, 2, &[1]);
        }
    }

    #[test]
    fn incomparable_kinds_are_unknown() {
        let rows: Vec<Tuple> = vec![
            vec![Value::Bool(true), Value::Date(10)],
            vec![Value::Bool(false), Value::Date(10)],
        ];
        let p = CPred::Cmp {
            left: col(0),
            op: CmpOp::Eq,
            right: col(1),
        };
        check(&p, &rows, 2, &[0, 1]);
        let p2 = CPred::Cmp {
            left: col(1),
            op: CmpOp::Lt,
            right: lit(Value::Float(5.0)),
        };
        check(&p2, &rows, 2, &[1]);
        let p3 = CPred::Cmp {
            left: col(0),
            op: CmpOp::Eq,
            right: lit(Value::str("x")),
        };
        check(&p3, &rows, 2, &[0]);
    }

    #[test]
    fn between_in_list_is_null_compose() {
        let rows: Vec<Tuple> = vec![
            vec![Value::Int(5)],
            vec![Value::Null],
            vec![Value::Int(11)],
            vec![Value::Int(1)],
        ];
        let between = CPred::Between {
            expr: col(0),
            low: lit(Value::Int(1)),
            high: lit(Value::Int(10)),
            negated: true,
        };
        check(&between, &rows, 1, &[0]);
        let inlist = CPred::InList {
            expr: col(0),
            list: vec![lit(Value::Int(1)), lit(Value::Null), lit(Value::Int(11))],
            negated: true,
        };
        check(&inlist, &rows, 1, &[0]);
        let isnull = CPred::IsNull {
            expr: col(0),
            negated: false,
        };
        check(&isnull, &rows, 1, &[0]);
        let compound = CPred::Or(
            Box::new(CPred::Not(Box::new(between))),
            Box::new(CPred::And(Box::new(inlist), Box::new(isnull))),
        );
        check(&compound, &rows, 1, &[0]);
    }

    #[test]
    fn empty_batch_and_all_false_selection() {
        let rows: Vec<Tuple> = vec![];
        let batch = ValueBatch::with_columns(&rows, 1, &[0]);
        let p = CPred::Const(Truth::True);
        assert!(eval_pred(&p, &batch).is_empty());
        assert!(select_rows(&p, &batch).is_empty());

        let rows2: Vec<Tuple> = vec![vec![Value::Int(1)], vec![Value::Null]];
        let batch2 = ValueBatch::with_columns(&rows2, 1, &[0]);
        let never = CPred::Cmp {
            left: col(0),
            op: CmpOp::Lt,
            right: lit(Value::Int(-100)),
        };
        let sel = select_rows(&never, &batch2);
        assert!(sel.is_empty(), "all-false/unknown selects nothing");
    }

    #[test]
    fn arithmetic_falls_back_row_wise() {
        use nra_sql::ArithOp;
        let rows: Vec<Tuple> = vec![
            vec![Value::Int(5), Value::Int(2)],
            vec![Value::Null, Value::Int(3)],
            vec![Value::Int(9), Value::Null],
        ];
        let sum = CExpr::Arith {
            op: ArithOp::Add,
            left: Box::new(col(0)),
            right: Box::new(col(1)),
        };
        let p = CPred::Cmp {
            left: sum,
            op: CmpOp::Gt,
            right: lit(Value::Int(6)),
        };
        check(&p, &rows, 2, &[0, 1]);
    }
}
