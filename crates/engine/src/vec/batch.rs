//! Column-major value batches: typed lanes, validity bitmaps, selection
//! vectors.
//!
//! A [`ValueBatch`] is a *view* over a contiguous run of row-major tuples
//! (one morsel-sized window). Building it transposes the requested
//! columns into typed lanes — a `Vec<i64>`/`Vec<f64>` of payloads plus a
//! [`Validity`] bitmap — when every non-NULL value of the column in the
//! window shares one representable type. Columns that mix types or hold
//! strings keep a [`Lane::Ref`] marker and are read straight from the row
//! storage, so the fallback costs nothing to build.
//!
//! The transposition copies only machine words (no `Value` clones, no
//! heap traffic), and downstream kernels then run tight branch-light
//! loops over the lanes instead of matching on enum tags per value.

use nra_storage::{Tuple, Value};

/// A bitmap of per-row validity (1 = value present, 0 = SQL `NULL`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Validity {
    bits: Vec<u64>,
    len: usize,
}

impl Validity {
    pub fn with_capacity(rows: usize) -> Validity {
        Validity {
            bits: Vec::with_capacity(rows.div_ceil(64)),
            len: 0,
        }
    }

    /// Append one row's validity.
    #[inline]
    pub fn push(&mut self, valid: bool) {
        let (word, bit) = (self.len / 64, self.len % 64);
        if bit == 0 {
            self.bits.push(0);
        }
        if valid {
            self.bits[word] |= 1u64 << bit;
        }
        self.len += 1;
    }

    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.bits[i / 64] >> (i % 64) & 1 == 1
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of valid (non-NULL) rows.
    pub fn count_valid(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no row is NULL (lets kernels skip the bitmap entirely).
    pub fn all_valid(&self) -> bool {
        self.count_valid() == self.len
    }

    /// Heap bytes held by the bitmap.
    pub fn alloc_bytes(&self) -> u64 {
        (self.bits.capacity() * std::mem::size_of::<u64>()) as u64
    }
}

/// The scalar type of an `i64`-mapped lane. The discriminants mirror
/// `Value`'s variants; cross-kind comparison semantics are centralized in
/// [`crate::vec::eval`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneKind {
    Bool,
    Int,
    Decimal,
    Date,
}

/// One column of a batch.
#[derive(Debug, Clone)]
pub enum Lane {
    /// All non-NULL values share one `i64`-representable kind.
    I64 {
        kind: LaneKind,
        vals: Vec<i64>,
        valid: Validity,
    },
    /// All non-NULL values are floats.
    F64 { vals: Vec<f64>, valid: Validity },
    /// Mixed or string column: read from the row storage.
    Ref,
}

impl Lane {
    fn alloc_bytes(&self) -> u64 {
        match self {
            Lane::I64 { vals, valid, .. } => {
                (vals.capacity() * std::mem::size_of::<i64>()) as u64 + valid.alloc_bytes()
            }
            Lane::F64 { vals, valid } => {
                (vals.capacity() * std::mem::size_of::<f64>()) as u64 + valid.alloc_bytes()
            }
            Lane::Ref => 0,
        }
    }
}

fn i64_kind(v: &Value) -> Option<(LaneKind, i64)> {
    match v {
        Value::Bool(b) => Some((LaneKind::Bool, i64::from(*b))),
        Value::Int(i) => Some((LaneKind::Int, *i)),
        Value::Decimal(d) => Some((LaneKind::Decimal, *d)),
        Value::Date(d) => Some((LaneKind::Date, i64::from(*d))),
        _ => None,
    }
}

fn build_lane(rows: &[Tuple], col: usize) -> Lane {
    // One probing pass decides the lane type from the first non-NULL
    // value; the transposing pass bails to `Ref` on the first mismatch.
    let mut first = None;
    for row in rows {
        match &row[col] {
            Value::Null => continue,
            v => {
                first = Some(v);
                break;
            }
        }
    }
    match first {
        None => {
            // All-NULL column: an Int lane of zeros with an all-0 bitmap
            // behaves correctly under every kernel.
            let mut valid = Validity::with_capacity(rows.len());
            for _ in rows {
                valid.push(false);
            }
            Lane::I64 {
                kind: LaneKind::Int,
                vals: vec![0; rows.len()],
                valid,
            }
        }
        Some(Value::Float(_)) => {
            let mut vals = Vec::with_capacity(rows.len());
            let mut valid = Validity::with_capacity(rows.len());
            for row in rows {
                match &row[col] {
                    Value::Null => {
                        vals.push(0.0);
                        valid.push(false);
                    }
                    Value::Float(f) => {
                        vals.push(*f);
                        valid.push(true);
                    }
                    _ => return Lane::Ref,
                }
            }
            Lane::F64 { vals, valid }
        }
        Some(v) => {
            let Some((kind, _)) = i64_kind(v) else {
                return Lane::Ref; // strings and future variants
            };
            let mut vals = Vec::with_capacity(rows.len());
            let mut valid = Validity::with_capacity(rows.len());
            for row in rows {
                match &row[col] {
                    Value::Null => {
                        vals.push(0);
                        valid.push(false);
                    }
                    v => match i64_kind(v) {
                        Some((k, x)) if k == kind => {
                            vals.push(x);
                            valid.push(true);
                        }
                        _ => return Lane::Ref,
                    },
                }
            }
            Lane::I64 { kind, vals, valid }
        }
    }
}

/// A column-major window over `rows` with typed lanes for the columns a
/// kernel asked for. Lifetime-tied to the underlying row storage; `Ref`
/// lanes and generic fallbacks read the original `Value`s in place.
pub struct ValueBatch<'a> {
    rows: &'a [Tuple],
    lanes: Vec<Option<Lane>>,
}

impl<'a> ValueBatch<'a> {
    /// Build a batch over `rows` (a window of a relation of `width`
    /// columns), transposing exactly the columns in `cols`.
    pub fn with_columns(rows: &'a [Tuple], width: usize, cols: &[usize]) -> ValueBatch<'a> {
        let mut lanes: Vec<Option<Lane>> = (0..width).map(|_| None).collect();
        for &c in cols {
            if c < width && lanes[c].is_none() {
                lanes[c] = Some(build_lane(rows, c));
            }
        }
        ValueBatch { rows, lanes }
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The underlying row window.
    pub fn rows(&self) -> &'a [Tuple] {
        self.rows
    }

    /// The raw value at (`row`, `col`) — the generic fallback accessor.
    #[inline]
    pub fn value(&self, row: usize, col: usize) -> &'a Value {
        &self.rows[row][col]
    }

    /// The transposed lane for `col`, if one was built.
    pub fn lane(&self, col: usize) -> Option<&Lane> {
        self.lanes.get(col).and_then(Option::as_ref)
    }

    /// Heap bytes held by the batch's transposed lanes (the quantity the
    /// batch-amortized governor charge accounts for).
    pub fn alloc_bytes(&self) -> u64 {
        self.lanes
            .iter()
            .flatten()
            .map(Lane::alloc_bytes)
            .sum::<u64>()
    }

    /// Set `fresh[i] = true` for every row `i >= 1` whose value in `col`
    /// differs from row `i - 1` under grouping equality (`NULL` matches
    /// `NULL`). `fresh[0]` is left untouched. Typed lanes compare machine
    /// words; `Ref` columns fall back to `Value::group_eq`.
    pub fn mark_adjacent_neq(&self, col: usize, fresh: &mut [bool]) {
        match self.lane(col) {
            Some(Lane::I64 { vals, valid, .. }) => {
                for i in 1..vals.len() {
                    let (va, vb) = (valid.get(i - 1), valid.get(i));
                    if va != vb || (va && vals[i - 1] != vals[i]) {
                        fresh[i] = true;
                    }
                }
            }
            Some(Lane::F64 { vals, valid }) => {
                // Grouping equality on floats is total-order equality,
                // which is bit equality.
                for i in 1..vals.len() {
                    let (va, vb) = (valid.get(i - 1), valid.get(i));
                    if va != vb || (va && vals[i - 1].to_bits() != vals[i].to_bits()) {
                        fresh[i] = true;
                    }
                }
            }
            Some(Lane::Ref) | None => {
                let n = self.rows.len().min(fresh.len());
                for (i, f) in fresh[..n].iter_mut().enumerate().skip(1) {
                    if !self.rows[i - 1][col].group_eq(&self.rows[i][col]) {
                        *f = true;
                    }
                }
            }
        }
    }
}

/// A selection vector: indices (into a batch) of the rows a predicate
/// kept, in ascending order. The vectorized alternative to materializing
/// filtered row copies.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SelVec(pub Vec<u32>);

impl SelVec {
    /// Select the rows whose truth value is `TRUE` (SQL `WHERE`
    /// semantics: both `FALSE` and `UNKNOWN` reject).
    pub fn from_truths(truths: &[nra_storage::Truth]) -> SelVec {
        SelVec(
            truths
                .iter()
                .enumerate()
                .filter(|(_, t)| t.is_true())
                .map(|(i, _)| i as u32)
                .collect(),
        )
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.0.iter().map(|&i| i as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nra_storage::Truth;

    #[test]
    fn typed_lane_for_homogeneous_ints() {
        let rows: Vec<Tuple> = vec![vec![Value::Int(1)], vec![Value::Null], vec![Value::Int(3)]];
        let b = ValueBatch::with_columns(&rows, 1, &[0]);
        match b.lane(0) {
            Some(Lane::I64 { kind, vals, valid }) => {
                assert_eq!(*kind, LaneKind::Int);
                assert_eq!(vals, &vec![1, 0, 3]);
                assert!(valid.get(0) && !valid.get(1) && valid.get(2));
                assert_eq!(valid.count_valid(), 2);
                assert!(!valid.all_valid());
            }
            other => panic!("expected Int lane, got {other:?}"),
        }
        assert!(b.alloc_bytes() > 0);
    }

    #[test]
    fn mixed_column_falls_back_to_ref() {
        let rows: Vec<Tuple> = vec![vec![Value::Int(1)], vec![Value::Decimal(100)]];
        let b = ValueBatch::with_columns(&rows, 1, &[0]);
        assert!(matches!(b.lane(0), Some(Lane::Ref)));
        let rows2: Vec<Tuple> = vec![vec![Value::str("a")], vec![Value::str("b")]];
        let b2 = ValueBatch::with_columns(&rows2, 1, &[0]);
        assert!(matches!(b2.lane(0), Some(Lane::Ref)));
    }

    #[test]
    fn all_null_column_is_invalid_int_lane() {
        let rows: Vec<Tuple> = vec![vec![Value::Null], vec![Value::Null]];
        let b = ValueBatch::with_columns(&rows, 1, &[0]);
        match b.lane(0) {
            Some(Lane::I64 { valid, .. }) => assert_eq!(valid.count_valid(), 0),
            other => panic!("expected lane, got {other:?}"),
        }
    }

    #[test]
    fn float_lane_and_bit_equality() {
        let rows: Vec<Tuple> = vec![
            vec![Value::Float(0.5)],
            vec![Value::Float(0.5)],
            vec![Value::Float(-0.0)],
            vec![Value::Float(0.0)],
        ];
        let b = ValueBatch::with_columns(&rows, 1, &[0]);
        let mut fresh = vec![false; 4];
        b.mark_adjacent_neq(0, &mut fresh);
        // -0.0 and +0.0 differ under total-order grouping equality.
        assert_eq!(fresh, vec![false, false, true, true]);
    }

    #[test]
    fn selvec_from_truths() {
        let sel = SelVec::from_truths(&[Truth::True, Truth::False, Truth::Unknown, Truth::True]);
        assert_eq!(sel.0, vec![0, 3]);
        assert_eq!(sel.len(), 2);
        assert!(!sel.is_empty());
        assert_eq!(sel.iter().collect::<Vec<_>>(), vec![0, 3]);
    }

    #[test]
    fn validity_bitmap_spans_words() {
        let mut v = Validity::with_capacity(130);
        for i in 0..130 {
            v.push(i % 3 == 0);
        }
        assert_eq!(v.len(), 130);
        for i in 0..130 {
            assert_eq!(v.get(i), i % 3 == 0, "bit {i}");
        }
        assert_eq!(v.count_valid(), (0..130).filter(|i| i % 3 == 0).count());
    }
}
