//! # nra-engine
//!
//! Flat relational execution substrate:
//!
//! * [`expr`] — compilation of bound expressions to index-resolved form,
//!   evaluated under SQL three-valued logic;
//! * [`exec`] — the morsel-style partition scheduler: worker budget,
//!   contiguous chunking, deterministic fork/join and a stable parallel
//!   sort (see `DESIGN.md` §10);
//! * [`governor`] — per-query resource governance: memory budgets,
//!   cooperative cancellation, and the worker handoff for both;
//! * [`faultinject`] — deterministic fault injection at named execution
//!   sites (`NRA_FAULT`), proving every recovery path;
//! * [`ops`] — physical operators (scan, filter, project, sort, Cartesian
//!   product, and hash inner/left-outer/semi/anti joins with residuals);
//! * [`planning`] — helpers splitting join conditions into hash keys and
//!   residual predicates;
//! * [`baseline`] — "System A"'s native plans from the paper's Section 5
//!   (bottom-up semijoin/antijoin cascades, and nested iteration with index
//!   probes);
//! * [`reference`] — the brute-force tuple-iteration oracle every strategy
//!   is validated against;
//! * [`vec`] — the vectorized columnar execution core: [`vec::ValueBatch`]
//!   typed lanes + validity bitmaps, selection vectors, columnar 3VL
//!   predicate evaluation, group-boundary kernels, and the vendored
//!   FxHash-style hasher backing every hash table (see `DESIGN.md` §13).

pub mod baseline;
pub mod config;
pub mod error;
pub mod exec;
pub mod expr;
pub mod faultinject;
pub mod governor;
pub mod ops;
pub mod planning;
pub mod reference;
pub mod vec;

pub use error::EngineError;
pub use expr::{CExpr, CPred};
pub use faultinject::{FaultKind, FaultPlan};
pub use governor::{AdmissionConfig, AdmissionController, AdmissionPermit, CancelToken, Governor};
pub use ops::{join, JoinKind, JoinSpec};
