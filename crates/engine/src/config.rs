//! Strict validation of the engine's environment knobs.
//!
//! The runtime parsers stay lenient (a fault plan skips entries it does
//! not recognize, `NRA_MEM_LIMIT` falls back to unlimited, ...), which
//! kept PR-4-era behavior simple but meant a typo like
//! `NRA_FAULT=join-build:x:panic` or `NRA_MEM_LIMIT=1GB` silently armed
//! nothing. [`validate_env`] is the strict gate: the facade calls it
//! before running a query and before opening a durable database, so
//! malformed specs surface as a structured [`EngineError::Config`]
//! instead of being ignored.

use crate::error::EngineError;
use crate::faultinject;
use nra_storage::iofault;

/// Every fault kind accepted somewhere in the `NRA_FAULT` grammar:
/// engine kinds (`alloc`, `panic`, `delay`) plus the storage I/O kinds
/// (`short-write`, `crash`, `io-error`).
const FAULT_KINDS: [&str; 6] = [
    "alloc",
    "panic",
    "delay",
    "short-write",
    "crash",
    "io-error",
];

fn config_err(var: &str, value: &str, detail: String) -> EngineError {
    EngineError::Config {
        var: var.to_string(),
        value: value.to_string(),
        detail,
    }
}

/// Validate one `NRA_FAULT` spec against the full grammar
/// (`site:nth[:kind[:ms]]`, comma-separated) and both site/kind
/// vocabularies. Returns the offending detail on failure.
pub fn validate_fault_spec(spec: &str) -> Result<(), String> {
    for entry in spec.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let parts: Vec<&str> = entry.split(':').collect();
        if parts.len() > 4 {
            return Err(format!("entry `{entry}` has too many `:` fields"));
        }
        let site = parts[0].trim();
        if !faultinject::SITES.contains(&site) && !iofault::IO_SITES.contains(&site) {
            return Err(format!(
                "unknown fault site `{site}` (known: {}, {})",
                faultinject::SITES.join(", "),
                iofault::IO_SITES.join(", ")
            ));
        }
        let Some(nth) = parts.get(1) else {
            return Err(format!("entry `{entry}` is missing the `nth` field"));
        };
        if nth.trim().parse::<u64>().is_err() {
            return Err(format!(
                "entry `{entry}`: `nth` must be an integer, got `{nth}`"
            ));
        }
        if let Some(kind) = parts.get(2) {
            let kind = kind.trim();
            if !FAULT_KINDS.contains(&kind) {
                return Err(format!(
                    "entry `{entry}`: unknown fault kind `{kind}` (known: {})",
                    FAULT_KINDS.join(", ")
                ));
            }
            if let Some(ms) = parts.get(3) {
                if kind != "delay" {
                    return Err(format!(
                        "entry `{entry}`: only `delay` takes a milliseconds field"
                    ));
                }
                if ms.trim().parse::<u64>().is_err() {
                    return Err(format!(
                        "entry `{entry}`: milliseconds must be an integer, got `{ms}`"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Check every recognized environment knob that the engine otherwise
/// parses leniently. Called by the facade before query execution and
/// before `Database::open`.
pub fn validate_env() -> Result<(), EngineError> {
    if let Ok(v) = std::env::var("NRA_MEM_LIMIT") {
        if v.trim().parse::<u64>().is_err() {
            return Err(config_err(
                "NRA_MEM_LIMIT",
                &v,
                "must be a byte count (plain non-negative integer)".into(),
            ));
        }
    }
    if let Ok(v) = std::env::var("NRA_BATCH_ROWS") {
        match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => {}
            Ok(_) => {
                return Err(config_err(
                    "NRA_BATCH_ROWS",
                    &v,
                    "batch size must be at least 1".into(),
                ));
            }
            Err(_) => {
                return Err(config_err(
                    "NRA_BATCH_ROWS",
                    &v,
                    "must be a positive integer row count".into(),
                ));
            }
        }
    }
    if let Ok(v) = std::env::var("NRA_FAULT") {
        validate_fault_spec(&v).map_err(|detail| config_err("NRA_FAULT", &v, detail))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_specs_pass() {
        for spec in [
            "join-build:1:panic",
            "nest-flush:3:alloc, linking-scan:2",
            "partition-merge:1:delay:25",
            "wal-append:1:short-write,wal-fsync:2:crash",
            "checkpoint-write:1:io-error,snapshot-rename:1:crash",
            "",
            " , ",
        ] {
            assert!(validate_fault_spec(spec).is_ok(), "spec `{spec}` rejected");
        }
    }

    #[test]
    fn malformed_specs_are_rejected_with_detail() {
        let cases = [
            ("nonsense", "unknown fault site"),
            ("join-build", "missing the `nth`"),
            ("join-build:x:panic", "`nth` must be an integer"),
            ("join-build:2:explode", "unknown fault kind"),
            ("wal-apend:1:crash", "unknown fault site"),
            ("join-build:1:panic:50", "only `delay`"),
            ("join-build:1:delay:soon", "milliseconds must be an integer"),
            ("join-build:1:delay:5:x", "too many"),
        ];
        for (spec, needle) in cases {
            let err = validate_fault_spec(spec).unwrap_err();
            assert!(err.contains(needle), "spec `{spec}`: got `{err}`");
        }
    }
}
