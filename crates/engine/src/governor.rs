//! Per-query resource governance: memory budgets, cooperative
//! cancellation, and the thread-local plumbing that carries both across
//! the morsel scheduler's worker threads.
//!
//! A [`Governor`] is built per query (from `QueryOptions` limits, the
//! `NRA_MEM_LIMIT` / `NRA_FAULT` environment, an explicit
//! [`CancelToken`], or a `timeout_ms` deadline), wrapped in an `Arc`,
//! and [`install`]ed on the coordinating thread for the query's
//! lifetime. `exec::run_partitioned` captures the installed governor and
//! re-installs it on every worker, the same way `nra_obs::Handoff`
//! carries the stats collector across.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when idle.** [`charge`] and [`checkpoint`] open with an
//!    `#[inline]` check of a thread-local flag byte; with no limit, no
//!    deadline, no token, and no fault plan the flag is 0 and both are a
//!    single thread-local load. The committed benchmark baselines run
//!    with the governor compiled in but disarmed.
//! 2. **Cheap when armed.** Memory charges accumulate in a thread-local
//!    pending counter and flush into the shared [`Governor`] atomic with
//!    `Relaxed` ordering only every [`Governor::flush_step`] bytes, so
//!    workers do not contend on a cache line per allocation. The flush
//!    step shrinks with the limit (`min(64 KiB, limit/4 + 1)`) so tiny
//!    test budgets still enforce promptly; enforcement lag is bounded by
//!    `flush_step` bytes per live worker.
//! 3. **Determinism preserved.** Charges are order-independent sums over
//!    the same allocations regardless of worker count or scheduling, so
//!    a query under its budget behaves byte-identically to an ungoverned
//!    run; only *which* charge observes the overflow first differs, and
//!    that only changes the `operator`/`requested` fields of the error.
//!
//! Cancellation is cooperative: [`checkpoint`] is called at partition
//! dispatch in `run_partitioned` and every [`CHECK_ROWS`] rows inside
//! the sequential operator loops, so a cancelled query stops within one
//! morsel-sized unit of work and surfaces
//! [`EngineError::Cancelled`] naming the interrupted phase.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::EngineError;
use crate::faultinject::FaultPlan;

/// Row cadence of cooperative-cancellation checks in sequential scan
/// loops (matches the morsel floor, so parallel and sequential runs
/// observe cancellation at comparable granularity).
pub const CHECK_ROWS: usize = 1024;

/// Largest pending-byte batch a worker holds back before flushing into
/// the shared counter.
pub const MAX_FLUSH_STEP: u64 = 64 * 1024;

/// Rough per-value footprint used for budget accounting (a `Value` is a
/// 16-24 byte enum; string heap payloads are not itemized).
pub const VALUE_BYTES: u64 = 16;

/// Estimated footprint of `rows` materialized tuples of `width` columns
/// (values plus one `Vec` header per tuple).
pub fn tuple_bytes(rows: usize, width: usize) -> u64 {
    rows as u64 * (width as u64 * VALUE_BYTES + 24)
}

/// A cloneable cancellation handle. Calling [`CancelToken::cancel`] from
/// any thread makes every governed checkpoint of the query fail with
/// [`EngineError::Cancelled`] at its next opportunity.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation (idempotent, callable from any thread).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Shared, per-query governance state: the memory budget, cancellation
/// sources, and the armed fault plan. Built once per query and shared
/// across workers via `Arc`.
#[derive(Debug, Default)]
pub struct Governor {
    mem_limit: Option<u64>,
    mem_used: AtomicU64,
    flush_step: u64,
    cancel: Option<CancelToken>,
    deadline: Option<Instant>,
    faults: FaultPlan,
}

impl Governor {
    pub fn new() -> Governor {
        Governor::default()
    }

    /// Enforce a memory budget of `bytes` over governed allocations.
    pub fn mem_limit(mut self, bytes: u64) -> Governor {
        self.mem_limit = Some(bytes);
        self.flush_step = MAX_FLUSH_STEP.min(bytes / 4 + 1);
        self
    }

    /// Cancel the query `ms` milliseconds from now (`0` cancels at the
    /// first checkpoint).
    pub fn timeout_ms(mut self, ms: u64) -> Governor {
        self.deadline = Some(Instant::now() + Duration::from_millis(ms));
        self
    }

    /// Attach an explicit cancellation handle.
    pub fn cancel_token(mut self, token: CancelToken) -> Governor {
        self.cancel = Some(token);
        self
    }

    /// Arm a fault plan (see [`crate::faultinject`]).
    pub fn faults(mut self, plan: FaultPlan) -> Governor {
        self.faults = plan;
        self
    }

    /// Overlay environment defaults: `NRA_MEM_LIMIT` when no limit was
    /// set programmatically, `NRA_FAULT` when no fault plan was.
    pub fn with_env(mut self) -> Governor {
        if self.mem_limit.is_none() {
            if let Some(bytes) = std::env::var("NRA_MEM_LIMIT")
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
            {
                self = self.mem_limit(bytes);
            }
        }
        if self.faults.is_empty() {
            self.faults = FaultPlan::from_env();
        }
        self
    }

    /// Whether installing this governor would arm anything at all.
    /// Ungoverned queries skip installation entirely, keeping the
    /// thread-local flag byte at 0.
    pub fn is_armed(&self) -> bool {
        self.mem_limit.is_some()
            || self.deadline.is_some()
            || self.cancel.is_some()
            || !self.faults.is_empty()
    }

    /// Bytes flushed into the shared counter so far (excludes each
    /// worker's un-flushed pending batch).
    pub fn mem_used(&self) -> u64 {
        self.mem_used.load(Ordering::Relaxed)
    }

    fn flags(&self) -> u8 {
        let mut f = 0;
        if self.mem_limit.is_some() {
            f |= F_MEM;
        }
        if self.deadline.is_some() || self.cancel.is_some() {
            f |= F_CANCEL;
        }
        if !self.faults.is_empty() {
            f |= F_FAULT;
        }
        f
    }
}

const F_MEM: u8 = 1;
const F_CANCEL: u8 = 2;
const F_FAULT: u8 = 4;

thread_local! {
    /// The governor of the query currently executing on this thread.
    static CURRENT: RefCell<Option<Arc<Governor>>> = const { RefCell::new(None) };
    /// Which of the governor's facilities are armed (fast-path gate for
    /// [`charge`] / [`checkpoint`] / `faultinject::hit`).
    static FLAGS: Cell<u8> = const { Cell::new(0) };
    /// This thread's un-flushed memory charges, in bytes.
    static PENDING: Cell<u64> = const { Cell::new(0) };
}

/// Restores the previously installed governor on drop, flushing this
/// thread's pending charges into the departing governor first.
#[must_use = "dropping the guard immediately uninstalls the governor"]
pub struct GovernorGuard {
    prev: Option<Arc<Governor>>,
    prev_flags: u8,
    prev_pending: u64,
}

impl Drop for GovernorGuard {
    fn drop(&mut self) {
        let pending = PENDING.with(|p| p.replace(self.prev_pending));
        CURRENT.with(|c| {
            let mut cur = c.borrow_mut();
            if let (Some(g), true) = (cur.as_ref(), pending > 0) {
                g.mem_used.fetch_add(pending, Ordering::Relaxed);
            }
            *cur = self.prev.take();
        });
        FLAGS.with(|f| f.set(self.prev_flags));
    }
}

/// Install `gov` (or, with `None`, nothing) as this thread's governor
/// for the lifetime of the returned guard. `Database::execute` installs
/// on the coordinator; `exec::run_partitioned` re-installs the captured
/// governor on each worker.
pub fn install(gov: Option<Arc<Governor>>) -> GovernorGuard {
    let flags = gov.as_ref().map_or(0, |g| g.flags());
    let prev = CURRENT.with(|c| std::mem::replace(&mut *c.borrow_mut(), gov));
    GovernorGuard {
        prev,
        prev_flags: FLAGS.with(|f| f.replace(flags)),
        prev_pending: PENDING.with(|p| p.replace(0)),
    }
}

/// The governor installed on this thread, if any (captured by the
/// scheduler to hand to workers).
pub fn current() -> Option<Arc<Governor>> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Charge `bytes` of governed allocation against the query budget on
/// behalf of `site`. A single thread-local flag check when no memory
/// limit is armed.
#[inline]
pub fn charge(site: &str, bytes: u64) -> Result<(), EngineError> {
    if FLAGS.with(Cell::get) & F_MEM == 0 {
        return Ok(());
    }
    charge_armed(site, bytes)
}

fn charge_armed(site: &str, bytes: u64) -> Result<(), EngineError> {
    CURRENT.with(|c| {
        let cur = c.borrow();
        let Some(g) = cur.as_ref() else {
            return Ok(());
        };
        let pending = PENDING.with(Cell::get) + bytes;
        if pending < g.flush_step {
            PENDING.with(|p| p.set(pending));
            return Ok(());
        }
        PENDING.with(|p| p.set(0));
        let total = g.mem_used.fetch_add(pending, Ordering::Relaxed) + pending;
        // Live-progress hook: the flushed running total is the best
        // cross-thread memory figure available, published at flush-step
        // granularity (only memory-armed queries reach this path).
        nra_obs::progress::on_mem(total);
        let limit = g.mem_limit.unwrap_or(u64::MAX);
        if total > limit {
            nra_obs::trace::emit(|| nra_obs::trace::TraceEvent::Governor {
                action: "resource-exhausted".into(),
                detail: format!("{site} (used {total} of {limit} bytes)"),
            });
            nra_obs::metrics::both(|m| {
                m.counter_add(
                    "nra_governor_interventions_total",
                    &[("action", "resource-exhausted")],
                    1,
                )
            });
            return Err(EngineError::ResourceExhausted {
                operator: site.to_string(),
                requested: bytes,
                limit,
            });
        }
        Ok(())
    })
}

/// Accumulates exact byte amounts locally and flushes them through
/// [`charge`] in one call — the batch-amortized charging path used by
/// the vectorized executors (DESIGN.md §13). The thread-local flag
/// check and pending-counter update run once per batch instead of once
/// per allocation, while the flushed total is exactly the sum of the
/// added bytes, so governed budgets observe identical charges at any
/// batch size.
#[derive(Debug)]
pub struct BatchCharger {
    site: &'static str,
    pending: u64,
}

impl BatchCharger {
    pub fn new(site: &'static str) -> BatchCharger {
        BatchCharger { site, pending: 0 }
    }

    /// Record `bytes` of allocation without touching thread-local state.
    #[inline]
    pub fn add(&mut self, bytes: u64) {
        self.pending += bytes;
    }

    /// Bytes recorded since the last flush.
    pub fn pending(&self) -> u64 {
        self.pending
    }

    /// Flush the accumulated bytes into the governed budget.
    pub fn flush(&mut self) -> Result<(), EngineError> {
        let bytes = std::mem::take(&mut self.pending);
        if bytes > 0 {
            charge(self.site, bytes)
        } else {
            Ok(())
        }
    }
}

/// Cooperative cancellation checkpoint. Fails with
/// [`EngineError::Cancelled`] naming `phase` when the query's token was
/// cancelled or its deadline passed. A single thread-local flag check
/// when neither a token nor a deadline is armed.
#[inline]
pub fn checkpoint(phase: &str) -> Result<(), EngineError> {
    if FLAGS.with(Cell::get) & F_CANCEL == 0 {
        return Ok(());
    }
    checkpoint_armed(phase)
}

/// [`checkpoint`], but only on every [`CHECK_ROWS`]-th iteration — the
/// cadence sequential scan loops use (`governor::tick(i, "phase")?`).
///
/// The cadence doubles as the live-progress heartbeat: each firing past
/// the loop head reports one whole [`CHECK_ROWS`] step to the installed
/// [`nra_obs::progress`] state (a no-op when none is installed). Whole
/// steps only — the tail of a loop is never counted here — so the
/// progress row counter undercounts monotonically and never overshoots,
/// while operator counters are untouched either way.
#[inline]
pub fn tick(i: usize, phase: &str) -> Result<(), EngineError> {
    if !i.is_multiple_of(CHECK_ROWS) {
        return Ok(());
    }
    if i > 0 {
        nra_obs::progress::on_rows(CHECK_ROWS as u64, phase);
    }
    checkpoint(phase)
}

fn checkpoint_armed(phase: &str) -> Result<(), EngineError> {
    CURRENT.with(|c| {
        let cur = c.borrow();
        let Some(g) = cur.as_ref() else {
            return Ok(());
        };
        let cancelled = g.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
            || g.deadline.is_some_and(|d| Instant::now() >= d);
        if cancelled {
            nra_obs::trace::emit(|| nra_obs::trace::TraceEvent::Governor {
                action: "cancelled".into(),
                detail: phase.to_string(),
            });
            nra_obs::metrics::both(|m| {
                m.counter_add(
                    "nra_governor_interventions_total",
                    &[("action", "cancelled")],
                    1,
                )
            });
            return Err(EngineError::Cancelled {
                phase: phase.to_string(),
            });
        }
        Ok(())
    })
}

/// Whether the installed governor (if any) has a non-empty fault plan
/// (fast-path gate for [`crate::faultinject::hit`]).
#[inline]
pub(crate) fn faults_armed() -> bool {
    FLAGS.with(Cell::get) & F_FAULT != 0
}

/// Count a pass through the named fault site against the installed
/// governor's plan.
pub(crate) fn observe_fault(site: &str) -> Result<(), EngineError> {
    CURRENT.with(|c| {
        let cur = c.borrow();
        let Some(g) = cur.as_ref() else {
            return Ok(());
        };
        let r = g.faults.observe(site, g.mem_limit.unwrap_or(0));
        if r.is_err() {
            nra_obs::metrics::both(|m| {
                m.counter_add(
                    "nra_governor_interventions_total",
                    &[("action", "fault-injected")],
                    1,
                )
            });
        }
        r
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faultinject::{self, FaultKind};

    #[test]
    fn ungoverned_thread_is_inert() {
        assert!(charge("x", u64::MAX).is_ok());
        assert!(checkpoint("x").is_ok());
        assert!(faultinject::hit(faultinject::JOIN_BUILD).is_ok());
    }

    #[test]
    fn uninstall_restores_previous_state() {
        let outer = Arc::new(Governor::new().mem_limit(1_000_000));
        let inner = Arc::new(Governor::new().mem_limit(10));
        let _og = install(Some(outer.clone()));
        assert!(charge("outer", 100).is_ok());
        {
            let _ig = install(Some(inner.clone()));
            assert!(charge("inner", 100).is_err());
        }
        // Back on the outer governor: small charges pass again.
        assert!(charge("outer", 100).is_ok());
        drop(_og);
        assert!(charge("outer", u64::MAX).is_ok());
        // The outer governor saw its own charges (flushed on uninstall),
        // not the inner governor's.
        assert_eq!(outer.mem_used(), 200);
    }

    #[test]
    fn tiny_limits_enforce_promptly() {
        let g = Arc::new(Governor::new().mem_limit(1_000));
        let _guard = install(Some(g));
        // flush_step = 251, so four 300-byte charges must trip the limit
        // well before u64 pending wraps anything.
        let mut err = None;
        for _ in 0..4 {
            if let Err(e) = charge("nest-build", 300) {
                err = Some(e);
                break;
            }
        }
        match err {
            Some(EngineError::ResourceExhausted {
                operator, limit, ..
            }) => {
                assert_eq!(operator, "nest-build");
                assert_eq!(limit, 1_000);
            }
            other => panic!("expected ResourceExhausted, got {other:?}"),
        }
    }

    #[test]
    fn charges_below_limit_accumulate_without_error() {
        let g = Arc::new(Governor::new().mem_limit(1 << 30));
        {
            let _guard = install(Some(g.clone()));
            for _ in 0..1000 {
                charge("op", 1024).unwrap();
            }
        }
        assert_eq!(g.mem_used(), 1000 * 1024);
    }

    #[test]
    fn batch_charger_flushes_exact_totals() {
        let g = Arc::new(Governor::new().mem_limit(1 << 30));
        {
            let _guard = install(Some(g.clone()));
            let mut c = BatchCharger::new("vec-batch");
            for _ in 0..10 {
                c.add(100);
            }
            assert_eq!(c.pending(), 1000);
            c.flush().unwrap();
            assert_eq!(c.pending(), 0);
            c.flush().unwrap(); // empty flush is a no-op
        }
        assert_eq!(g.mem_used(), 1000);
    }

    #[test]
    fn cancel_token_trips_checkpoint() {
        let token = CancelToken::new();
        let g = Arc::new(Governor::new().cancel_token(token.clone()));
        let _guard = install(Some(g));
        assert!(checkpoint("scan").is_ok());
        token.cancel();
        match checkpoint("scan") {
            Err(EngineError::Cancelled { phase }) => assert_eq!(phase, "scan"),
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn zero_timeout_cancels_immediately() {
        let g = Arc::new(Governor::new().timeout_ms(0));
        let _guard = install(Some(g));
        assert!(matches!(
            checkpoint("dispatch"),
            Err(EngineError::Cancelled { .. })
        ));
    }

    #[test]
    fn tick_checks_on_cadence_only() {
        let token = CancelToken::new();
        token.cancel();
        let g = Arc::new(Governor::new().cancel_token(token));
        let _guard = install(Some(g));
        assert!(tick(1, "scan").is_ok());
        assert!(tick(CHECK_ROWS - 1, "scan").is_ok());
        assert!(tick(0, "scan").is_err());
        assert!(tick(CHECK_ROWS, "scan").is_err());
    }

    #[test]
    fn fault_plan_fires_through_hit() {
        let mut plan = FaultPlan::default();
        plan.push(faultinject::NEST_FLUSH, 1, FaultKind::AllocFail);
        let g = Arc::new(Governor::new().faults(plan));
        let _guard = install(Some(g));
        assert!(faultinject::hit(faultinject::JOIN_BUILD).is_ok());
        assert!(matches!(
            faultinject::hit(faultinject::NEST_FLUSH),
            Err(EngineError::ResourceExhausted { .. })
        ));
        // One-shot: the nth pass has been consumed.
        assert!(faultinject::hit(faultinject::NEST_FLUSH).is_ok());
    }

    #[test]
    fn unarmed_governor_is_not_installed_armed() {
        assert!(!Governor::new().is_armed());
        assert!(Governor::new().mem_limit(1).is_armed());
        assert!(Governor::new().timeout_ms(1).is_armed());
        assert!(Governor::new().cancel_token(CancelToken::new()).is_armed());
    }
}
