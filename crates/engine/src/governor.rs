//! Per-query resource governance: memory budgets, cooperative
//! cancellation, and the thread-local plumbing that carries both across
//! the morsel scheduler's worker threads.
//!
//! A [`Governor`] is built per query (from `QueryOptions` limits, the
//! `NRA_MEM_LIMIT` / `NRA_FAULT` environment, an explicit
//! [`CancelToken`], or a `timeout_ms` deadline), wrapped in an `Arc`,
//! and [`install`]ed on the coordinating thread for the query's
//! lifetime. `exec::run_partitioned` captures the installed governor and
//! re-installs it on every worker, the same way `nra_obs::Handoff`
//! carries the stats collector across.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when idle.** [`charge`] and [`checkpoint`] open with an
//!    `#[inline]` check of a thread-local flag byte; with no limit, no
//!    deadline, no token, and no fault plan the flag is 0 and both are a
//!    single thread-local load. The committed benchmark baselines run
//!    with the governor compiled in but disarmed.
//! 2. **Cheap when armed.** Memory charges accumulate in a thread-local
//!    pending counter and flush into the shared [`Governor`] atomic with
//!    `Relaxed` ordering only every [`Governor::flush_step`] bytes, so
//!    workers do not contend on a cache line per allocation. The flush
//!    step shrinks with the limit (`min(64 KiB, limit/4 + 1)`) so tiny
//!    test budgets still enforce promptly; enforcement lag is bounded by
//!    `flush_step` bytes per live worker.
//! 3. **Determinism preserved.** Charges are order-independent sums over
//!    the same allocations regardless of worker count or scheduling, so
//!    a query under its budget behaves byte-identically to an ungoverned
//!    run; only *which* charge observes the overflow first differs, and
//!    that only changes the `operator`/`requested` fields of the error.
//!
//! Cancellation is cooperative: [`checkpoint`] is called at partition
//! dispatch in `run_partitioned` and every [`CHECK_ROWS`] rows inside
//! the sequential operator loops, so a cancelled query stops within one
//! morsel-sized unit of work and surfaces
//! [`EngineError::Cancelled`] naming the interrupted phase.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::EngineError;
use crate::faultinject::FaultPlan;

/// Row cadence of cooperative-cancellation checks in sequential scan
/// loops (matches the morsel floor, so parallel and sequential runs
/// observe cancellation at comparable granularity).
pub const CHECK_ROWS: usize = 1024;

/// Largest pending-byte batch a worker holds back before flushing into
/// the shared counter.
pub const MAX_FLUSH_STEP: u64 = 64 * 1024;

/// Rough per-value footprint used for budget accounting (a `Value` is a
/// 16-24 byte enum; string heap payloads are not itemized).
pub const VALUE_BYTES: u64 = 16;

/// Estimated footprint of `rows` materialized tuples of `width` columns
/// (values plus one `Vec` header per tuple).
pub fn tuple_bytes(rows: usize, width: usize) -> u64 {
    rows as u64 * (width as u64 * VALUE_BYTES + 24)
}

/// A cloneable cancellation handle. Calling [`CancelToken::cancel`] from
/// any thread makes every governed checkpoint of the query fail with
/// [`EngineError::Cancelled`] at its next opportunity.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation (idempotent, callable from any thread).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Shared, per-query governance state: the memory budget, cancellation
/// sources, and the armed fault plan. Built once per query and shared
/// across workers via `Arc`.
#[derive(Debug, Default)]
pub struct Governor {
    mem_limit: Option<u64>,
    mem_used: AtomicU64,
    flush_step: u64,
    cancel: Option<CancelToken>,
    deadline: Option<Instant>,
    faults: FaultPlan,
}

impl Governor {
    pub fn new() -> Governor {
        Governor::default()
    }

    /// Enforce a memory budget of `bytes` over governed allocations.
    pub fn mem_limit(mut self, bytes: u64) -> Governor {
        self.mem_limit = Some(bytes);
        self.flush_step = MAX_FLUSH_STEP.min(bytes / 4 + 1);
        self
    }

    /// Cancel the query `ms` milliseconds from now (`0` cancels at the
    /// first checkpoint).
    pub fn timeout_ms(mut self, ms: u64) -> Governor {
        self.deadline = Some(Instant::now() + Duration::from_millis(ms));
        self
    }

    /// Attach an explicit cancellation handle.
    pub fn cancel_token(mut self, token: CancelToken) -> Governor {
        self.cancel = Some(token);
        self
    }

    /// Arm a fault plan (see [`crate::faultinject`]).
    pub fn faults(mut self, plan: FaultPlan) -> Governor {
        self.faults = plan;
        self
    }

    /// Overlay environment defaults: `NRA_MEM_LIMIT` when no limit was
    /// set programmatically, `NRA_FAULT` when no fault plan was.
    pub fn with_env(mut self) -> Governor {
        if self.mem_limit.is_none() {
            if let Some(bytes) = std::env::var("NRA_MEM_LIMIT")
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
            {
                self = self.mem_limit(bytes);
            }
        }
        if self.faults.is_empty() {
            self.faults = FaultPlan::from_env();
        }
        self
    }

    /// Whether installing this governor would arm anything at all.
    /// Ungoverned queries skip installation entirely, keeping the
    /// thread-local flag byte at 0.
    pub fn is_armed(&self) -> bool {
        self.mem_limit.is_some()
            || self.deadline.is_some()
            || self.cancel.is_some()
            || !self.faults.is_empty()
    }

    /// Bytes flushed into the shared counter so far (excludes each
    /// worker's un-flushed pending batch).
    pub fn mem_used(&self) -> u64 {
        self.mem_used.load(Ordering::Relaxed)
    }

    fn flags(&self) -> u8 {
        let mut f = 0;
        if self.mem_limit.is_some() {
            f |= F_MEM;
        }
        if self.deadline.is_some() || self.cancel.is_some() {
            f |= F_CANCEL;
        }
        if !self.faults.is_empty() {
            f |= F_FAULT;
        }
        f
    }
}

const F_MEM: u8 = 1;
const F_CANCEL: u8 = 2;
const F_FAULT: u8 = 4;

thread_local! {
    /// The governor of the query currently executing on this thread.
    static CURRENT: RefCell<Option<Arc<Governor>>> = const { RefCell::new(None) };
    /// Which of the governor's facilities are armed (fast-path gate for
    /// [`charge`] / [`checkpoint`] / `faultinject::hit`).
    static FLAGS: Cell<u8> = const { Cell::new(0) };
    /// This thread's un-flushed memory charges, in bytes.
    static PENDING: Cell<u64> = const { Cell::new(0) };
}

/// Restores the previously installed governor on drop, flushing this
/// thread's pending charges into the departing governor first.
#[must_use = "dropping the guard immediately uninstalls the governor"]
pub struct GovernorGuard {
    prev: Option<Arc<Governor>>,
    prev_flags: u8,
    prev_pending: u64,
}

impl Drop for GovernorGuard {
    fn drop(&mut self) {
        let pending = PENDING.with(|p| p.replace(self.prev_pending));
        CURRENT.with(|c| {
            let mut cur = c.borrow_mut();
            if let (Some(g), true) = (cur.as_ref(), pending > 0) {
                g.mem_used.fetch_add(pending, Ordering::Relaxed);
            }
            *cur = self.prev.take();
        });
        FLAGS.with(|f| f.set(self.prev_flags));
    }
}

/// Install `gov` (or, with `None`, nothing) as this thread's governor
/// for the lifetime of the returned guard. `Database::execute` installs
/// on the coordinator; `exec::run_partitioned` re-installs the captured
/// governor on each worker.
pub fn install(gov: Option<Arc<Governor>>) -> GovernorGuard {
    let flags = gov.as_ref().map_or(0, |g| g.flags());
    let prev = CURRENT.with(|c| std::mem::replace(&mut *c.borrow_mut(), gov));
    GovernorGuard {
        prev,
        prev_flags: FLAGS.with(|f| f.replace(flags)),
        prev_pending: PENDING.with(|p| p.replace(0)),
    }
}

/// The governor installed on this thread, if any (captured by the
/// scheduler to hand to workers).
pub fn current() -> Option<Arc<Governor>> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Charge `bytes` of governed allocation against the query budget on
/// behalf of `site`. A single thread-local flag check when no memory
/// limit is armed.
#[inline]
pub fn charge(site: &str, bytes: u64) -> Result<(), EngineError> {
    if FLAGS.with(Cell::get) & F_MEM == 0 {
        return Ok(());
    }
    charge_armed(site, bytes)
}

fn charge_armed(site: &str, bytes: u64) -> Result<(), EngineError> {
    CURRENT.with(|c| {
        let cur = c.borrow();
        let Some(g) = cur.as_ref() else {
            return Ok(());
        };
        let pending = PENDING.with(Cell::get) + bytes;
        if pending < g.flush_step {
            PENDING.with(|p| p.set(pending));
            return Ok(());
        }
        PENDING.with(|p| p.set(0));
        let total = g.mem_used.fetch_add(pending, Ordering::Relaxed) + pending;
        // Live-progress hook: the flushed running total is the best
        // cross-thread memory figure available, published at flush-step
        // granularity (only memory-armed queries reach this path).
        nra_obs::progress::on_mem(total);
        let limit = g.mem_limit.unwrap_or(u64::MAX);
        if total > limit {
            nra_obs::trace::emit(|| nra_obs::trace::TraceEvent::Governor {
                action: "resource-exhausted".into(),
                detail: format!("{site} (used {total} of {limit} bytes)"),
            });
            nra_obs::metrics::both(|m| {
                m.counter_add(
                    "nra_governor_interventions_total",
                    &[("action", "resource-exhausted")],
                    1,
                )
            });
            return Err(EngineError::ResourceExhausted {
                operator: site.to_string(),
                requested: bytes,
                limit,
            });
        }
        Ok(())
    })
}

/// Accumulates exact byte amounts locally and flushes them through
/// [`charge`] in one call — the batch-amortized charging path used by
/// the vectorized executors (DESIGN.md §13). The thread-local flag
/// check and pending-counter update run once per batch instead of once
/// per allocation, while the flushed total is exactly the sum of the
/// added bytes, so governed budgets observe identical charges at any
/// batch size.
#[derive(Debug)]
pub struct BatchCharger {
    site: &'static str,
    pending: u64,
}

impl BatchCharger {
    pub fn new(site: &'static str) -> BatchCharger {
        BatchCharger { site, pending: 0 }
    }

    /// Record `bytes` of allocation without touching thread-local state.
    #[inline]
    pub fn add(&mut self, bytes: u64) {
        self.pending += bytes;
    }

    /// Bytes recorded since the last flush.
    pub fn pending(&self) -> u64 {
        self.pending
    }

    /// Flush the accumulated bytes into the governed budget.
    pub fn flush(&mut self) -> Result<(), EngineError> {
        let bytes = std::mem::take(&mut self.pending);
        if bytes > 0 {
            charge(self.site, bytes)
        } else {
            Ok(())
        }
    }
}

/// Cooperative cancellation checkpoint. Fails with
/// [`EngineError::Cancelled`] naming `phase` when the query's token was
/// cancelled or its deadline passed. A single thread-local flag check
/// when neither a token nor a deadline is armed.
#[inline]
pub fn checkpoint(phase: &str) -> Result<(), EngineError> {
    if FLAGS.with(Cell::get) & F_CANCEL == 0 {
        return Ok(());
    }
    checkpoint_armed(phase)
}

/// [`checkpoint`], but only on every [`CHECK_ROWS`]-th iteration — the
/// cadence sequential scan loops use (`governor::tick(i, "phase")?`).
///
/// The cadence doubles as the live-progress heartbeat: each firing past
/// the loop head reports one whole [`CHECK_ROWS`] step to the installed
/// [`nra_obs::progress`] state (a no-op when none is installed). Whole
/// steps only — the tail of a loop is never counted here — so the
/// progress row counter undercounts monotonically and never overshoots,
/// while operator counters are untouched either way.
#[inline]
pub fn tick(i: usize, phase: &str) -> Result<(), EngineError> {
    if !i.is_multiple_of(CHECK_ROWS) {
        return Ok(());
    }
    if i > 0 {
        nra_obs::progress::on_rows(CHECK_ROWS as u64, phase);
    }
    checkpoint(phase)
}

fn checkpoint_armed(phase: &str) -> Result<(), EngineError> {
    CURRENT.with(|c| {
        let cur = c.borrow();
        let Some(g) = cur.as_ref() else {
            return Ok(());
        };
        let cancelled = g.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
            || g.deadline.is_some_and(|d| Instant::now() >= d);
        if cancelled {
            nra_obs::trace::emit(|| nra_obs::trace::TraceEvent::Governor {
                action: "cancelled".into(),
                detail: phase.to_string(),
            });
            nra_obs::metrics::both(|m| {
                m.counter_add(
                    "nra_governor_interventions_total",
                    &[("action", "cancelled")],
                    1,
                )
            });
            return Err(EngineError::Cancelled {
                phase: phase.to_string(),
            });
        }
        Ok(())
    })
}

/// Whether the installed governor (if any) has a non-empty fault plan
/// (fast-path gate for [`crate::faultinject::hit`]).
#[inline]
pub(crate) fn faults_armed() -> bool {
    FLAGS.with(Cell::get) & F_FAULT != 0
}

/// Count a pass through the named fault site against the installed
/// governor's plan.
pub(crate) fn observe_fault(site: &str) -> Result<(), EngineError> {
    CURRENT.with(|c| {
        let cur = c.borrow();
        let Some(g) = cur.as_ref() else {
            return Ok(());
        };
        let r = g.faults.observe(site, g.mem_limit.unwrap_or(0));
        if r.is_err() {
            nra_obs::metrics::both(|m| {
                m.counter_add(
                    "nra_governor_interventions_total",
                    &[("action", "fault-injected")],
                    1,
                )
            });
        }
        r
    })
}

// ---------------------------------------------------------------------
// Admission control: the *global* layer above the per-query governors.
//
// A [`Governor`] protects one query from itself; an
// [`AdmissionController`] protects the process from the sum of its
// queries. Every session's per-query budget (its `mem_limit_bytes`)
// doubles as the reservation the controller aggregates: a query is
// admitted only while the number of running queries stays under
// `max_concurrent` AND the sum of admitted reservations stays under
// `mem_cap_bytes`. Saturated admission *queues* (condvar wait) up to
// `queue_timeout_ms`, then fails with [`EngineError::Admission`] — load
// sheds at the front door instead of thrashing the engine.

/// Admission limits. Both caps default to unlimited, which makes the
/// controller a no-op — embedded single-caller use never queues.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum concurrently-executing queries (`None` = unlimited).
    pub max_concurrent: Option<usize>,
    /// Cap on the sum of admitted per-query memory reservations, in
    /// bytes (`None` = unlimited). Queries without a budget reserve 0
    /// and pass this cap freely.
    pub mem_cap_bytes: Option<u64>,
    /// How long a query may wait for capacity before admission fails.
    /// `0` sheds immediately when saturated.
    pub queue_timeout_ms: u64,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            max_concurrent: None,
            mem_cap_bytes: None,
            queue_timeout_ms: 1_000,
        }
    }
}

impl AdmissionConfig {
    pub fn new() -> AdmissionConfig {
        AdmissionConfig::default()
    }

    pub fn max_concurrent(mut self, n: usize) -> AdmissionConfig {
        self.max_concurrent = Some(n.max(1));
        self
    }

    pub fn mem_cap_bytes(mut self, bytes: u64) -> AdmissionConfig {
        self.mem_cap_bytes = Some(bytes);
        self
    }

    pub fn queue_timeout_ms(mut self, ms: u64) -> AdmissionConfig {
        self.queue_timeout_ms = ms;
        self
    }

    /// Overlay the environment: `NRA_MAX_CONCURRENT`,
    /// `NRA_ADMISSION_MEM` (bytes) and `NRA_ADMISSION_TIMEOUT_MS`, each
    /// only where nothing was set programmatically.
    pub fn with_env(mut self) -> AdmissionConfig {
        let parse = |var: &str| {
            std::env::var(var)
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
        };
        if self.max_concurrent.is_none() {
            if let Some(n) = parse("NRA_MAX_CONCURRENT") {
                self = self.max_concurrent(n as usize);
            }
        }
        if self.mem_cap_bytes.is_none() {
            if let Some(b) = parse("NRA_ADMISSION_MEM") {
                self = self.mem_cap_bytes(b);
            }
        }
        if let Some(ms) = parse("NRA_ADMISSION_TIMEOUT_MS") {
            self = self.queue_timeout_ms(ms);
        }
        self
    }

    /// Whether any cap is armed (unarmed controllers take a fast path
    /// that never touches the mutex).
    pub fn is_armed(&self) -> bool {
        self.max_concurrent.is_some() || self.mem_cap_bytes.is_some()
    }
}

#[derive(Debug, Default)]
struct AdmissionState {
    running: usize,
    mem_reserved: u64,
}

/// Aggregates per-session budgets under process-wide caps; see the
/// module comment above. Shared via `Arc` by everything that executes
/// queries against one database.
#[derive(Debug, Default)]
pub struct AdmissionController {
    config: AdmissionConfig,
    state: std::sync::Mutex<AdmissionState>,
    cv: std::sync::Condvar,
}

/// RAII admission slot: holding one means the query is counted against
/// the caps; dropping it frees the slot and wakes one queued waiter
/// per released resource class.
#[must_use = "dropping the permit releases the admission slot"]
#[derive(Debug)]
pub struct AdmissionPermit {
    controller: Option<Arc<AdmissionController>>,
    mem_reserved: u64,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        if let Some(c) = self.controller.take() {
            {
                let mut st = c.state.lock().unwrap_or_else(|e| e.into_inner());
                st.running -= 1;
                st.mem_reserved -= self.mem_reserved;
            }
            nra_obs::metrics::global().gauge_set(
                "nra_admission_running",
                &[],
                c.snapshot().0 as u64,
            );
            c.cv.notify_all();
        }
    }
}

impl AdmissionController {
    pub fn new(config: AdmissionConfig) -> AdmissionController {
        AdmissionController {
            config,
            state: std::sync::Mutex::new(AdmissionState::default()),
            cv: std::sync::Condvar::new(),
        }
    }

    /// Unlimited controller (the default for a fresh database).
    pub fn unlimited() -> AdmissionController {
        AdmissionController::new(AdmissionConfig::default())
    }

    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// `(running, mem_reserved)` right now.
    pub fn snapshot(&self) -> (usize, u64) {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        (st.running, st.mem_reserved)
    }

    fn blocked_by(&self, st: &AdmissionState, mem_reserve: u64) -> Option<(String, u64)> {
        if let Some(max) = self.config.max_concurrent {
            if st.running >= max {
                return Some(("concurrency cap".to_string(), max as u64));
            }
        }
        if let Some(cap) = self.config.mem_cap_bytes {
            // A single reservation larger than the whole cap can still
            // run alone — otherwise it would queue forever.
            if st.mem_reserved + mem_reserve > cap && st.running > 0 {
                return Some(("memory cap".to_string(), cap));
            }
        }
        None
    }

    /// Wait for capacity and take a slot, reserving `mem_reserve` bytes
    /// (the query's own memory budget; 0 for unbudgeted queries).
    /// Fails with [`EngineError::Admission`] when the caps stay
    /// saturated for [`AdmissionConfig::queue_timeout_ms`].
    pub fn admit(self: &Arc<Self>, mem_reserve: u64) -> Result<AdmissionPermit, EngineError> {
        if !self.config.is_armed() {
            // Unlimited: count nothing, park nothing — embedded callers
            // pay zero synchronization here.
            return Ok(AdmissionPermit {
                controller: None,
                mem_reserved: 0,
            });
        }
        let deadline = Instant::now() + Duration::from_millis(self.config.queue_timeout_ms);
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let mut queued = false;
        loop {
            match self.blocked_by(&st, mem_reserve) {
                None => {
                    st.running += 1;
                    st.mem_reserved += mem_reserve;
                    let running = st.running;
                    drop(st);
                    nra_obs::metrics::global().counter_add("nra_admission_admitted_total", &[], 1);
                    nra_obs::metrics::global().gauge_max(
                        "nra_admission_running",
                        &[],
                        running as u64,
                    );
                    return Ok(AdmissionPermit {
                        controller: Some(self.clone()),
                        mem_reserved: mem_reserve,
                    });
                }
                Some((detail, limit)) => {
                    if !queued {
                        queued = true;
                        nra_obs::metrics::global().counter_add(
                            "nra_admission_queued_total",
                            &[],
                            1,
                        );
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        let running = st.running;
                        drop(st);
                        nra_obs::metrics::global().counter_add(
                            "nra_admission_rejected_total",
                            &[],
                            1,
                        );
                        nra_obs::trace::emit(|| nra_obs::trace::TraceEvent::Governor {
                            action: "admission-rejected".into(),
                            detail: detail.clone(),
                        });
                        return Err(EngineError::Admission {
                            detail,
                            waited_ms: self.config.queue_timeout_ms,
                            running,
                            limit,
                        });
                    }
                    let (guard, _timeout) = self
                        .cv
                        .wait_timeout(st, deadline - now)
                        .unwrap_or_else(|e| e.into_inner());
                    st = guard;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faultinject::{self, FaultKind};

    #[test]
    fn ungoverned_thread_is_inert() {
        assert!(charge("x", u64::MAX).is_ok());
        assert!(checkpoint("x").is_ok());
        assert!(faultinject::hit(faultinject::JOIN_BUILD).is_ok());
    }

    #[test]
    fn uninstall_restores_previous_state() {
        let outer = Arc::new(Governor::new().mem_limit(1_000_000));
        let inner = Arc::new(Governor::new().mem_limit(10));
        let _og = install(Some(outer.clone()));
        assert!(charge("outer", 100).is_ok());
        {
            let _ig = install(Some(inner.clone()));
            assert!(charge("inner", 100).is_err());
        }
        // Back on the outer governor: small charges pass again.
        assert!(charge("outer", 100).is_ok());
        drop(_og);
        assert!(charge("outer", u64::MAX).is_ok());
        // The outer governor saw its own charges (flushed on uninstall),
        // not the inner governor's.
        assert_eq!(outer.mem_used(), 200);
    }

    #[test]
    fn tiny_limits_enforce_promptly() {
        let g = Arc::new(Governor::new().mem_limit(1_000));
        let _guard = install(Some(g));
        // flush_step = 251, so four 300-byte charges must trip the limit
        // well before u64 pending wraps anything.
        let mut err = None;
        for _ in 0..4 {
            if let Err(e) = charge("nest-build", 300) {
                err = Some(e);
                break;
            }
        }
        match err {
            Some(EngineError::ResourceExhausted {
                operator, limit, ..
            }) => {
                assert_eq!(operator, "nest-build");
                assert_eq!(limit, 1_000);
            }
            other => panic!("expected ResourceExhausted, got {other:?}"),
        }
    }

    #[test]
    fn charges_below_limit_accumulate_without_error() {
        let g = Arc::new(Governor::new().mem_limit(1 << 30));
        {
            let _guard = install(Some(g.clone()));
            for _ in 0..1000 {
                charge("op", 1024).unwrap();
            }
        }
        assert_eq!(g.mem_used(), 1000 * 1024);
    }

    #[test]
    fn batch_charger_flushes_exact_totals() {
        let g = Arc::new(Governor::new().mem_limit(1 << 30));
        {
            let _guard = install(Some(g.clone()));
            let mut c = BatchCharger::new("vec-batch");
            for _ in 0..10 {
                c.add(100);
            }
            assert_eq!(c.pending(), 1000);
            c.flush().unwrap();
            assert_eq!(c.pending(), 0);
            c.flush().unwrap(); // empty flush is a no-op
        }
        assert_eq!(g.mem_used(), 1000);
    }

    #[test]
    fn cancel_token_trips_checkpoint() {
        let token = CancelToken::new();
        let g = Arc::new(Governor::new().cancel_token(token.clone()));
        let _guard = install(Some(g));
        assert!(checkpoint("scan").is_ok());
        token.cancel();
        match checkpoint("scan") {
            Err(EngineError::Cancelled { phase }) => assert_eq!(phase, "scan"),
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn zero_timeout_cancels_immediately() {
        let g = Arc::new(Governor::new().timeout_ms(0));
        let _guard = install(Some(g));
        assert!(matches!(
            checkpoint("dispatch"),
            Err(EngineError::Cancelled { .. })
        ));
    }

    #[test]
    fn tick_checks_on_cadence_only() {
        let token = CancelToken::new();
        token.cancel();
        let g = Arc::new(Governor::new().cancel_token(token));
        let _guard = install(Some(g));
        assert!(tick(1, "scan").is_ok());
        assert!(tick(CHECK_ROWS - 1, "scan").is_ok());
        assert!(tick(0, "scan").is_err());
        assert!(tick(CHECK_ROWS, "scan").is_err());
    }

    #[test]
    fn fault_plan_fires_through_hit() {
        let mut plan = FaultPlan::default();
        plan.push(faultinject::NEST_FLUSH, 1, FaultKind::AllocFail);
        let g = Arc::new(Governor::new().faults(plan));
        let _guard = install(Some(g));
        assert!(faultinject::hit(faultinject::JOIN_BUILD).is_ok());
        assert!(matches!(
            faultinject::hit(faultinject::NEST_FLUSH),
            Err(EngineError::ResourceExhausted { .. })
        ));
        // One-shot: the nth pass has been consumed.
        assert!(faultinject::hit(faultinject::NEST_FLUSH).is_ok());
    }

    #[test]
    fn unlimited_admission_is_a_no_op() {
        let ctl = Arc::new(AdmissionController::unlimited());
        let permits: Vec<_> = (0..64).map(|_| ctl.admit(1 << 40).unwrap()).collect();
        assert_eq!(ctl.snapshot(), (0, 0), "unarmed controller counts nothing");
        drop(permits);
    }

    #[test]
    fn concurrency_cap_queues_then_rejects() {
        let ctl = Arc::new(AdmissionController::new(
            AdmissionConfig::new().max_concurrent(2).queue_timeout_ms(0),
        ));
        let a = ctl.admit(0).unwrap();
        let _b = ctl.admit(0).unwrap();
        assert_eq!(ctl.snapshot().0, 2);
        match ctl.admit(0) {
            Err(EngineError::Admission { running, limit, .. }) => {
                assert_eq!(running, 2);
                assert_eq!(limit, 2);
            }
            other => panic!("expected Admission error, got {other:?}"),
        }
        drop(a);
        let _c = ctl.admit(0).expect("freed slot admits again");
    }

    #[test]
    fn memory_cap_aggregates_reservations() {
        let ctl = Arc::new(AdmissionController::new(
            AdmissionConfig::new()
                .mem_cap_bytes(1_000)
                .queue_timeout_ms(0),
        ));
        let a = ctl.admit(600).unwrap();
        assert!(matches!(ctl.admit(600), Err(EngineError::Admission { .. })));
        // Unbudgeted queries reserve 0 and always pass the memory cap.
        let _free = ctl.admit(0).unwrap();
        drop(a);
        let _b = ctl.admit(600).unwrap();
        // A reservation above the whole cap still runs when alone.
        drop(_b);
        drop(_free);
        let _huge = ctl.admit(10_000).expect("oversized reservation runs alone");
    }

    #[test]
    fn queued_waiter_is_admitted_when_capacity_frees() {
        let ctl = Arc::new(AdmissionController::new(
            AdmissionConfig::new()
                .max_concurrent(1)
                .queue_timeout_ms(5_000),
        ));
        let permit = ctl.admit(0).unwrap();
        let waiter = {
            let ctl = ctl.clone();
            std::thread::spawn(move || ctl.admit(0).map(|_p| ()))
        };
        std::thread::sleep(Duration::from_millis(50));
        drop(permit);
        waiter
            .join()
            .expect("waiter thread")
            .expect("queued query admitted after release");
        assert_eq!(ctl.snapshot(), (0, 0));
    }

    #[test]
    fn admission_error_renders_and_labels() {
        let e = EngineError::Admission {
            detail: "concurrency cap".to_string(),
            waited_ms: 7,
            running: 3,
            limit: 3,
        };
        assert_eq!(e.variant_name(), "admission");
        let s = e.to_string();
        assert!(s.contains("admission refused after 7 ms"), "{s}");
        assert!(s.contains("concurrency cap"), "{s}");
    }

    #[test]
    fn unarmed_governor_is_not_installed_armed() {
        assert!(!Governor::new().is_armed());
        assert!(Governor::new().mem_limit(1).is_armed());
        assert!(Governor::new().timeout_ms(1).is_armed());
        assert!(Governor::new().cancel_token(CancelToken::new()).is_armed());
    }
}
