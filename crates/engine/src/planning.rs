//! Shared planning helpers: splitting correlation conditions into hash-join
//! equality keys and residual predicates.

use nra_sql::{BPred, QueryBlock};
use nra_storage::{Catalog, CmpOp, Relation, Schema};

use crate::error::EngineError;
use crate::expr::{CExpr, CPred};
use crate::ops;

/// The outcome of splitting a conjunction of join conditions between a
/// `left` and `right` input.
#[derive(Debug, Clone)]
pub struct SplitConds {
    /// Equality pairs `(left column index, right column index)` usable as
    /// hash keys.
    pub eq: Vec<(usize, usize)>,
    /// Everything else, compiled against `left ++ right`.
    pub residual: Option<CPred>,
    /// How many conjuncts went into `residual`.
    pub residual_count: usize,
}

/// Split `preds` (conjuncts) into hashable equality pairs and a residual.
///
/// A conjunct `a = b` becomes a key pair when `a` resolves in exactly one
/// input and `b` in the other. All other conjuncts (non-equalities, complex
/// expressions, single-sided predicates) are compiled into the residual,
/// evaluated per candidate pair.
pub fn split_join_conds(
    preds: &[BPred],
    left: &Schema,
    right: &Schema,
) -> Result<SplitConds, EngineError> {
    let mut eq = Vec::new();
    let mut rest = Vec::new();
    for pred in preds {
        if let Some((a, op, b)) = pred.as_column_cmp() {
            if op == CmpOp::Eq {
                let (al, ar) = (left.try_resolve(a), right.try_resolve(a));
                let (bl, br) = (left.try_resolve(b), right.try_resolve(b));
                match (al, ar, bl, br) {
                    (Some(l), None, None, Some(r)) => {
                        eq.push((l, r));
                        continue;
                    }
                    (None, Some(r), Some(l), None) => {
                        eq.push((l, r));
                        continue;
                    }
                    _ => {}
                }
            }
        }
        rest.push(pred.clone());
    }
    let combined = left.concat(right);
    let residual_count = rest.len();
    let residual = if rest.is_empty() {
        None
    } else {
        Some(CPred::compile_all(&rest, &combined)?)
    };
    Ok(SplitConds {
        eq,
        residual,
        residual_count,
    })
}

/// Materialize a query block's base: the product of its `FROM` tables with
/// the block's local predicates (`Δ_i`) applied — the paper's first step,
/// `T_i = σ_{Δi}(R_i)`.
pub fn block_base(block: &QueryBlock, catalog: &Catalog) -> Result<Relation, EngineError> {
    let mut sp = nra_obs::span(|| "scan".to_string());
    let mut base: Option<Relation> = None;
    for t in &block.tables {
        let table = catalog.table(&t.table)?;
        // Set-oriented plans read each base table once, sequentially.
        nra_storage::iosim::charge_seq_scan(table.len(), table.schema().len());
        sp.rows_in(table.len());
        sp.batch();
        let scanned = ops::scan(table, &t.exposed);
        base = Some(match base {
            None => scanned,
            Some(acc) => ops::cartesian(&acc, &scanned),
        });
    }
    let mut base = base.expect("binder guarantees at least one table");
    let local = CPred::compile_all(&block.local_preds, base.schema())?;
    base = ops::filter(&base, &local);
    sp.rows_out(base.len());
    Ok(base)
}

/// Project a relation onto a block's `SELECT` list (supports computed
/// expressions), applying `DISTINCT` when requested.
pub fn project_select(rel: &Relation, root: &QueryBlock) -> Result<Relation, EngineError> {
    let mut sp = nra_obs::span(|| "project".to_string());
    sp.rows_in(rel.len());
    let exprs: Vec<CExpr> = root
        .select
        .iter()
        .map(|(_, e)| CExpr::compile(e, rel.schema()))
        .collect::<Result<_, _>>()?;
    let schema = Schema::new(
        root.select
            .iter()
            .zip(&exprs)
            .map(|((name, _), c)| match c.as_col() {
                Some(i) => {
                    let col = rel.schema().column(i);
                    nra_storage::Column {
                        name: name.clone(),
                        ty: col.ty,
                        nullable: true,
                    }
                }
                None => nra_storage::Column::new(name.clone(), nra_storage::ColumnType::Int),
            })
            .collect(),
    );
    let mut out = Relation::new(schema);
    for row in rel.rows() {
        out.push_unchecked(exprs.iter().map(|e| e.eval(row)).collect());
    }
    let out = if root.distinct { out.distinct() } else { out };
    sp.rows_out(out.len());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nra_sql::BExpr;
    use nra_storage::{Column, ColumnType, Truth, Value};

    fn schemas() -> (Schema, Schema) {
        (
            Schema::new(vec![
                Column::new("r.c", ColumnType::Int),
                Column::new("r.d", ColumnType::Int),
            ]),
            Schema::new(vec![
                Column::new("s.g", ColumnType::Int),
                Column::new("s.i", ColumnType::Int),
            ]),
        )
    }

    #[test]
    fn equality_pairs_become_keys() {
        let (l, r) = schemas();
        let preds = vec![BPred::cmp(BExpr::col("r.d"), CmpOp::Eq, BExpr::col("s.g"))];
        let split = split_join_conds(&preds, &l, &r).unwrap();
        assert_eq!(split.eq, vec![(1, 0)]);
        assert!(split.residual.is_none());
    }

    #[test]
    fn flipped_sides_normalize() {
        let (l, r) = schemas();
        let preds = vec![BPred::cmp(BExpr::col("s.g"), CmpOp::Eq, BExpr::col("r.d"))];
        let split = split_join_conds(&preds, &l, &r).unwrap();
        assert_eq!(split.eq, vec![(1, 0)]);
    }

    #[test]
    fn non_equalities_go_residual() {
        let (l, r) = schemas();
        let preds = vec![
            BPred::cmp(BExpr::col("r.d"), CmpOp::Eq, BExpr::col("s.g")),
            BPred::cmp(BExpr::col("r.c"), CmpOp::Ne, BExpr::col("s.i")),
        ];
        let split = split_join_conds(&preds, &l, &r).unwrap();
        assert_eq!(split.eq.len(), 1);
        assert_eq!(split.residual_count, 1);
        let residual = split.residual.unwrap();
        let row = vec![Value::Int(1), Value::Int(2), Value::Int(2), Value::Int(1)];
        assert_eq!(residual.eval(&row), Truth::False, "1 <> 1 is false");
    }

    #[test]
    fn same_side_equality_is_residual() {
        let (l, r) = schemas();
        let preds = vec![BPred::cmp(BExpr::col("r.c"), CmpOp::Eq, BExpr::col("r.d"))];
        let split = split_join_conds(&preds, &l, &r).unwrap();
        assert!(split.eq.is_empty());
        assert_eq!(split.residual_count, 1);
    }

    #[test]
    fn literal_comparison_is_residual() {
        let (l, r) = schemas();
        let preds = vec![BPred::cmp(
            BExpr::col("s.g"),
            CmpOp::Eq,
            BExpr::Lit(Value::Int(5)),
        )];
        let split = split_join_conds(&preds, &l, &r).unwrap();
        assert!(split.eq.is_empty());
        assert_eq!(split.residual_count, 1);
    }
}
