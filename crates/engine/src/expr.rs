//! Compilation of bound expressions/predicates to index-resolved form.
//!
//! A [`BExpr`]/[`BPred`] references columns by qualified name; compiling it
//! against a concrete [`Schema`] resolves names to positions once, so
//! evaluation inside operator loops is just array indexing.

use nra_sql::{ArithOp, BExpr, BPred};
use nra_storage::{CmpOp, Schema, Truth, Value};

use crate::error::EngineError;

/// An index-resolved scalar expression.
#[derive(Debug, Clone)]
pub enum CExpr {
    Col(usize),
    Lit(Value),
    Arith {
        op: ArithOp,
        left: Box<CExpr>,
        right: Box<CExpr>,
    },
}

impl CExpr {
    /// Compile `expr` against `schema`.
    pub fn compile(expr: &BExpr, schema: &Schema) -> Result<CExpr, EngineError> {
        Ok(match expr {
            BExpr::Col(name) => CExpr::Col(
                schema
                    .try_resolve(name)
                    .ok_or_else(|| EngineError::Column(name.clone()))?,
            ),
            BExpr::Lit(v) => CExpr::Lit(v.clone()),
            BExpr::Arith { op, left, right } => CExpr::Arith {
                op: *op,
                left: Box::new(CExpr::compile(left, schema)?),
                right: Box::new(CExpr::compile(right, schema)?),
            },
        })
    }

    pub fn eval(&self, row: &[Value]) -> Value {
        match self {
            CExpr::Col(i) => row[*i].clone(),
            CExpr::Lit(v) => v.clone(),
            CExpr::Arith { op, left, right } => {
                BExpr::eval_arith(*op, &left.eval(row), &right.eval(row))
            }
        }
    }

    /// If this is a bare column, its index.
    pub fn as_col(&self) -> Option<usize> {
        match self {
            CExpr::Col(i) => Some(*i),
            _ => None,
        }
    }

    /// Append every column index this expression reads.
    pub fn collect_cols(&self, out: &mut Vec<usize>) {
        match self {
            CExpr::Col(i) => out.push(*i),
            CExpr::Lit(_) => {}
            CExpr::Arith { left, right, .. } => {
                left.collect_cols(out);
                right.collect_cols(out);
            }
        }
    }
}

/// An index-resolved predicate evaluating to a [`Truth`].
#[derive(Debug, Clone)]
pub enum CPred {
    Cmp {
        left: CExpr,
        op: CmpOp,
        right: CExpr,
    },
    Between {
        expr: CExpr,
        low: CExpr,
        high: CExpr,
        negated: bool,
    },
    IsNull {
        expr: CExpr,
        negated: bool,
    },
    InList {
        expr: CExpr,
        list: Vec<CExpr>,
        negated: bool,
    },
    And(Box<CPred>, Box<CPred>),
    Or(Box<CPred>, Box<CPred>),
    Not(Box<CPred>),
    Const(Truth),
}

impl CPred {
    pub fn compile(pred: &BPred, schema: &Schema) -> Result<CPred, EngineError> {
        Ok(match pred {
            BPred::Cmp { left, op, right } => CPred::Cmp {
                left: CExpr::compile(left, schema)?,
                op: *op,
                right: CExpr::compile(right, schema)?,
            },
            BPred::Between {
                expr,
                low,
                high,
                negated,
            } => CPred::Between {
                expr: CExpr::compile(expr, schema)?,
                low: CExpr::compile(low, schema)?,
                high: CExpr::compile(high, schema)?,
                negated: *negated,
            },
            BPred::IsNull { expr, negated } => CPred::IsNull {
                expr: CExpr::compile(expr, schema)?,
                negated: *negated,
            },
            BPred::InList {
                expr,
                list,
                negated,
            } => CPred::InList {
                expr: CExpr::compile(expr, schema)?,
                list: list
                    .iter()
                    .map(|e| CExpr::compile(e, schema))
                    .collect::<Result<_, _>>()?,
                negated: *negated,
            },
            BPred::And(a, b) => CPred::And(
                Box::new(CPred::compile(a, schema)?),
                Box::new(CPred::compile(b, schema)?),
            ),
            BPred::Or(a, b) => CPred::Or(
                Box::new(CPred::compile(a, schema)?),
                Box::new(CPred::compile(b, schema)?),
            ),
            BPred::Not(p) => CPred::Not(Box::new(CPred::compile(p, schema)?)),
            BPred::Const(t) => CPred::Const(*t),
        })
    }

    /// Compile a conjunction of predicates.
    pub fn compile_all(preds: &[BPred], schema: &Schema) -> Result<CPred, EngineError> {
        let mut compiled: Vec<CPred> = preds
            .iter()
            .map(|p| CPred::compile(p, schema))
            .collect::<Result<_, _>>()?;
        Ok(match compiled.len() {
            0 => CPred::Const(Truth::True),
            1 => compiled.pop().unwrap(),
            _ => {
                let mut it = compiled.into_iter();
                let first = it.next().unwrap();
                it.fold(first, |acc, p| CPred::And(Box::new(acc), Box::new(p)))
            }
        })
    }

    pub fn eval(&self, row: &[Value]) -> Truth {
        match self {
            CPred::Cmp { left, op, right } => left.eval(row).sql_compare(*op, &right.eval(row)),
            CPred::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = expr.eval(row);
                let t = v
                    .sql_compare(CmpOp::Ge, &low.eval(row))
                    .and(v.sql_compare(CmpOp::Le, &high.eval(row)));
                if *negated {
                    t.not()
                } else {
                    t
                }
            }
            CPred::IsNull { expr, negated } => {
                // IS [NOT] NULL is two-valued.
                Truth::from_bool(expr.eval(row).is_null() != *negated)
            }
            CPred::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval(row);
                let mut t = Truth::False;
                for e in list {
                    t = t.or(v.sql_compare(CmpOp::Eq, &e.eval(row)));
                    if t == Truth::True {
                        break;
                    }
                }
                if *negated {
                    t.not()
                } else {
                    t
                }
            }
            CPred::And(a, b) => a.eval(row).and(b.eval(row)),
            CPred::Or(a, b) => a.eval(row).or(b.eval(row)),
            CPred::Not(p) => p.eval(row).not(),
            CPred::Const(t) => *t,
        }
    }

    /// `WHERE`-clause acceptance: predicate evaluates to `TRUE`.
    pub fn accepts(&self, row: &[Value]) -> bool {
        self.eval(row).is_true()
    }

    /// Append every column index this predicate reads.
    pub fn collect_cols(&self, out: &mut Vec<usize>) {
        match self {
            CPred::Cmp { left, right, .. } => {
                left.collect_cols(out);
                right.collect_cols(out);
            }
            CPred::Between {
                expr, low, high, ..
            } => {
                expr.collect_cols(out);
                low.collect_cols(out);
                high.collect_cols(out);
            }
            CPred::IsNull { expr, .. } => expr.collect_cols(out),
            CPred::InList { expr, list, .. } => {
                expr.collect_cols(out);
                for e in list {
                    e.collect_cols(out);
                }
            }
            CPred::And(a, b) | CPred::Or(a, b) => {
                a.collect_cols(out);
                b.collect_cols(out);
            }
            CPred::Not(p) => p.collect_cols(out),
            CPred::Const(_) => {}
        }
    }

    /// The sorted, deduplicated column indices this predicate reads —
    /// the lanes a `ValueBatch` transposes to evaluate it columnar-wise.
    pub fn columns(&self) -> Vec<usize> {
        let mut cols = Vec::new();
        self.collect_cols(&mut cols);
        cols.sort_unstable();
        cols.dedup();
        cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nra_storage::{Column, ColumnType};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("t.a", ColumnType::Int),
            Column::new("t.b", ColumnType::Int),
        ])
    }

    fn row(a: Value, b: Value) -> Vec<Value> {
        vec![a, b]
    }

    #[test]
    fn compile_resolves_columns() {
        let e = CExpr::compile(&BExpr::col("t.b"), &schema()).unwrap();
        assert_eq!(e.eval(&row(Value::Int(1), Value::Int(2))), Value::Int(2));
        assert!(CExpr::compile(&BExpr::col("t.zzz"), &schema()).is_err());
    }

    #[test]
    fn arithmetic_evaluates() {
        let e = BExpr::Arith {
            op: ArithOp::Add,
            left: Box::new(BExpr::col("t.a")),
            right: Box::new(BExpr::Lit(Value::Int(10))),
        };
        let c = CExpr::compile(&e, &schema()).unwrap();
        assert_eq!(c.eval(&row(Value::Int(5), Value::Null)), Value::Int(15));
        assert_eq!(c.eval(&row(Value::Null, Value::Null)), Value::Null);
    }

    #[test]
    fn between_three_valued() {
        let p = BPred::Between {
            expr: BExpr::col("t.a"),
            low: BExpr::Lit(Value::Int(1)),
            high: BExpr::Lit(Value::Int(10)),
            negated: false,
        };
        let c = CPred::compile(&p, &schema()).unwrap();
        assert_eq!(c.eval(&row(Value::Int(5), Value::Null)), Truth::True);
        assert_eq!(c.eval(&row(Value::Int(11), Value::Null)), Truth::False);
        assert_eq!(c.eval(&row(Value::Null, Value::Null)), Truth::Unknown);
    }

    #[test]
    fn not_between_of_unknown_stays_unknown() {
        let p = BPred::Between {
            expr: BExpr::col("t.a"),
            low: BExpr::Lit(Value::Int(1)),
            high: BExpr::Lit(Value::Int(10)),
            negated: true,
        };
        let c = CPred::compile(&p, &schema()).unwrap();
        assert_eq!(c.eval(&row(Value::Null, Value::Null)), Truth::Unknown);
        assert!(!c.accepts(&row(Value::Null, Value::Null)));
    }

    #[test]
    fn is_null_is_two_valued() {
        let p = BPred::IsNull {
            expr: BExpr::col("t.a"),
            negated: false,
        };
        let c = CPred::compile(&p, &schema()).unwrap();
        assert_eq!(c.eval(&row(Value::Null, Value::Null)), Truth::True);
        assert_eq!(c.eval(&row(Value::Int(1), Value::Null)), Truth::False);
    }

    #[test]
    fn in_list_with_null_semantics() {
        // 5 NOT IN (1, NULL): 5=1 false, 5=NULL unknown -> IN is unknown,
        // NOT IN is unknown.
        let p = BPred::InList {
            expr: BExpr::col("t.a"),
            list: vec![BExpr::Lit(Value::Int(1)), BExpr::Lit(Value::Null)],
            negated: true,
        };
        let c = CPred::compile(&p, &schema()).unwrap();
        assert_eq!(c.eval(&row(Value::Int(5), Value::Null)), Truth::Unknown);
        // 1 NOT IN (1, NULL) is plainly false.
        assert_eq!(c.eval(&row(Value::Int(1), Value::Null)), Truth::False);
    }

    #[test]
    fn compile_all_conjunction() {
        let preds = vec![
            BPred::cmp(BExpr::col("t.a"), CmpOp::Gt, BExpr::Lit(Value::Int(0))),
            BPred::cmp(BExpr::col("t.b"), CmpOp::Lt, BExpr::Lit(Value::Int(10))),
        ];
        let c = CPred::compile_all(&preds, &schema()).unwrap();
        assert!(c.accepts(&row(Value::Int(1), Value::Int(5))));
        assert!(!c.accepts(&row(Value::Int(1), Value::Int(50))));
        let empty = CPred::compile_all(&[], &schema()).unwrap();
        assert!(empty.accepts(&row(Value::Null, Value::Null)));
    }
}
