//! Hash joins: inner, left outer, semi- and antijoin, with optional
//! non-equality residual predicates.
//!
//! These are the only join algorithms the nested relational approach needs
//! (the paper: "our approach does not require indexes; only hash joins are
//! necessary"). SQL `NULL` semantics are enforced here: an equality key
//! containing `NULL` matches nothing, so
//!
//! * build rows with `NULL` keys are excluded from the hash table,
//! * probe rows with `NULL` keys find no match (for a left outer join they
//!   are padded; for an antijoin they are emitted).
//!
//! When no equality pairs are available (purely non-equality correlation),
//! the same semantics run through a block nested-loop fallback.
//!
//! Both paths are morsel-parallel under [`crate::exec`]: the build side is
//! hash-partitioned into per-worker tables (all rows of one key land in
//! one table, rids in ascending order — the same match lists the single
//! table would hold), and the probe side is chunked contiguously with
//! chunk outputs concatenated in partition order — so the output is
//! byte-identical to the sequential join at any worker count.

use nra_storage::{GroupKey, Relation, Value};

use crate::error::EngineError;
use crate::exec;
use crate::expr::CPred;
use crate::vec::{self, FxHashMap};
use crate::{faultinject, governor};

/// Join flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    /// Keep unmatched left rows, padding right columns with `NULL`.
    LeftOuter,
    /// Keep left rows with at least one match; output has left columns only.
    Semi,
    /// Keep left rows with no match; output has left columns only.
    Anti,
}

/// A join specification: equality column pairs (left index, right index)
/// plus an optional residual predicate compiled against the concatenated
/// `left ++ right` schema. A pair matches when all equality keys compare
/// equal (SQL semantics: never on `NULL`) *and* the residual evaluates to
/// `TRUE`.
#[derive(Debug, Clone)]
pub struct JoinSpec {
    pub kind: JoinKind,
    pub eq: Vec<(usize, usize)>,
    pub residual: Option<CPred>,
}

impl JoinSpec {
    pub fn new(kind: JoinKind, eq: Vec<(usize, usize)>, residual: Option<CPred>) -> JoinSpec {
        JoinSpec { kind, eq, residual }
    }

    pub fn inner(eq: Vec<(usize, usize)>) -> JoinSpec {
        JoinSpec::new(JoinKind::Inner, eq, None)
    }

    pub fn left_outer(eq: Vec<(usize, usize)>) -> JoinSpec {
        JoinSpec::new(JoinKind::LeftOuter, eq, None)
    }
}

/// Execute a hash join (or nested-loop fallback when `spec.eq` is empty).
pub fn join(left: &Relation, right: &Relation, spec: &JoinSpec) -> Result<Relation, EngineError> {
    let mut sp = nra_obs::span(|| {
        let kind = match spec.kind {
            JoinKind::Inner => "inner",
            JoinKind::LeftOuter => "left_outer",
            JoinKind::Semi => "semi",
            JoinKind::Anti => "anti",
        };
        format!("join[{kind}]")
    });
    sp.rows_in(left.len() + right.len());
    let out_schema = match spec.kind {
        JoinKind::Inner => left.schema().concat(right.schema()),
        JoinKind::LeftOuter => left.schema().concat(&right.schema().with_all_nullable()),
        JoinKind::Semi | JoinKind::Anti => left.schema().clone(),
    };
    let mut out = Relation::new(out_schema);
    let right_width = right.schema().len();

    if spec.eq.is_empty() {
        // Block nested loop: every left row scans all of `right`, so the
        // left side chunks freely (one partition = the sequential loop).
        let parts = exec::partitions(left.len());
        if parts > 1 {
            sp.partitions(parts);
        }
        let ranges = exec::chunks(left.len(), parts);
        let out_width = left.schema().len() + right_width;
        let results = exec::run_partitioned(parts, |p| {
            let mut rows: Vec<Vec<Value>> = Vec::new();
            let mut combined: Vec<Value> = Vec::with_capacity(out_width);
            for (i, l) in left.rows()[ranges[p].clone()].iter().enumerate() {
                governor::tick(i, "join-scan")?;
                let mut matched = false;
                for r in right.rows() {
                    combined.clear();
                    combined.extend(l.iter().cloned());
                    combined.extend(r.iter().cloned());
                    if matches_residual(&combined, spec) {
                        matched = true;
                        match spec.kind {
                            JoinKind::Inner | JoinKind::LeftOuter => rows.push(combined.clone()),
                            JoinKind::Semi => break,
                            JoinKind::Anti => break,
                        }
                    }
                }
                emit_unmatched(&mut rows, l, right_width, spec.kind, matched);
            }
            governor::charge("join", governor::tuple_bytes(rows.len(), out_width))?;
            Ok(rows)
        })?;
        for rows in results {
            out.rows_mut().extend(rows);
        }
        sp.rows_out(out.len());
        return Ok(out);
    }

    let left_keys: Vec<usize> = spec.eq.iter().map(|&(l, _)| l).collect();
    let right_keys: Vec<usize> = spec.eq.iter().map(|&(_, r)| r).collect();

    // Build on the right side, excluding NULL keys. With more than one
    // build partition the rows are hash-partitioned by key, so every
    // match list ends up in exactly one table with its rids ascending —
    // the same list the single sequential table would hold.
    faultinject::hit(faultinject::JOIN_BUILD)?;
    let bparts = exec::partitions(right.len());
    let tables = build_tables(right, &right_keys, bparts)?;
    let built: usize = tables
        .iter()
        .map(|t| t.values().map(Vec::len).sum::<usize>())
        .sum();
    // Approximate footprint: each entry carries its key values
    // (~16 bytes per column) plus a row id.
    let entry_bytes = right_keys.len() * 16 + std::mem::size_of::<usize>();
    governor::charge("join-build", (built * entry_bytes) as u64)?;
    if sp.active() {
        sp.hash_build(built, built * entry_bytes);
    }

    // Probe side: contiguous chunks, outputs concatenated in chunk order.
    let pparts = exec::partitions(left.len());
    if bparts > 1 || pparts > 1 {
        sp.partitions(bparts.max(pparts));
    }
    let ranges = exec::chunks(left.len(), pparts);
    let out_width = left.schema().len() + right_width;
    let results = exec::run_partitioned(pparts, |p| {
        let mut rows: Vec<Vec<Value>> = Vec::new();
        let mut combined: Vec<Value> = Vec::with_capacity(out_width);
        // Scratch probe key, reused across rows (no per-row Vec churn).
        let mut key = GroupKey(Vec::with_capacity(left_keys.len()));
        for window in left.rows()[ranges[p].clone()].chunks(vec::batch_rows()) {
            // Cancellation poll amortized to once per batch (the scalar
            // loop's tick cadence at the default width).
            governor::checkpoint("join-probe")?;
            for l in window {
                let mut matched = false;
                // SQL equality: a NULL key matches nothing — skip the
                // probe without even building the key.
                if !left_keys.iter().any(|&c| l[c].is_null()) {
                    key.0.clear();
                    key.0.extend(left_keys.iter().map(|&c| l[c].clone()));
                    if let Some(rids) = probe(&tables, &key) {
                        // Match lists are never empty.
                        match (&spec.residual, spec.kind) {
                            (None, JoinKind::Semi | JoinKind::Anti) => matched = true,
                            (None, JoinKind::Inner | JoinKind::LeftOuter) => {
                                matched = true;
                                for &rid in rids {
                                    let mut row: Vec<Value> = Vec::with_capacity(out_width);
                                    row.extend(l.iter().cloned());
                                    row.extend(right.rows()[rid].iter().cloned());
                                    rows.push(row);
                                }
                            }
                            (Some(_), _) => {
                                for &rid in rids {
                                    combined.clear();
                                    combined.extend(l.iter().cloned());
                                    combined.extend(right.rows()[rid].iter().cloned());
                                    if matches_residual(&combined, spec) {
                                        matched = true;
                                        match spec.kind {
                                            JoinKind::Inner | JoinKind::LeftOuter => {
                                                rows.push(combined.clone())
                                            }
                                            JoinKind::Semi | JoinKind::Anti => break,
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                emit_unmatched(&mut rows, l, right_width, spec.kind, matched);
            }
        }
        governor::charge("join", governor::tuple_bytes(rows.len(), out_width))?;
        Ok(rows)
    })?;
    for rows in results {
        out.rows_mut().extend(rows);
    }
    sp.rows_out(out.len());
    Ok(out)
}

fn matches_residual(combined: &[Value], spec: &JoinSpec) -> bool {
    match &spec.residual {
        Some(p) => p.accepts(combined),
        None => true,
    }
}

/// Build the hash table(s) over the right side. One partition builds the
/// classic single table; several partition rows by key hash, each worker
/// inserting only its own keys (rid order within a key stays ascending).
fn build_tables(
    right: &Relation,
    right_keys: &[usize],
    bparts: usize,
) -> Result<Vec<FxHashMap<GroupKey, Vec<usize>>>, EngineError> {
    if bparts <= 1 {
        let mut table: FxHashMap<GroupKey, Vec<usize>> = FxHashMap::default();
        let mut rid = 0;
        for window in right.rows().chunks(vec::batch_rows()) {
            governor::checkpoint("join-build")?;
            for r in window {
                if !right_keys.iter().any(|&c| r[c].is_null()) {
                    table
                        .entry(GroupKey::from_tuple(r, right_keys))
                        .or_default()
                        .push(rid);
                }
                rid += 1;
            }
        }
        return Ok(vec![table]);
    }
    // Pre-assign rows to build partitions in one chunked parallel pass
    // (u32::MAX marks NULL keys, which no table admits), then let each
    // worker insert exactly its partition's rows.
    let ranges = exec::chunks(right.len(), bparts);
    let assigned = exec::run_partitioned(bparts, |p| {
        let mut key = GroupKey(Vec::with_capacity(right_keys.len()));
        Ok(right.rows()[ranges[p].clone()]
            .iter()
            .map(|r| {
                if right_keys.iter().any(|&c| r[c].is_null()) {
                    u32::MAX
                } else {
                    key.0.clear();
                    key.0.extend(right_keys.iter().map(|&c| r[c].clone()));
                    (exec::key_hash(&key) % bparts as u64) as u32
                }
            })
            .collect::<Vec<u32>>())
    })?;
    let assign: Vec<u32> = assigned.into_iter().flatten().collect();
    exec::run_partitioned(bparts, |b| {
        let mut table: FxHashMap<GroupKey, Vec<usize>> = FxHashMap::default();
        let mut rid = 0;
        for window in right.rows().chunks(vec::batch_rows()) {
            governor::checkpoint("join-build")?;
            for r in window {
                if assign[rid] == b as u32 {
                    table
                        .entry(GroupKey::from_tuple(r, right_keys))
                        .or_default()
                        .push(rid);
                }
                rid += 1;
            }
        }
        Ok(table)
    })
}

/// Look `key` up in the table that owns its hash partition.
fn probe<'t>(
    tables: &'t [FxHashMap<GroupKey, Vec<usize>>],
    key: &GroupKey,
) -> Option<&'t Vec<usize>> {
    let table = if tables.len() == 1 {
        &tables[0]
    } else {
        &tables[(exec::key_hash(key) % tables.len() as u64) as usize]
    };
    table.get(key)
}

fn emit_unmatched(
    out: &mut Vec<Vec<Value>>,
    left_row: &[Value],
    right_width: usize,
    kind: JoinKind,
    matched: bool,
) {
    match kind {
        JoinKind::LeftOuter if !matched => {
            let mut row = left_row.to_vec();
            row.extend(std::iter::repeat_n(Value::Null, right_width));
            out.push(row);
        }
        JoinKind::Semi if matched => out.push(left_row.to_vec()),
        JoinKind::Anti if !matched => out.push(left_row.to_vec()),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nra_sql::{BExpr, BPred};
    use nra_storage::{CmpOp, Column, ColumnType, Schema};

    fn left() -> Relation {
        Relation::with_rows(
            Schema::new(vec![
                Column::new("l.k", ColumnType::Int),
                Column::new("l.v", ColumnType::Int),
            ]),
            vec![
                vec![Value::Int(1), Value::Int(100)],
                vec![Value::Int(2), Value::Int(200)],
                vec![Value::Null, Value::Int(300)],
            ],
        )
    }

    fn right() -> Relation {
        Relation::with_rows(
            Schema::new(vec![
                Column::new("r.k", ColumnType::Int),
                Column::new("r.w", ColumnType::Int),
            ]),
            vec![
                vec![Value::Int(1), Value::Int(11)],
                vec![Value::Int(1), Value::Int(12)],
                vec![Value::Int(3), Value::Int(13)],
                vec![Value::Null, Value::Int(14)],
            ],
        )
    }

    #[test]
    fn inner_join_null_keys_never_match() {
        let out = join(&left(), &right(), &JoinSpec::inner(vec![(0, 0)])).unwrap();
        assert_eq!(out.len(), 2, "only l.k=1 matches, twice");
        assert!(out.rows().iter().all(|r| r[0] == Value::Int(1)));
    }

    #[test]
    fn left_outer_pads_unmatched_and_null_keys() {
        let out = join(&left(), &right(), &JoinSpec::left_outer(vec![(0, 0)])).unwrap();
        // l.k=1 matches twice; l.k=2 padded; l.k=NULL padded.
        assert_eq!(out.len(), 4);
        let padded: Vec<_> = out.rows().iter().filter(|r| r[2].is_null()).collect();
        assert_eq!(padded.len(), 2);
        // Right columns become nullable in the output schema.
        assert!(out.schema().column(3).nullable);
    }

    #[test]
    fn semi_and_anti_partition_left() {
        let semi = join(
            &left(),
            &right(),
            &JoinSpec::new(JoinKind::Semi, vec![(0, 0)], None),
        )
        .unwrap();
        let anti = join(
            &left(),
            &right(),
            &JoinSpec::new(JoinKind::Anti, vec![(0, 0)], None),
        )
        .unwrap();
        assert_eq!(semi.len(), 1);
        assert_eq!(anti.len(), 2, "l.k=2 and the NULL-key row");
        assert_eq!(semi.len() + anti.len(), left().len());
        assert_eq!(semi.schema().len(), 2, "semi keeps left columns only");
    }

    #[test]
    fn residual_filters_matches() {
        let l = left();
        let r = right();
        let combined = l.schema().concat(r.schema());
        let residual = CPred::compile(
            &BPred::cmp(BExpr::col("r.w"), CmpOp::Gt, BExpr::Lit(Value::Int(11))),
            &combined,
        )
        .unwrap();
        let out = join(
            &l,
            &r,
            &JoinSpec::new(JoinKind::Inner, vec![(0, 0)], Some(residual)),
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][3], Value::Int(12));
    }

    #[test]
    fn nested_loop_fallback_non_equi() {
        let l = left();
        let r = right();
        let combined = l.schema().concat(r.schema());
        let residual = CPred::compile(
            &BPred::cmp(BExpr::col("l.k"), CmpOp::Lt, BExpr::col("r.k")),
            &combined,
        )
        .unwrap();
        let out = join(
            &l,
            &r,
            &JoinSpec::new(JoinKind::Inner, vec![], Some(residual)),
        )
        .unwrap();
        // l.k=1 < r.k=3; l.k=2 < r.k=3. NULL l.k never passes.
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn nested_loop_left_outer() {
        let l = left();
        let r = right();
        let combined = l.schema().concat(r.schema());
        let residual = CPred::compile(
            &BPred::cmp(BExpr::col("l.k"), CmpOp::Gt, BExpr::col("r.k")),
            &combined,
        )
        .unwrap();
        let out = join(
            &l,
            &r,
            &JoinSpec::new(JoinKind::LeftOuter, vec![], Some(residual)),
        )
        .unwrap();
        // l.k=1 > nothing -> padded; l.k=2 > r.k=1 (twice); NULL -> padded.
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn anti_join_with_residual_matches_not_exists_semantics() {
        // NOT EXISTS (select * from r where r.k = l.k and r.w > 11)
        let l = left();
        let r = right();
        let combined = l.schema().concat(r.schema());
        let residual = CPred::compile(
            &BPred::cmp(BExpr::col("r.w"), CmpOp::Gt, BExpr::Lit(Value::Int(11))),
            &combined,
        )
        .unwrap();
        let out = join(
            &l,
            &r,
            &JoinSpec::new(JoinKind::Anti, vec![(0, 0)], Some(residual)),
        )
        .unwrap();
        // l.k=1 has a match (w=12) -> excluded; l.k=2 and NULL kept.
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn parallel_join_is_byte_identical() {
        // Skewed keys (incl. NULLs) over a few hundred rows; every kind,
        // at 2 and 4 workers with a morsel floor of 1, must reproduce the
        // sequential output *in order*.
        let lrows: Vec<Vec<Value>> = (0..300)
            .map(|i| {
                let k = match i % 7 {
                    0 => Value::Null,
                    m => Value::Int(m % 5),
                };
                vec![k, Value::Int(i)]
            })
            .collect();
        let rrows: Vec<Vec<Value>> = (0..200)
            .map(|i| {
                let k = match i % 11 {
                    0 => Value::Null,
                    m => Value::Int(m % 6),
                };
                vec![k, Value::Int(1000 + i)]
            })
            .collect();
        let l = Relation::with_rows(left().schema().clone(), lrows);
        let r = Relation::with_rows(right().schema().clone(), rrows);
        for kind in [
            JoinKind::Inner,
            JoinKind::LeftOuter,
            JoinKind::Semi,
            JoinKind::Anti,
        ] {
            let spec = JoinSpec::new(kind, vec![(0, 0)], None);
            let sequential = {
                let _t = exec::set_threads(Some(1));
                join(&l, &r, &spec).unwrap()
            };
            for threads in [2, 4] {
                let _t = exec::set_threads(Some(threads));
                let _m = exec::set_morsel_rows(1);
                let parallel = join(&l, &r, &spec).unwrap();
                assert_eq!(
                    parallel.rows(),
                    sequential.rows(),
                    "{kind:?} at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn empty_inputs() {
        let l = left();
        let empty_r = Relation::new(right().schema().clone());
        let out = join(&l, &empty_r, &JoinSpec::left_outer(vec![(0, 0)])).unwrap();
        assert_eq!(out.len(), 3, "every left row padded");
        let empty_l = Relation::new(l.schema().clone());
        let out2 = join(&empty_l, &right(), &JoinSpec::inner(vec![(0, 0)])).unwrap();
        assert!(out2.is_empty());
    }
}
