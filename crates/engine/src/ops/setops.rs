//! Set operations: union, intersection, difference.
//!
//! The paper's Section 3 lists these among the standard operations the
//! nested relational algebra inherits (`∪`, `∩`, `−`); they complete the
//! algebra even though the subquery-processing pipeline itself leans on
//! joins and nest. Semantics are SQL's *set* semantics (`UNION` /
//! `INTERSECT` / `EXCEPT` without `ALL`): duplicates are eliminated, and
//! rows compare under grouping equality (`NULL` matches `NULL`, as SQL set
//! operations do — unlike `WHERE`-clause equality).
//!
//! The set variants are morsel-parallel in their probe work: key
//! extraction and right-side membership tests run in contiguous chunks
//! under [`crate::exec`], while the order-dependent dedup/emit pass stays
//! sequential — so output order and content match the sequential code
//! exactly.

use nra_storage::{GroupKey, Relation};

use crate::error::EngineError;
use crate::exec;
use crate::vec::{FxHashMap, FxHashSet};

fn check_arity(left: &Relation, right: &Relation) -> Result<(), EngineError> {
    if left.schema().len() != right.schema().len() {
        return Err(EngineError::unsupported(format!(
            "set operation on incompatible arities ({} vs {})",
            left.schema().len(),
            right.schema().len()
        )));
    }
    Ok(())
}

fn all_cols(rel: &Relation) -> Vec<usize> {
    (0..rel.schema().len()).collect()
}

/// Extract every row's grouping key, in row order, chunked across
/// workers (key extraction clones values — the expensive part of the
/// probe side).
fn extract_keys(
    rel: &Relation,
    cols: &[usize],
    sp: &mut nra_obs::Span,
) -> Result<Vec<GroupKey>, EngineError> {
    let parts = exec::partitions(rel.len());
    if parts > 1 {
        sp.partitions(parts);
    }
    let ranges = exec::chunks(rel.len(), parts);
    Ok(exec::run_partitioned(parts, |p| {
        Ok(rel.rows()[ranges[p].clone()]
            .iter()
            .map(|row| GroupKey::from_tuple(row, cols))
            .collect::<Vec<_>>())
    })?
    .into_iter()
    .flatten()
    .collect())
}

/// Each left row's key plus whether it occurs in `right_keys`, in row
/// order, chunked across workers. The consuming dedup/emit loop is
/// inherently sequential, but the hashing happens here.
fn memberships(
    left: &Relation,
    right_keys: &FxHashSet<GroupKey>,
    cols: &[usize],
    sp: &mut nra_obs::Span,
) -> Result<Vec<(GroupKey, bool)>, EngineError> {
    let parts = exec::partitions(left.len());
    if parts > 1 {
        sp.partitions(parts);
    }
    let ranges = exec::chunks(left.len(), parts);
    Ok(exec::run_partitioned(parts, |p| {
        Ok(left.rows()[ranges[p].clone()]
            .iter()
            .map(|row| {
                let key = GroupKey::from_tuple(row, cols);
                let hit = right_keys.contains(&key);
                (key, hit)
            })
            .collect::<Vec<_>>())
    })?
    .into_iter()
    .flatten()
    .collect())
}

/// `left ∪ right` (set semantics, left schema kept).
pub fn union(left: &Relation, right: &Relation) -> Result<Relation, EngineError> {
    let mut sp = nra_obs::span(|| "setop[union]".to_string());
    sp.rows_in(left.len() + right.len());
    check_arity(left, right)?;
    let cols = all_cols(left);
    let mut keys = extract_keys(left, &cols, &mut sp)?;
    keys.extend(extract_keys(right, &cols, &mut sp)?);
    let mut seen: FxHashSet<GroupKey> = FxHashSet::default();
    let mut out = Relation::new(left.schema().clone());
    for (row, key) in left.rows().iter().chain(right.rows()).zip(keys) {
        if seen.insert(key) {
            out.push_unchecked(row.clone());
        }
    }
    sp.rows_out(out.len());
    Ok(out)
}

/// `left ∩ right` (set semantics).
pub fn intersect(left: &Relation, right: &Relation) -> Result<Relation, EngineError> {
    let mut sp = nra_obs::span(|| "setop[intersect]".to_string());
    sp.rows_in(left.len() + right.len());
    check_arity(left, right)?;
    let cols = all_cols(left);
    let right_keys: FxHashSet<GroupKey> =
        extract_keys(right, &cols, &mut sp)?.into_iter().collect();
    let keyed = memberships(left, &right_keys, &cols, &mut sp)?;
    let mut emitted: FxHashSet<GroupKey> = FxHashSet::default();
    let mut out = Relation::new(left.schema().clone());
    for (row, (key, hit)) in left.rows().iter().zip(keyed) {
        if hit && emitted.insert(key) {
            out.push_unchecked(row.clone());
        }
    }
    sp.rows_out(out.len());
    Ok(out)
}

/// `left − right` (set semantics, SQL `EXCEPT`).
pub fn difference(left: &Relation, right: &Relation) -> Result<Relation, EngineError> {
    let mut sp = nra_obs::span(|| "setop[difference]".to_string());
    sp.rows_in(left.len() + right.len());
    check_arity(left, right)?;
    let cols = all_cols(left);
    let right_keys: FxHashSet<GroupKey> =
        extract_keys(right, &cols, &mut sp)?.into_iter().collect();
    let keyed = memberships(left, &right_keys, &cols, &mut sp)?;
    let mut emitted: FxHashSet<GroupKey> = FxHashSet::default();
    let mut out = Relation::new(left.schema().clone());
    for (row, (key, hit)) in left.rows().iter().zip(keyed) {
        if !hit && emitted.insert(key) {
            out.push_unchecked(row.clone());
        }
    }
    sp.rows_out(out.len());
    Ok(out)
}

/// `left ∪ right` with bag (multiset) semantics (`UNION ALL`).
pub fn union_all(left: &Relation, right: &Relation) -> Result<Relation, EngineError> {
    let mut sp = nra_obs::span(|| "setop[union_all]".to_string());
    sp.rows_in(left.len() + right.len());
    check_arity(left, right)?;
    let mut out = left.clone();
    for row in right.rows() {
        out.push_unchecked(row.clone());
    }
    sp.rows_out(out.len());
    Ok(out)
}

/// `left ∩ right` with bag semantics (`INTERSECT ALL`): each row appears
/// `min(count_left, count_right)` times.
pub fn intersect_all(left: &Relation, right: &Relation) -> Result<Relation, EngineError> {
    let mut sp = nra_obs::span(|| "setop[intersect_all]".to_string());
    sp.rows_in(left.len() + right.len());
    check_arity(left, right)?;
    let cols = all_cols(left);
    let mut counts: FxHashMap<GroupKey, usize> = FxHashMap::default();
    for row in right.rows() {
        *counts.entry(GroupKey::from_tuple(row, &cols)).or_insert(0) += 1;
    }
    let mut out = Relation::new(left.schema().clone());
    for row in left.rows() {
        if let Some(c) = counts.get_mut(&GroupKey::from_tuple(row, &cols)) {
            if *c > 0 {
                *c -= 1;
                out.push_unchecked(row.clone());
            }
        }
    }
    sp.rows_out(out.len());
    Ok(out)
}

/// `left − right` with bag semantics (`EXCEPT ALL`): each row appears
/// `max(0, count_left − count_right)` times.
pub fn difference_all(left: &Relation, right: &Relation) -> Result<Relation, EngineError> {
    let mut sp = nra_obs::span(|| "setop[difference_all]".to_string());
    sp.rows_in(left.len() + right.len());
    check_arity(left, right)?;
    let cols = all_cols(left);
    let mut counts: FxHashMap<GroupKey, usize> = FxHashMap::default();
    for row in right.rows() {
        *counts.entry(GroupKey::from_tuple(row, &cols)).or_insert(0) += 1;
    }
    let mut out = Relation::new(left.schema().clone());
    for row in left.rows() {
        match counts.get_mut(&GroupKey::from_tuple(row, &cols)) {
            Some(c) if *c > 0 => *c -= 1,
            _ => out.push_unchecked(row.clone()),
        }
    }
    sp.rows_out(out.len());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nra_storage::{relation, ColumnType, Value};

    fn a() -> Relation {
        relation!(
            [("x", ColumnType::Int)],
            [
                [Value::Int(1)],
                [Value::Int(1)],
                [Value::Int(2)],
                [Value::Null]
            ]
        )
    }

    fn b() -> Relation {
        relation!(
            [("y", ColumnType::Int)],
            [[Value::Int(2)], [Value::Int(3)], [Value::Null]]
        )
    }

    #[test]
    fn union_dedups_and_matches_nulls() {
        let out = union(&a(), &b()).unwrap();
        // {1, 2, NULL, 3}
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn intersect_set_semantics() {
        let out = intersect(&a(), &b()).unwrap();
        // {2, NULL} — SQL INTERSECT treats NULLs as equal.
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn difference_set_semantics() {
        let out = difference(&a(), &b()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::Int(1));
    }

    #[test]
    fn union_all_keeps_duplicates() {
        let out = union_all(&a(), &b()).unwrap();
        assert_eq!(out.len(), 7);
    }

    #[test]
    fn intersect_all_counts_multiplicity() {
        let l = relation!(
            [("x", ColumnType::Int)],
            [[Value::Int(1)], [Value::Int(1)], [Value::Int(1)]]
        );
        let r = relation!([("x", ColumnType::Int)], [[Value::Int(1)], [Value::Int(1)]]);
        assert_eq!(intersect_all(&l, &r).unwrap().len(), 2);
    }

    #[test]
    fn difference_all_counts_multiplicity() {
        let l = relation!(
            [("x", ColumnType::Int)],
            [[Value::Int(1)], [Value::Int(1)], [Value::Int(1)]]
        );
        let r = relation!([("x", ColumnType::Int)], [[Value::Int(1)]]);
        assert_eq!(difference_all(&l, &r).unwrap().len(), 2);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let two = relation!(
            [("x", ColumnType::Int), ("y", ColumnType::Int)],
            [[Value::Int(1), Value::Int(2)]]
        );
        assert!(union(&a(), &two).is_err());
        assert!(intersect(&a(), &two).is_err());
        assert!(difference(&a(), &two).is_err());
    }

    #[test]
    fn algebraic_identities() {
        // (A − B) ∪ (A ∩ B) = distinct(A)
        let l = a();
        let r = b();
        let rebuilt = union(&difference(&l, &r).unwrap(), &intersect(&l, &r).unwrap()).unwrap();
        assert!(rebuilt.multiset_eq(&l.distinct()));
    }
}
