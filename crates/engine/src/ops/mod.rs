//! Physical operators over materialized relations.
//!
//! These are the flat building blocks that both the baseline ("System A")
//! plans and the nested relational approach compose. Joins live in
//! [`join`]; this module holds scans, filters, projections, sorting and the
//! Cartesian product.

pub mod join;
pub mod setops;

pub use join::{join, JoinKind, JoinSpec};
pub use setops::{difference, difference_all, intersect, intersect_all, union, union_all};

use nra_storage::{Relation, Table, Tuple};

use crate::error::EngineError;
use crate::expr::CPred;
use crate::vec;

/// Scan a base table, exposing its columns qualified by `exposed`.
pub fn scan(table: &Table, exposed: &str) -> Relation {
    Relation::with_rows(
        table.schema().qualified(exposed),
        table.data().rows().to_vec(),
    )
}

/// Keep only rows for which `pred` evaluates to `TRUE`.
///
/// Runs vectorized: each batch-sized window is transposed into a
/// [`vec::ValueBatch`] over the predicate's columns, the predicate is
/// evaluated columnar-wise, and the resulting selection vector drives
/// which rows are copied out — the row-at-a-time `pred.accepts(row)`
/// path survives as the differential-testing reference.
pub fn filter(rel: &Relation, pred: &CPred) -> Relation {
    let cols = pred.columns();
    let width = rel.schema().len();
    let mut rows: Vec<Tuple> = Vec::new();
    for window in rel.rows().chunks(vec::batch_rows()) {
        let batch = vec::ValueBatch::with_columns(window, width, &cols);
        for i in vec::select_rows(pred, &batch).iter() {
            rows.push(window[i].clone());
        }
    }
    Relation::with_rows(rel.schema().clone(), rows)
}

/// Project onto named columns.
pub fn project(rel: &Relation, names: &[&str]) -> Result<Relation, EngineError> {
    let idx: Vec<usize> = names
        .iter()
        .map(|n| {
            rel.schema()
                .try_resolve(n)
                .ok_or_else(|| EngineError::Column((*n).to_string()))
        })
        .collect::<Result<_, _>>()?;
    Ok(rel.project(&idx))
}

/// Sort (stably) by the named columns, `NULL` first.
pub fn sort(rel: &mut Relation, names: &[&str]) -> Result<(), EngineError> {
    let idx: Vec<usize> = names
        .iter()
        .map(|n| {
            rel.schema()
                .try_resolve(n)
                .ok_or_else(|| EngineError::Column((*n).to_string()))
        })
        .collect::<Result<_, _>>()?;
    rel.sort_by_columns(&idx);
    Ok(())
}

/// Cartesian product (used only for non-correlated subqueries, where the
/// paper notes the product is "virtual"; tests use it directly).
pub fn cartesian(left: &Relation, right: &Relation) -> Relation {
    let schema = left.schema().concat(right.schema());
    let mut out = Relation::new(schema);
    for l in left.rows() {
        for r in right.rows() {
            let mut row = l.clone();
            row.extend(r.iter().cloned());
            out.push_unchecked(row);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nra_sql::{BExpr, BPred};
    use nra_storage::{CmpOp, Column, ColumnType, Schema, Value};

    fn rel_ab() -> Relation {
        Relation::with_rows(
            Schema::new(vec![
                Column::new("t.a", ColumnType::Int),
                Column::new("t.b", ColumnType::Int),
            ]),
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(2), Value::Null],
                vec![Value::Null, Value::Int(30)],
            ],
        )
    }

    #[test]
    fn scan_qualifies_names() {
        let mut t = Table::new("base", Schema::new(vec![Column::new("x", ColumnType::Int)]));
        t.insert(vec![Value::Int(1)]).unwrap();
        let r = scan(&t, "b1");
        assert_eq!(r.schema().names(), vec!["b1.x"]);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn filter_drops_unknown() {
        let rel = rel_ab();
        let pred = CPred::compile(
            &BPred::cmp(BExpr::col("t.a"), CmpOp::Ge, BExpr::Lit(Value::Int(1))),
            rel.schema(),
        )
        .unwrap();
        let out = filter(&rel, &pred);
        assert_eq!(out.len(), 2, "NULL row must not pass");
    }

    #[test]
    fn project_by_names() {
        let rel = rel_ab();
        let out = project(&rel, &["t.b"]).unwrap();
        assert_eq!(out.schema().names(), vec!["t.b"]);
        assert!(project(&rel, &["t.z"]).is_err());
    }

    #[test]
    fn sort_by_names() {
        let mut rel = rel_ab();
        sort(&mut rel, &["t.a"]).unwrap();
        assert!(rel.rows()[0][0].is_null());
    }

    #[test]
    fn cartesian_product() {
        let rel = rel_ab();
        let out = cartesian(&rel, &rel);
        assert_eq!(out.len(), 9);
        assert_eq!(out.schema().len(), 4);
    }
}
