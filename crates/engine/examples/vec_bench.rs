//! Microbenchmark backing the DESIGN.md §13 kernel choices: where the
//! vectorized columnar paths pay and where they do not.
//!
//! ```sh
//! cargo run --release -p nra-engine --example vec_bench
//! ```
//!
//! Two measurements:
//!
//! 1. **Predicate evaluation** — `vec::select_rows` over `ValueBatch`
//!    lanes vs per-row `CPred::accepts`. Lanes win (~2x): the
//!    expression-tree walk is paid once per batch and the comparison
//!    loops are branch-light over dense `i64` vectors.
//! 2. **Group boundaries** — `vec::group_bounds` (batch-windowed
//!    pairwise `group_eq_on`) vs a transposed-lane variant
//!    (`ValueBatch::mark_adjacent_neq` per column). The pairwise scan
//!    wins: adjacent equality consumes each value exactly once, so the
//!    transposition never amortizes.

use nra_engine::expr::{CExpr, CPred};
use nra_engine::vec::{self, ValueBatch};
use nra_storage::{CmpOp, Tuple, Value};

const ROWS: usize = 20_000;
const REPS: usize = 50;

fn bench<R>(label: &str, mut f: impl FnMut() -> R) {
    let t = std::time::Instant::now();
    for _ in 0..REPS {
        std::hint::black_box(f());
    }
    println!("  {label:24} {:?}", t.elapsed());
}

fn predicate_eval() {
    println!("predicate evaluation ({ROWS} rows x {REPS} reps):");
    let rows: Vec<Tuple> = (0..ROWS as i64)
        .map(|i| {
            vec![
                Value::Int(i % 50),
                Value::Decimal((i % 1000) * 7),
                Value::Str(format!("n{i}")),
            ]
        })
        .collect();
    // The bench-catalog scan shape: two range predicates ANDed.
    let pred = CPred::And(
        Box::new(CPred::Cmp {
            left: CExpr::Col(0),
            op: CmpOp::Ge,
            right: CExpr::Lit(Value::Int(1)),
        }),
        Box::new(CPred::Cmp {
            left: CExpr::Col(1),
            op: CmpOp::Lt,
            right: CExpr::Lit(Value::Decimal(4000)),
        }),
    );
    let cols = pred.columns();
    let reference: usize = rows.iter().filter(|r| pred.accepts(r)).count();
    bench("vectorized (lanes)", || {
        let mut n = 0;
        for w in rows.chunks(vec::batch_rows()) {
            let b = ValueBatch::with_columns(w, 3, &cols);
            n += vec::select_rows(&pred, &b).len();
        }
        assert_eq!(n, reference);
        n
    });
    bench("row-at-a-time", || {
        let n = rows.iter().filter(|r| pred.accepts(r)).count();
        assert_eq!(n, reference);
        n
    });
}

/// The rejected transposed-lane variant, kept for the comparison.
fn lane_bounds(rows: &[Tuple], cols: &[usize]) -> Vec<(usize, usize)> {
    let width = rows.first().map_or(0, Vec::len);
    let mut starts = vec![0usize];
    let mut base = 0;
    for window in rows.chunks(vec::batch_rows()) {
        if base > 0 && !nra_storage::tuple::group_eq_on(&rows[base - 1], &rows[base], cols) {
            starts.push(base);
        }
        if window.len() > 1 {
            let batch = ValueBatch::with_columns(window, width, cols);
            let mut fresh = vec![false; window.len()];
            for &c in cols {
                batch.mark_adjacent_neq(c, &mut fresh);
            }
            for (i, f) in fresh.iter().enumerate().skip(1) {
                if *f {
                    starts.push(base + i);
                }
            }
        }
        base += window.len();
    }
    let mut bounds = Vec::with_capacity(starts.len());
    for (g, &lo) in starts.iter().enumerate() {
        let hi = starts.get(g + 1).copied().unwrap_or(rows.len());
        bounds.push((lo, hi));
    }
    bounds
}

fn group_boundaries() {
    println!("group boundaries ({ROWS} rows, ~10/group, 4 key cols x {REPS} reps):");
    let rows: Vec<Tuple> = (0..ROWS as i64)
        .map(|i| {
            let g = i / 10;
            vec![
                Value::Int(g),
                Value::Int(g * 2),
                Value::Str(format!("k{g}")),
                Value::Decimal(g * 100),
                Value::Int(i % 7),
            ]
        })
        .collect();
    let cols = [0usize, 1, 2, 3];
    let reference = lane_bounds(&rows, &cols);
    assert_eq!(
        vec::group_bounds(&rows, &cols, "bench").expect("ungoverned"),
        reference
    );
    bench("pairwise (shipped)", || {
        vec::group_bounds(&rows, &cols, "bench").expect("ungoverned")
    });
    bench("transposed lanes", || lane_bounds(&rows, &cols));
}

fn main() {
    predicate_eval();
    group_boundaries();
}
