//! Strategy selection for the nested relational approach.

use nra_engine::EngineError;
use nra_sql::BoundQuery;
use nra_storage::{Catalog, Relation};

use crate::compute::{execute_original, execute_with_style, NestStyle};
use crate::optimize::{
    execute_bottom_up, execute_bottom_up_pushdown, execute_optimized, execute_positive_rewrite,
};

/// An execution strategy for the nested relational approach.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Algorithm 1 with separate nest and linking-selection passes
    /// (the paper's "original nested relational approach").
    Original,
    /// Algorithm 1 with the fused one-pass nest+selection, upgraded to the
    /// single-sort pipelined cascade on linear queries (the paper's
    /// "optimized nested relational approach").
    Optimized,
    /// Bottom-up evaluation (§4.2.3); linear correlated queries only.
    BottomUp,
    /// Bottom-up with nest pushed below the joins (§4.2.4); linear
    /// correlated queries with equality correlation only.
    BottomUpPushdown,
    /// Semijoin rewrite (§4.2.5); all-positive queries only.
    PositiveRewrite,
    /// Pick automatically: positive rewrite when possible, then the
    /// push-down / bottom-up family, then the optimized cascade.
    Auto,
}

/// The strategy [`Strategy::Auto`] resolves to for a given query.
pub fn auto_strategy(query: &BoundQuery) -> Strategy {
    if query.all_links_positive() && query.root.block_count() > 1 {
        Strategy::PositiveRewrite
    } else if query.is_linear_correlated() {
        Strategy::BottomUpPushdown
    } else {
        Strategy::Optimized
    }
}

/// Execute a bound query with the given strategy.
pub fn execute(
    query: &BoundQuery,
    catalog: &Catalog,
    strategy: Strategy,
) -> Result<Relation, EngineError> {
    match strategy {
        Strategy::Original => execute_original(query, catalog),
        Strategy::Optimized => execute_optimized(query, catalog),
        Strategy::BottomUp => execute_bottom_up(query, catalog),
        Strategy::BottomUpPushdown => match execute_bottom_up_pushdown(query, catalog) {
            Err(EngineError::Unsupported(_)) => execute_bottom_up(query, catalog),
            other => other,
        },
        Strategy::PositiveRewrite => execute_positive_rewrite(query, catalog),
        Strategy::Auto => {
            let chosen = auto_strategy(query);
            debug_assert_ne!(chosen, Strategy::Auto);
            match execute(query, catalog, chosen) {
                // The static checks in auto_strategy are conservative but
                // the specialised executors may still bail (e.g. push-down
                // on non-equality correlation); fall back to the general
                // optimized path.
                Err(EngineError::Unsupported(_)) => execute_optimized(query, catalog),
                other => other,
            }
        }
    }
}

/// Algorithm 1 with a chosen nest style — exposed for the processing-cost
/// ablation benchmarks.
pub fn execute_style(
    query: &BoundQuery,
    catalog: &Catalog,
    style: NestStyle,
) -> Result<Relation, EngineError> {
    execute_with_style(query, catalog, style)
}
