//! Strategy selection for the nested relational approach, with
//! trace-visible decision logging: when query-lifecycle tracing is active
//! ([`nra_obs::trace`]), [`execute`] emits a `StrategyChosen` event for
//! every query block explaining why the chosen strategy applies to it, and
//! (under [`Strategy::Auto`]) why each rejected alternative was passed
//! over.

use nra_engine::EngineError;
use nra_obs::trace::{self, TraceEvent};
use nra_sql::{BoundQuery, QueryBlock};
use nra_storage::{Catalog, Relation};

use crate::compute::{execute_original, execute_with_style, NestStyle};
use crate::optimize::{
    execute_bottom_up, execute_bottom_up_pushdown, execute_optimized, execute_positive_rewrite,
};

/// An execution strategy for the nested relational approach.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Algorithm 1 with separate nest and linking-selection passes
    /// (the paper's "original nested relational approach").
    Original,
    /// Algorithm 1 with the fused one-pass nest+selection, upgraded to the
    /// single-sort pipelined cascade on linear queries (the paper's
    /// "optimized nested relational approach").
    Optimized,
    /// Bottom-up evaluation (§4.2.3); linear correlated queries only.
    BottomUp,
    /// Bottom-up with nest pushed below the joins (§4.2.4); linear
    /// correlated queries with equality correlation only.
    BottomUpPushdown,
    /// Semijoin rewrite (§4.2.5); all-positive queries only.
    PositiveRewrite,
    /// Pick automatically: positive rewrite when possible, then the
    /// push-down / bottom-up family, then the optimized cascade.
    Auto,
}

impl Strategy {
    /// Stable kebab-case name (used in trace events and CLI flags).
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Original => "original",
            Strategy::Optimized => "optimized",
            Strategy::BottomUp => "bottom-up",
            Strategy::BottomUpPushdown => "bottom-up-pushdown",
            Strategy::PositiveRewrite => "positive-rewrite",
            Strategy::Auto => "auto",
        }
    }
}

/// The strategy [`Strategy::Auto`] resolves to for a given query.
pub fn auto_strategy(query: &BoundQuery) -> Strategy {
    decide(query).chosen
}

/// Why one query block is (or is not) served by the chosen strategy.
#[derive(Debug, Clone)]
pub struct BlockChoice {
    /// The block's id (the paper's `T_i` subscript).
    pub block: usize,
    /// Human-readable, non-empty justification.
    pub reason: String,
}

/// The planner's full, explainable decision: the chosen strategy, a
/// per-block justification, and the strategies it rejected with reasons.
#[derive(Debug, Clone)]
pub struct StrategyDecision {
    pub chosen: Strategy,
    pub blocks: Vec<BlockChoice>,
    /// `(rejected strategy, why)` in the order they were considered.
    pub rejected: Vec<(Strategy, String)>,
}

/// Resolve [`Strategy::Auto`] and record *why*: the same checks as the
/// paper's §4.2 applicability conditions, each producing a reason string
/// whether it accepts or rejects.
pub fn decide(query: &BoundQuery) -> StrategyDecision {
    let links = query.link_ops();
    let multi_block = query.root.block_count() > 1;
    let mut rejected = Vec::new();

    // §4.2.5 — all-positive queries degenerate to semijoin cascades.
    if !multi_block {
        rejected.push((
            Strategy::PositiveRewrite,
            "flat query: no linking operators to rewrite".to_string(),
        ));
    } else if !query.all_links_positive() {
        let negative: Vec<String> = links
            .iter()
            .filter(|op| op.is_negative())
            .map(|op| format!("`{}`", op.describe()))
            .collect();
        rejected.push((
            Strategy::PositiveRewrite,
            format!(
                "negative linking operator(s) {} need NULL-aware set semantics a \
                 semijoin discards",
                negative.join(", ")
            ),
        ));
    } else {
        let chosen = Strategy::PositiveRewrite;
        return StrategyDecision {
            chosen,
            blocks: block_reasons(query, chosen),
            rejected,
        };
    }

    // §4.2.3/§4.2.4 — bottom-up for linear correlated queries.
    if query.is_linear_correlated() {
        let chosen = Strategy::BottomUpPushdown;
        return StrategyDecision {
            chosen,
            blocks: block_reasons(query, chosen),
            rejected,
        };
    }
    rejected.push((
        Strategy::BottomUpPushdown,
        if !query.root.is_linear() {
            "tree query: a block nests more than one subquery, so there is no \
             single chain to reduce bottom-up"
                .to_string()
        } else if !multi_block {
            "flat query: nothing to evaluate bottom-up".to_string()
        } else {
            "correlated predicates reference a non-adjacent outer block, so inner \
             blocks cannot be reduced before their ancestors"
                .to_string()
        },
    ));

    let chosen = Strategy::Optimized;
    StrategyDecision {
        chosen,
        blocks: block_reasons(query, chosen),
        rejected,
    }
}

/// Per-block justification for running `strategy` on `query` — a reason is
/// produced for *every* block, including forced (non-auto) strategies.
pub fn block_reasons(query: &BoundQuery, strategy: Strategy) -> Vec<BlockChoice> {
    let mut blocks = Vec::new();
    let linear = query.root.is_linear();
    query.root.visit(&mut |block: &QueryBlock, edge| {
        let reason = match (strategy, edge) {
            (Strategy::PositiveRewrite, None) => format!(
                "root of an all-positive query ({} blocks): §4.2.5 rewrites the whole \
                 tree into a cascade of (generalized) semijoins, multiplicity restored \
                 via synthesized rids",
                query.root.block_count()
            ),
            (Strategy::PositiveRewrite, Some(e)) => format!(
                "linked by positive `{}`: σ over υ degenerates to a semijoin, so no \
                 nested relation is ever materialized",
                e.link.describe()
            ),
            (Strategy::BottomUp | Strategy::BottomUpPushdown, None) => format!(
                "head of a linear correlated chain of {} blocks: inner blocks reduce \
                 bottom-up (§4.2.3) before joining upward",
                query.root.block_count()
            ),
            (Strategy::BottomUp | Strategy::BottomUpPushdown, Some(e)) => {
                let mut r = format!(
                    "correlates only with its adjacent outer block b{}: reducible \
                     before the outer join",
                    block.id - 1
                );
                if strategy == Strategy::BottomUpPushdown {
                    let all_eq = block
                        .correlated_preds
                        .iter()
                        .all(|p| matches!(p.as_column_cmp(), Some((_, nra_storage::CmpOp::Eq, _))));
                    if all_eq {
                        r.push_str(
                            "; equality correlation lets the nest commute past the join (§4.2.4)",
                        );
                    } else {
                        r.push_str("; non-equality correlation keeps the nest above the join");
                    }
                }
                r.push_str(&format!(" [link `{}`]", e.link.describe()));
                r
            }
            (Strategy::Original, None) => format!(
                "Algorithm 1 (§4.1): top-down unnesting joins then bottom-up nest + \
                 linking selection, two passes per level ({} blocks)",
                query.root.block_count()
            ),
            (Strategy::Original, Some(e)) => format!(
                "attached by left outer join, then υ + {} computes `{}` over the \
                 nested set",
                if e.link.is_negative() {
                    "σ/σ̄"
                } else {
                    "σ"
                },
                e.link.describe()
            ),
            (Strategy::Optimized | Strategy::Auto, None) => {
                if !linear {
                    format!(
                        "tree query (block b{} nests {} subqueries): Algorithm 1 with \
                         the fused one-pass nest+selection (§4.2.2)",
                        block.id,
                        block.children.len()
                    )
                } else if query.root.block_count() == 1 {
                    "flat query: plain select/project, no nested processing needed".to_string()
                } else {
                    format!(
                        "linear chain of {} blocks: one physical sort by the rid chain, \
                         then a pipelined cascade of linking selections (§4.2.1–§4.2.2)",
                        query.root.block_count()
                    )
                }
            }
            (Strategy::Optimized | Strategy::Auto, Some(e)) => {
                if linear {
                    format!(
                        "cascade level {}: linking predicate `{}` folded during the \
                         single group scan — no per-level re-sort",
                        block.id - 1,
                        e.link.describe()
                    )
                } else {
                    format!(
                        "evaluated in Algorithm-1 order with nest and `{}` selection \
                         fused into one pass",
                        e.link.describe()
                    )
                }
            }
        };
        blocks.push(BlockChoice {
            block: block.id,
            reason,
        });
    });
    blocks
}

/// Emit one `StrategyChosen` trace event per block (the root block's event
/// carries the rejected alternatives). No-op when tracing is off.
fn emit_decision(decision: &StrategyDecision, forced: bool) {
    if !trace::enabled() {
        return;
    }
    let name = decision.chosen.name();
    for (i, choice) in decision.blocks.iter().enumerate() {
        let event = TraceEvent::StrategyChosen {
            block: choice.block,
            name: name.to_string(),
            reason: if forced {
                format!("forced by caller: {}", choice.reason)
            } else {
                choice.reason.clone()
            },
            alternatives: if i == 0 {
                decision
                    .rejected
                    .iter()
                    .map(|(s, why)| (s.name().to_string(), why.clone()))
                    .collect()
            } else {
                Vec::new()
            },
        };
        trace::emit(|| event);
    }
}

/// Record the parallel-execution decision alongside the strategy choice:
/// the worker-thread budget the partition scheduler will honour
/// ([`nra_engine::exec::threads`]) and the partition count the largest
/// base table would split into under the morsel floor. No-op when tracing
/// is off or when the budget is a single thread (sequential execution is
/// the default and needs no explanation).
fn emit_parallelism(query: &BoundQuery, catalog: &Catalog) {
    if !trace::enabled() {
        return;
    }
    let threads = nra_engine::exec::threads();
    if threads <= 1 {
        return;
    }
    let mut largest = 0usize;
    query.root.visit(&mut |block: &QueryBlock, _| {
        for bt in &block.tables {
            if let Ok(t) = catalog.table(&bt.table) {
                largest = largest.max(t.len());
            }
        }
    });
    let partitions = nra_engine::exec::partitions(largest);
    trace::emit(|| TraceEvent::Parallelism {
        threads,
        partitions,
        reason: if partitions > 1 {
            format!(
                "largest base table has {largest} rows; joins, nests and linking \
                 scans split into up to {partitions} morsel partitions"
            )
        } else {
            format!(
                "largest base table has {largest} rows — under the morsel floor, \
                 so operators run sequentially despite the {threads}-thread budget"
            )
        },
    });
}

/// Execute a bound query with the given strategy.
pub fn execute(
    query: &BoundQuery,
    catalog: &Catalog,
    strategy: Strategy,
) -> Result<Relation, EngineError> {
    match strategy {
        Strategy::Original => {
            emit_forced(query, catalog, strategy);
            execute_original(query, catalog)
        }
        Strategy::Optimized => {
            emit_forced(query, catalog, strategy);
            execute_optimized(query, catalog)
        }
        Strategy::BottomUp => {
            emit_forced(query, catalog, strategy);
            execute_bottom_up(query, catalog)
        }
        Strategy::BottomUpPushdown => {
            emit_forced(query, catalog, strategy);
            match execute_bottom_up_pushdown(query, catalog) {
                Err(EngineError::Unsupported(why)) => {
                    emit_fallback(query, Strategy::BottomUp, &why);
                    execute_bottom_up(query, catalog)
                }
                other => other,
            }
        }
        Strategy::PositiveRewrite => {
            emit_forced(query, catalog, strategy);
            execute_positive_rewrite(query, catalog)
        }
        Strategy::Auto => {
            let decision = {
                let _plan = trace::phase(|| "plan".to_string());
                let decision = decide(query);
                emit_decision(&decision, false);
                emit_parallelism(query, catalog);
                decision
            };
            debug_assert_ne!(decision.chosen, Strategy::Auto);
            match execute_concrete(query, catalog, decision.chosen) {
                // The static checks in decide() are conservative but the
                // specialised executors may still bail (e.g. push-down on
                // non-equality correlation); fall back to the general
                // optimized path.
                Err(EngineError::Unsupported(why)) => {
                    emit_fallback(query, Strategy::Optimized, &why);
                    execute_optimized(query, catalog)
                }
                other => other,
            }
        }
    }
}

/// Dispatch without re-emitting decision events (the Auto path logged
/// them already).
fn execute_concrete(
    query: &BoundQuery,
    catalog: &Catalog,
    strategy: Strategy,
) -> Result<Relation, EngineError> {
    match strategy {
        Strategy::Original => execute_original(query, catalog),
        Strategy::Optimized => execute_optimized(query, catalog),
        Strategy::BottomUp => execute_bottom_up(query, catalog),
        Strategy::BottomUpPushdown => match execute_bottom_up_pushdown(query, catalog) {
            Err(EngineError::Unsupported(why)) => {
                emit_fallback(query, Strategy::BottomUp, &why);
                execute_bottom_up(query, catalog)
            }
            other => other,
        },
        Strategy::PositiveRewrite => execute_positive_rewrite(query, catalog),
        Strategy::Auto => unreachable!("auto resolves before dispatch"),
    }
}

fn emit_forced(query: &BoundQuery, catalog: &Catalog, strategy: Strategy) {
    if !trace::enabled() {
        return;
    }
    let _plan = trace::phase(|| "plan".to_string());
    let decision = StrategyDecision {
        chosen: strategy,
        blocks: block_reasons(query, strategy),
        rejected: Vec::new(),
    };
    emit_decision(&decision, true);
    emit_parallelism(query, catalog);
}

/// A specialised executor bailed at runtime; log the downgrade.
fn emit_fallback(query: &BoundQuery, to: Strategy, why: &str) {
    let root = query.root.id;
    trace::emit(|| TraceEvent::StrategyChosen {
        block: root,
        name: to.name().to_string(),
        reason: format!("runtime fallback: chosen strategy bailed ({why})"),
        alternatives: Vec::new(),
    });
}

/// Algorithm 1 with a chosen nest style — exposed for the processing-cost
/// ablation benchmarks.
pub fn execute_style(
    query: &BoundQuery,
    catalog: &Catalog,
    style: NestStyle,
) -> Result<Relation, EngineError> {
    execute_with_style(query, catalog, style)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nra_sql::parse_and_bind;
    use nra_storage::{Column, ColumnType, Schema, Table, Value};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        for (name, cols) in [("r", ["a", "b"]), ("s", ["x", "y"]), ("t", ["u", "v"])] {
            let mut tb = Table::new(
                name,
                Schema::new(cols.map(|c| Column::new(c, ColumnType::Int)).to_vec()),
            );
            tb.insert_many((0..8).map(|i| vec![Value::Int(i % 3), Value::Int(i % 5)]))
                .unwrap();
            cat.add_table(tb).unwrap();
        }
        cat
    }

    #[test]
    fn decide_explains_positive_rewrite() {
        let cat = catalog();
        let q = parse_and_bind("select a from r where a in (select x from s)", &cat).unwrap();
        let d = decide(&q);
        assert_eq!(d.chosen, Strategy::PositiveRewrite);
        assert_eq!(d.blocks.len(), 2);
        assert!(d.blocks.iter().all(|b| !b.reason.is_empty()));
        assert!(d.rejected.is_empty());
    }

    #[test]
    fn decide_rejects_positive_rewrite_with_reason() {
        let cat = catalog();
        let q = parse_and_bind("select a from r where a not in (select x from s)", &cat).unwrap();
        let d = decide(&q);
        assert_ne!(d.chosen, Strategy::PositiveRewrite);
        let (s, why) = &d.rejected[0];
        assert_eq!(*s, Strategy::PositiveRewrite);
        assert!(why.contains("<> all"), "reason names the operator: {why}");
    }

    #[test]
    fn decide_explains_every_block_of_a_tree_query() {
        let cat = catalog();
        let q = parse_and_bind(
            "select a from r where a not in (select x from s where s.y = r.b) \
             and b > all (select v from t where t.u = r.a)",
            &cat,
        )
        .unwrap();
        let d = decide(&q);
        assert_eq!(d.chosen, Strategy::Optimized);
        assert_eq!(d.blocks.len(), 3);
        for b in &d.blocks {
            assert!(!b.reason.is_empty(), "block {} missing reason", b.block);
        }
        // Both the positive rewrite and the bottom-up family were rejected.
        assert_eq!(d.rejected.len(), 2);
        assert!(d.rejected[1].1.contains("tree query"));
    }

    #[test]
    fn auto_strategy_matches_decide() {
        let cat = catalog();
        for sql in [
            "select a from r where a in (select x from s where s.y = r.b)",
            "select a from r where a not in (select x from s where s.y = r.b)",
            "select a from r",
        ] {
            let q = parse_and_bind(sql, &cat).unwrap();
            assert_eq!(auto_strategy(&q), decide(&q).chosen, "{sql}");
        }
    }
}
