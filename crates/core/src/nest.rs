//! The nest operator `υ_{N1,N2}` (paper Definition 3).
//!
//! `nest(r, N1, N2)` groups the flat relation `r` by the *nesting
//! attributes* `N1` and collects, per group, the set of `N2`-projections of
//! the group's tuples (the *nested attributes*). The definition carries an
//! implicit projection onto `N1 ∪ N2`.
//!
//! The paper's Section 5 implements nest by sorting ("like a group-by, the
//! two obvious options to implement nest are sorting and hashing"); both
//! are provided and produce the same multiset of nested tuples.
//!
//! Grouping semantics treat `NULL` like `GROUP BY` does: `NULL` keys group
//! together. This is deliberate — after the unnesting outer joins, padded
//! rows carry `NULL` primary keys and must land in their outer tuple's
//! group to mark it as (possibly) empty.

use std::collections::HashMap;

use nra_engine::EngineError;
use nra_storage::{GroupKey, Relation, Schema};

use crate::nested::{NestedRelation, NestedSchema, NestedTuple};

/// Resolve a list of column names against a flat schema.
fn resolve_all(schema: &Schema, names: &[&str]) -> Result<Vec<usize>, EngineError> {
    names
        .iter()
        .map(|n| {
            schema
                .try_resolve(n)
                .ok_or_else(|| EngineError::Column((*n).to_string()))
        })
        .collect()
}

/// Nest by column indices, hash-based grouping. Group order follows first
/// occurrence; member order follows input order.
pub fn nest_hash_idx(rel: &Relation, n1: &[usize], n2: &[usize], sub: &str) -> NestedRelation {
    let mut sp = nra_obs::span(|| "nest[hash]".to_string());
    sp.rows_in(rel.len());
    let schema = NestedSchema {
        atoms: n1.iter().map(|&i| rel.schema().column(i).clone()).collect(),
        subs: vec![(
            sub.to_string(),
            NestedSchema {
                atoms: n2.iter().map(|&i| rel.schema().column(i).clone()).collect(),
                subs: vec![],
            },
        )],
    };
    let mut order: Vec<GroupKey> = Vec::new();
    let mut groups: HashMap<GroupKey, Vec<NestedTuple>> = HashMap::new();
    for row in rel.rows() {
        let key = GroupKey::from_tuple(row, n1);
        let member = NestedTuple::flat(n2.iter().map(|&i| row[i].clone()).collect());
        match groups.get_mut(&key) {
            Some(g) => g.push(member),
            None => {
                groups.insert(key.clone(), vec![member]);
                order.push(key);
            }
        }
    }
    let tuples: Vec<NestedTuple> = order
        .into_iter()
        .map(|key| {
            let set = groups.remove(&key).unwrap();
            sp.group(set.len());
            NestedTuple {
                atoms: key.0,
                sets: vec![set],
            }
        })
        .collect();
    sp.rows_out(tuples.len());
    NestedRelation { schema, tuples }
}

/// Nest by column indices, sort-based grouping (physically reorders a copy
/// of the input). This is the implementation whose cost the paper's
/// "original approach" measures: one pass to sort/group, then the linking
/// selection in a second pass.
pub fn nest_sort_idx(rel: &Relation, n1: &[usize], n2: &[usize], sub: &str) -> NestedRelation {
    let mut sp = nra_obs::span(|| "nest[sort]".to_string());
    sp.rows_in(rel.len());
    let schema = NestedSchema {
        atoms: n1.iter().map(|&i| rel.schema().column(i).clone()).collect(),
        subs: vec![(
            sub.to_string(),
            NestedSchema {
                atoms: n2.iter().map(|&i| rel.schema().column(i).clone()).collect(),
                subs: vec![],
            },
        )],
    };
    let mut sorted = rel.clone();
    sorted.sort_by_columns(n1);
    let rows = sorted.rows();
    let mut tuples = Vec::new();
    let mut lo = 0;
    while lo < rows.len() {
        let mut hi = lo + 1;
        while hi < rows.len() && nra_storage::tuple::group_eq_on(&rows[lo], &rows[hi], n1) {
            hi += 1;
        }
        let set: Vec<NestedTuple> = rows[lo..hi]
            .iter()
            .map(|r| NestedTuple::flat(n2.iter().map(|&i| r[i].clone()).collect()))
            .collect();
        sp.group(set.len());
        tuples.push(NestedTuple {
            atoms: n1.iter().map(|&i| rows[lo][i].clone()).collect(),
            sets: vec![set],
        });
        lo = hi;
    }
    sp.rows_out(tuples.len());
    NestedRelation { schema, tuples }
}

/// Nest by column names (hash-based).
pub fn nest(
    rel: &Relation,
    n1: &[&str],
    n2: &[&str],
    sub: &str,
) -> Result<NestedRelation, EngineError> {
    let n1 = resolve_all(rel.schema(), n1)?;
    let n2 = resolve_all(rel.schema(), n2)?;
    Ok(nest_hash_idx(rel, &n1, &n2, sub))
}

/// Nest by column names (sort-based).
pub fn nest_sorted(
    rel: &Relation,
    n1: &[&str],
    n2: &[&str],
    sub: &str,
) -> Result<NestedRelation, EngineError> {
    let n1 = resolve_all(rel.schema(), n1)?;
    let n2 = resolve_all(rel.schema(), n2)?;
    Ok(nest_sort_idx(rel, &n1, &n2, sub))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nra_storage::{relation, ColumnType, Value};

    fn sample() -> Relation {
        relation!(
            [
                ("r.a", ColumnType::Int),
                ("s.b", ColumnType::Int),
                ("s.k", ColumnType::Int)
            ],
            [
                [Value::Int(1), Value::Int(10), Value::Int(100)],
                [Value::Int(1), Value::Int(11), Value::Int(101)],
                [Value::Int(2), Value::Null, Value::Null],
                [Value::Null, Value::Int(13), Value::Int(103)],
            ]
        )
    }

    #[test]
    fn nest_groups_by_n1() {
        let n = nest(&sample(), &["r.a"], &["s.b", "s.k"], "s").unwrap();
        assert_eq!(n.len(), 3);
        let g1 = &n.tuples[0];
        assert_eq!(g1.atoms, vec![Value::Int(1)]);
        assert_eq!(g1.sets[0].len(), 2);
        // NULL group key forms its own group.
        let gn = &n.tuples[2];
        assert_eq!(gn.atoms, vec![Value::Null]);
        assert_eq!(gn.sets[0].len(), 1);
    }

    #[test]
    fn hash_and_sort_agree_as_multisets() {
        let rel = sample();
        let a = nest(&rel, &["r.a"], &["s.b"], "s").unwrap();
        let b = nest_sorted(&rel, &["r.a"], &["s.b"], "s").unwrap();
        assert_eq!(a.len(), b.len());
        // Compare via flatten (multiset of (a, b) pairs).
        let fa = a.flatten().unwrap();
        let fb = b.flatten().unwrap();
        assert!(fa.multiset_eq(&fb));
    }

    #[test]
    fn nest_then_unnest_restores_flat_relation() {
        let rel = sample();
        let nested = nest(&rel, &["r.a"], &["s.b", "s.k"], "s").unwrap();
        let back = nested.flatten().unwrap();
        assert!(
            back.multiset_eq(&rel),
            "υ is inverted by unnest when no empty sets exist"
        );
    }

    #[test]
    fn implicit_projection_to_n1_union_n2() {
        let n = nest(&sample(), &["r.a"], &["s.k"], "s").unwrap();
        assert_eq!(n.schema.atoms.len(), 1);
        assert_eq!(n.schema.subs[0].1.atoms.len(), 1);
        assert_eq!(n.schema.depth(), 1);
    }

    #[test]
    fn unknown_columns_error() {
        assert!(nest(&sample(), &["zzz"], &["s.b"], "s").is_err());
        assert!(nest(&sample(), &["r.a"], &["zzz"], "s").is_err());
    }

    #[test]
    fn empty_input_yields_empty_nested_relation() {
        let rel = Relation::new(sample().schema().clone());
        let n = nest(&rel, &["r.a"], &["s.b"], "s").unwrap();
        assert!(n.is_empty());
    }
}
