//! The nest operator `υ_{N1,N2}` (paper Definition 3).
//!
//! `nest(r, N1, N2)` groups the flat relation `r` by the *nesting
//! attributes* `N1` and collects, per group, the set of `N2`-projections of
//! the group's tuples (the *nested attributes*). The definition carries an
//! implicit projection onto `N1 ∪ N2`.
//!
//! The paper's Section 5 implements nest by sorting ("like a group-by, the
//! two obvious options to implement nest are sorting and hashing"); both
//! are provided and produce the same multiset of nested tuples.
//!
//! Grouping semantics treat `NULL` like `GROUP BY` does: `NULL` keys group
//! together. This is deliberate — after the unnesting outer joins, padded
//! rows carry `NULL` primary keys and must land in their outer tuple's
//! group to mark it as (possibly) empty.
//!
//! Both implementations are morsel-parallel under `nra_engine::exec`:
//! the sort path uses the deterministic parallel stable sort and builds
//! the group tuples in chunks aligned to group boundaries; the hash path
//! partitions rows by key hash (all members of a group land in one
//! partition, in input order) and re-emits the groups in global
//! first-occurrence order. Either way the emitted nested relation is
//! identical to the sequential one.

use nra_engine::vec::{self, FxHashMap};
use nra_engine::EngineError;
use nra_engine::{exec, faultinject, governor};
use nra_storage::{GroupKey, Relation, Schema};

use crate::nested::{NestedRelation, NestedSchema, NestedTuple};

/// Resolve a list of column names against a flat schema.
fn resolve_all(schema: &Schema, names: &[&str]) -> Result<Vec<usize>, EngineError> {
    names
        .iter()
        .map(|n| {
            schema
                .try_resolve(n)
                .ok_or_else(|| EngineError::Column((*n).to_string()))
        })
        .collect()
}

/// Nest by column indices, hash-based grouping. Group order follows first
/// occurrence; member order follows input order.
pub fn nest_hash_idx(
    rel: &Relation,
    n1: &[usize],
    n2: &[usize],
    sub: &str,
) -> Result<NestedRelation, EngineError> {
    let mut sp = nra_obs::span(|| "nest[hash]".to_string());
    sp.rows_in(rel.len());
    // Group buffers hold one member per input row plus the key atoms;
    // charge them up front so a runaway nest trips the budget before the
    // buffers are built.
    governor::charge(
        "nest",
        governor::tuple_bytes(rel.len(), n1.len() + n2.len()),
    )?;
    let schema = NestedSchema {
        atoms: n1.iter().map(|&i| rel.schema().column(i).clone()).collect(),
        subs: vec![(
            sub.to_string(),
            NestedSchema {
                atoms: n2.iter().map(|&i| rel.schema().column(i).clone()).collect(),
                subs: vec![],
            },
        )],
    };
    let parts = exec::partitions(rel.len());
    let tuples: Vec<NestedTuple> = if parts <= 1 {
        let mut order: Vec<GroupKey> = Vec::new();
        let mut groups: FxHashMap<GroupKey, Vec<NestedTuple>> = FxHashMap::default();
        for (rid, row) in rel.rows().iter().enumerate() {
            governor::tick(rid, "nest-scan")?;
            let key = GroupKey::from_tuple(row, n1);
            let member = NestedTuple::flat(n2.iter().map(|&i| row[i].clone()).collect());
            match groups.get_mut(&key) {
                Some(g) => g.push(member),
                None => {
                    groups.insert(key.clone(), vec![member]);
                    order.push(key);
                }
            }
        }
        faultinject::hit(faultinject::NEST_FLUSH)?;
        order
            .into_iter()
            .map(|key| {
                let set = groups.remove(&key).unwrap();
                sp.group(set.len());
                NestedTuple {
                    atoms: key.0,
                    sets: vec![set],
                }
            })
            .collect()
    } else {
        sp.partitions(parts);
        // Assign each row to the partition owning its key hash (chunked
        // pass), so all members of one group meet in one partition, in
        // global row order.
        let ranges = exec::chunks(rel.len(), parts);
        let assign: Vec<u32> = exec::run_partitioned(parts, |p| {
            Ok(rel.rows()[ranges[p].clone()]
                .iter()
                .map(|row| (exec::key_hash(&GroupKey::from_tuple(row, n1)) % parts as u64) as u32)
                .collect::<Vec<_>>())
        })?
        .into_iter()
        .flatten()
        .collect();
        faultinject::hit(faultinject::NEST_FLUSH)?;
        // Group per partition, remembering each group's first global row
        // id; sorting by it restores the sequential first-occurrence
        // emission order exactly.
        let per_part = exec::run_partitioned(parts, |b| {
            let mut order: Vec<(usize, GroupKey)> = Vec::new();
            let mut groups: FxHashMap<GroupKey, Vec<NestedTuple>> = FxHashMap::default();
            for (rid, row) in rel.rows().iter().enumerate() {
                governor::tick(rid, "nest-scan")?;
                if assign[rid] != b as u32 {
                    continue;
                }
                let key = GroupKey::from_tuple(row, n1);
                let member = NestedTuple::flat(n2.iter().map(|&i| row[i].clone()).collect());
                match groups.get_mut(&key) {
                    Some(g) => g.push(member),
                    None => {
                        groups.insert(key.clone(), vec![member]);
                        order.push((rid, key));
                    }
                }
            }
            Ok(order
                .into_iter()
                .map(|(rid, key)| {
                    let set = groups.remove(&key).unwrap();
                    (
                        rid,
                        NestedTuple {
                            atoms: key.0,
                            sets: vec![set],
                        },
                    )
                })
                .collect::<Vec<_>>())
        })?;
        let mut all: Vec<(usize, NestedTuple)> = per_part.into_iter().flatten().collect();
        all.sort_by_key(|&(rid, _)| rid);
        all.into_iter()
            .map(|(_, t)| {
                sp.group(t.sets[0].len());
                t
            })
            .collect()
    };
    sp.rows_out(tuples.len());
    Ok(NestedRelation { schema, tuples })
}

/// Nest by column indices, sort-based grouping (physically reorders a copy
/// of the input). This is the implementation whose cost the paper's
/// "original approach" measures: one pass to sort/group, then the linking
/// selection in a second pass.
pub fn nest_sort_idx(
    rel: &Relation,
    n1: &[usize],
    n2: &[usize],
    sub: &str,
) -> Result<NestedRelation, EngineError> {
    let mut sp = nra_obs::span(|| "nest[sort]".to_string());
    sp.rows_in(rel.len());
    // The sort path materializes a full copy of the input plus the group
    // buffers; charge both before cloning.
    governor::charge(
        "nest",
        governor::tuple_bytes(rel.len(), rel.schema().len() + n2.len()),
    )?;
    let schema = NestedSchema {
        atoms: n1.iter().map(|&i| rel.schema().column(i).clone()).collect(),
        subs: vec![(
            sub.to_string(),
            NestedSchema {
                atoms: n2.iter().map(|&i| rel.schema().column(i).clone()).collect(),
                subs: vec![],
            },
        )],
    };
    let mut sorted = rel.clone();
    // Parallel stable sort — byte-identical to `sort_by_columns` (falls
    // back to it below the morsel floor).
    exec::sort_rows_by(sorted.rows_mut(), |a, b| {
        nra_storage::tuple::cmp_on(a, b, n1)
    })?;
    let rows = sorted.rows();
    // Group boundaries: the batch-windowed adjacent-row kernel (same
    // governor cadence as the inline scan it replaced); the expensive
    // part — cloning values into nested tuples — is built per
    // group-chunk in parallel below.
    let bounds = vec::group_bounds(rows, n1, "nest-scan")?;
    faultinject::hit(faultinject::NEST_FLUSH)?;
    for &(lo, hi) in &bounds {
        sp.group(hi - lo);
    }
    let build_group = |&(lo, hi): &(usize, usize)| -> NestedTuple {
        let set: Vec<NestedTuple> = rows[lo..hi]
            .iter()
            .map(|r| NestedTuple::flat(n2.iter().map(|&i| r[i].clone()).collect()))
            .collect();
        NestedTuple {
            atoms: n1.iter().map(|&i| rows[lo][i].clone()).collect(),
            sets: vec![set],
        }
    };
    let parts = exec::partitions(rows.len());
    let tuples: Vec<NestedTuple> = if parts <= 1 {
        bounds.iter().map(build_group).collect()
    } else {
        sp.partitions(parts);
        let granges = exec::chunks(bounds.len(), parts);
        exec::run_partitioned(parts, |p| {
            Ok(bounds[granges[p].clone()]
                .iter()
                .map(build_group)
                .collect::<Vec<_>>())
        })?
        .into_iter()
        .flatten()
        .collect()
    };
    sp.rows_out(tuples.len());
    Ok(NestedRelation { schema, tuples })
}

/// Nest by column names (hash-based).
pub fn nest(
    rel: &Relation,
    n1: &[&str],
    n2: &[&str],
    sub: &str,
) -> Result<NestedRelation, EngineError> {
    let n1 = resolve_all(rel.schema(), n1)?;
    let n2 = resolve_all(rel.schema(), n2)?;
    nest_hash_idx(rel, &n1, &n2, sub)
}

/// Nest by column names (sort-based).
pub fn nest_sorted(
    rel: &Relation,
    n1: &[&str],
    n2: &[&str],
    sub: &str,
) -> Result<NestedRelation, EngineError> {
    let n1 = resolve_all(rel.schema(), n1)?;
    let n2 = resolve_all(rel.schema(), n2)?;
    nest_sort_idx(rel, &n1, &n2, sub)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nra_storage::{relation, ColumnType, Value};

    fn sample() -> Relation {
        relation!(
            [
                ("r.a", ColumnType::Int),
                ("s.b", ColumnType::Int),
                ("s.k", ColumnType::Int)
            ],
            [
                [Value::Int(1), Value::Int(10), Value::Int(100)],
                [Value::Int(1), Value::Int(11), Value::Int(101)],
                [Value::Int(2), Value::Null, Value::Null],
                [Value::Null, Value::Int(13), Value::Int(103)],
            ]
        )
    }

    #[test]
    fn nest_groups_by_n1() {
        let n = nest(&sample(), &["r.a"], &["s.b", "s.k"], "s").unwrap();
        assert_eq!(n.len(), 3);
        let g1 = &n.tuples[0];
        assert_eq!(g1.atoms, vec![Value::Int(1)]);
        assert_eq!(g1.sets[0].len(), 2);
        // NULL group key forms its own group.
        let gn = &n.tuples[2];
        assert_eq!(gn.atoms, vec![Value::Null]);
        assert_eq!(gn.sets[0].len(), 1);
    }

    #[test]
    fn hash_and_sort_agree_as_multisets() {
        let rel = sample();
        let a = nest(&rel, &["r.a"], &["s.b"], "s").unwrap();
        let b = nest_sorted(&rel, &["r.a"], &["s.b"], "s").unwrap();
        assert_eq!(a.len(), b.len());
        // Compare via flatten (multiset of (a, b) pairs).
        let fa = a.flatten().unwrap();
        let fb = b.flatten().unwrap();
        assert!(fa.multiset_eq(&fb));
    }

    #[test]
    fn nest_then_unnest_restores_flat_relation() {
        let rel = sample();
        let nested = nest(&rel, &["r.a"], &["s.b", "s.k"], "s").unwrap();
        let back = nested.flatten().unwrap();
        assert!(
            back.multiset_eq(&rel),
            "υ is inverted by unnest when no empty sets exist"
        );
    }

    #[test]
    fn implicit_projection_to_n1_union_n2() {
        let n = nest(&sample(), &["r.a"], &["s.k"], "s").unwrap();
        assert_eq!(n.schema.atoms.len(), 1);
        assert_eq!(n.schema.subs[0].1.atoms.len(), 1);
        assert_eq!(n.schema.depth(), 1);
    }

    #[test]
    fn unknown_columns_error() {
        assert!(nest(&sample(), &["zzz"], &["s.b"], "s").is_err());
        assert!(nest(&sample(), &["r.a"], &["zzz"], "s").is_err());
    }

    #[test]
    fn parallel_nest_is_identical() {
        // Skewed, NULL-bearing keys over a few hundred rows: both nest
        // implementations must emit exactly the sequential result
        // (atoms, set members, and tuple order alike) at any budget.
        let rows: Vec<Vec<Value>> = (0..400)
            .map(|i| {
                let key = match i % 13 {
                    0 => Value::Null,
                    m => Value::Int(m % 9),
                };
                vec![key, Value::Int(i), Value::Int(1000 - i)]
            })
            .collect();
        let rel = Relation::with_rows(sample().schema().clone(), rows);
        let (n1, n2) = (vec![0usize], vec![1usize, 2usize]);
        let (seq_hash, seq_sort) = {
            let _t = exec::set_threads(Some(1));
            (
                nest_hash_idx(&rel, &n1, &n2, "s").unwrap(),
                nest_sort_idx(&rel, &n1, &n2, "s").unwrap(),
            )
        };
        for threads in [2, 4] {
            let _t = exec::set_threads(Some(threads));
            let _m = exec::set_morsel_rows(1);
            assert_eq!(
                nest_hash_idx(&rel, &n1, &n2, "s").unwrap(),
                seq_hash,
                "hash @{threads}"
            );
            assert_eq!(
                nest_sort_idx(&rel, &n1, &n2, "s").unwrap(),
                seq_sort,
                "sort @{threads}"
            );
        }
    }

    #[test]
    fn empty_input_yields_empty_nested_relation() {
        let rel = Relation::new(sample().schema().clone());
        let n = nest(&rel, &["r.a"], &["s.b"], "s").unwrap();
        assert!(n.is_empty());
    }
}
