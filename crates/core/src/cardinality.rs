//! Cardinality estimation for the Algorithm-1 pipeline.
//!
//! The planner annotates each operator node of the query tree with an
//! estimated output cardinality, derived from row counts and the
//! `ANALYZE`-gathered statistics in [`nra_storage::catalog`] (NDV and
//! null counts per column). Executors record actuals into the profile;
//! `EXPLAIN ANALYZE` renders both as `est=… act=… (×err)` and the
//! per-query Q-error summary feeds the calibration corpus the cost-based
//! strategy choice (ROADMAP item 4) consumes.
//!
//! Heuristics are the classic System-R defaults:
//!
//! * equality against a literal: `1/ndv` (0.1 without stats);
//! * equality between columns (join predicates): `1/max(ndv)`;
//! * inequality `<>`: the complement, 0.9;
//! * range comparisons: 1/3; `BETWEEN`: 1/4;
//! * `IS NULL`: the measured null fraction (0.1 without stats);
//! * conjunction multiplies, disjunction adds with the overlap correction,
//!   negation complements.
//!
//! Estimates use the same node keys as the analyzed plan renderer
//! (`project`, `scan`, `b{id}/scan`, `b{id}/join`, `b{id}/nest`,
//! `b{id}/link`), so estimates and actuals join trivially.

use std::collections::BTreeMap;

use nra_sql::{BExpr, BPred, BoundQuery, QueryBlock};
use nra_storage::{Catalog, CmpOp, Truth};

use crate::compute::edge_modes;

/// Estimated output cardinality per plan-node key.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CardEstimates {
    map: BTreeMap<String, u64>,
}

impl CardEstimates {
    pub fn get(&self, key: &str) -> Option<u64> {
        self.map.get(key).copied()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.map.iter().map(|(k, v)| (k.as_str(), *v))
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// The Q-error of an estimate against the measured actual, scaled by 100:
/// `max(est/act, act/est) × 100`, with both sides clamped to at least one
/// row so empty results stay finite. A perfect estimate scores 100.
pub fn qerror_x100(est: u64, act: u64) -> u64 {
    let est = est.max(1) as f64;
    let act = act.max(1) as f64;
    ((est / act).max(act / est) * 100.0).round() as u64
}

struct Estimator<'a> {
    query: &'a BoundQuery,
    catalog: &'a Catalog,
}

impl<'a> Estimator<'a> {
    /// Row count of the base table behind an exposed qualifier.
    fn table_rows(&self, block: &QueryBlock, exposed: &str) -> f64 {
        block
            .tables
            .iter()
            .find(|t| t.exposed == exposed)
            .and_then(|t| self.catalog.table(&t.table).ok())
            .map(|t| t.len() as f64)
            .unwrap_or(1.0)
    }

    /// Column statistics for a bound column name (`exposed.column`),
    /// searching every block of the query for the owning table.
    fn column_stats(&self, col: &str) -> Option<(nra_storage::ColumnStats, u64)> {
        let (qualifier, column) = col.rsplit_once('.')?;
        let mut found = None;
        self.query.root.visit(&mut |block, _| {
            if found.is_some() {
                return;
            }
            if let Some(bt) = block.tables.iter().find(|t| t.exposed == qualifier) {
                if let Ok(table) = self.catalog.table(&bt.table) {
                    if let Some(stats) = table.stats() {
                        if let Some(cs) = stats.column(column) {
                            found = Some((cs.clone(), stats.row_count));
                        }
                    }
                }
            }
        });
        found
    }

    fn ndv(&self, expr: &BExpr) -> Option<u64> {
        let col = expr.as_column()?;
        self.column_stats(col).map(|(cs, _)| cs.ndv.max(1))
    }

    /// Selectivity of one predicate, in `[0, 1]`.
    fn selectivity(&self, pred: &BPred) -> f64 {
        match pred {
            BPred::Cmp { left, op, right } => {
                let eq_sel = match (self.ndv(left), self.ndv(right)) {
                    (Some(l), Some(r)) => 1.0 / l.max(r) as f64,
                    (Some(n), None) | (None, Some(n)) => 1.0 / n as f64,
                    (None, None) => 0.1,
                };
                match op {
                    CmpOp::Eq => eq_sel,
                    CmpOp::Ne => 1.0 - eq_sel,
                    CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => 1.0 / 3.0,
                }
            }
            BPred::Between { negated, .. } => {
                if *negated {
                    0.75
                } else {
                    0.25
                }
            }
            BPred::IsNull { expr, negated } => {
                let frac = expr
                    .as_column()
                    .and_then(|c| self.column_stats(c))
                    .map(|(cs, rows)| cs.null_count as f64 / (rows.max(1)) as f64)
                    .unwrap_or(0.1);
                if *negated {
                    1.0 - frac
                } else {
                    frac
                }
            }
            BPred::InList { list, negated, .. } => {
                let eq = 0.1;
                let sel = (list.len() as f64 * eq).min(1.0);
                if *negated {
                    1.0 - sel
                } else {
                    sel
                }
            }
            BPred::And(a, b) => self.selectivity(a) * self.selectivity(b),
            BPred::Or(a, b) => {
                let (sa, sb) = (self.selectivity(a), self.selectivity(b));
                sa + sb - sa * sb
            }
            BPred::Not(p) => 1.0 - self.selectivity(p),
            BPred::Const(Truth::True) => 1.0,
            BPred::Const(_) => 0.0,
        }
    }

    /// Reduced-block cardinality: product of the block's base tables,
    /// scaled by its local predicates `Δ_i`.
    fn scan_est(&self, block: &QueryBlock) -> f64 {
        let mut rows: f64 = block
            .tables
            .iter()
            .map(|t| self.table_rows(block, &t.exposed))
            .product();
        for pred in &block.local_preds {
            rows *= self.selectivity(pred);
        }
        rows
    }

    /// Walk a block's edges in Algorithm-1 order, recording estimates for
    /// each operator, and return the block's output cardinality.
    fn block_est(
        &self,
        block: &QueryBlock,
        is_root: bool,
        modes: &std::collections::HashMap<usize, bool>,
        out: &mut BTreeMap<String, u64>,
    ) -> f64 {
        let scan = self.scan_est(block);
        let scan_key = if is_root {
            "scan".to_string()
        } else {
            format!("b{}/scan", block.id)
        };
        out.insert(scan_key, scan.round() as u64);

        let mut cur = scan;
        for edge in &block.children {
            let child = &edge.block;
            let inner = self.block_est(child, false, modes, out);

            // The unnesting left outer join: every outer tuple survives;
            // matches multiply by the correlated-predicate selectivity
            // (an empty C_ij is the virtual Cartesian product).
            let mut matches = cur * inner;
            for pred in &child.correlated_preds {
                matches *= self.selectivity(pred);
            }
            let join = matches.max(cur);
            out.insert(format!("b{}/join", child.id), join.round() as u64);

            // Nest rebuilds one nested tuple per outer prefix.
            out.insert(format!("b{}/nest", child.id), cur.round() as u64);

            // The linking selection: σ̄ pads instead of discarding, so its
            // cardinality is unchanged; the plain σ keeps an estimated
            // half (quantified predicates carry no usable NDV).
            let pseudo = *modes.get(&child.id).unwrap_or(&false);
            if !pseudo {
                cur = (cur / 2.0).max(1.0);
            }
            out.insert(format!("b{}/link", child.id), cur.round() as u64);
        }
        cur
    }
}

/// Estimate output cardinalities for every node of the Algorithm-1 plan
/// of `query`, keyed identically to the analyzed-plan renderer.
pub fn estimate(query: &BoundQuery, catalog: &Catalog) -> CardEstimates {
    let est = Estimator { query, catalog };
    let modes = edge_modes(query);
    let mut map = BTreeMap::new();
    let root = est.block_est(&query.root, true, &modes, &mut map);
    map.insert("project".to_string(), root.round().max(0.0) as u64);
    CardEstimates { map }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nra_sql::parse_and_bind;
    use nra_storage::{Column, ColumnType, Schema, Table, Value};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let mut r = Table::new(
            "r",
            Schema::new(vec![
                Column::new("a", ColumnType::Int),
                Column::new("b", ColumnType::Int),
            ]),
        );
        r.insert_many((0..100).map(|i| vec![Value::Int(i % 10), Value::Int(i)]))
            .unwrap();
        let mut s = Table::new(
            "s",
            Schema::new(vec![
                Column::new("e", ColumnType::Int),
                Column::new("f", ColumnType::Int),
            ]),
        );
        s.insert_many((0..40).map(|i| vec![Value::Int(i % 4), Value::Int(i)]))
            .unwrap();
        cat.add_table(r).unwrap();
        cat.add_table(s).unwrap();
        cat
    }

    #[test]
    fn qerror_basics() {
        assert_eq!(qerror_x100(10, 10), 100);
        assert_eq!(qerror_x100(20, 10), 200);
        assert_eq!(qerror_x100(10, 20), 200);
        assert_eq!(qerror_x100(0, 0), 100, "empty/empty clamps to 1/1");
        assert_eq!(qerror_x100(0, 5), 500);
    }

    #[test]
    fn estimates_cover_every_plan_node() {
        let cat = catalog();
        let q = parse_and_bind(
            "select a from r where b in (select f from s where s.e = r.a)",
            &cat,
        )
        .unwrap();
        let est = estimate(&q, &cat);
        for key in [
            "project", "scan", "b2/scan", "b2/join", "b2/nest", "b2/link",
        ] {
            assert!(est.get(key).is_some(), "missing {key}: {est:?}");
        }
        assert_eq!(est.get("scan"), Some(100), "no local preds on r");
        assert_eq!(est.get("b2/scan"), Some(40));
    }

    #[test]
    fn analyze_sharpens_equality_estimates() {
        let cat = catalog();
        let sql = "select a from r where a = 3";
        let q = parse_and_bind(sql, &cat).unwrap();
        let without = estimate(&q, &cat).get("scan").unwrap();
        assert_eq!(without, 10, "default 0.1 selectivity");
        cat.table("r").unwrap().analyze();
        let with = estimate(&q, &cat).get("scan").unwrap();
        assert_eq!(with, 10, "ndv(a)=10 gives 1/10 of 100 rows");
        // A higher-cardinality column sharpens further.
        let q2 = parse_and_bind("select a from r where b = 3", &cat).unwrap();
        assert_eq!(estimate(&q2, &cat).get("scan"), Some(1), "ndv(b)=100");
    }

    #[test]
    fn outer_join_preserves_outer_cardinality() {
        let cat = catalog();
        cat.table("r").unwrap().analyze();
        cat.table("s").unwrap().analyze();
        let q = parse_and_bind(
            "select a from r where b in (select f from s where s.e = r.a)",
            &cat,
        )
        .unwrap();
        let est = estimate(&q, &cat);
        assert!(
            est.get("b2/join").unwrap() >= est.get("scan").unwrap(),
            "left outer join keeps every outer tuple: {est:?}"
        );
    }
}
