//! The positive-operator rewrite — paper §4.2.5.
//!
//! For positive linking operators the nested relational expression
//! simplifies algebraically:
//!
//! ```text
//! σ_{A θ SOME {B}}(υ_{{A}},{{B}}(R ⟕_C S))  ≡  R ⋉_{C ∧ A θ B} S
//! ```
//!
//! so a query whose linking operators are all positive (`EXISTS`,
//! `θ SOME/ANY`, `IN`) degenerates to the classical semijoin plan — the
//! paper's point being that the nested relational approach loses nothing
//! on the cases existing optimizers already handle well.
//!
//! The implementation handles arbitrary (also non-adjacent) correlation by
//! keeping ancestor columns alongside while descending: an inner join
//! attaches the child, deeper blocks reduce it further, and a final
//! distinct-on-the-prefix restores semijoin multiplicity (exact, because
//! every block carries a synthesized unique rid).

use nra_engine::EngineError;
use nra_sql::BoundQuery;
use nra_storage::{Catalog, Relation};

/// Execute an all-positive query as a cascade of (generalized) semijoins.
/// Errors with `Unsupported` if any linking operator is negative.
pub fn execute_positive_rewrite(
    query: &BoundQuery,
    catalog: &Catalog,
) -> Result<Relation, EngineError> {
    if !query.all_links_positive() {
        return Err(EngineError::unsupported(
            "the positive rewrite applies only when every linking operator is \
             EXISTS, SOME/ANY or IN",
        ));
    }
    if query.root.block_count() > 1 {
        // §4.2.5: every ⟕ + υ + σ triple collapses into one (generalized)
        // semijoin, leaving π, the base inputs, and one semijoin per edge.
        nra_obs::trace::emit(|| {
            let tree = crate::tree_expr::TreeExpr::build(query);
            let n = tree.node_count();
            nra_obs::trace::TraceEvent::RewriteStep {
                rule: "positive-semijoin-rewrite".to_string(),
                nodes_before: tree.op_count(),
                nodes_after: 2 * n,
            }
        });
    }
    // The rewrite itself is the classical one existing optimizers use —
    // the engine's baseline hosts the single implementation; this module
    // contributes the algebraic justification (and the strategy surface).
    nra_engine::baseline::unnest::execute_positive(query, catalog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nra_engine::reference;
    use nra_sql::parse_and_bind;
    use nra_storage::{Column, ColumnType, Schema, Table, Value};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let mut r = Table::new(
            "r",
            Schema::new(vec![
                Column::new("a", ColumnType::Int),
                Column::new("b", ColumnType::Int),
            ]),
        );
        r.insert_many((0..26).map(|i| {
            vec![
                if i % 10 == 3 {
                    Value::Null
                } else {
                    Value::Int(i % 6)
                },
                Value::Int(i % 8),
            ]
        }))
        .unwrap();
        cat.add_table(r).unwrap();
        let mut s = Table::new(
            "s",
            Schema::new(vec![
                Column::new("x", ColumnType::Int),
                Column::new("y", ColumnType::Int),
            ]),
        );
        s.insert_many((0..20).map(|i| {
            vec![
                Value::Int(i % 5),
                if i % 9 == 2 {
                    Value::Null
                } else {
                    Value::Int(i % 7)
                },
            ]
        }))
        .unwrap();
        cat.add_table(s).unwrap();
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                Column::new("u", ColumnType::Int),
                Column::new("v", ColumnType::Int),
            ]),
        );
        t.insert_many((0..15).map(|i| vec![Value::Int(i % 5), Value::Int(i % 3)]))
            .unwrap();
        cat.add_table(t).unwrap();
        cat
    }

    fn check(sql: &str) {
        let cat = catalog();
        let bq = parse_and_bind(sql, &cat).unwrap();
        let want = reference::evaluate(&bq, &cat).unwrap();
        let got = execute_positive_rewrite(&bq, &cat).unwrap();
        assert!(
            got.multiset_eq(&want),
            "positive rewrite != oracle for {sql}\ngot:\n{got}\nwant:\n{want}"
        );
    }

    #[test]
    fn one_level_in_and_exists() {
        check("select a, b from r where a in (select x from s where s.y = r.b)");
        check("select a, b from r where exists (select * from s where s.x = r.a)");
        check("select a, b from r where b > some (select y from s where s.x = r.a)");
    }

    #[test]
    fn preserves_duplicate_multiplicity() {
        // Multiple r rows with identical values must each appear.
        check("select a from r where a in (select x from s)");
    }

    #[test]
    fn two_level_positive_chain() {
        check(
            "select a, b from r where exists (select * from s where s.x = r.a \
             and exists (select * from t where t.u = s.x and t.v < s.y))",
        );
    }

    #[test]
    fn non_adjacent_positive_correlation() {
        check(
            "select a, b from r where exists (select * from s where s.x = r.a \
             and exists (select * from t where t.u = r.a and t.v <> s.y))",
        );
    }

    #[test]
    fn tree_of_positive_links() {
        check(
            "select a, b from r where a in (select x from s where s.y = r.b) \
             and exists (select * from t where t.u = r.a)",
        );
    }

    #[test]
    fn rejects_negative_links() {
        let cat = catalog();
        let bq = parse_and_bind("select a from r where a not in (select x from s)", &cat).unwrap();
        assert!(matches!(
            execute_positive_rewrite(&bq, &cat),
            Err(EngineError::Unsupported(_))
        ));
    }
}
