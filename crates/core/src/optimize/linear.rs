//! Bottom-up evaluation of linear correlated queries (paper §4.2.3).
//!
//! When every inner block is correlated only to its adjacent outer block,
//! the evaluation order can be flipped: reduce the innermost pair first,
//! then outer join the next block up against the *already reduced* child.
//! Only qualified tuples participate in further joins, so intermediates
//! stay small. Because the parent is attached by a fresh outer join at
//! each level, failing child tuples can simply be discarded (plain σ) —
//! the outer join re-creates the empty-set padding for parents that lose
//! all their members.

use nra_engine::planning::{project_select, split_join_conds};
use nra_engine::{faultinject, governor, join, EngineError, JoinKind, JoinSpec};
use nra_sql::{BoundQuery, LinkOp, QueryBlock, SubqueryEdge};
use nra_storage::{Catalog, GroupKey, Relation, Truth, Value};

use crate::compute::{edge_selection, prepare_base, resolve_link_columns, rid_column};
use crate::optimize::fused::{fused_nest_select, FusedLink};

fn chain(query: &BoundQuery) -> (Vec<&QueryBlock>, Vec<&SubqueryEdge>) {
    let mut blocks = vec![&query.root];
    let mut edges = Vec::new();
    let mut cur = &query.root;
    while let Some(edge) = cur.children.first() {
        edges.push(edge);
        blocks.push(&edge.block);
        cur = &edge.block;
    }
    (blocks, edges)
}

/// Bottom-up evaluation. Errors with `Unsupported` unless the query is
/// linear correlated.
pub fn execute_bottom_up(query: &BoundQuery, catalog: &Catalog) -> Result<Relation, EngineError> {
    if !query.is_linear_correlated() {
        return Err(EngineError::unsupported(
            "bottom-up evaluation requires a linear correlated query",
        ));
    }
    let (blocks, edges) = chain(query);
    let n = blocks.len();

    // reduced = the fully reduced relation of blocks k+1..n.
    let mut reduced: Option<Relation> = None;
    for k in (0..n).rev() {
        let mut rel = {
            let _sc = (k > 0).then(|| nra_obs::scope(|| format!("b{}", blocks[k].id)));
            prepare_base(blocks[k], catalog)?
        };
        if let Some(child) = reduced.take() {
            let edge = edges[k];
            let _sc = nra_obs::scope(|| format!("b{}", edge.block.id));
            // Shrink the child to the columns the level needs: correlated
            // attributes, the linked attribute, and the rid marker.
            let child = shrink_child(&child, edge)?;
            let split =
                split_join_conds(&edge.block.correlated_preds, rel.schema(), child.schema())?;
            let joined = join(
                &rel,
                &child,
                &JoinSpec::new(JoinKind::LeftOuter, split.eq, split.residual),
            )?;
            let (joined, outer, inner) = resolve_link_columns(joined, blocks[k], edge)?;
            // Nest by everything that is not the child's: the child's own
            // columns — including a materialized `__b{child}.lval` — form
            // the nested attributes.
            let n2 = crate::compute::owned_columns(joined.schema(), &edge.block);
            let n1: Vec<usize> = (0..joined.schema().len())
                .filter(|i| !n2.contains(i))
                .collect();
            let selection = edge_selection(edge, outer.as_deref(), inner.as_deref())?;
            let link = FusedLink::from_selection(&selection, joined.schema(), &n1)?;
            // Plain σ at every level: see the module docs.
            rel = fused_nest_select(&joined, &n1, link, false, &[])?;
        }
        reduced = Some(rel);
    }
    project_select(&reduced.expect("at least the root block"), &query.root)
}

/// Project a reduced child relation down to the columns its parent level
/// consumes.
fn shrink_child(child: &Relation, edge: &SubqueryEdge) -> Result<Relation, EngineError> {
    let mut keep: Vec<usize> = Vec::new();
    let add = |name: &str, keep: &mut Vec<usize>| {
        if let Some(i) = child.schema().try_resolve(name) {
            if !keep.contains(&i) {
                keep.push(i);
            }
        }
    };
    for pred in &edge.block.correlated_preds {
        for col in pred.columns() {
            add(col, &mut keep);
        }
    }
    if let Some(expr) = &edge.inner_expr {
        for col in expr.columns() {
            add(col, &mut keep);
        }
    }
    add(&rid_column(edge.block.id), &mut keep);
    keep.sort_unstable();
    Ok(child.project(&keep))
}

/// Bottom-up evaluation with the nest pushed below the join (§4.2.4):
/// instead of outer joining and then nesting by the parent, the child is
/// nested (hash-grouped) by its equality correlation key once, and each
/// parent tuple probes its group directly — join, nest and linking
/// selection collapse into one hash lookup per parent tuple.
///
/// Requires the query to be linear correlated with pure equality
/// correlated predicates; errors with `Unsupported` otherwise.
pub fn execute_bottom_up_pushdown(
    query: &BoundQuery,
    catalog: &Catalog,
) -> Result<Relation, EngineError> {
    if !query.is_linear_correlated() {
        return Err(EngineError::unsupported(
            "nest push-down requires a linear correlated query",
        ));
    }
    let (blocks, edges) = chain(query);
    let n = blocks.len();

    if n > 1 {
        // §4.2.4: the nest commutes below the join (same operator count,
        // but the nest now runs on the smaller, pre-join input).
        nra_obs::trace::emit(|| {
            let ops = crate::tree_expr::TreeExpr::build(query).op_count();
            nra_obs::trace::TraceEvent::RewriteStep {
                rule: "nest-past-join".to_string(),
                nodes_before: ops,
                nodes_after: ops,
            }
        });
    }

    let mut reduced: Option<Relation> = None;
    for k in (0..n).rev() {
        let mut rel = {
            let _sc = (k > 0).then(|| nra_obs::scope(|| format!("b{}", blocks[k].id)));
            prepare_base(blocks[k], catalog)?
        };
        if let Some(mut child) = reduced.take() {
            let edge = edges[k];
            let _sc = nra_obs::scope(|| format!("b{}", edge.block.id));
            let split =
                split_join_conds(&edge.block.correlated_preds, rel.schema(), child.schema())?;
            if split.residual.is_some() || split.eq.is_empty() {
                return Err(EngineError::unsupported(
                    "nest push-down requires equality correlated predicates \
                     (the nesting attribute must be the join attribute)",
                ));
            }
            // Materialize computed linking attributes: the outer one on the
            // parent, the inner (linked) one on the child.
            let outer = match &edge.outer_expr {
                None => None,
                Some(nra_sql::BExpr::Col(c)) => Some(c.clone()),
                Some(expr) => {
                    let name = crate::compute::oval_column(blocks[k].id, edge.block.id);
                    rel = crate::compute::append_computed(&rel, &name, expr)?;
                    Some(name)
                }
            };
            let inner = match &edge.inner_expr {
                None => None,
                Some(nra_sql::BExpr::Col(c)) => Some(c.clone()),
                Some(expr) => {
                    let name = crate::compute::lval_column(edge.block.id);
                    child = crate::compute::append_computed(&child, &name, expr)?;
                    Some(name)
                }
            };

            // υ pushed down: hash-group the child by the correlation key.
            let child_keys: Vec<usize> = split.eq.iter().map(|&(_, r)| r).collect();
            let parent_keys: Vec<usize> = split.eq.iter().map(|&(l, _)| l).collect();
            let inner_idx = match (edge.link, &inner) {
                (LinkOp::Exists | LinkOp::NotExists, _) => None,
                // COUNT(*) carries no linked attribute.
                (LinkOp::Agg { .. }, None) => None,
                (_, Some(name)) => Some(
                    child
                        .schema()
                        .try_resolve(name)
                        .ok_or_else(|| EngineError::Column(name.clone()))?,
                ),
                (_, None) => {
                    return Err(EngineError::unsupported(
                        "quantified link without a linked attribute",
                    ))
                }
            };
            // The group map holds one member value per child row plus the
            // key columns — charge it before the buffers are built.
            faultinject::hit(faultinject::NEST_FLUSH)?;
            governor::charge(
                "nest[hash]",
                governor::tuple_bytes(child.len(), 1 + child_keys.len()),
            )?;
            let mut groups: std::collections::HashMap<GroupKey, Vec<Value>> =
                std::collections::HashMap::new();
            {
                let mut sp = nra_obs::span(|| "nest[hash]".to_string());
                sp.rows_in(child.len());
                for (i, row) in child.rows().iter().enumerate() {
                    governor::tick(i, "nest-build")?;
                    let key = GroupKey::from_tuple(row, &child_keys);
                    if key.has_null() {
                        continue; // can never match an SQL equality
                    }
                    let v = inner_idx.map(|i| row[i].clone()).unwrap_or(Value::Null);
                    groups.entry(key).or_default().push(v);
                }
                if sp.active() {
                    let mut entries = 0usize;
                    for g in groups.values() {
                        sp.group(g.len());
                        entries += g.len();
                    }
                    // ~16 bytes per stored member value plus the key columns.
                    sp.hash_build(entries, entries * 16 + groups.len() * child_keys.len() * 16);
                    sp.rows_out(groups.len());
                }
            }

            let outer_idx = outer
                .as_deref()
                .map(|o| {
                    rel.schema()
                        .try_resolve(o)
                        .ok_or_else(|| EngineError::Column(o.to_string()))
                })
                .transpose()?;

            // Probe: each parent tuple meets its (possibly empty) set.
            let mut sp = nra_obs::span(|| "link".to_string());
            sp.rows_in(rel.len());
            faultinject::hit(faultinject::LINKING_SCAN)?;
            governor::charge("link", governor::tuple_bytes(rel.len(), rel.schema().len()))?;
            let mut out = Relation::new(rel.schema().clone());
            static EMPTY: Vec<Value> = Vec::new();
            for (i, row) in rel.rows().iter().enumerate() {
                governor::tick(i, "linking-scan")?;
                let key = GroupKey::from_tuple(row, &parent_keys);
                let members = if key.has_null() {
                    &EMPTY
                } else {
                    groups.get(&key).unwrap_or(&EMPTY)
                };
                let truth = match edge.link {
                    LinkOp::Exists => Truth::from_bool(!members.is_empty()),
                    LinkOp::NotExists => Truth::from_bool(members.is_empty()),
                    LinkOp::Agg { op, func } => {
                        let outer_val = &row[outer_idx.expect("outer")];
                        // For COUNT(*) the stored member values are NULL
                        // placeholders; `aggregate` counts rows for it.
                        let folded = nra_storage::aggregate(func, members.iter());
                        outer_val.sql_compare(op, &folded)
                    }
                    LinkOp::Some(op) => {
                        let outer_val = &row[outer_idx.expect("outer")];
                        let mut acc = Truth::False;
                        for m in members {
                            acc = acc.or(outer_val.sql_compare(op, m));
                            if acc == Truth::True {
                                break;
                            }
                        }
                        acc
                    }
                    LinkOp::All(op) => {
                        let outer_val = &row[outer_idx.expect("outer")];
                        let mut acc = Truth::True;
                        for m in members {
                            acc = acc.and(outer_val.sql_compare(op, m));
                            if acc == Truth::False {
                                break;
                            }
                        }
                        acc
                    }
                };
                sp.outcome(truth);
                if truth == Truth::True {
                    out.push_unchecked(row.clone());
                }
            }
            sp.rows_out(out.len());
            drop(sp);
            rel = out;
        }
        reduced = Some(rel);
    }
    project_select(&reduced.expect("at least the root block"), &query.root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nra_engine::reference;
    use nra_sql::parse_and_bind;
    use nra_storage::{Column, ColumnType, Schema, Table};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let mut r = Table::new(
            "r",
            Schema::new(vec![
                Column::new("a", ColumnType::Int),
                Column::new("b", ColumnType::Int),
            ]),
        );
        r.insert_many((0..28).map(|i| {
            vec![
                if i % 11 == 7 {
                    Value::Null
                } else {
                    Value::Int(i % 6)
                },
                Value::Int(i % 9),
            ]
        }))
        .unwrap();
        cat.add_table(r).unwrap();
        let mut s = Table::new(
            "s",
            Schema::new(vec![
                Column::new("x", ColumnType::Int),
                Column::new("y", ColumnType::Int),
            ]),
        );
        s.insert_many((0..20).map(|i| {
            vec![
                Value::Int(i % 5),
                if i % 6 == 1 {
                    Value::Null
                } else {
                    Value::Int(i % 8)
                },
            ]
        }))
        .unwrap();
        cat.add_table(s).unwrap();
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                Column::new("u", ColumnType::Int),
                Column::new("v", ColumnType::Int),
            ]),
        );
        t.insert_many((0..16).map(|i| vec![Value::Int(i % 5), Value::Int(i % 4)]))
            .unwrap();
        cat.add_table(t).unwrap();
        cat
    }

    fn check(sql: &str) {
        let cat = catalog();
        let bq = parse_and_bind(sql, &cat).unwrap();
        let want = reference::evaluate(&bq, &cat).unwrap();
        let bu = execute_bottom_up(&bq, &cat).unwrap();
        assert!(
            bu.multiset_eq(&want),
            "bottom-up != oracle for {sql}\ngot:\n{bu}\nwant:\n{want}"
        );
        let pd = execute_bottom_up_pushdown(&bq, &cat).unwrap();
        assert!(
            pd.multiset_eq(&want),
            "push-down != oracle for {sql}\ngot:\n{pd}\nwant:\n{want}"
        );
    }

    #[test]
    fn one_level_each_operator() {
        check("select a, b from r where b > all (select y from s where s.x = r.a)");
        check("select a, b from r where b not in (select y from s where s.x = r.a)");
        check("select a, b from r where b < some (select y from s where s.x = r.a)");
        check("select a, b from r where exists (select * from s where s.x = r.a)");
        check("select a, b from r where not exists (select * from s where s.x = r.a)");
    }

    #[test]
    fn two_level_mixed() {
        check(
            "select a, b from r where b > all (select y from s where s.x = r.a \
             and exists (select * from t where t.u = s.x))",
        );
    }

    #[test]
    fn two_level_negative() {
        check(
            "select a, b from r where b not in (select y from s where s.x = r.a \
             and s.y >= all (select v from t where t.u = s.x))",
        );
    }

    #[test]
    fn rejects_non_linear_correlated() {
        let cat = catalog();
        let bq = parse_and_bind(
            "select a from r where exists (select * from s where s.x = r.a \
             and exists (select * from t where t.u = r.a))",
            &cat,
        )
        .unwrap();
        assert!(matches!(
            execute_bottom_up(&bq, &cat),
            Err(EngineError::Unsupported(_))
        ));
    }

    #[test]
    fn pushdown_rejects_non_equality_correlation() {
        let cat = catalog();
        let bq = parse_and_bind(
            "select a from r where exists (select * from s where s.x < r.a)",
            &cat,
        )
        .unwrap();
        assert!(matches!(
            execute_bottom_up_pushdown(&bq, &cat),
            Err(EngineError::Unsupported(_))
        ));
        // ... but the general bottom-up handles it.
        let want = reference::evaluate(&bq, &cat).unwrap();
        let bu = execute_bottom_up(&bq, &cat).unwrap();
        assert!(bu.multiset_eq(&want));
    }
}
