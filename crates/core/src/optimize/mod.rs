//! The Section 4.2 optimizations of the nested relational approach.
//!
//! * [`fused`] — pipelined nest + linking selection (§4.2.2), shared by
//!   the other strategies;
//! * [`pipeline`] — the "optimized nested relational approach": a single
//!   physical reordering plus a pipelined cascade of linking selections
//!   for linear queries (§4.2.1 + §4.2.2);
//! * [`linear`] — bottom-up evaluation of linear correlated queries
//!   (§4.2.3) and its nest-push-down variant;
//! * [`pushdown`] — the nest-past-join commutation rule itself (§4.2.4);
//! * [`positive`] — the rewrite of all-positive queries into semijoin
//!   cascades (§4.2.5).

pub mod fused;
pub mod linear;
pub mod pipeline;
pub mod positive;
pub mod pushdown;

pub use fused::{fused_nest_select, FusedKind, FusedLink};
pub use linear::{execute_bottom_up, execute_bottom_up_pushdown};
pub use pipeline::{execute_linear_cascade, execute_optimized};
pub use positive::execute_positive_rewrite;
pub use pushdown::outer_join_nested;
