//! Pushing nest below an (outer) join — paper §4.2.4.
//!
//! When the nesting attribute is also the (equality) join attribute, nest
//! commutes with the join:
//!
//! ```text
//! υ_{B},{C}(R ⟕_{A=B} S)  ≡  R ⟕_{A=B} (υ_{B},{C} S)
//! ```
//!
//! Operationally (the paper's §4.2.4 example): group `S` by its join key
//! once, then attach each `R` tuple to its (possibly empty) group — the
//! large flat intermediate of the standard unnesting never materializes.
//! [`outer_join_nested`] implements the right-hand side; the equivalence
//! with nest-after-join is exercised by this module's tests and by the
//! property suite.

use std::collections::HashMap;

use nra_engine::EngineError;
use nra_engine::{faultinject, governor};
use nra_storage::{Column, GroupKey, Relation};

use crate::nested::{NestedRelation, NestedSchema, NestedTuple};

/// Compute `R ⟕_{A=B} (υ_{B'},{n2}(S))`: each left tuple paired with the
/// set of `n2`-projections of its matching right group (empty when no
/// match — the nested-relational analogue of outer-join padding, with no
/// padding tuple needed).
///
/// `left_key`/`right_key` are parallel column lists; `n2` names the right
/// columns collected into the set.
pub fn outer_join_nested(
    left: &Relation,
    right: &Relation,
    left_key: &[&str],
    right_key: &[&str],
    n2: &[&str],
    sub: &str,
) -> Result<NestedRelation, EngineError> {
    let resolve =
        |schema: &nra_storage::Schema, names: &[&str]| -> Result<Vec<usize>, EngineError> {
            names
                .iter()
                .map(|n| {
                    schema
                        .try_resolve(n)
                        .ok_or_else(|| EngineError::Column((*n).to_string()))
                })
                .collect()
        };
    let lk = resolve(left.schema(), left_key)?;
    let rk = resolve(right.schema(), right_key)?;
    let n2_idx = resolve(right.schema(), n2)?;

    // υ pushed down: group the right side by its key. The group map
    // holds (up to) one member per right row, the output one nested
    // tuple per left row — charge both against the query's budget
    // before the buffers are built.
    faultinject::hit(faultinject::NEST_FLUSH)?;
    governor::charge(
        "nest[pushdown]",
        governor::tuple_bytes(right.len(), n2_idx.len())
            + governor::tuple_bytes(left.len(), left.schema().len()),
    )?;
    let mut groups: HashMap<GroupKey, Vec<NestedTuple>> = HashMap::new();
    for (i, row) in right.rows().iter().enumerate() {
        governor::tick(i, "nest-build")?;
        let key = GroupKey::from_tuple(row, &rk);
        if key.has_null() {
            continue; // a NULL key never satisfies the equality join
        }
        groups.entry(key).or_default().push(NestedTuple::flat(
            n2_idx.iter().map(|&i| row[i].clone()).collect(),
        ));
    }

    let schema = NestedSchema {
        atoms: left.schema().columns().to_vec(),
        subs: vec![(
            sub.to_string(),
            NestedSchema {
                atoms: n2_idx
                    .iter()
                    .map(|&i| right.schema().column(i).clone())
                    .collect::<Vec<Column>>(),
                subs: vec![],
            },
        )],
    };
    let mut tuples = Vec::with_capacity(left.len());
    for (i, row) in left.rows().iter().enumerate() {
        governor::tick(i, "nest-attach")?;
        let key = GroupKey::from_tuple(row, &lk);
        let set = if key.has_null() {
            vec![]
        } else {
            groups.get(&key).cloned().unwrap_or_default()
        };
        tuples.push(NestedTuple {
            atoms: row.clone(),
            sets: vec![set],
        });
    }
    Ok(NestedRelation { schema, tuples })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linking::{LinkSelection, SetQuant};
    use crate::nest::nest;
    use nra_engine::{join, JoinSpec};
    use nra_storage::{relation, CmpOp, ColumnType, Value};

    fn r() -> Relation {
        relation!(
            [
                ("r.a", ColumnType::Int),
                ("r.d", ColumnType::Int),
                ("r.rid", ColumnType::Int)
            ],
            [
                [Value::Int(5), Value::Int(1), Value::Int(0)],
                [Value::Int(7), Value::Int(2), Value::Int(1)],
                [Value::Int(9), Value::Int(9), Value::Int(2)],
                [Value::Null, Value::Int(1), Value::Int(3)],
            ]
        )
    }

    fn s() -> Relation {
        relation!(
            [
                ("s.g", ColumnType::Int),
                ("s.e", ColumnType::Int),
                ("s.rid", ColumnType::Int)
            ],
            [
                [Value::Int(1), Value::Int(4), Value::Int(0)],
                [Value::Int(1), Value::Int(6), Value::Int(1)],
                [Value::Int(2), Value::Null, Value::Int(2)],
                [Value::Null, Value::Int(8), Value::Int(3)]
            ]
        )
    }

    /// Nest-after-join and join-after-nest must agree once the linking
    /// selection (which consults the marker) is applied and the sets are
    /// projected away.
    #[test]
    fn pushdown_equivalence_under_linking_selection() {
        let (r, s) = (r(), s());
        for (op, quant) in [
            (CmpOp::Gt, SetQuant::All),
            (CmpOp::Le, SetQuant::Some),
            (CmpOp::Ne, SetQuant::All),
            (CmpOp::Eq, SetQuant::Some),
        ] {
            // Standard: R ⟕ S, nest by R's columns, select with marker.
            let joined = join(&r, &s, &JoinSpec::left_outer(vec![(1, 0)])).unwrap();
            let nested = nest(&joined, &["r.a", "r.d", "r.rid"], &["s.e", "s.rid"], "sub").unwrap();
            let sel = LinkSelection::quant("r.a", op, quant, "s.e", Some("s.rid"));
            let standard = sel.select(&nested, "sub").unwrap().atoms_as_relation();

            // Pushed down: groups attached directly; no marker needed
            // because no padding tuple exists — emptiness is a real empty
            // set.
            let pushed =
                outer_join_nested(&r, &s, &["r.d"], &["s.g"], &["s.e", "s.rid"], "sub").unwrap();
            let sel_nomark = LinkSelection::quant("r.a", op, quant, "s.e", None);
            let via_pushdown = sel_nomark
                .select(&pushed, "sub")
                .unwrap()
                .atoms_as_relation();

            assert!(
                standard.multiset_eq(&via_pushdown),
                "push-down mismatch for {op:?} {quant:?}:\nstandard:\n{standard}\npushed:\n{via_pushdown}"
            );
        }
    }

    #[test]
    fn pushdown_equivalence_for_emptiness() {
        let (r, s) = (r(), s());
        let joined = join(&r, &s, &JoinSpec::left_outer(vec![(1, 0)])).unwrap();
        let nested = nest(&joined, &["r.a", "r.d", "r.rid"], &["s.e", "s.rid"], "sub").unwrap();
        let standard = LinkSelection::empty(Some("s.rid"))
            .select(&nested, "sub")
            .unwrap()
            .atoms_as_relation();
        let pushed =
            outer_join_nested(&r, &s, &["r.d"], &["s.g"], &["s.e", "s.rid"], "sub").unwrap();
        let via_pushdown = LinkSelection::empty(None)
            .select(&pushed, "sub")
            .unwrap()
            .atoms_as_relation();
        assert!(standard.multiset_eq(&via_pushdown));
        // r.d=9 has no partner and r.a=NULL's d=1 *does* have partners:
        // exactly one empty set.
        assert_eq!(via_pushdown.len(), 1);
    }

    #[test]
    fn null_join_keys_yield_empty_sets() {
        let left = relation!([("l.k", ColumnType::Int)], [[Value::Null], [Value::Int(1)]]);
        let right = relation!(
            [("r.k", ColumnType::Int), ("r.v", ColumnType::Int)],
            [
                [Value::Int(1), Value::Int(10)],
                [Value::Null, Value::Int(20)]
            ]
        );
        let out = outer_join_nested(&left, &right, &["l.k"], &["r.k"], &["r.v"], "sub").unwrap();
        assert!(
            out.tuples[0].sets[0].is_empty(),
            "NULL left key matches nothing"
        );
        assert_eq!(
            out.tuples[1].sets[0].len(),
            1,
            "NULL right key is not a member"
        );
    }

    #[test]
    fn unknown_column_errors() {
        let (r, s) = (r(), s());
        assert!(outer_join_nested(&r, &s, &["zz"], &["s.g"], &["s.e"], "x").is_err());
        assert!(outer_join_nested(&r, &s, &["r.d"], &["zz"], &["s.e"], "x").is_err());
        assert!(outer_join_nested(&r, &s, &["r.d"], &["s.g"], &["zz"], "x").is_err());
    }
}
