//! Pipelined (fused) nest + linking selection — paper §4.2.2.
//!
//! Instead of materializing the nested relation and scanning it again for
//! the linking selection, the condition is evaluated *while the nesting is
//! taking place*: one sort, one group scan, and the output is already the
//! flat `N1` projection the next step needs. This is the "optimized nested
//! relational approach" whose processing cost the paper reports as roughly
//! an order of magnitude below the two-pass original (§5.2 in-text
//! numbers).

use nra_engine::EngineError;
use nra_engine::{exec, faultinject, governor};
use nra_storage::{aggregate, AggFunc, CmpOp, Relation, Schema, Truth, Value};

use crate::linking::{LinkCond, LinkSelection, SetQuant};

/// What the fused pass computes per group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusedKind {
    Empty,
    NotEmpty,
    Quant {
        op: CmpOp,
        quant: SetQuant,
    },
    /// Aggregate fold before a scalar comparison (`inner` is `None` for
    /// `COUNT(*)`).
    Agg {
        op: CmpOp,
        func: AggFunc,
    },
}

/// A linking predicate with columns resolved against the *flat input*
/// schema (pre-nest): `outer` lies among the nesting attributes, `inner`
/// and `marker` among the nested ones.
#[derive(Debug, Clone)]
pub struct FusedLink {
    pub kind: FusedKind,
    pub outer: Option<usize>,
    pub inner: Option<usize>,
    pub marker: Option<usize>,
}

impl FusedLink {
    /// Resolve a [`LinkSelection`]'s names against the flat input schema.
    pub fn from_selection(
        sel: &LinkSelection,
        schema: &Schema,
        _n1: &[usize],
    ) -> Result<FusedLink, EngineError> {
        let resolve = |name: &str| -> Result<usize, EngineError> {
            schema
                .try_resolve(name)
                .ok_or_else(|| EngineError::Column(name.to_string()))
        };
        let marker = sel.marker.as_deref().map(resolve).transpose()?;
        Ok(match &sel.cond {
            LinkCond::Empty => FusedLink {
                kind: FusedKind::Empty,
                outer: None,
                inner: None,
                marker,
            },
            LinkCond::NotEmpty => FusedLink {
                kind: FusedKind::NotEmpty,
                outer: None,
                inner: None,
                marker,
            },
            LinkCond::Quant {
                outer,
                op,
                quant,
                inner,
            } => FusedLink {
                kind: FusedKind::Quant {
                    op: *op,
                    quant: *quant,
                },
                outer: Some(resolve(outer)?),
                inner: Some(resolve(inner)?),
                marker,
            },
            LinkCond::AggCmp {
                outer,
                op,
                func,
                inner,
            } => FusedLink {
                kind: FusedKind::Agg {
                    op: *op,
                    func: *func,
                },
                outer: Some(resolve(outer)?),
                inner: inner.as_deref().map(resolve).transpose()?,
                marker,
            },
        })
    }

    /// Evaluate the linking predicate over a group of member rows.
    ///
    /// The iterator must yield the group's *raw* rows (padded ones
    /// included); the marker filter is applied here. The outer linking
    /// attribute is a nesting attribute, so it is constant across the raw
    /// group — including all-padded (empty-set) groups, where it is read
    /// from the group head.
    pub fn eval<'a>(&self, members: impl Iterator<Item = &'a [Value]>) -> Truth {
        let mut outer_val: Option<&Value> = None;
        let members = members
            .inspect(|row| {
                if outer_val.is_none() {
                    if let Some(o) = self.outer {
                        outer_val = Some(&row[o]);
                    }
                }
            })
            .filter(|row| match self.marker {
                Some(m) => !row[m].is_null(),
                None => true,
            });
        match self.kind {
            FusedKind::Empty => Truth::from_bool(members.count() == 0),
            FusedKind::NotEmpty => Truth::from_bool(members.count() != 0),
            FusedKind::Agg { op, func } => {
                let folded = match self.inner {
                    Some(inner_idx) => {
                        let vals: Vec<&Value> = members.map(|row| &row[inner_idx]).collect();
                        aggregate(func, vals.into_iter())
                    }
                    // COUNT(*): surviving members count as rows.
                    None => Value::Int(members.count() as i64),
                };
                match outer_val {
                    Some(v) => v.sql_compare(op, &folded),
                    None => Truth::Unknown, // empty raw group cannot occur
                }
            }
            FusedKind::Quant { op, quant } => {
                let outer_idx = self.outer.expect("quant link has outer column");
                let inner_idx = self.inner.expect("quant link has inner column");
                let mut acc = match quant {
                    SetQuant::Some => Truth::False,
                    SetQuant::All => Truth::True,
                };
                for row in members {
                    let t = row[outer_idx].sql_compare(op, &row[inner_idx]);
                    acc = match quant {
                        SetQuant::Some => acc.or(t),
                        SetQuant::All => acc.and(t),
                    };
                    match (quant, acc) {
                        (SetQuant::Some, Truth::True) | (SetQuant::All, Truth::False) => break,
                        _ => {}
                    }
                }
                acc
            }
        }
    }
}

/// One-pass nest + linking selection.
///
/// Sorts a copy of `rel` by the nesting attributes `n1`, scans the groups
/// once, evaluates `link` per group, and emits the `N1` projection of each
/// passing group head. With `use_pseudo`, failing groups are emitted with
/// the output columns in `pad_out` (indices into the `n1` projection)
/// nulled instead of being dropped.
///
/// Note the outer linking attribute is constant within a group (it is one
/// of the nesting attributes), so evaluating it against each member row via
/// [`FusedLink::eval`] is exactly the set comparison `A θ L {B}`.
pub fn fused_nest_select(
    rel: &Relation,
    n1: &[usize],
    link: FusedLink,
    use_pseudo: bool,
    pad_out: &[usize],
) -> Result<Relation, EngineError> {
    let mut sorted = rel.clone();
    {
        let mut sp = nra_obs::span(|| "nest[sort]".to_string());
        sp.rows_in(rel.len());
        governor::charge(
            "nest[sort]",
            governor::tuple_bytes(rel.len(), rel.schema().len()),
        )?;
        let parts = exec::partitions(rel.len());
        if parts > 1 {
            sp.partitions(parts);
        }
        // Parallel stable sort — byte-identical to `sort_by_columns`.
        exec::sort_rows_by(sorted.rows_mut(), |a, b| {
            nra_storage::tuple::cmp_on(a, b, n1)
        })?;
    }
    fused_nest_select_presorted(&sorted, n1, link, use_pseudo, pad_out)
}

/// Like [`fused_nest_select`] but assumes `rel` is already grouped
/// (contiguous on `n1`) — the building block of the single-sort cascade in
/// [`crate::optimize::pipeline`].
pub fn fused_nest_select_presorted(
    rel: &Relation,
    n1: &[usize],
    link: FusedLink,
    use_pseudo: bool,
    pad_out: &[usize],
) -> Result<Relation, EngineError> {
    let mut sp = nra_obs::span(|| "link".to_string());
    sp.rows_in(rel.len());
    faultinject::hit(faultinject::NEST_FLUSH)?;
    let mut out = Relation::new(rel.schema().project(n1));
    let rows = rel.rows();
    // Group boundaries first, via the batch-windowed adjacent-row
    // kernel (same governor cadence as the inline scan it replaced);
    // the per-group evaluation and emission is chunked across workers,
    // group-aligned.
    let bounds = nra_engine::vec::group_bounds(rows, n1, "nest-scan")?;
    governor::charge("link", governor::tuple_bytes(bounds.len(), n1.len()))?;
    for &(lo, hi) in &bounds {
        sp.group(hi - lo);
    }
    let emit_group = |&(lo, hi): &(usize, usize),
                      stats: &mut nra_obs::OpStats,
                      out_rows: &mut Vec<Vec<Value>>| {
        let truth = link.eval(rows[lo..hi].iter().map(Vec::as_slice));
        stats.record_outcome(truth);
        if truth == Truth::True {
            out_rows.push(n1.iter().map(|&i| rows[lo][i].clone()).collect());
        } else if use_pseudo {
            stats.padded += 1;
            let mut padded: Vec<Value> = n1.iter().map(|&i| rows[lo][i].clone()).collect();
            for &p in pad_out {
                padded[p] = Value::Null;
            }
            out_rows.push(padded);
        }
    };
    let parts = exec::partitions(rows.len());
    if parts <= 1 {
        let mut stats = nra_obs::OpStats::default();
        let mut out_rows = Vec::new();
        for (i, b) in bounds.iter().enumerate() {
            governor::tick(i, "linking-scan")?;
            emit_group(b, &mut stats, &mut out_rows);
        }
        sp.absorb_stats(&stats);
        out.rows_mut().extend(out_rows);
    } else {
        sp.partitions(parts);
        let granges = exec::chunks(bounds.len(), parts);
        let per = exec::run_partitioned(parts, |p| {
            let mut stats = nra_obs::OpStats::default();
            let mut out_rows = Vec::new();
            for (i, b) in bounds[granges[p].clone()].iter().enumerate() {
                governor::tick(i, "linking-scan")?;
                emit_group(b, &mut stats, &mut out_rows);
            }
            Ok((out_rows, stats))
        })?;
        for (out_rows, stats) in per {
            sp.absorb_stats(&stats);
            out.rows_mut().extend(out_rows);
        }
    }
    sp.rows_out(out.len());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nest::nest;
    use nra_storage::{relation, ColumnType};

    fn sample() -> Relation {
        relation!(
            [
                ("r.a", ColumnType::Int),
                ("s.b", ColumnType::Int),
                ("s.rid", ColumnType::Int)
            ],
            [
                [Value::Int(1), Value::Int(10), Value::Int(0)],
                [Value::Int(1), Value::Int(11), Value::Int(1)],
                [Value::Int(2), Value::Null, Value::Null],
                [Value::Int(3), Value::Int(5), Value::Int(2)],
                [Value::Int(3), Value::Null, Value::Int(3)],
            ]
        )
    }

    fn selection(op: CmpOp, quant: SetQuant) -> LinkSelection {
        LinkSelection::quant("r.a", op, quant, "s.b", Some("s.rid"))
    }

    /// The fused pass must agree with the two-pass (nest then select) path.
    fn check_agreement(sel: &LinkSelection, use_pseudo: bool) {
        let rel = sample();
        let n1 = vec![0usize];
        // Two-pass.
        let nested = nest(&rel, &["r.a"], &["s.b", "s.rid"], "s").unwrap();
        let two_pass = if use_pseudo {
            sel.pseudo_select(&nested, "s", &["r.a"]).unwrap()
        } else {
            sel.select(&nested, "s").unwrap()
        }
        .atoms_as_relation();
        // Fused.
        let link = FusedLink::from_selection(sel, rel.schema(), &n1).unwrap();
        let fused = fused_nest_select(&rel, &n1, link, use_pseudo, &[0]).unwrap();
        assert!(
            fused.multiset_eq(&two_pass),
            "fused != two-pass for {sel:?} (pseudo={use_pseudo})\nfused:\n{fused}\ntwo-pass:\n{two_pass}"
        );
    }

    #[test]
    fn fused_agrees_with_two_pass_all_ops() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            for quant in [SetQuant::Some, SetQuant::All] {
                for pseudo in [false, true] {
                    check_agreement(&selection(op, quant), pseudo);
                }
            }
        }
    }

    #[test]
    fn fused_agrees_with_two_pass_emptiness() {
        for sel in [
            LinkSelection::empty(Some("s.rid")),
            LinkSelection::not_empty(Some("s.rid")),
        ] {
            for pseudo in [false, true] {
                check_agreement(&sel, pseudo);
            }
        }
    }

    #[test]
    fn pseudo_pads_output_columns() {
        let rel = sample();
        let sel = selection(CmpOp::Gt, SetQuant::All);
        let link = FusedLink::from_selection(&sel, rel.schema(), &[0]).unwrap();
        let out = fused_nest_select(&rel, &[0], link, true, &[0]).unwrap();
        assert_eq!(out.len(), 3, "pseudo keeps every group");
        // a=1 fails (1 > 10 false) -> padded; a=2 empty -> passes.
        let nulls = out.rows().iter().filter(|r| r[0].is_null()).count();
        assert_eq!(nulls, 2);
    }

    #[test]
    fn eval_marker_exclusion() {
        let link = FusedLink {
            kind: FusedKind::Empty,
            outer: None,
            inner: None,
            marker: Some(2),
        };
        let rows: Vec<Vec<Value>> = vec![vec![Value::Int(2), Value::Null, Value::Null]];
        assert_eq!(link.eval(rows.iter().map(Vec::as_slice)), Truth::True);
    }
}
