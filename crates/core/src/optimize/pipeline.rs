//! The optimized nested relational approach: one sort + a pipelined
//! cascade of linking selections (paper §4.2.1 + §4.2.2).
//!
//! Section 4.2.1 observes that along a linear chain of blocks, every nest
//! uses a *prefix* of the nesting attributes of the nest below it; all the
//! nesting can therefore be done with a single physical reordering — sort
//! the fully joined relation once by the chain of row ids — after which
//! every level's groups are contiguous. Section 4.2.2 adds pipelining: the
//! linking selection is evaluated while each group is being scanned.
//!
//! [`execute_optimized`] implements exactly that for linear queries (which
//! covers every experiment in the paper); non-linear (tree) queries fall
//! back to Algorithm 1 with the fused nest+selection operator, which keeps
//! the one-pass-per-level property but re-sorts between levels.

use nra_engine::planning::{project_select, split_join_conds};
use nra_engine::{faultinject, governor, join, EngineError, JoinKind, JoinSpec};
use nra_sql::{BoundQuery, QueryBlock, SubqueryEdge};
use nra_storage::{Catalog, Relation, Truth, Tuple, Value};

use crate::compute::{
    edge_modes, edge_selection, execute_with_style, owned_columns, prepare_base,
    resolve_link_columns, rid_column, NestStyle,
};
use crate::optimize::fused::FusedLink;

/// Execute with the optimized approach (single-sort pipelined cascade for
/// linear queries; fused Algorithm 1 otherwise).
pub fn execute_optimized(query: &BoundQuery, catalog: &Catalog) -> Result<Relation, EngineError> {
    if query.root.is_linear() {
        execute_linear_cascade(query, catalog)
    } else {
        execute_with_style(query, catalog, NestStyle::Fused)
    }
}

/// Phase 1 of the approach in isolation: the unnesting left outer joins of
/// a linear query, producing the flat intermediate result (the paper's
/// "intermediate result" whose size parameterises the §5.2 cost numbers).
/// Exposed so the benchmark harness can separate join cost from the
/// nest + linking-selection processing cost.
pub fn unnest_join_phase(query: &BoundQuery, catalog: &Catalog) -> Result<Relation, EngineError> {
    let (_, edges) = chain(query);
    let mut rel = prepare_base(&query.root, catalog)?;
    for edge in &edges {
        let _sc = nra_obs::scope(|| format!("b{}", edge.block.id));
        let child = prepare_base(&edge.block, catalog)?;
        let split = split_join_conds(&edge.block.correlated_preds, rel.schema(), child.schema())?;
        rel = join(
            &rel,
            &child,
            &JoinSpec::new(JoinKind::LeftOuter, split.eq, split.residual),
        )?;
    }
    Ok(rel)
}

/// The spine of a linear query: blocks from root to leaf with the edges
/// between them.
fn chain(query: &BoundQuery) -> (Vec<&QueryBlock>, Vec<&SubqueryEdge>) {
    let mut blocks = vec![&query.root];
    let mut edges = Vec::new();
    let mut cur = &query.root;
    while let Some(edge) = cur.children.first() {
        edges.push(edge);
        blocks.push(&edge.block);
        cur = &edge.block;
    }
    (blocks, edges)
}

struct Level {
    /// Full-schema index of block k's row id.
    rid: usize,
    /// The link between block k and k+1.
    link: FusedLink,
    /// Full-schema indices of block k's own columns (σ̄ padding).
    pad: Vec<usize>,
    use_pseudo: bool,
    /// Precomputed qualified stats name for this level's linking selection
    /// (the cascade is a per-group hot path, so no span per group).
    obs_name: String,
}

/// Single-sort pipelined evaluation of a linear query.
pub fn execute_linear_cascade(
    query: &BoundQuery,
    catalog: &Catalog,
) -> Result<Relation, EngineError> {
    let (blocks, edges) = chain(query);

    if !edges.is_empty() {
        // §4.2.1: per-level υ + σ pairs collapse into one physical sort
        // plus per-level selections folded into the group scan.
        nra_obs::trace::emit(|| {
            let n = blocks.len();
            nra_obs::trace::TraceEvent::RewriteStep {
                rule: "single-sort-cascade".to_string(),
                nodes_before: crate::tree_expr::TreeExpr::build(query).op_count(),
                nodes_after: 2 + n + 2 * (n - 1),
            }
        });
    }

    // Phase 1 (top-down): the unnesting outer joins.
    let mut rel = prepare_base(blocks[0], catalog)?;
    for edge in &edges {
        let _sc = nra_obs::scope(|| format!("b{}", edge.block.id));
        let child = prepare_base(&edge.block, catalog)?;
        let split = split_join_conds(&edge.block.correlated_preds, rel.schema(), child.schema())?;
        rel = join(
            &rel,
            &child,
            &JoinSpec::new(JoinKind::LeftOuter, split.eq, split.residual),
        )?;
    }

    if edges.is_empty() {
        return project_select(&rel, &query.root);
    }

    // Materialize computed linking attributes (no-ops when the linking
    // predicate compares bare columns).
    let mut link_cols = Vec::new();
    for (k, edge) in edges.iter().enumerate() {
        let (rel2, outer, inner) = resolve_link_columns(rel, blocks[k], edge)?;
        rel = rel2;
        link_cols.push((outer, inner));
    }

    // Phase 2: the single physical reordering — sort by the chain of rids.
    let rid_idx: Vec<usize> = blocks[..blocks.len() - 1]
        .iter()
        .map(|b| {
            rel.schema()
                .try_resolve(&rid_column(b.id))
                .ok_or_else(|| EngineError::Column(rid_column(b.id)))
        })
        .collect::<Result<_, _>>()?;
    {
        let mut sp = nra_obs::span(|| "nest[sort]".to_string());
        sp.rows_in(rel.len());
        governor::charge(
            "nest[sort]",
            governor::tuple_bytes(rel.len(), rel.schema().len()),
        )?;
        let parts = nra_engine::exec::partitions(rel.len());
        if parts > 1 {
            sp.partitions(parts);
        }
        nra_engine::exec::sort_rows_by(rel.rows_mut(), |a, b| {
            nra_storage::tuple::cmp_on(a, b, &rid_idx)
        })?;
    }

    // Phase 3 (bottom-up, pipelined): one scan evaluating every level.
    let modes = edge_modes(query);
    let mut levels = Vec::new();
    for (k, edge) in edges.iter().enumerate() {
        let (outer, inner) = &link_cols[k];
        let selection = edge_selection(edge, outer.as_deref(), inner.as_deref())?;
        let link = FusedLink::from_selection(&selection, rel.schema(), &[])?;
        levels.push(Level {
            rid: rid_idx[k],
            link,
            pad: owned_columns(rel.schema(), blocks[k]),
            use_pseudo: *modes.get(&edge.block.id).unwrap_or(&false),
            obs_name: format!("b{}/link", edge.block.id),
        });
    }

    faultinject::hit(faultinject::LINKING_SCAN)?;
    let survivors = Cascade {
        rows: rel.rows(),
        levels: &levels,
    }
    .reduce(0, rel.len(), 0)?;
    let result = Relation::with_rows(rel.schema().clone(), survivors);
    project_select(&result, &query.root)
}

struct Cascade<'a> {
    rows: &'a [Tuple],
    levels: &'a [Level],
}

impl Cascade<'_> {
    /// Reduce the rows in `[lo, hi)` — which agree on the rids of blocks
    /// `0..k` — to the surviving block-`k` representative tuples.
    ///
    /// For `k == levels.len()` (the deepest block) every row is a member.
    /// Otherwise the range is scanned in subgroups of constant `rid_k`;
    /// each subgroup's members come from the recursive reduction one level
    /// down, the level-`k` linking predicate is folded over them, and the
    /// subgroup head survives (σ), is padded (σ̄), or is dropped.
    fn reduce(&self, lo: usize, hi: usize, k: usize) -> Result<Vec<Tuple>, EngineError> {
        if k == self.levels.len() {
            return Ok(self.rows[lo..hi].to_vec());
        }
        let lv = &self.levels[k];
        let mut out = Vec::new();
        let mut i = lo;
        let mut groups = 0usize;
        while i < hi {
            governor::tick(groups, "linking-scan")?;
            groups += 1;
            let mut j = i + 1;
            while j < hi && self.rows[j][lv.rid].group_eq(&self.rows[i][lv.rid]) {
                j += 1;
            }
            let members = self.reduce(i, j, k + 1)?;
            let truth = lv.link.eval(members.iter().map(|m| m.as_slice()));
            let is_padded = truth != Truth::True && lv.use_pseudo;
            nra_obs::record(&lv.obs_name, |s| {
                s.record_group(members.len());
                s.record_outcome(truth);
                if is_padded {
                    s.padded += 1;
                }
            });
            if truth == Truth::True {
                out.push(self.rows[i].clone());
            } else if lv.use_pseudo {
                let mut padded = self.rows[i].clone();
                for &p in &lv.pad {
                    padded[p] = Value::Null;
                }
                out.push(padded);
            }
            i = j;
        }
        nra_obs::record(&lv.obs_name, |s| {
            s.rows_in += (hi - lo) as u64;
            s.rows_out += out.len() as u64;
        });
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::execute_original;
    use nra_engine::reference;
    use nra_sql::parse_and_bind;
    use nra_storage::{Column, ColumnType, Schema, Table};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let mut r = Table::new(
            "r",
            Schema::new(vec![
                Column::new("a", ColumnType::Int),
                Column::new("b", ColumnType::Int),
            ]),
        );
        r.insert_many((0..30).map(|i| {
            vec![
                if i % 9 == 8 {
                    Value::Null
                } else {
                    Value::Int(i % 6)
                },
                Value::Int(i % 13),
            ]
        }))
        .unwrap();
        cat.add_table(r).unwrap();
        let mut s = Table::new(
            "s",
            Schema::new(vec![
                Column::new("x", ColumnType::Int),
                Column::new("y", ColumnType::Int),
            ]),
        );
        s.insert_many((0..24).map(|i| {
            vec![
                Value::Int(i % 5),
                if i % 8 == 5 {
                    Value::Null
                } else {
                    Value::Int(i % 11)
                },
            ]
        }))
        .unwrap();
        cat.add_table(s).unwrap();
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                Column::new("u", ColumnType::Int),
                Column::new("v", ColumnType::Int),
            ]),
        );
        t.insert_many((0..18).map(|i| vec![Value::Int(i % 4), Value::Int(i % 7)]))
            .unwrap();
        cat.add_table(t).unwrap();
        cat
    }

    fn check(sql: &str) {
        let cat = catalog();
        let bq = parse_and_bind(sql, &cat).unwrap();
        let want = reference::evaluate(&bq, &cat).unwrap();
        let original = execute_original(&bq, &cat).unwrap();
        assert!(
            original.multiset_eq(&want),
            "original NR != oracle for {sql}\ngot:\n{original}\nwant:\n{want}"
        );
        let optimized = execute_optimized(&bq, &cat).unwrap();
        assert!(
            optimized.multiset_eq(&want),
            "optimized NR != oracle for {sql}\ngot:\n{optimized}\nwant:\n{want}"
        );
    }

    #[test]
    fn one_level_all() {
        check("select a, b from r where b > all (select y from s where s.x = r.a)");
    }

    #[test]
    fn one_level_not_in() {
        check("select a, b from r where b not in (select y from s where s.x = r.a)");
    }

    #[test]
    fn one_level_exists_and_not_exists() {
        check("select a, b from r where exists (select * from s where s.x = r.a and s.y > r.b)");
        check("select a, b from r where not exists (select * from s where s.x = r.a)");
    }

    #[test]
    fn two_level_negative_chain() {
        check(
            "select a, b from r where b not in (select y from s where s.x = r.a \
             and s.y > all (select v from t where t.u = s.x))",
        );
    }

    #[test]
    fn two_level_mixed_chain() {
        check(
            "select a, b from r where b < some (select y from s where s.x = r.a \
             and not exists (select * from t where t.u = s.x and t.v = s.y))",
        );
    }

    #[test]
    fn two_level_non_adjacent_correlation() {
        // The paper's Query Q shape: innermost block correlated to both
        // ancestors, with a non-equality correlated predicate.
        check(
            "select a, b from r where b not in (select y from s where r.b = s.x \
             and s.y > all (select v from t where t.u = r.a and t.v <> s.y))",
        );
    }

    #[test]
    fn tree_query_two_children() {
        check(
            "select a, b from r where b in (select y from s where s.x = r.a) \
             and b > all (select v from t where t.u = r.a)",
        );
    }

    #[test]
    fn tree_query_negative_then_positive() {
        check(
            "select a, b from r where not exists (select * from s where s.x = r.a) \
             and exists (select * from t where t.u = r.a)",
        );
    }

    #[test]
    fn uncorrelated_subquery_virtual_product() {
        check("select a, b from r where b > all (select y from s where s.x = 2)");
        check("select a, b from r where b in (select y from s)");
    }

    #[test]
    fn flat_query_passthrough() {
        check("select a, b from r where a = 3 and b > 2");
    }

    #[test]
    fn computed_linking_attribute() {
        check("select a, b from r where a + b > all (select y from s where s.x = r.a)");
    }

    #[test]
    fn computed_linked_attribute() {
        check("select a, b from r where b < some (select y + 1 from s where s.x = r.a)");
    }
}
