//! Nested schemas (paper Definition 1).

use nra_storage::{Column, Schema};

/// A nested relational schema: atomic attributes followed by named
/// subschemas. A flat schema is the special case with no subschemas
/// (depth 0); each level of subschema nesting adds one to the depth.
#[derive(Debug, Clone, PartialEq)]
pub struct NestedSchema {
    pub atoms: Vec<Column>,
    pub subs: Vec<(String, NestedSchema)>,
}

impl NestedSchema {
    /// A flat (depth-0) nested schema.
    pub fn flat(schema: &Schema) -> NestedSchema {
        NestedSchema {
            atoms: schema.columns().to_vec(),
            subs: vec![],
        }
    }

    /// Depth per Definition 1: `0` for flat, `1 + max(depth of subs)`.
    pub fn depth(&self) -> usize {
        self.subs
            .iter()
            .map(|(_, s)| 1 + s.depth())
            .max()
            .unwrap_or(0)
    }

    /// Position of an atomic attribute by (qualified or bare) name.
    pub fn atom_index(&self, name: &str) -> Option<usize> {
        if let Some(i) = self.atoms.iter().position(|c| c.name == name) {
            return Some(i);
        }
        let matches: Vec<usize> = self
            .atoms
            .iter()
            .enumerate()
            .filter(|(_, c)| c.base_name() == name)
            .map(|(i, _)| i)
            .collect();
        if matches.len() == 1 {
            Some(matches[0])
        } else {
            None
        }
    }

    /// Position of a subschema by name.
    pub fn sub_index(&self, name: &str) -> Option<usize> {
        self.subs.iter().position(|(n, _)| n == name)
    }

    /// The flat schema of the atoms.
    pub fn atom_schema(&self) -> Schema {
        Schema::new(self.atoms.clone())
    }

    /// Total count of atomic attributes at every nesting level.
    pub fn total_atoms(&self) -> usize {
        self.atoms.len()
            + self
                .subs
                .iter()
                .map(|(_, s)| s.total_atoms())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nra_storage::ColumnType;

    fn flat(names: &[&str]) -> NestedSchema {
        NestedSchema {
            atoms: names
                .iter()
                .map(|n| Column::new(*n, ColumnType::Int))
                .collect(),
            subs: vec![],
        }
    }

    #[test]
    fn depth_counts_levels() {
        let d0 = flat(&["a"]);
        assert_eq!(d0.depth(), 0);
        let d1 = NestedSchema {
            atoms: vec![Column::new("a", ColumnType::Int)],
            subs: vec![("s".into(), flat(&["b"]))],
        };
        assert_eq!(d1.depth(), 1);
        let d2 = NestedSchema {
            atoms: vec![],
            subs: vec![("t".into(), d1.clone()), ("u".into(), flat(&["c"]))],
        };
        assert_eq!(d2.depth(), 2);
        assert_eq!(d2.total_atoms(), 3);
    }

    #[test]
    fn atom_index_by_qualified_and_bare() {
        let s = flat(&["r.a", "r.b", "s.b"]);
        assert_eq!(s.atom_index("r.a"), Some(0));
        assert_eq!(s.atom_index("a"), Some(0));
        assert_eq!(s.atom_index("b"), None, "ambiguous bare name");
        assert_eq!(s.atom_index("s.b"), Some(2));
    }
}
