//! Nested tuples and relations (paper Definition 2).

use std::fmt;

use nra_storage::{Relation, Schema, Tuple, Value};

use super::schema::NestedSchema;

/// A nested tuple: atom values plus one set of nested tuples per subschema.
#[derive(Debug, Clone, PartialEq)]
pub struct NestedTuple {
    pub atoms: Vec<Value>,
    pub sets: Vec<Vec<NestedTuple>>,
}

impl NestedTuple {
    pub fn flat(atoms: Vec<Value>) -> NestedTuple {
        NestedTuple {
            atoms,
            sets: vec![],
        }
    }
}

/// A nested relation: a nested schema plus nested tuples.
#[derive(Debug, Clone, PartialEq)]
pub struct NestedRelation {
    pub schema: NestedSchema,
    pub tuples: Vec<NestedTuple>,
}

impl NestedRelation {
    pub fn new(schema: NestedSchema) -> NestedRelation {
        NestedRelation {
            schema,
            tuples: vec![],
        }
    }

    /// Embed a flat relation as a depth-0 nested relation.
    pub fn from_flat(rel: &Relation) -> NestedRelation {
        NestedRelation {
            schema: NestedSchema::flat(rel.schema()),
            tuples: rel
                .rows()
                .iter()
                .map(|r| NestedTuple::flat(r.clone()))
                .collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Project away every subschema, keeping the (flat) atoms. This is the
    /// projection the paper leaves implicit after each linking selection.
    pub fn atoms_as_relation(&self) -> Relation {
        let mut out = Relation::new(self.schema.atom_schema());
        for t in &self.tuples {
            out.push_unchecked(t.atoms.clone());
        }
        out
    }

    /// Nest this (possibly already nested) relation by a subset of its
    /// atoms: tuples are grouped by the `n1` atom values (grouping
    /// semantics — `NULL` matches `NULL`), and each group's remaining
    /// atoms *and existing subschemas* become the members of a new
    /// subschema named `sub`. The result is one level deeper — the
    /// "two consecutive nestings" of the paper's §4.2.1 produce exactly
    /// such a two-level nested relation.
    pub fn nest(&self, n1: &[&str], sub: &str) -> Option<NestedRelation> {
        use nra_storage::GroupKey;
        let n1_idx: Vec<usize> = n1
            .iter()
            .map(|name| self.schema.atom_index(name))
            .collect::<Option<_>>()?;
        let rest_idx: Vec<usize> = (0..self.schema.atoms.len())
            .filter(|i| !n1_idx.contains(i))
            .collect();

        let member_schema = NestedSchema {
            atoms: rest_idx
                .iter()
                .map(|&i| self.schema.atoms[i].clone())
                .collect(),
            subs: self.schema.subs.clone(),
        };
        let schema = NestedSchema {
            atoms: n1_idx
                .iter()
                .map(|&i| self.schema.atoms[i].clone())
                .collect(),
            subs: vec![(sub.to_string(), member_schema)],
        };

        let mut order: Vec<GroupKey> = Vec::new();
        let mut groups: std::collections::HashMap<GroupKey, Vec<NestedTuple>> =
            std::collections::HashMap::new();
        for t in &self.tuples {
            let key = GroupKey(n1_idx.iter().map(|&i| t.atoms[i].clone()).collect());
            let member = NestedTuple {
                atoms: rest_idx.iter().map(|&i| t.atoms[i].clone()).collect(),
                sets: t.sets.clone(),
            };
            match groups.get_mut(&key) {
                Some(g) => g.push(member),
                None => {
                    groups.insert(key.clone(), vec![member]);
                    order.push(key);
                }
            }
        }
        let tuples = order
            .into_iter()
            .map(|key| {
                let set = groups.remove(&key).unwrap();
                NestedTuple {
                    atoms: key.0,
                    sets: vec![set],
                }
            })
            .collect();
        Some(NestedRelation { schema, tuples })
    }

    /// Unnest one subschema (the inverse of nest, Definition 3): each
    /// member of the set is spliced next to the atoms. Tuples with an
    /// *empty* set disappear — the classical lossy corner of unnest, which
    /// is precisely why the paper keeps primary keys around to distinguish
    /// empty sets after outer joins.
    pub fn unnest(&self, sub: &str) -> Option<NestedRelation> {
        let si = self.schema.sub_index(sub)?;
        let (_, sub_schema) = &self.schema.subs[si];
        if !sub_schema.subs.is_empty() {
            // Splicing a nested subschema would need schema surgery beyond
            // what the algorithms here use.
            return None;
        }
        let mut atoms = self.schema.atoms.clone();
        atoms.extend(sub_schema.atoms.iter().cloned());
        let mut subs = self.schema.subs.clone();
        subs.remove(si);
        let schema = NestedSchema { atoms, subs };
        let mut tuples = Vec::new();
        for t in &self.tuples {
            for member in &t.sets[si] {
                let mut row = t.atoms.clone();
                row.extend(member.atoms.iter().cloned());
                let mut sets = t.sets.clone();
                sets.remove(si);
                tuples.push(NestedTuple { atoms: row, sets });
            }
        }
        Some(NestedRelation { schema, tuples })
    }

    /// Fully flatten a depth-1 relation with a single subschema into a flat
    /// relation (convenience for tests).
    pub fn flatten(&self) -> Option<Relation> {
        if self.schema.subs.len() != 1 {
            return None;
        }
        let un = self.unnest(&self.schema.subs[0].0.clone())?;
        Some(un.atoms_as_relation())
    }

    /// Build a flat `Relation` where each set-valued attribute is rendered
    /// as its member tuples joined in braces (display/debug helper).
    pub fn display_relation(&self) -> Relation {
        let mut cols = self.schema.atoms.clone();
        for (name, _) in &self.schema.subs {
            cols.push(nra_storage::Column::new(
                format!("{{{name}}}"),
                nra_storage::ColumnType::Str,
            ));
        }
        let mut out = Relation::new(Schema::new(cols));
        for t in &self.tuples {
            let mut row: Tuple = t.atoms.clone();
            for set in &t.sets {
                let rendered: Vec<String> = set
                    .iter()
                    .map(|m| {
                        let vals: Vec<String> = m.atoms.iter().map(|v| v.to_string()).collect();
                        format!("({})", vals.join(","))
                    })
                    .collect();
                row.push(Value::str(format!("{{{}}}", rendered.join(", "))));
            }
            out.push_unchecked(row);
        }
        out
    }
}

impl fmt::Display for NestedRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_relation())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nra_storage::{Column, ColumnType};

    fn one_level() -> NestedRelation {
        let schema = NestedSchema {
            atoms: vec![Column::new("r.a", ColumnType::Int)],
            subs: vec![(
                "sub".into(),
                NestedSchema {
                    atoms: vec![Column::new("s.b", ColumnType::Int)],
                    subs: vec![],
                },
            )],
        };
        NestedRelation {
            schema,
            tuples: vec![
                NestedTuple {
                    atoms: vec![Value::Int(1)],
                    sets: vec![vec![
                        NestedTuple::flat(vec![Value::Int(10)]),
                        NestedTuple::flat(vec![Value::Int(11)]),
                    ]],
                },
                NestedTuple {
                    atoms: vec![Value::Int(2)],
                    sets: vec![vec![]],
                },
            ],
        }
    }

    #[test]
    fn unnest_splices_and_drops_empty() {
        let r = one_level();
        let u = r.unnest("sub").unwrap();
        assert_eq!(u.schema.depth(), 0);
        assert_eq!(u.len(), 2, "a=2 has an empty set and disappears");
        assert_eq!(u.tuples[0].atoms, vec![Value::Int(1), Value::Int(10)]);
    }

    #[test]
    fn flatten_roundtrip() {
        let r = one_level();
        let flat = r.flatten().unwrap();
        assert_eq!(flat.schema().names(), vec!["r.a", "s.b"]);
        assert_eq!(flat.len(), 2);
    }

    #[test]
    fn atoms_as_relation_drops_sets() {
        let r = one_level();
        let a = r.atoms_as_relation();
        assert_eq!(a.schema().names(), vec!["r.a"]);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn display_renders_sets() {
        let s = one_level().to_string();
        assert!(s.contains("{(10), (11)}"), "got: {s}");
        assert!(s.contains("{}"), "empty set rendered");
    }

    #[test]
    fn unnest_unknown_sub_is_none() {
        assert!(one_level().unnest("nope").is_none());
    }

    #[test]
    fn consecutive_nesting_builds_two_levels() {
        // The §4.2.1 observation: nesting a depth-1 relation by a prefix
        // of its atoms yields a depth-2 relation whose inner sets are
        // carried along untouched.
        use nra_storage::{relation, ColumnType};
        let flat: Relation = relation!(
            [
                ("r.a", ColumnType::Int),
                ("s.e", ColumnType::Int),
                ("t.j", ColumnType::Int)
            ],
            [
                [Value::Int(1), Value::Int(10), Value::Int(100)],
                [Value::Int(1), Value::Int(10), Value::Int(101)],
                [Value::Int(1), Value::Int(11), Value::Int(102)],
                [Value::Int(2), Value::Int(12), Value::Int(103)]
            ]
        );
        // First nest: by (r.a, s.e) keeping {t.j}.
        let depth1 = crate::nest::nest(&flat, &["r.a", "s.e"], &["t.j"], "tset").unwrap();
        assert_eq!(depth1.schema.depth(), 1);
        assert_eq!(depth1.len(), 3);
        // Second nest: by the prefix (r.a) — the paper's point: higher
        // levels nest by a prefix of the lower level's nesting attributes.
        let depth2 = depth1.nest(&["r.a"], "sset").unwrap();
        assert_eq!(depth2.schema.depth(), 2);
        assert_eq!(depth2.len(), 2);
        let g1 = &depth2.tuples[0];
        assert_eq!(g1.atoms, vec![Value::Int(1)]);
        assert_eq!(
            g1.sets[0].len(),
            2,
            "two distinct (s.e) members under r.a=1"
        );
        // The inner member (s.e=10) still carries its {t.j} set of size 2.
        let inner = &g1.sets[0][0];
        assert_eq!(inner.atoms, vec![Value::Int(10)]);
        assert_eq!(inner.sets[0].len(), 2);
    }

    #[test]
    fn nest_on_unknown_atom_is_none() {
        assert!(one_level().nest(&["nope"], "x").is_none());
    }
}
