//! The nested relational model of the paper's Section 3.
//!
//! A nested schema has atomic attributes plus named subschemas
//! (Definition 1); a nested tuple carries one value per atomic attribute
//! and one *set of nested tuples* per subschema (Definition 2). The paper's
//! key observation is that the result of a non-aggregate subquery, for a
//! given outer tuple, is exactly such a set-valued attribute.

mod relation;
mod schema;

pub use relation::{NestedRelation, NestedTuple};
pub use schema::NestedSchema;
