//! # nra-core
//!
//! The nested relational approach to processing SQL subqueries — the
//! primary contribution of Cao & Badia, SIGMOD 2005 — implemented over the
//! flat substrate of `nra-storage`/`nra-engine`:
//!
//! * [`nested`] — the nested relational model (recursive schemas, nested
//!   tuples, set-valued attributes; paper §3);
//! * [`nest`] — the nest operator `υ_{N1,N2}` (hash- and sort-based) and
//!   unnest;
//! * [`linking`] — linking predicates, linking selection `σ` and
//!   pseudo-selection `σ̄`, with the NULL-marker rule;
//! * [`compute`] — Algorithm 1, the original top-down/bottom-up approach
//!   (paper §4.1);
//! * [`optimize`] — every §4.2 optimization: fused/pipelined selections,
//!   the single-sort linear cascade, bottom-up evaluation, nest push-down,
//!   and the positive-operator semijoin rewrite;
//! * [`planner`] — strategy selection.
//!
//! ```
//! use nra_storage::{Catalog, Column, ColumnType, Schema, Table, Value};
//! use nra_sql::parse_and_bind;
//!
//! let mut cat = Catalog::new();
//! let mut t = Table::new("t", Schema::new(vec![
//!     Column::new("a", ColumnType::Int),
//! ]));
//! t.insert(vec![Value::Int(1)]).unwrap();
//! cat.add_table(t).unwrap();
//!
//! let q = parse_and_bind("select a from t where a in (select a from t t2)", &cat).unwrap();
//! let out = nra_core::execute(&q, &cat, nra_core::Strategy::Optimized).unwrap();
//! assert_eq!(out.len(), 1);
//! ```

pub mod cardinality;
pub mod compute;
pub mod linking;
pub mod nest;
pub mod nested;
pub mod optimize;
pub mod planner;
pub mod tree_expr;

pub use cardinality::{estimate, qerror_x100, CardEstimates};
pub use compute::{execute_original, execute_with_style, NestStyle};
pub use linking::{LinkCond, LinkSelection, SetQuant};
pub use nest::{nest, nest_hash_idx, nest_sort_idx, nest_sorted};
pub use nested::{NestedRelation, NestedSchema, NestedTuple};
pub use optimize::execute_optimized;
pub use planner::{auto_strategy, execute, execute_style, Strategy};
pub use tree_expr::TreeExpr;
