//! Algorithm 1 — the original nested relational approach (paper §4.1).
//!
//! The query is unnested *top-down*: walking the query-block tree
//! depth-first, each block's reduced relation `T_i` is attached to the
//! accumulated relation with a left outer hash join on the block's
//! correlated predicates (or a virtual Cartesian product when there is no
//! correlation). On the way back *up*, each linking predicate is computed
//! by a nest followed by a linking selection:
//!
//! ```text
//! rel = rel ⟕_Cij T_i          -- down
//! rel = compute(child, rel)    -- recurse
//! rel = υ_{N1},{N2}(rel)       -- up: nest by everything but T_i's columns
//! rel = σ_Li(rel) or σ̄_Li(rel) -- linking selection, project back to N1
//! ```
//!
//! Two implementation details the paper spells out:
//!
//! * **Synthesized row ids.** Every `T_i` gets a non-null `__bi.rid`
//!   column playing the role of the paper's carried primary keys: after an
//!   outer join, a `NULL` rid identifies padding, which is how empty sets
//!   are distinguished from sets containing real `NULL`s (Example 1).
//! * **σ vs σ̄.** A pseudo-selection is used whenever a linking predicate
//!   that still remains to be computed is negative; the plain selection is
//!   used at the root (its links are final `WHERE` conjuncts) and when all
//!   remaining links are positive (§4.1, discussion after Example 2).
//!
//! The *nest style* is pluggable: [`NestStyle::TwoPass`] materializes the
//! nested relation and then selects (the paper's "original" variant);
//! [`NestStyle::Fused`] pipelines the linking selection into the nest's
//! group scan (the paper's "optimized" variant, §4.2.2). Both share this
//! driver; the single-sort cascade for linear queries lives in
//! [`crate::optimize::pipeline`].

use nra_engine::planning::{block_base, project_select, split_join_conds};
use nra_engine::{join, CExpr, EngineError, JoinKind, JoinSpec};
use nra_sql::{BExpr, BoundQuery, LinkOp, QueryBlock, SubqueryEdge};
use nra_storage::{Catalog, Column, ColumnType, Relation, Schema, Value};

use crate::linking::{LinkSelection, SetQuant};
use crate::nest::nest_sort_idx;
use crate::optimize::fused::{fused_nest_select, FusedLink};

/// How nest + linking selection are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NestStyle {
    /// Materialize the nested relation, then select: two passes over the
    /// intermediate result (the paper's original approach).
    TwoPass,
    /// Pipeline the linking selection into the nest: one pass (§4.2.2).
    Fused,
}

/// Execute with the original (two-pass) nest style.
pub fn execute_original(query: &BoundQuery, catalog: &Catalog) -> Result<Relation, EngineError> {
    execute_with_style(query, catalog, NestStyle::TwoPass)
}

/// Execute Algorithm 1 with the given nest style.
pub fn execute_with_style(
    query: &BoundQuery,
    catalog: &Catalog,
    style: NestStyle,
) -> Result<Relation, EngineError> {
    if style == NestStyle::Fused && query.root.block_count() > 1 {
        // §4.2.2: each separate υ-then-σ pair becomes one fused operator.
        nra_obs::trace::emit(|| {
            let tree = crate::tree_expr::TreeExpr::build(query);
            let edges = tree.node_count() - 1;
            nra_obs::trace::TraceEvent::RewriteStep {
                rule: "fuse-nest-select".to_string(),
                nodes_before: tree.op_count(),
                nodes_after: tree.op_count() - edges,
            }
        });
    }
    let modes = edge_modes(query);
    let ctx = Ctx {
        catalog,
        modes,
        style,
    };
    let rel = prepare_base(&query.root, catalog)?;
    let rel = compute(&ctx, &query.root, rel)?;
    project_select(&rel, &query.root)
}

/// The synthesized row-id column name for block `id`.
pub fn rid_column(id: usize) -> String {
    format!("__b{id}.rid")
}

/// Name of the materialized linked-value column for block `id` (used when
/// the subquery's select item is a computed expression).
pub fn lval_column(id: usize) -> String {
    format!("__b{id}.lval")
}

/// Name of the materialized linking-attribute column (used when the outer
/// side of a linking predicate is a computed expression). Owned by the
/// parent block `parent` so it lands among the nesting attributes.
pub fn oval_column(parent: usize, child: usize) -> String {
    format!("__b{parent}.oval{child}")
}

/// Build `T_i` for a block: base (FROM product + local predicates) with the
/// synthesized rid appended.
pub fn prepare_base(block: &QueryBlock, catalog: &Catalog) -> Result<Relation, EngineError> {
    let base = block_base(block, catalog)?;
    Ok(append_rid(&base, block.id))
}

/// Append a non-null row-id column named `__b{id}.rid`.
pub fn append_rid(rel: &Relation, id: usize) -> Relation {
    let mut schema_cols = rel.schema().columns().to_vec();
    schema_cols.push(Column::not_null(rid_column(id), ColumnType::Int));
    let mut out = Relation::new(Schema::new(schema_cols));
    for (i, row) in rel.rows().iter().enumerate() {
        let mut r = row.clone();
        r.push(Value::Int(i as i64));
        out.push_unchecked(r);
    }
    out
}

/// Append a computed column to a relation.
pub fn append_computed(rel: &Relation, name: &str, expr: &BExpr) -> Result<Relation, EngineError> {
    let compiled = CExpr::compile(expr, rel.schema())?;
    let mut schema_cols = rel.schema().columns().to_vec();
    // The computed value's type is not statically known in this small type
    // system; declare Int-compatible and rely on unchecked pushes (the
    // column only feeds comparisons, which are dynamically typed).
    schema_cols.push(Column::new(name.to_string(), ColumnType::Int));
    let mut out = Relation::new(Schema::new(schema_cols));
    for row in rel.rows() {
        let mut r = row.clone();
        r.push(compiled.eval(row));
        out.push_unchecked(r);
    }
    Ok(out)
}

/// For each edge (keyed by child block id): must the linking selection be a
/// pseudo-selection?
///
/// Links are computed bottom-up in post-order; an edge needs σ̄ when any
/// link computed *after* it is negative — except edges at the root, whose
/// links are final `WHERE` conjuncts and can always discard.
pub fn edge_modes(query: &BoundQuery) -> std::collections::HashMap<usize, bool> {
    let mut postorder: Vec<(usize, bool, bool)> = Vec::new(); // (child id, positive, parent_is_root)
    fn walk(block: &QueryBlock, root_id: usize, out: &mut Vec<(usize, bool, bool)>) {
        for edge in &block.children {
            walk(&edge.block, root_id, out);
            out.push((edge.block.id, edge.link.is_positive(), block.id == root_id));
        }
    }
    walk(&query.root, query.root.id, &mut postorder);
    let mut modes = std::collections::HashMap::new();
    for (i, &(id, _, parent_is_root)) in postorder.iter().enumerate() {
        let later_negative = postorder[i + 1..].iter().any(|&(_, pos, _)| !pos);
        modes.insert(id, !parent_is_root && later_negative);
    }
    modes
}

struct Ctx<'a> {
    catalog: &'a Catalog,
    modes: std::collections::HashMap<usize, bool>,
    style: NestStyle,
}

/// Columns of `schema` owned by `block` (its exposed qualifiers plus its
/// synthesized `__b{id}.*` columns).
pub fn owned_columns(schema: &Schema, block: &QueryBlock) -> Vec<usize> {
    let synth = format!("__b{}", block.id);
    schema
        .columns()
        .iter()
        .enumerate()
        .filter(|(_, c)| match c.qualifier() {
            Some(q) => q == synth || block.tables.iter().any(|t| t.exposed == q),
            None => false,
        })
        .map(|(i, _)| i)
        .collect()
}

/// Resolve the linking attribute (outer) and linked attribute (inner)
/// columns for an edge, materializing computed expressions as extra
/// columns on `rel` when necessary. Returns the updated relation plus the
/// two column names.
pub(crate) fn resolve_link_columns(
    mut rel: Relation,
    parent: &QueryBlock,
    edge: &SubqueryEdge,
) -> Result<(Relation, Option<String>, Option<String>), EngineError> {
    let outer = match &edge.outer_expr {
        None => None,
        Some(BExpr::Col(c)) => Some(c.clone()),
        Some(expr) => {
            let name = oval_column(parent.id, edge.block.id);
            rel = append_computed(&rel, &name, expr)?;
            Some(name)
        }
    };
    let inner = match &edge.inner_expr {
        None => None,
        Some(BExpr::Col(c)) => Some(c.clone()),
        Some(expr) => {
            let name = lval_column(edge.block.id);
            rel = append_computed(&rel, &name, expr)?;
            Some(name)
        }
    };
    Ok((rel, outer, inner))
}

/// Build the [`LinkSelection`] for an edge.
pub fn edge_selection(
    edge: &SubqueryEdge,
    outer_col: Option<&str>,
    inner_col: Option<&str>,
) -> Result<LinkSelection, EngineError> {
    fn need<'a>(col: Option<&'a str>, what: &str) -> Result<&'a str, EngineError> {
        col.ok_or_else(|| {
            EngineError::unsupported(format!("{what} link without a linking attribute"))
        })
    }
    let marker = rid_column(edge.block.id);
    Ok(match edge.link {
        LinkOp::Exists => LinkSelection::not_empty(Some(&marker)),
        LinkOp::NotExists => LinkSelection::empty(Some(&marker)),
        LinkOp::Some(op) => LinkSelection::quant(
            need(outer_col, "SOME")?,
            op,
            SetQuant::Some,
            need(inner_col, "SOME")?,
            Some(&marker),
        ),
        LinkOp::All(op) => LinkSelection::quant(
            need(outer_col, "ALL")?,
            op,
            SetQuant::All,
            need(inner_col, "ALL")?,
            Some(&marker),
        ),
        LinkOp::Agg { op, func } => LinkSelection::agg(
            need(outer_col, "aggregate")?,
            op,
            func,
            inner_col, // None for COUNT(*)
            Some(&marker),
        ),
    })
}

/// The recursive body of Algorithm 1.
fn compute(ctx: &Ctx<'_>, block: &QueryBlock, mut rel: Relation) -> Result<Relation, EngineError> {
    for edge in &block.children {
        let _sc = nra_obs::scope(|| format!("b{}", edge.block.id));
        let child_rel = prepare_base(&edge.block, ctx.catalog)?;

        // Down: attach T_child with a left outer join on the correlated
        // predicates (an unconditional left outer join — every pair
        // matches — when the subquery is not correlated: the paper's
        // "virtual Cartesian product").
        let split = split_join_conds(
            &edge.block.correlated_preds,
            rel.schema(),
            child_rel.schema(),
        )?;
        rel = join(
            &rel,
            &child_rel,
            &JoinSpec::new(JoinKind::LeftOuter, split.eq, split.residual),
        )?;

        // Recurse: the child's own subqueries reduce `rel` back to
        // prefix ++ child columns.
        rel = compute(ctx, &edge.block, rel)?;

        // Up: materialize computed linking attributes if needed, nest by
        // everything that is not the child's, and apply the linking
        // selection.
        let (rel2, outer_col, inner_col) = resolve_link_columns(rel, block, edge)?;
        rel = rel2;

        let n2 = owned_columns(rel.schema(), &edge.block);
        let n1: Vec<usize> = (0..rel.schema().len())
            .filter(|i| !n2.contains(i))
            .collect();

        let selection = edge_selection(edge, outer_col.as_deref(), inner_col.as_deref())?;
        let use_pseudo = *ctx.modes.get(&edge.block.id).unwrap_or(&false);

        rel = match ctx.style {
            NestStyle::TwoPass => {
                let nested = nest_sort_idx(&rel, &n1, &n2, "sub")?;
                let selected = if use_pseudo {
                    let pad: Vec<&str> = {
                        let own = owned_columns(&nested.schema.atom_schema(), block);
                        own.iter()
                            .map(|&i| nested.schema.atoms[i].name.as_str())
                            .collect()
                    };
                    selection.pseudo_select(&nested, "sub", &pad)?
                } else {
                    selection.select(&nested, "sub")?
                };
                selected.atoms_as_relation()
            }
            NestStyle::Fused => {
                let pad = owned_columns(&rel.schema().project(&n1), block);
                let link = FusedLink::from_selection(&selection, rel.schema(), &n1)?;
                fused_nest_select(&rel, &n1, link, use_pseudo, &pad)?
            }
        };
    }
    Ok(rel)
}
