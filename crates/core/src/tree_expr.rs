//! The *tree expression* of the paper's Section 4 (Figure 3a) and the
//! query tree it compiles to (Figure 3b), as displayable structures.
//!
//! Step 2 of the approach builds, from the query blocks, a tree with one
//! node `T_i` per block and edges labelled by the linking predicate `L_i`
//! and the correlated predicates `C_ij`. Step 3 (Algorithm 1) walks it
//! depth-first, producing the operator pipeline of outer joins going down
//! and nest + linking selections coming back up. This module renders both,
//! powering `EXPLAIN`-style output for the nested relational engine.

use std::fmt;

use nra_sql::{BoundQuery, LinkOp, QueryBlock};

use crate::compute::edge_modes;

/// One node of the tree expression: a reduced query block `T_i`.
#[derive(Debug, Clone)]
pub struct TreeNode {
    /// The paper's `T_i` index (block id).
    pub id: usize,
    /// The block's FROM tables (exposed names).
    pub tables: Vec<String>,
    /// The local predicates `Δ_i` applied when reducing the block.
    pub local: Vec<String>,
    /// Children, each with its edge labels.
    pub children: Vec<TreeEdge>,
}

/// An edge of the tree expression.
#[derive(Debug, Clone)]
pub struct TreeEdge {
    /// The linking predicate `L_i`, rendered.
    pub link: String,
    /// Whether the linking selection for this edge is the pseudo-selection
    /// `σ̄` (negative/mixed context) or the plain `σ`.
    pub pseudo: bool,
    /// The correlated predicates `C_ij`, rendered.
    pub correlated: Vec<String>,
    pub node: TreeNode,
}

/// The tree expression of a bound query.
#[derive(Debug, Clone)]
pub struct TreeExpr {
    pub root: TreeNode,
}

fn render_pred(p: &nra_sql::BPred) -> String {
    fn expr(e: &nra_sql::BExpr) -> String {
        match e {
            nra_sql::BExpr::Col(c) => c.clone(),
            nra_sql::BExpr::Lit(v) => v.to_string(),
            nra_sql::BExpr::Arith { op, left, right } => {
                format!("({} {} {})", expr(left), op.symbol(), expr(right))
            }
        }
    }
    match p {
        nra_sql::BPred::Cmp { left, op, right } => {
            format!("{} {} {}", expr(left), op, expr(right))
        }
        nra_sql::BPred::Between {
            expr: e,
            low,
            high,
            negated,
        } => format!(
            "{} {}between {} and {}",
            expr(e),
            if *negated { "not " } else { "" },
            expr(low),
            expr(high)
        ),
        nra_sql::BPred::IsNull { expr: e, negated } => {
            format!("{} is {}null", expr(e), if *negated { "not " } else { "" })
        }
        nra_sql::BPred::InList {
            expr: e,
            list,
            negated,
        } => format!(
            "{} {}in ({})",
            expr(e),
            if *negated { "not " } else { "" },
            list.iter().map(expr).collect::<Vec<_>>().join(", ")
        ),
        nra_sql::BPred::And(a, b) => format!("({} and {})", render_pred(a), render_pred(b)),
        nra_sql::BPred::Or(a, b) => format!("({} or {})", render_pred(a), render_pred(b)),
        nra_sql::BPred::Not(inner) => format!("not ({})", render_pred(inner)),
        nra_sql::BPred::Const(t) => format!("{t:?}"),
    }
}

fn render_link(edge: &nra_sql::SubqueryEdge) -> String {
    let attr = |e: &Option<nra_sql::BExpr>| -> String {
        match e {
            Some(nra_sql::BExpr::Col(c)) => c.clone(),
            Some(other) => render_pred(&nra_sql::BPred::Cmp {
                left: other.clone(),
                op: nra_storage::CmpOp::Eq,
                right: other.clone(),
            })
            .split(" =")
            .next()
            .unwrap_or("<expr>")
            .to_string(),
            None => String::new(),
        }
    };
    let inner = edge
        .inner_expr
        .as_ref()
        .and_then(|e| e.as_column().map(str::to_string))
        .unwrap_or_else(|| "·".to_string());
    match edge.link {
        LinkOp::Exists => format!("{{{inner}}} ≠ ∅ (exists)"),
        LinkOp::NotExists => format!("{{{inner}}} = ∅ (not exists)"),
        LinkOp::Some(op) => {
            format!("{} {} SOME {{{inner}}}", attr(&edge.outer_expr), op)
        }
        LinkOp::All(op) => {
            format!("{} {} ALL {{{inner}}}", attr(&edge.outer_expr), op)
        }
        LinkOp::Agg { op, func } => {
            format!(
                "{} {} {}{{{inner}}}",
                attr(&edge.outer_expr),
                op,
                func.name()
            )
        }
    }
}

impl TreeExpr {
    /// Build the tree expression for a bound query (the paper's step 2).
    pub fn build(query: &BoundQuery) -> TreeExpr {
        let modes = edge_modes(query);
        fn node(block: &QueryBlock, modes: &std::collections::HashMap<usize, bool>) -> TreeNode {
            TreeNode {
                id: block.id,
                tables: block.tables.iter().map(|t| t.exposed.clone()).collect(),
                local: block.local_preds.iter().map(render_pred).collect(),
                children: block
                    .children
                    .iter()
                    .map(|edge| TreeEdge {
                        link: render_link(edge),
                        pseudo: *modes.get(&edge.block.id).unwrap_or(&false),
                        correlated: edge
                            .block
                            .correlated_preds
                            .iter()
                            .map(render_pred)
                            .collect(),
                        node: node(&edge.block, modes),
                    })
                    .collect(),
            }
        }
        TreeExpr {
            root: node(&query.root, &modes),
        }
    }

    /// Number of `T_i` nodes (query blocks) in the tree expression.
    pub fn node_count(&self) -> usize {
        fn count(n: &TreeNode) -> usize {
            1 + n.children.iter().map(|e| count(&e.node)).sum::<usize>()
        }
        count(&self.root)
    }

    /// Number of operators in the Algorithm-1 pipeline this tree compiles
    /// to: the root π, one base input per block, and σ + υ + ⟕ per edge.
    /// Rewrites report their effect as a delta against this count in
    /// `RewriteStep` trace events.
    pub fn op_count(&self) -> usize {
        let blocks = self.node_count();
        1 + blocks + 3 * (blocks - 1)
    }

    /// Render the Algorithm-1 operator pipeline (the paper's Figure 3b):
    /// the projection on top, then per edge (in evaluation order) the
    /// linking selection, the nest, and the left outer join below it.
    pub fn render_plan(&self) -> String {
        let mut out = String::new();
        out.push_str("π (root select)\n");
        fn edges(node: &TreeNode, depth: usize, out: &mut String) {
            for edge in &node.children {
                let pad = "  ".repeat(depth);
                let sigma = if edge.pseudo { "σ̄" } else { "σ" };
                out.push_str(&format!("{pad}{sigma} {}\n", edge.link));
                out.push_str(&format!(
                    "{pad}υ nest by prefix, keep T{} columns\n",
                    edge.node.id
                ));
                edges(&edge.node, depth + 1, out);
                let corr = if edge.correlated.is_empty() {
                    "(uncorrelated: virtual Cartesian product)".to_string()
                } else {
                    edge.correlated.join(" ∧ ")
                };
                out.push_str(&format!(
                    "{pad}⟕ {corr}  [T{} = {}{}]\n",
                    edge.node.id,
                    edge.node.tables.join(" × "),
                    if edge.node.local.is_empty() {
                        String::new()
                    } else {
                        format!(" | σ {}", edge.node.local.join(" ∧ "))
                    }
                ));
            }
        }
        edges(&self.root, 1, &mut out);
        out.push_str(&format!(
            "  T{} = {}{}\n",
            self.root.id,
            self.root.tables.join(" × "),
            if self.root.local.is_empty() {
                String::new()
            } else {
                format!(" | σ {}", self.root.local.join(" ∧ "))
            }
        ));
        out
    }

    /// Render the Algorithm-1 pipeline annotated with measured runtime
    /// stats from an [`nra_obs::Profile`] (the body of `EXPLAIN ANALYZE`).
    ///
    /// Operator nodes are matched to profile entries by qualified-name
    /// prefix: the σ/σ̄ of edge `i` reads `b{i}/link`, the nest `b{i}/nest`
    /// (matching the kind-suffixed `b{i}/nest[sort]` / `b{i}/nest[hash]`),
    /// the outer join `b{i}/join`, and the block base `b{i}/scan`; the root
    /// scan and projection are unscoped (`scan`, `project`).
    pub fn render_plan_analyzed(&self, profile: &nra_obs::Profile) -> String {
        self.render_plan_analyzed_with_estimates(profile, None)
    }

    /// Like [`TreeExpr::render_plan_analyzed`], additionally rendering the
    /// planner's estimated output cardinality next to the measured one
    /// (`est=… act=… (×err)`) when [`crate::cardinality::CardEstimates`]
    /// are supplied — the cardinality-feedback view of `EXPLAIN ANALYZE`.
    pub fn render_plan_analyzed_with_estimates(
        &self,
        profile: &nra_obs::Profile,
        estimates: Option<&crate::cardinality::CardEstimates>,
    ) -> String {
        let ann = |key: &str| annotate(op_for(profile, key), estimates.map(|e| e.get(key)));
        let mut out = String::new();
        out.push_str(&format!("π (root select){}\n", ann("project")));
        fn edges(node: &TreeNode, depth: usize, ann: &dyn Fn(&str) -> String, out: &mut String) {
            for edge in &node.children {
                let pad = "  ".repeat(depth);
                let id = edge.node.id;
                let sigma = if edge.pseudo { "σ̄" } else { "σ" };
                out.push_str(&format!(
                    "{pad}{sigma} {}{}\n",
                    edge.link,
                    ann(&format!("b{id}/link"))
                ));
                out.push_str(&format!(
                    "{pad}υ nest by prefix, keep T{id} columns{}\n",
                    ann(&format!("b{id}/nest"))
                ));
                edges(&edge.node, depth + 1, ann, out);
                let corr = if edge.correlated.is_empty() {
                    "(uncorrelated: virtual Cartesian product)".to_string()
                } else {
                    edge.correlated.join(" ∧ ")
                };
                out.push_str(&format!("{pad}⟕ {corr}{}\n", ann(&format!("b{id}/join"))));
                out.push_str(&format!(
                    "{pad}  T{id} = {}{}{}\n",
                    edge.node.tables.join(" × "),
                    if edge.node.local.is_empty() {
                        String::new()
                    } else {
                        format!(" | σ {}", edge.node.local.join(" ∧ "))
                    },
                    ann(&format!("b{id}/scan"))
                ));
            }
        }
        edges(&self.root, 1, &ann, &mut out);
        out.push_str(&format!(
            "  T{} = {}{}{}\n",
            self.root.id,
            self.root.tables.join(" × "),
            if self.root.local.is_empty() {
                String::new()
            } else {
                format!(" | σ {}", self.root.local.join(" ∧ "))
            },
            ann("scan")
        ));
        out
    }
}

/// Merge every profile entry matching `prefix` exactly or with a
/// `[kind]` suffix (`b2/join` matches `b2/join[left_outer]`).
fn op_for(profile: &nra_obs::Profile, prefix: &str) -> Option<nra_obs::OpStats> {
    let mut acc: Option<nra_obs::OpStats> = None;
    for (name, stats) in &profile.ops {
        let matches =
            name == prefix || (name.starts_with(prefix) && name[prefix.len()..].starts_with('['));
        if matches {
            match &mut acc {
                Some(a) => a.merge(stats),
                None => acc = Some(stats.clone()),
            }
        }
    }
    acc
}

/// Human-readable duration for plan annotations.
fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.3}s", ns as f64 / 1e9)
    }
}

/// The parenthesized annotation appended to a plan node. The estimated
/// cardinality renders last, as `est=… act=… (×err)` with the node's
/// Q-error, so the leading `rows=…, time` fields keep their positions.
/// `est` is two-level: `None` means no estimates were supplied at all
/// (plain `EXPLAIN ANALYZE`); `Some(None)` means the planner supplied
/// estimates but covered no such node — rendered as the explicit
/// `est=?` placeholder so coverage gaps are visible, not silent.
fn annotate(stats: Option<nra_obs::OpStats>, est: Option<Option<u64>>) -> String {
    let Some(s) = stats else {
        return "  (not executed)".to_string();
    };
    let mut parts = vec![
        format!("rows={}→{}", s.rows_in, s.rows_out),
        fmt_ns(s.wall_ns),
    ];
    if s.hash_entries > 0 {
        parts.push(format!("hash={}e/{}B", s.hash_entries, s.hash_bytes));
    }
    if s.nest_groups > 0 {
        parts.push(format!("groups={}", s.nest_groups));
    }
    if s.pass + s.fail + s.unknown > 0 {
        parts.push(format!(
            "pass={} fail={} unknown={}",
            s.pass, s.fail, s.unknown
        ));
    }
    if s.padded > 0 {
        parts.push(format!("padded={}", s.padded));
    }
    match est {
        Some(Some(e)) => {
            let q = crate::cardinality::qerror_x100(e, s.rows_out);
            parts.push(format!(
                "est={e} act={} (×{:.1})",
                s.rows_out,
                q as f64 / 100.0
            ));
        }
        Some(None) => parts.push(format!("est=? act={}", s.rows_out)),
        None => {}
    }
    format!("  ({})", parts.join(", "))
}

impl fmt::Display for TreeExpr {
    /// Render the tree expression itself (the paper's Figure 3a).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(node: &TreeNode, depth: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let pad = "  ".repeat(depth);
            write!(f, "{pad}T{}: {}", node.id, node.tables.join(", "))?;
            if !node.local.is_empty() {
                write!(f, "  [Δ: {}]", node.local.join(" ∧ "))?;
            }
            writeln!(f)?;
            for edge in &node.children {
                let pad = "  ".repeat(depth + 1);
                write!(f, "{pad}L: {}", edge.link)?;
                if edge.pseudo {
                    write!(f, "  (σ̄)")?;
                }
                if !edge.correlated.is_empty() {
                    write!(f, "  C: {}", edge.correlated.join(" ∧ "))?;
                }
                writeln!(f)?;
                go(&edge.node, depth + 1, f)?;
            }
            Ok(())
        }
        go(&self.root, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nra_sql::parse_and_bind;
    use nra_storage::{Catalog, Column, ColumnType, Schema, Table};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        for (name, cols) in [
            ("r", ["a", "b", "c", "d"].as_slice()),
            ("s", &["e", "f", "g", "h", "i"]),
            ("t", &["j", "k", "l"]),
        ] {
            let schema = Schema::new(
                cols.iter()
                    .map(|c| Column::new(*c, ColumnType::Int))
                    .collect(),
            );
            cat.add_table(Table::new(name, schema)).unwrap();
        }
        cat
    }

    const QUERY_Q: &str = "select r.b, r.c, r.d from r \
         where r.a > 1 and r.b not in \
           (select s.e from s where s.f = 5 and r.d = s.g and s.h > all \
              (select t.j from t where t.k = r.c and t.l <> s.i))";

    #[test]
    fn tree_expression_matches_figure_3a() {
        let bq = parse_and_bind(QUERY_Q, &catalog()).unwrap();
        let tree = TreeExpr::build(&bq);
        assert_eq!(tree.root.id, 1);
        assert_eq!(tree.root.children.len(), 1);
        let e2 = &tree.root.children[0];
        assert!(
            e2.link.contains("<> ALL"),
            "NOT IN binds as <> ALL: {}",
            e2.link
        );
        assert!(!e2.pseudo, "the root edge uses the plain σ");
        assert_eq!(e2.correlated, vec!["r.d = s.g"]);
        let e3 = &e2.node.children[0];
        assert!(e3.link.contains("> ALL"));
        assert!(
            e3.pseudo,
            "the inner edge needs σ̄ (a negative link remains)"
        );
        assert_eq!(e3.correlated.len(), 2);
    }

    #[test]
    fn display_renders_the_tree() {
        let bq = parse_and_bind(QUERY_Q, &catalog()).unwrap();
        let s = TreeExpr::build(&bq).to_string();
        assert!(s.contains("T1: r"), "got:\n{s}");
        assert!(s.contains("T2: s"));
        assert!(s.contains("T3: t"));
        assert!(s.contains("(σ̄)"));
        assert!(s.contains("C: r.d = s.g"));
    }

    #[test]
    fn plan_renders_the_pipeline() {
        let bq = parse_and_bind(QUERY_Q, &catalog()).unwrap();
        let plan = TreeExpr::build(&bq).render_plan();
        assert!(
            plan.contains("σ̄ s.h > ALL {s.e}") || plan.contains("σ̄ s.h > ALL"),
            "got:\n{plan}"
        );
        assert!(plan.contains("⟕ r.d = s.g"));
        assert!(plan.contains("υ nest by prefix"));
    }

    #[test]
    fn uncorrelated_edge_labelled_virtual_product() {
        let bq =
            parse_and_bind("select a from r where b in (select e from s)", &catalog()).unwrap();
        let plan = TreeExpr::build(&bq).render_plan();
        assert!(plan.contains("virtual Cartesian product"), "got:\n{plan}");
    }

    #[test]
    fn exists_link_rendered_as_emptiness() {
        let bq = parse_and_bind(
            "select a from r where not exists (select * from s where s.g = r.d)",
            &catalog(),
        )
        .unwrap();
        let tree = TreeExpr::build(&bq);
        assert!(tree.root.children[0].link.contains("= ∅"));
    }
}
