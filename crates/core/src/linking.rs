//! Linking predicates and the linking/pseudo-selection operators
//! (paper Definitions 4 and 5).
//!
//! A linking predicate compares an atomic attribute with a set-valued
//! attribute (`A θ SOME {B}`, `A θ ALL {B}`) or tests a set for emptiness
//! (`{B} = ∅`, `{B} ≠ ∅` — the forms `NOT EXISTS` and `EXISTS` compile to).
//!
//! Two selection flavors:
//!
//! * **linking selection** `σ_C` — keeps exactly the tuples where `C`
//!   evaluates to `TRUE` (standard `WHERE` semantics);
//! * **pseudo-selection** `σ̄_{C,A}` — keeps *every* tuple, but pads the
//!   attributes in `A` with `NULL` for tuples failing `C`. This is the
//!   paper's device for negative/mixed operators: a failing inner tuple
//!   must stop being a member of the outer tuple's set without taking the
//!   outer tuple down with it.
//!
//! **The marker rule.** The unnesting outer joins pad primary keys (here:
//! synthesized row ids) with `NULL` when an outer tuple has no partner.
//! A linking selection therefore "only compares the linking attribute to
//! the linked attribute whose corresponding primary key is not null": set
//! members whose marker is `NULL` are excluded before the comparison, so an
//! all-padding group behaves as the empty set.

//! Both selection flavors evaluate each tuple independently, so the scans
//! are morsel-parallel under `nra_engine::exec`: contiguous tuple chunks
//! are evaluated (and, for `σ̄`, padded) on workers, the chunk outputs are
//! concatenated in partition order, and per-worker outcome counters are
//! absorbed into the operator span in the same order — output and profile
//! counters match the sequential scan exactly.

use nra_engine::EngineError;
use nra_engine::{exec, faultinject, governor};
use nra_storage::{aggregate, AggFunc, CmpOp, Truth, Value};

use crate::nested::NestedRelation;

/// Quantifier over a set-valued comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetQuant {
    /// True if the comparison holds for some member (`FALSE` on empty).
    Some,
    /// True if the comparison holds for every member (`TRUE` on empty).
    All,
}

/// The condition of a linking selection.
#[derive(Debug, Clone, PartialEq)]
pub enum LinkCond {
    /// `A θ SOME/ALL {B}` — `outer` names an atom, `inner` an attribute of
    /// the subschema.
    Quant {
        outer: String,
        op: CmpOp,
        quant: SetQuant,
        inner: String,
    },
    /// `{B} = ∅`.
    Empty,
    /// `{B} ≠ ∅`.
    NotEmpty,
    /// `A θ agg{B}` — aggregate-subquery extension: the set is folded
    /// with `func` before a scalar three-valued comparison. `inner` is
    /// `None` for `COUNT(*)`.
    AggCmp {
        outer: String,
        op: CmpOp,
        func: AggFunc,
        inner: Option<String>,
    },
}

/// A linking selection: condition plus the marker column of the subschema.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSelection {
    pub cond: LinkCond,
    /// Name of the marker attribute inside the subschema; members with a
    /// `NULL` marker are excluded. `None` means every member counts (the
    /// purely formal semantics of Definition 4).
    pub marker: Option<String>,
}

struct Resolved {
    sub_idx: usize,
    outer_idx: Option<usize>,
    inner_idx: Option<usize>,
    marker_idx: Option<usize>,
}

impl LinkSelection {
    pub fn quant(
        outer: &str,
        op: CmpOp,
        quant: SetQuant,
        inner: &str,
        marker: Option<&str>,
    ) -> LinkSelection {
        LinkSelection {
            cond: LinkCond::Quant {
                outer: outer.to_string(),
                op,
                quant,
                inner: inner.to_string(),
            },
            marker: marker.map(str::to_string),
        }
    }

    pub fn empty(marker: Option<&str>) -> LinkSelection {
        LinkSelection {
            cond: LinkCond::Empty,
            marker: marker.map(str::to_string),
        }
    }

    pub fn not_empty(marker: Option<&str>) -> LinkSelection {
        LinkSelection {
            cond: LinkCond::NotEmpty,
            marker: marker.map(str::to_string),
        }
    }

    pub fn agg(
        outer: &str,
        op: CmpOp,
        func: AggFunc,
        inner: Option<&str>,
        marker: Option<&str>,
    ) -> LinkSelection {
        LinkSelection {
            cond: LinkCond::AggCmp {
                outer: outer.to_string(),
                op,
                func,
                inner: inner.map(str::to_string),
            },
            marker: marker.map(str::to_string),
        }
    }

    fn resolve(&self, rel: &NestedRelation, sub: &str) -> Result<Resolved, EngineError> {
        let sub_idx = rel
            .schema
            .sub_index(sub)
            .ok_or_else(|| EngineError::Column(format!("subschema {sub}")))?;
        let sub_schema = &rel.schema.subs[sub_idx].1;
        let marker_idx = match &self.marker {
            Some(m) => Some(
                sub_schema
                    .atom_index(m)
                    .ok_or_else(|| EngineError::Column(m.clone()))?,
            ),
            None => None,
        };
        let (outer_idx, inner_idx) = match &self.cond {
            LinkCond::Quant { outer, inner, .. } => (
                Some(
                    rel.schema
                        .atom_index(outer)
                        .ok_or_else(|| EngineError::Column(outer.clone()))?,
                ),
                Some(
                    sub_schema
                        .atom_index(inner)
                        .ok_or_else(|| EngineError::Column(inner.clone()))?,
                ),
            ),
            LinkCond::AggCmp { outer, inner, .. } => (
                Some(
                    rel.schema
                        .atom_index(outer)
                        .ok_or_else(|| EngineError::Column(outer.clone()))?,
                ),
                inner
                    .as_ref()
                    .map(|i| {
                        sub_schema
                            .atom_index(i)
                            .ok_or_else(|| EngineError::Column(i.clone()))
                    })
                    .transpose()?,
            ),
            _ => (None, None),
        };
        Ok(Resolved {
            sub_idx,
            outer_idx,
            inner_idx,
            marker_idx,
        })
    }

    fn eval_tuple(&self, r: &Resolved, tuple: &crate::nested::NestedTuple) -> Truth {
        let members = tuple.sets[r.sub_idx].iter().filter(|m| match r.marker_idx {
            Some(mi) => !m.atoms[mi].is_null(),
            None => true,
        });
        match &self.cond {
            LinkCond::Empty => Truth::from_bool(members.count() == 0),
            LinkCond::NotEmpty => Truth::from_bool(members.count() != 0),
            LinkCond::AggCmp { op, func, .. } => {
                let outer_val = &tuple.atoms[r.outer_idx.unwrap()];
                let folded = match r.inner_idx {
                    Some(i) => aggregate(*func, members.map(|m| &m.atoms[i])),
                    // COUNT(*): every surviving member counts as a row.
                    None => Value::Int(members.count() as i64),
                };
                outer_val.sql_compare(*op, &folded)
            }
            LinkCond::Quant { op, quant, .. } => {
                let outer_val = &tuple.atoms[r.outer_idx.unwrap()];
                let inner_idx = r.inner_idx.unwrap();
                match quant {
                    SetQuant::Some => {
                        let mut acc = Truth::False;
                        for m in members {
                            acc = acc.or(outer_val.sql_compare(*op, &m.atoms[inner_idx]));
                            if acc == Truth::True {
                                break;
                            }
                        }
                        acc
                    }
                    SetQuant::All => {
                        let mut acc = Truth::True;
                        for m in members {
                            acc = acc.and(outer_val.sql_compare(*op, &m.atoms[inner_idx]));
                            if acc == Truth::False {
                                break;
                            }
                        }
                        acc
                    }
                }
            }
        }
    }

    /// Linking selection `σ_C` over the subschema `sub`: keep tuples where
    /// the condition is `TRUE`.
    pub fn select(&self, rel: &NestedRelation, sub: &str) -> Result<NestedRelation, EngineError> {
        let mut sp = nra_obs::span(|| "link".to_string());
        sp.rows_in(rel.len());
        let r = self.resolve(rel, sub)?;
        faultinject::hit(faultinject::LINKING_SCAN)?;
        let parts = exec::partitions(rel.len());
        let tuples: Vec<crate::nested::NestedTuple> = if parts <= 1 {
            // Batch-amortized scan: outcomes accumulate in a local
            // OpStats (absorbed once) and the governor is polled per
            // batch — totals identical to the per-row bookkeeping.
            let mut stats = nra_obs::OpStats::default();
            let mut kept = Vec::new();
            for window in rel.tuples.chunks(nra_engine::vec::batch_rows()) {
                governor::checkpoint("linking-scan")?;
                for t in window {
                    let truth = self.eval_tuple(&r, t);
                    stats.record_outcome(truth);
                    if truth == Truth::True {
                        kept.push(t.clone());
                    }
                }
            }
            sp.absorb_stats(&stats);
            kept
        } else {
            sp.partitions(parts);
            let ranges = exec::chunks(rel.len(), parts);
            let per = exec::run_partitioned(parts, |p| {
                let mut stats = nra_obs::OpStats::default();
                let mut kept: Vec<crate::nested::NestedTuple> = Vec::new();
                for (i, t) in rel.tuples[ranges[p].clone()].iter().enumerate() {
                    governor::tick(i, "linking-scan")?;
                    let truth = self.eval_tuple(&r, t);
                    stats.record_outcome(truth);
                    if truth == Truth::True {
                        kept.push(t.clone());
                    }
                }
                Ok((kept, stats))
            })?;
            let mut tuples = Vec::new();
            for (kept, stats) in per {
                sp.absorb_stats(&stats);
                tuples.extend(kept);
            }
            tuples
        };
        governor::charge(
            "link",
            governor::tuple_bytes(tuples.len(), rel.schema.atoms.len()),
        )?;
        sp.rows_out(tuples.len());
        Ok(NestedRelation {
            schema: rel.schema.clone(),
            tuples,
        })
    }

    /// Pseudo-selection `σ̄_{C,A}`: keep every tuple; pad the atom columns
    /// named in `pad` with `NULL` on tuples where the condition is not
    /// `TRUE`.
    pub fn pseudo_select(
        &self,
        rel: &NestedRelation,
        sub: &str,
        pad: &[&str],
    ) -> Result<NestedRelation, EngineError> {
        let mut sp = nra_obs::span(|| "link".to_string());
        sp.rows_in(rel.len());
        let r = self.resolve(rel, sub)?;
        let pad_idx: Vec<usize> = pad
            .iter()
            .map(|p| {
                rel.schema
                    .atom_index(p)
                    .ok_or_else(|| EngineError::Column((*p).to_string()))
            })
            .collect::<Result<_, _>>()?;
        let pad_tuple = |t: &crate::nested::NestedTuple,
                         truth: Truth,
                         stats: &mut nra_obs::OpStats|
         -> crate::nested::NestedTuple {
            if truth == Truth::True {
                t.clone()
            } else {
                stats.padded += 1;
                let mut padded = t.clone();
                for &i in &pad_idx {
                    padded.atoms[i] = Value::Null;
                }
                padded
            }
        };
        faultinject::hit(faultinject::LINKING_SCAN)?;
        let parts = exec::partitions(rel.len());
        let tuples: Vec<crate::nested::NestedTuple> = if parts <= 1 {
            let mut stats = nra_obs::OpStats::default();
            let mut tuples = Vec::with_capacity(rel.len());
            for window in rel.tuples.chunks(nra_engine::vec::batch_rows()) {
                governor::checkpoint("linking-scan")?;
                for t in window {
                    let truth = self.eval_tuple(&r, t);
                    stats.record_outcome(truth);
                    tuples.push(pad_tuple(t, truth, &mut stats));
                }
            }
            sp.absorb_stats(&stats);
            tuples
        } else {
            sp.partitions(parts);
            let ranges = exec::chunks(rel.len(), parts);
            let per = exec::run_partitioned(parts, |p| {
                let mut stats = nra_obs::OpStats::default();
                let mut padded: Vec<crate::nested::NestedTuple> =
                    Vec::with_capacity(ranges[p].len());
                for (i, t) in rel.tuples[ranges[p].clone()].iter().enumerate() {
                    governor::tick(i, "linking-scan")?;
                    let truth = self.eval_tuple(&r, t);
                    stats.record_outcome(truth);
                    padded.push(pad_tuple(t, truth, &mut stats));
                }
                Ok((padded, stats))
            })?;
            let mut tuples = Vec::new();
            for (padded, stats) in per {
                sp.absorb_stats(&stats);
                tuples.extend(padded);
            }
            tuples
        };
        governor::charge(
            "link",
            governor::tuple_bytes(tuples.len(), rel.schema.atoms.len()),
        )?;
        sp.rows_out(tuples.len());
        Ok(NestedRelation {
            schema: rel.schema.clone(),
            tuples,
        })
    }

    /// Evaluate the condition per tuple, returning the truth vector (used
    /// by the fused/pipelined executors and by tests).
    pub fn truths(&self, rel: &NestedRelation, sub: &str) -> Result<Vec<Truth>, EngineError> {
        let mut sp = nra_obs::span(|| "link".to_string());
        sp.rows_in(rel.len());
        let r = self.resolve(rel, sub)?;
        faultinject::hit(faultinject::LINKING_SCAN)?;
        let parts = exec::partitions(rel.len());
        let out: Vec<Truth> = if parts <= 1 {
            let mut stats = nra_obs::OpStats::default();
            let mut out = Vec::with_capacity(rel.len());
            for window in rel.tuples.chunks(nra_engine::vec::batch_rows()) {
                governor::checkpoint("linking-scan")?;
                let base = out.len();
                for t in window {
                    out.push(self.eval_tuple(&r, t));
                }
                stats.record_outcomes(&out[base..]);
            }
            sp.absorb_stats(&stats);
            out
        } else {
            sp.partitions(parts);
            let ranges = exec::chunks(rel.len(), parts);
            let per = exec::run_partitioned(parts, |p| {
                let mut stats = nra_obs::OpStats::default();
                let mut truths: Vec<Truth> = Vec::with_capacity(ranges[p].len());
                for (i, t) in rel.tuples[ranges[p].clone()].iter().enumerate() {
                    governor::tick(i, "linking-scan")?;
                    truths.push({
                        let truth = self.eval_tuple(&r, t);
                        stats.record_outcome(truth);
                        truth
                    });
                }
                Ok((truths, stats))
            })?;
            let mut out = Vec::with_capacity(rel.len());
            for (truths, stats) in per {
                sp.absorb_stats(&stats);
                out.extend(truths);
            }
            out
        };
        governor::charge("link", 8 * out.len() as u64)?;
        sp.rows_out(out.len());
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nest::nest;
    use nra_storage::{relation, ColumnType, Relation};

    /// r.a groups: 1 -> {(10,k100),(11,k101)}, 2 -> {(null,knull)} padded,
    /// 3 -> {(5,k103),(null,k104)} (real NULL value with non-null marker).
    fn nested() -> NestedRelation {
        let rel: Relation = relation!(
            [
                ("r.a", ColumnType::Int),
                ("s.b", ColumnType::Int),
                ("s.k", ColumnType::Int)
            ],
            [
                [Value::Int(1), Value::Int(10), Value::Int(100)],
                [Value::Int(1), Value::Int(11), Value::Int(101)],
                [Value::Int(2), Value::Null, Value::Null],
                [Value::Int(3), Value::Int(5), Value::Int(103)],
                [Value::Int(3), Value::Null, Value::Int(104)],
            ]
        );
        nest(&rel, &["r.a"], &["s.b", "s.k"], "s").unwrap()
    }

    #[test]
    fn marker_excludes_padding_for_emptiness() {
        let sel = LinkSelection::empty(Some("s.k"));
        let out = sel.select(&nested(), "s").unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.tuples[0].atoms, vec![Value::Int(2)]);
        let sel2 = LinkSelection::not_empty(Some("s.k"));
        let out2 = sel2.select(&nested(), "s").unwrap();
        assert_eq!(out2.len(), 2);
    }

    #[test]
    fn without_marker_padding_counts_as_member() {
        let sel = LinkSelection::empty(None);
        let out = sel.select(&nested(), "s").unwrap();
        assert_eq!(out.len(), 0, "every group has at least one raw member");
    }

    #[test]
    fn all_quantifier_with_nulls() {
        // a=1: 12 > {10,11} -> true... outer is a constant per tuple; use
        // outer attr r.a itself: r.a > ALL {s.b}.
        // a=1: 1>10 false -> False. a=2: empty -> True. a=3: 3>5 false -> False.
        let sel = LinkSelection::quant("r.a", CmpOp::Gt, SetQuant::All, "s.b", Some("s.k"));
        let out = sel.select(&nested(), "s").unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.tuples[0].atoms, vec![Value::Int(2)]);
    }

    #[test]
    fn all_with_null_member_value_is_unknown() {
        // a=3: 3 < {5, NULL}: 3<5 true, 3<NULL unknown -> Unknown -> not kept.
        let sel = LinkSelection::quant("r.a", CmpOp::Lt, SetQuant::All, "s.b", Some("s.k"));
        let t = sel.truths(&nested(), "s").unwrap();
        assert_eq!(t[2], Truth::Unknown);
        // a=1: 1 < 10 and 1 < 11 -> True. a=2: empty -> True.
        assert_eq!(t[0], Truth::True);
        assert_eq!(t[1], Truth::True);
    }

    #[test]
    fn some_quantifier() {
        // r.a < SOME {s.b}: a=1 true (1<10); a=2 empty -> false;
        // a=3: 3<5 true.
        let sel = LinkSelection::quant("r.a", CmpOp::Lt, SetQuant::Some, "s.b", Some("s.k"));
        let out = sel.select(&nested(), "s").unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn pseudo_select_pads_failing_tuples() {
        let sel = LinkSelection::quant("r.a", CmpOp::Gt, SetQuant::All, "s.b", Some("s.k"));
        let out = sel.pseudo_select(&nested(), "s", &["r.a"]).unwrap();
        assert_eq!(out.len(), 3, "pseudo-selection keeps everything");
        assert!(out.tuples[0].atoms[0].is_null(), "a=1 fails and is padded");
        assert_eq!(
            out.tuples[1].atoms[0],
            Value::Int(2),
            "a=2 passes untouched"
        );
        assert!(out.tuples[2].atoms[0].is_null(), "a=3 fails");
    }

    #[test]
    fn unknown_fails_selection_and_gets_padded() {
        let sel = LinkSelection::quant("r.a", CmpOp::Lt, SetQuant::All, "s.b", Some("s.k"));
        let kept = sel.select(&nested(), "s").unwrap();
        assert_eq!(kept.len(), 2, "unknown rejected by σ");
        let padded = sel.pseudo_select(&nested(), "s", &["r.a"]).unwrap();
        assert!(padded.tuples[2].atoms[0].is_null(), "unknown padded by σ̄");
    }

    #[test]
    fn bad_names_error() {
        let sel = LinkSelection::quant("nope", CmpOp::Lt, SetQuant::All, "s.b", None);
        assert!(sel.select(&nested(), "s").is_err());
        let sel2 = LinkSelection::quant("r.a", CmpOp::Lt, SetQuant::All, "nope", None);
        assert!(sel2.select(&nested(), "s").is_err());
        let sel3 = LinkSelection::empty(Some("nope"));
        assert!(sel3.select(&nested(), "s").is_err());
        assert!(LinkSelection::empty(None).select(&nested(), "zzz").is_err());
    }

    use nra_storage::Value;
}
