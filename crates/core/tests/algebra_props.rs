//! Property tests on the nested relational algebra operators: nest/unnest
//! inversion, hash/sort nest agreement, fused vs two-pass linking
//! selection, and the nest push-down equivalence — all over randomly
//! generated relations containing NULLs. Formerly proptest; now
//! seeded-deterministic so the suite runs with no external crates.

use nra_core::linking::{LinkSelection, SetQuant};
use nra_core::nest::{nest_hash_idx, nest_sort_idx};
use nra_core::optimize::fused::{fused_nest_select, FusedLink};
use nra_core::optimize::pushdown::outer_join_nested;
use nra_engine::{join, JoinSpec};
use nra_storage::rng::Pcg32;
use nra_storage::{CmpOp, Column, ColumnType, Relation, Schema, Value};

const OPS: [CmpOp; 6] = [
    CmpOp::Eq,
    CmpOp::Ne,
    CmpOp::Lt,
    CmpOp::Le,
    CmpOp::Gt,
    CmpOp::Ge,
];
const QUANTS: [SetQuant; 2] = [SetQuant::Some, SetQuant::All];

fn cell(rng: &mut Pcg32) -> Value {
    if rng.bool(1.0 / 7.0) {
        Value::Null
    } else {
        Value::Int(rng.range_i64(0, 4))
    }
}

/// A random flat relation (a, key, val, marker) where marker mimics a
/// carried rid: NULL with some probability.
fn rel3(rng: &mut Pcg32) -> Relation {
    let n = rng.index(14);
    Relation::with_rows(
        Schema::new(vec![
            Column::new("g.a", ColumnType::Int),
            Column::new("g.k", ColumnType::Int),
            Column::new("m.v", ColumnType::Int),
            Column::new("m.rid", ColumnType::Int),
        ]),
        (0..n)
            .map(|_| vec![cell(rng), cell(rng), cell(rng), cell(rng)])
            .collect(),
    )
}

/// υ is inverted by unnest: flattening the nested relation restores
/// the input as a multiset (nest never creates empty sets from flat
/// input, so unnest loses nothing).
#[test]
fn nest_unnest_roundtrip() {
    let mut rng = Pcg32::new(0x5eed_2001);
    for case in 0..128 {
        let rel = rel3(&mut rng);
        let nested = nest_hash_idx(&rel, &[0, 1], &[2, 3], "sub").unwrap();
        let back = nested.flatten().expect("depth-1, single sub");
        assert!(back.multiset_eq(&rel), "case {case}");
    }
}

/// Hash-based and sort-based nest produce the same nested relation up
/// to tuple and member order.
#[test]
fn hash_and_sort_nest_agree() {
    let mut rng = Pcg32::new(0x5eed_2002);
    for case in 0..128 {
        let rel = rel3(&mut rng);
        let h = nest_hash_idx(&rel, &[0, 1], &[2, 3], "sub").unwrap();
        let s = nest_sort_idx(&rel, &[0, 1], &[2, 3], "sub").unwrap();
        assert_eq!(h.len(), s.len(), "case {case}");
        let hf = h.flatten().unwrap();
        let sf = s.flatten().unwrap();
        assert!(hf.multiset_eq(&sf), "case {case}");
    }
}

/// The fused one-pass nest+selection equals the two-pass composition,
/// for every operator, quantifier, and both σ and σ̄.
#[test]
fn fused_equals_two_pass() {
    let mut rng = Pcg32::new(0x5eed_2003);
    for op in OPS {
        for q in QUANTS {
            for pseudo in [false, true] {
                for case in 0..12 {
                    let rel = rel3(&mut rng);
                    let sel = LinkSelection::quant("g.a", op, q, "m.v", Some("m.rid"));
                    let nested = nest_sort_idx(&rel, &[0, 1], &[2, 3], "sub").unwrap();
                    let two_pass = if pseudo {
                        sel.pseudo_select(&nested, "sub", &["g.a", "g.k"]).unwrap()
                    } else {
                        sel.select(&nested, "sub").unwrap()
                    }
                    .atoms_as_relation();

                    let link = FusedLink::from_selection(&sel, rel.schema(), &[0, 1]).unwrap();
                    let fused = fused_nest_select(&rel, &[0, 1], link, pseudo, &[0, 1]).unwrap();
                    assert!(
                        fused.multiset_eq(&two_pass),
                        "op {op:?} quant {q:?} pseudo {pseudo} case {case}\nfused:\n{fused}\ntwo-pass:\n{two_pass}"
                    );
                }
            }
        }
    }
}

/// Same for the emptiness conditions (EXISTS / NOT EXISTS).
#[test]
fn fused_equals_two_pass_emptiness() {
    let mut rng = Pcg32::new(0x5eed_2004);
    for not_empty in [false, true] {
        for pseudo in [false, true] {
            for case in 0..32 {
                let rel = rel3(&mut rng);
                let sel = if not_empty {
                    LinkSelection::not_empty(Some("m.rid"))
                } else {
                    LinkSelection::empty(Some("m.rid"))
                };
                let nested = nest_sort_idx(&rel, &[0, 1], &[2, 3], "sub").unwrap();
                let two_pass = if pseudo {
                    sel.pseudo_select(&nested, "sub", &["g.a", "g.k"]).unwrap()
                } else {
                    sel.select(&nested, "sub").unwrap()
                }
                .atoms_as_relation();
                let link = FusedLink::from_selection(&sel, rel.schema(), &[0, 1]).unwrap();
                let fused = fused_nest_select(&rel, &[0, 1], link, pseudo, &[0, 1]).unwrap();
                assert!(
                    fused.multiset_eq(&two_pass),
                    "not_empty {not_empty} pseudo {pseudo} case {case}"
                );
            }
        }
    }
}

/// Random left/right relations for the push-down equivalence.
fn join_pair(rng: &mut Pcg32) -> (Relation, Relation) {
    let n_left = rng.index(12);
    let left = Relation::with_rows(
        Schema::new(vec![
            Column::new("l.a", ColumnType::Int),
            Column::new("l.k", ColumnType::Int),
            Column::new("l.rid", ColumnType::Int),
        ]),
        (0..n_left)
            .map(|i| vec![cell(rng), cell(rng), Value::Int(i as i64)])
            .collect::<Vec<_>>(),
    );
    let n_right = rng.index(12);
    let right = Relation::with_rows(
        Schema::new(vec![
            Column::new("r.k", ColumnType::Int),
            Column::new("r.v", ColumnType::Int),
            Column::new("r.rid", ColumnType::Int),
        ]),
        (0..n_right)
            .map(|i| vec![cell(rng), cell(rng), Value::Int(i as i64)])
            .collect::<Vec<_>>(),
    );
    (left, right)
}

/// The §4.2.4 push-down rule: nest-after-outer-join (with the marker
/// rule) equals join-after-nest, under every linking selection.
#[test]
fn pushdown_equivalence() {
    let mut rng = Pcg32::new(0x5eed_2005);
    for op in OPS {
        for q in QUANTS {
            for case in 0..12 {
                let (left, right) = join_pair(&mut rng);
                // Standard plan: R ⟕ S, nest by all of R, σ with marker.
                let joined = join(&left, &right, &JoinSpec::left_outer(vec![(1, 0)])).unwrap();
                let nested = nest_sort_idx(&joined, &[0, 1, 2], &[4, 5], "sub").unwrap();
                let sel = LinkSelection::quant("l.a", op, q, "r.v", Some("r.rid"));
                let standard = sel.select(&nested, "sub").unwrap().atoms_as_relation();

                // Pushed down: υ below the join; no marker needed.
                let pushed =
                    outer_join_nested(&left, &right, &["l.k"], &["r.k"], &["r.v", "r.rid"], "sub")
                        .unwrap();
                let sel2 = LinkSelection::quant("l.a", op, q, "r.v", None);
                let via_pushdown = sel2.select(&pushed, "sub").unwrap().atoms_as_relation();

                assert!(
                    standard.multiset_eq(&via_pushdown),
                    "op {op:?} quant {q:?} case {case}\nstandard:\n{standard}\npushed:\n{via_pushdown}"
                );
            }
        }
    }
}

#[test]
fn join_pair_left_has_three_columns() {
    // Guard for the generator above: left relations carry (a, k, rid).
    let mut rng = Pcg32::new(0);
    let (left, _right) = join_pair(&mut rng);
    assert_eq!(left.schema().len(), 3);
}
