//! Property tests on the nested relational algebra operators: nest/unnest
//! inversion, hash/sort nest agreement, fused vs two-pass linking
//! selection, and the nest push-down equivalence — all over randomly
//! generated relations containing NULLs.

use proptest::prelude::*;

use nra_core::linking::{LinkSelection, SetQuant};
use nra_core::nest::{nest_hash_idx, nest_sort_idx};
use nra_core::optimize::fused::{fused_nest_select, FusedLink};
use nra_core::optimize::pushdown::outer_join_nested;
use nra_engine::{join, JoinSpec};
use nra_storage::{CmpOp, Column, ColumnType, Relation, Schema, Value};

fn cell() -> impl proptest::strategy::Strategy<Value = Value> {
    prop_oneof![
        6 => (0i64..4).prop_map(Value::Int),
        1 => Just(Value::Null),
    ]
}

/// A random flat relation (a, key, val, marker) where marker mimics a
/// carried rid: NULL with some probability.
fn rel3() -> impl proptest::strategy::Strategy<Value = Relation> {
    proptest::collection::vec((cell(), cell(), cell(), cell()), 0..14).prop_map(|rows| {
        Relation::with_rows(
            Schema::new(vec![
                Column::new("g.a", ColumnType::Int),
                Column::new("g.k", ColumnType::Int),
                Column::new("m.v", ColumnType::Int),
                Column::new("m.rid", ColumnType::Int),
            ]),
            rows.into_iter()
                .map(|(a, k, v, m)| vec![a, k, v, m])
                .collect(),
        )
    })
}

fn cmp_op() -> impl proptest::strategy::Strategy<Value = CmpOp> {
    proptest::sample::select(vec![
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ])
}

fn quant() -> impl proptest::strategy::Strategy<Value = SetQuant> {
    proptest::sample::select(vec![SetQuant::Some, SetQuant::All])
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// υ is inverted by unnest: flattening the nested relation restores
    /// the input as a multiset (nest never creates empty sets from flat
    /// input, so unnest loses nothing).
    #[test]
    fn nest_unnest_roundtrip(rel in rel3()) {
        let nested = nest_hash_idx(&rel, &[0, 1], &[2, 3], "sub");
        let back = nested.flatten().expect("depth-1, single sub");
        prop_assert!(back.multiset_eq(&rel));
    }

    /// Hash-based and sort-based nest produce the same nested relation up
    /// to tuple and member order.
    #[test]
    fn hash_and_sort_nest_agree(rel in rel3()) {
        let h = nest_hash_idx(&rel, &[0, 1], &[2, 3], "sub");
        let s = nest_sort_idx(&rel, &[0, 1], &[2, 3], "sub");
        prop_assert_eq!(h.len(), s.len());
        let hf = h.flatten().unwrap();
        let sf = s.flatten().unwrap();
        prop_assert!(hf.multiset_eq(&sf));
    }

    /// The fused one-pass nest+selection equals the two-pass composition,
    /// for every operator, quantifier, and both σ and σ̄.
    #[test]
    fn fused_equals_two_pass(rel in rel3(), op in cmp_op(), q in quant(), pseudo in any::<bool>()) {
        let sel = LinkSelection::quant("g.a", op, q, "m.v", Some("m.rid"));
        let nested = nest_sort_idx(&rel, &[0, 1], &[2, 3], "sub");
        let two_pass = if pseudo {
            sel.pseudo_select(&nested, "sub", &["g.a", "g.k"]).unwrap()
        } else {
            sel.select(&nested, "sub").unwrap()
        }
        .atoms_as_relation();

        let link = FusedLink::from_selection(&sel, rel.schema(), &[0, 1]).unwrap();
        let fused = fused_nest_select(&rel, &[0, 1], link, pseudo, &[0, 1]);
        prop_assert!(
            fused.multiset_eq(&two_pass),
            "fused:\n{}\ntwo-pass:\n{}", fused, two_pass
        );
    }

    /// Same for the emptiness conditions (EXISTS / NOT EXISTS).
    #[test]
    fn fused_equals_two_pass_emptiness(rel in rel3(), not_empty in any::<bool>(), pseudo in any::<bool>()) {
        let sel = if not_empty {
            LinkSelection::not_empty(Some("m.rid"))
        } else {
            LinkSelection::empty(Some("m.rid"))
        };
        let nested = nest_sort_idx(&rel, &[0, 1], &[2, 3], "sub");
        let two_pass = if pseudo {
            sel.pseudo_select(&nested, "sub", &["g.a", "g.k"]).unwrap()
        } else {
            sel.select(&nested, "sub").unwrap()
        }
        .atoms_as_relation();
        let link = FusedLink::from_selection(&sel, rel.schema(), &[0, 1]).unwrap();
        let fused = fused_nest_select(&rel, &[0, 1], link, pseudo, &[0, 1]);
        prop_assert!(fused.multiset_eq(&two_pass));
    }
}

/// Random left/right relations for the push-down equivalence.
fn join_pair() -> impl proptest::strategy::Strategy<Value = (Relation, Relation)> {
    let left = proptest::collection::vec((cell(), cell()), 0..12).prop_map(|rows| {
        Relation::with_rows(
            Schema::new(vec![
                Column::new("l.a", ColumnType::Int),
                Column::new("l.k", ColumnType::Int),
                Column::new("l.rid", ColumnType::Int),
            ]),
            rows.into_iter()
                .enumerate()
                .map(|(i, (a, k))| vec![a, k, Value::Int(i as i64)])
                .collect::<Vec<_>>(),
        )
    });
    let right = proptest::collection::vec((cell(), cell()), 0..12).prop_map(|rows| {
        Relation::with_rows(
            Schema::new(vec![
                Column::new("r.k", ColumnType::Int),
                Column::new("r.v", ColumnType::Int),
                Column::new("r.rid", ColumnType::Int),
            ]),
            rows.into_iter()
                .enumerate()
                .map(|(i, (k, v))| vec![k, v, Value::Int(i as i64)])
                .collect::<Vec<_>>(),
        )
    });
    (left, right)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// The §4.2.4 push-down rule: nest-after-outer-join (with the marker
    /// rule) equals join-after-nest, under every linking selection.
    #[test]
    fn pushdown_equivalence((left, right) in join_pair(), op in cmp_op(), q in quant()) {
        // Standard plan: R ⟕ S, nest by all of R, σ with marker.
        let joined = join(&left, &right, &JoinSpec::left_outer(vec![(1, 0)])).unwrap();
        let nested = nest_sort_idx(&joined, &[0, 1, 2], &[4, 5], "sub");
        let sel = LinkSelection::quant("l.a", op, q, "r.v", Some("r.rid"));
        let standard = sel.select(&nested, "sub").unwrap().atoms_as_relation();

        // Pushed down: υ below the join; no marker needed.
        let pushed = outer_join_nested(&left, &right, &["l.k"], &["r.k"], &["r.v", "r.rid"], "sub").unwrap();
        let sel2 = LinkSelection::quant("l.a", op, q, "r.v", None);
        let via_pushdown = sel2.select(&pushed, "sub").unwrap().atoms_as_relation();

        prop_assert!(
            standard.multiset_eq(&via_pushdown),
            "op {:?} quant {:?}\nstandard:\n{}\npushed:\n{}", op, q, standard, via_pushdown
        );
    }
}

#[test]
fn join_pair_left_has_three_columns() {
    // Guard for the generator above: left relations carry (a, k, rid).
    use proptest::strategy::{Strategy as _, ValueTree};
    use proptest::test_runner::TestRunner;
    let mut runner = TestRunner::deterministic();
    let (left, _right) = join_pair().new_tree(&mut runner).unwrap().current();
    assert_eq!(left.schema().len(), 3);
}
