//! Unit tests for the σ vs σ̄ decision (paper §4.1): a pseudo-selection is
//! required exactly when a linking predicate still to be computed is
//! negative — except at the root, whose links are final WHERE conjuncts.

use nra_core::compute::edge_modes;
use nra_sql::parse_and_bind;
use nra_storage::{Catalog, Column, ColumnType, Schema, Table};

fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    for (name, cols) in [
        ("r", ["a", "b"].as_slice()),
        ("s", &["c", "d"]),
        ("t", &["e", "f"]),
        ("u", &["g", "h"]),
    ] {
        let schema = Schema::new(
            cols.iter()
                .map(|c| Column::new(*c, ColumnType::Int))
                .collect(),
        );
        cat.add_table(Table::new(name, schema)).unwrap();
    }
    cat
}

fn modes(sql: &str) -> std::collections::HashMap<usize, bool> {
    edge_modes(&parse_and_bind(sql, &catalog()).unwrap())
}

#[test]
fn root_edges_always_use_sigma() {
    // Even with a negative link evaluated later at the root.
    let m = modes(
        "select a from r where b in (select c from s) \
         and b not in (select e from t)",
    );
    assert!(!m[&2], "first root edge: σ despite the later NOT IN");
    assert!(!m[&3], "second root edge: σ (last)");
}

#[test]
fn negative_above_forces_pseudo_below() {
    // Query Q shape: NOT IN above ALL — the inner edge needs σ̄.
    let m = modes(
        "select a from r where b not in (select c from s where s.d = r.a \
         and c > all (select e from t where t.f = s.d))",
    );
    assert!(m[&3], "inner ALL edge: σ̄ (NOT IN remains)");
    assert!(!m[&2], "root edge: σ");
}

#[test]
fn all_positive_chain_uses_sigma_everywhere() {
    let m = modes(
        "select a from r where b in (select c from s where s.d = r.a \
         and c < some (select e from t where t.f = s.d))",
    );
    assert!(!m[&3], "only positive links remain: σ suffices");
    assert!(!m[&2]);
}

#[test]
fn positive_inner_below_negative_outer_is_pseudo() {
    // Mixed: EXISTS below NOT IN.
    let m = modes(
        "select a from r where b not in (select c from s where s.d = r.a \
         and exists (select * from t where t.f = s.d))",
    );
    assert!(m[&3], "the remaining NOT IN is negative: σ̄");
}

#[test]
fn deep_chain_modes() {
    // Three levels: ALL / SOME / ALL. Post-order: edge4 (SOME seen later:
    // after it come edge3's SOME? no — after edge4 come edge3 and edge2).
    let m = modes(
        "select a from r where b > all (select c from s where s.d = r.a \
           and c < some (select e from t where t.f = s.d \
             and e <> all (select g from u where u.h = t.f)))",
    );
    // edge4 (innermost, ALL): later links are SOME (edge3) and ALL
    // (edge2): a negative remains -> σ̄. Parent (t) is not the root.
    assert!(m[&4]);
    // edge3 (SOME between s and t): later link is edge2's ALL -> σ̄.
    assert!(m[&3]);
    // edge2 at the root -> σ.
    assert!(!m[&2]);
}

#[test]
fn aggregate_links_count_as_negative() {
    let m = modes(
        "select a from r where b > (select max(c) from s where s.d = r.a \
         and exists (select * from t where t.f = s.d))",
    );
    // The EXISTS edge sits below an aggregate link (which needs its sets
    // preserved) -> σ̄.
    assert!(m[&3]);
}

#[test]
fn tree_query_sibling_order_matters() {
    // Non-root subroot: s has two children; the first child's selection
    // runs while the second child's link (negative) is still unfinished.
    let m = modes(
        "select a from r where b in (select c from s where s.d = r.a \
         and c > some (select e from t where t.f = s.d) \
         and c <> all (select g from u where u.h = s.d))",
    );
    // Post-order: edge3 (SOME, parent s), edge4 (ALL, parent s), edge2
    // (IN, parent r=root).
    assert!(m[&3], "σ̄: sibling ALL still unfinished");
    assert!(
        !m[&4],
        "after the last negative link, only the root's IN remains: σ"
    );
    assert!(!m[&2]);
}
