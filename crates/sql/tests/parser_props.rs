//! Property tests for the SQL front end: the parser must never panic, and
//! parse → display → parse must be a fixpoint. Formerly proptest; now
//! seeded-deterministic fuzzing so the suite runs with no external crates.

use nra_sql::parse;
use nra_storage::rng::Pcg32;

/// Arbitrary byte soup: the parser returns Ok or Err, never panics.
#[test]
fn parser_never_panics_on_garbage() {
    let mut rng = Pcg32::new(0x5eed_1001);
    for _ in 0..512 {
        let len = rng.index(64);
        let input: String = (0..len)
            .map(|_| {
                // Mix printable ASCII with arbitrary unicode scalars.
                if rng.bool(0.8) {
                    rng.range_i64(0x20, 0x7f) as u8 as char
                } else {
                    char::from_u32(rng.range_i64(0, 0xd800) as u32).unwrap_or('\u{fffd}')
                }
            })
            .collect();
        let _ = parse(&input);
    }
}

/// SQL-ish token soup: higher hit rate on deep parser paths.
#[test]
fn parser_never_panics_on_sqlish() {
    const TOKENS: [&str; 31] = [
        "select", "from", "where", "and", "or", "not", "in", "exists", "all", "any", "some",
        "between", "is", "null", "count", "max", "(", ")", ",", ".", "*", "=", "<>", "<", ">",
        "<=", ">=", "a", "b", "t", "1",
    ];
    let mut rng = Pcg32::new(0x5eed_1002);
    for _ in 0..512 {
        let len = rng.index(24);
        let tokens: Vec<&str> = (0..len).map(|_| *rng.choose(&TOKENS)).collect();
        let input = tokens.join(" ");
        let _ = parse(&input);
    }
}

/// Display output reparses to the same AST (idempotence on a corpus of
/// valid queries covering the whole grammar).
#[test]
fn display_roundtrip_corpus() {
    let corpus = [
        "select a from t",
        "select distinct a, b from t, u where t.x = u.y",
        "select * from t where a between 1 and 2 or b is not null",
        "select a from t where not (a = 1 and b in (1, 2, 3))",
        "select a from t where exists (select * from u where u.x = t.a)",
        "select a from t where a not in (select b from u)",
        "select a from t where a > all (select b from u where exists \
         (select * from v where v.k = u.b))",
        "select a from t where a + b * 2 - 1 > 0",
        "select a from t where a > (select max(b) from u where u.x = t.a)",
        "select a from t where 0 = (select count(*) from u)",
        "select a from t where a < (select avg(b) from u) and b >= \
         (select sum(c) from v)",
        "select a from t where d = date '1995-06-17'",
        "select a from t where s = 'it''s'",
    ];
    for input in corpus {
        let once = parse(input).unwrap_or_else(|e| panic!("corpus entry failed: {input}: {e}"));
        let rendered = once.to_string();
        let twice =
            parse(&rendered).unwrap_or_else(|e| panic!("rendered form failed: {rendered}: {e}"));
        assert_eq!(once, twice, "display not a fixpoint for {input}");
    }
}
