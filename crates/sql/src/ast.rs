//! Abstract syntax tree for the SQL subset.
//!
//! The subset is exactly what the paper needs: `SELECT`/`FROM`/`WHERE`
//! blocks whose `WHERE` clauses combine ordinary predicates with the
//! non-aggregate subquery operators `EXISTS`, `NOT EXISTS`, `IN`, `NOT IN`,
//! `θ SOME/ANY` and `θ ALL`, nested to any depth.

use std::fmt;

use nra_storage::{AggFunc, CmpOp, Value};

/// Arithmetic operators usable in scalar expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl ArithOp {
    pub fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        }
    }
}

/// A scalar expression (no subqueries; those live in [`Predicate`]).
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// Possibly-qualified column reference.
    Column {
        qualifier: Option<String>,
        name: String,
    },
    Literal(Value),
    Arith {
        op: ArithOp,
        left: Box<ScalarExpr>,
        right: Box<ScalarExpr>,
    },
    /// An aggregate call — only legal as the single select item of a
    /// scalar (aggregate) subquery; `arg` is `None` for `COUNT(*)`.
    Agg {
        func: AggFunc,
        arg: Option<Box<ScalarExpr>>,
    },
}

impl ScalarExpr {
    pub fn col(name: &str) -> ScalarExpr {
        match name.split_once('.') {
            Some((q, n)) => ScalarExpr::Column {
                qualifier: Some(q.to_string()),
                name: n.to_string(),
            },
            None => ScalarExpr::Column {
                qualifier: None,
                name: name.to_string(),
            },
        }
    }

    pub fn lit(v: Value) -> ScalarExpr {
        ScalarExpr::Literal(v)
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Column {
                qualifier: Some(q),
                name,
            } => write!(f, "{q}.{name}"),
            ScalarExpr::Column {
                qualifier: None,
                name,
            } => write!(f, "{name}"),
            ScalarExpr::Literal(v) => write!(f, "{v}"),
            ScalarExpr::Arith { op, left, right } => {
                write!(f, "({left} {} {right})", op.symbol())
            }
            ScalarExpr::Agg { func, arg } => match arg {
                Some(a) => write!(f, "{}({a})", func.name()),
                None => write!(f, "count(*)"),
            },
        }
    }
}

/// Quantifier on a comparison subquery predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantifier {
    /// `SOME` / `ANY` — true if the comparison holds for some element.
    Some,
    /// `ALL` — true if the comparison holds for every element.
    All,
}

/// A predicate (boolean-valued expression).
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    Cmp {
        left: ScalarExpr,
        op: CmpOp,
        right: ScalarExpr,
    },
    Between {
        expr: ScalarExpr,
        low: ScalarExpr,
        high: ScalarExpr,
        negated: bool,
    },
    IsNull {
        expr: ScalarExpr,
        negated: bool,
    },
    InList {
        expr: ScalarExpr,
        list: Vec<ScalarExpr>,
        negated: bool,
    },
    And(Box<Predicate>, Box<Predicate>),
    Or(Box<Predicate>, Box<Predicate>),
    Not(Box<Predicate>),
    /// `[NOT] EXISTS (subquery)`
    Exists {
        query: Box<SelectStmt>,
        negated: bool,
    },
    /// `expr [NOT] IN (subquery)`
    InSubquery {
        expr: ScalarExpr,
        query: Box<SelectStmt>,
        negated: bool,
    },
    /// `expr θ SOME/ANY/ALL (subquery)`
    Quantified {
        expr: ScalarExpr,
        op: CmpOp,
        quantifier: Quantifier,
        query: Box<SelectStmt>,
    },
    /// `expr θ (subquery)` — a scalar (aggregate) subquery comparison.
    CmpSubquery {
        expr: ScalarExpr,
        op: CmpOp,
        query: Box<SelectStmt>,
    },
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Cmp { left, op, right } => write!(f, "{left} {op} {right}"),
            Predicate::Between {
                expr,
                low,
                high,
                negated,
            } => write!(
                f,
                "{expr} {}between {low} and {high}",
                if *negated { "not " } else { "" }
            ),
            Predicate::IsNull { expr, negated } => {
                write!(f, "{expr} is {}null", if *negated { "not " } else { "" })
            }
            Predicate::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "{expr} {}in (", if *negated { "not " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Predicate::And(a, b) => write!(f, "({a} and {b})"),
            Predicate::Or(a, b) => write!(f, "({a} or {b})"),
            Predicate::Not(p) => write!(f, "not ({p})"),
            Predicate::Exists { query, negated } => {
                write!(f, "{}exists ({query})", if *negated { "not " } else { "" })
            }
            Predicate::InSubquery {
                expr,
                query,
                negated,
            } => {
                write!(
                    f,
                    "{expr} {}in ({query})",
                    if *negated { "not " } else { "" }
                )
            }
            Predicate::Quantified {
                expr,
                op,
                quantifier,
                query,
            } => {
                let q = match quantifier {
                    Quantifier::Some => "some",
                    Quantifier::All => "all",
                };
                write!(f, "{expr} {op} {q} ({query})")
            }
            Predicate::CmpSubquery { expr, op, query } => {
                write!(f, "{expr} {op} ({query})")
            }
        }
    }
}

/// A set operation combining two `SELECT` blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOpKind {
    Union,
    Intersect,
    Except,
}

impl SetOpKind {
    pub fn name(self) -> &'static str {
        match self {
            SetOpKind::Union => "union",
            SetOpKind::Intersect => "intersect",
            SetOpKind::Except => "except",
        }
    }
}

/// One `UNION/INTERSECT/EXCEPT [ALL] <select>` arm of a compound query.
#[derive(Debug, Clone, PartialEq)]
pub struct CompoundPart {
    pub op: SetOpKind,
    pub all: bool,
    pub stmt: SelectStmt,
}

/// A full query: one or more `SELECT` blocks combined by set operations,
/// with optional `ORDER BY` and `LIMIT` applied to the combined result.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub first: SelectStmt,
    pub compounds: Vec<CompoundPart>,
    /// `(expression, descending)` sort keys.
    pub order_by: Vec<(ScalarExpr, bool)>,
    pub limit: Option<usize>,
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.first)?;
        for part in &self.compounds {
            write!(
                f,
                " {}{} {}",
                part.op.name(),
                if part.all { " all" } else { "" },
                part.stmt
            )?;
        }
        for (i, (e, desc)) in self.order_by.iter().enumerate() {
            write!(
                f,
                "{} {e}{}",
                if i == 0 { " order by" } else { "," },
                if *desc { " desc" } else { "" }
            )?;
        }
        if let Some(n) = self.limit {
            write!(f, " limit {n}")?;
        }
        Ok(())
    }
}

/// One item in a `SELECT` list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `SELECT *`
    Wildcard,
    Expr(ScalarExpr),
}

/// A `FROM`-clause table reference with optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    pub table: String,
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this table is referenced by in the query: the alias when
    /// one was given, else the table name with any schema qualifier
    /// stripped (`nra_sys.queries` is referenced as `queries`).
    pub fn exposed(&self) -> &str {
        match &self.alias {
            Some(a) => a,
            None => self
                .table
                .rsplit_once('.')
                .map_or(self.table.as_str(), |(_, t)| t),
        }
    }
}

/// A `SELECT ... FROM ... WHERE ...` block.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub distinct: bool,
    pub select: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub where_clause: Option<Predicate>,
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "select ")?;
        if self.distinct {
            write!(f, "distinct ")?;
        }
        for (i, item) in self.select.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match item {
                SelectItem::Wildcard => write!(f, "*")?,
                SelectItem::Expr(e) => write!(f, "{e}")?,
            }
        }
        write!(f, " from ")?;
        for (i, t) in self.from.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", t.table)?;
            if let Some(a) = &t.alias {
                write!(f, " as {a}")?;
            }
        }
        if let Some(w) = &self.where_clause {
            write!(f, " where {w}")?;
        }
        Ok(())
    }
}
