//! Query blocks and the linking-operator taxonomy of the paper's Section 2.
//!
//! A bound query is a tree of [`QueryBlock`]s, one per SQL query block,
//! connected by [`SubqueryEdge`]s carrying the *linking predicate* (the
//! predicate connecting an inner block to its outer block) and, inside each
//! inner block, the *correlated predicates* referencing outer blocks.

use std::collections::HashMap;

use nra_storage::{AggFunc, CmpOp};

use crate::bound::{BExpr, BPred};

/// The linking operator between an outer and inner query block.
///
/// `IN` is bound as `= SOME` and `NOT IN` as `<> ALL`, the standard-SQL
/// equivalences the paper relies on (both preserve three-valued semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkOp {
    /// `EXISTS q` — true iff the subquery result is non-empty.
    Exists,
    /// `NOT EXISTS q` — true iff the subquery result is empty.
    NotExists,
    /// `A θ SOME q` (also spelled `ANY`; `IN` is `= SOME`).
    Some(CmpOp),
    /// `A θ ALL q` (`NOT IN` is `<> ALL`).
    All(CmpOp),
    /// `A θ (SELECT agg(B) ...)` — the aggregate-subquery extension: the
    /// set is folded with `func` before the (scalar, three-valued)
    /// comparison.
    Agg { op: CmpOp, func: AggFunc },
}

impl LinkOp {
    /// The paper's classification: `EXISTS`, `SOME/ANY` and `IN` are
    /// *positive* linking operators; `NOT EXISTS`, `ALL` and `NOT IN` are
    /// *negative*.
    pub fn is_positive(self) -> bool {
        // Aggregate links are treated like negative operators: the empty
        // set matters (COUNT of zero compares meaningfully), so tuples
        // must not be discarded by plain semijoins.
        matches!(self, LinkOp::Exists | LinkOp::Some(_))
    }

    pub fn is_negative(self) -> bool {
        !self.is_positive()
    }

    /// Logical negation, exact in three-valued logic:
    /// `¬(A θ ALL q) ≡ A θ̄ SOME q` and dually, `¬EXISTS ≡ NOT EXISTS`.
    pub fn negate(self) -> LinkOp {
        match self {
            LinkOp::Exists => LinkOp::NotExists,
            LinkOp::NotExists => LinkOp::Exists,
            LinkOp::Some(op) => LinkOp::All(op.negate()),
            LinkOp::All(op) => LinkOp::Some(op.negate()),
            LinkOp::Agg { op, func } => LinkOp::Agg {
                op: op.negate(),
                func,
            },
        }
    }

    pub fn describe(self) -> String {
        match self {
            LinkOp::Exists => "exists".to_string(),
            LinkOp::NotExists => "not exists".to_string(),
            LinkOp::Some(op) => format!("{op} some"),
            LinkOp::All(op) => format!("{op} all"),
            LinkOp::Agg { op, func } => format!("{op} {}(...)", func.name()),
        }
    }
}

/// A `FROM`-clause table instance with its query-wide unique exposed name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundTable {
    /// Base table name in the catalog.
    pub table: String,
    /// Unique qualifier used in all bound column names.
    pub exposed: String,
}

/// A subquery hanging off an outer block.
#[derive(Debug, Clone, PartialEq)]
pub struct SubqueryEdge {
    pub link: LinkOp,
    /// The linking attribute `A` of the outer block (`None` for
    /// `[NOT] EXISTS`).
    pub outer_expr: Option<BExpr>,
    /// The linked attribute `B`: the inner block's single select item
    /// (`None` for `[NOT] EXISTS`).
    pub inner_expr: Option<BExpr>,
    pub block: QueryBlock,
}

/// One SQL query block.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryBlock {
    /// Depth-first preorder number, 1-based, matching the paper's `T_i`.
    pub id: usize,
    pub tables: Vec<BoundTable>,
    /// Projection of the outermost block (empty for inner blocks; inner
    /// select items live on the edge as `inner_expr`).
    pub select: Vec<(String, BExpr)>,
    /// Whether the (root) projection is `SELECT DISTINCT`.
    pub distinct: bool,
    /// `Δ_i`: conjuncts referencing only this block's tables.
    pub local_preds: Vec<BPred>,
    /// `C_ij`: conjuncts referencing at least one outer block's column.
    pub correlated_preds: Vec<BPred>,
    /// Subqueries in left-to-right order of appearance.
    pub children: Vec<SubqueryEdge>,
}

impl QueryBlock {
    /// Exposed qualifiers of this block's own tables.
    pub fn own_qualifiers(&self) -> Vec<&str> {
        self.tables.iter().map(|t| t.exposed.as_str()).collect()
    }

    /// Does a qualified column name belong to this block?
    pub fn owns_column(&self, qualified: &str) -> bool {
        match qualified.rsplit_once('.') {
            Some((q, _)) => self.tables.iter().any(|t| t.exposed == q),
            None => false,
        }
    }

    /// Number of blocks in this subtree (including self).
    pub fn block_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(|c| c.block.block_count())
            .sum::<usize>()
    }

    /// Nesting depth: 0 for a flat query (per the paper: a query whose
    /// subqueries are all flat is "one-level nested", etc.).
    pub fn nesting_depth(&self) -> usize {
        self.children
            .iter()
            .map(|c| 1 + c.block.nesting_depth())
            .max()
            .unwrap_or(0)
    }

    /// A *nested linear query*: at most one block nested within any block.
    pub fn is_linear(&self) -> bool {
        self.children.len() <= 1 && self.children.iter().all(|c| c.block.is_linear())
    }

    /// Visit each block depth-first, left-to-right (the paper's traversal
    /// order), with the edge leading to it (`None` at the root).
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a QueryBlock, Option<&'a SubqueryEdge>)) {
        fn go<'a>(
            block: &'a QueryBlock,
            edge: Option<&'a SubqueryEdge>,
            f: &mut impl FnMut(&'a QueryBlock, Option<&'a SubqueryEdge>),
        ) {
            f(block, edge);
            for child in &block.children {
                go(&child.block, Some(child), f);
            }
        }
        go(self, None, f)
    }
}

/// A fully bound query.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundQuery {
    pub root: QueryBlock,
    /// Map from exposed qualifier to the id of the block owning it.
    pub qualifier_block: HashMap<String, usize>,
    pub num_blocks: usize,
}

impl BoundQuery {
    /// The id of the block owning a qualified column name.
    pub fn owner_block(&self, qualified: &str) -> Option<usize> {
        let (q, _) = qualified.rsplit_once('.')?;
        self.qualifier_block.get(q).copied()
    }

    /// A *linear correlated* query (paper §4.2.3): linear, and every inner
    /// block's correlated predicates reference only the adjacent outer
    /// block. Such queries can be evaluated bottom-up.
    pub fn is_linear_correlated(&self) -> bool {
        if !self.root.is_linear() {
            return false;
        }
        let mut ok = true;
        self.root.visit(&mut |block, edge| {
            if edge.is_none() {
                return;
            }
            // The adjacent outer block of block `i` (in a linear query,
            // ids are consecutive along the spine).
            let parent_id = block.id - 1;
            for pred in &block.correlated_preds {
                for col in pred.columns() {
                    if let Some(owner) = self.owner_block(col) {
                        if owner != block.id && owner != parent_id {
                            ok = false;
                        }
                    }
                }
            }
        });
        ok
    }

    /// Every linking operator in the query, in depth-first order.
    pub fn link_ops(&self) -> Vec<LinkOp> {
        let mut ops = Vec::new();
        self.root.visit(&mut |_, edge| {
            if let Some(e) = edge {
                ops.push(e.link);
            }
        });
        ops
    }

    /// Paper terminology: a query with both positive and negative linking
    /// operators has *mixed* linking operators.
    pub fn has_mixed_links(&self) -> bool {
        let ops = self.link_ops();
        ops.iter().any(|o| o.is_positive()) && ops.iter().any(|o| o.is_negative())
    }

    pub fn all_links_positive(&self) -> bool {
        self.link_ops().iter().all(|o| o.is_positive())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_op_classification() {
        assert!(LinkOp::Exists.is_positive());
        assert!(LinkOp::Some(CmpOp::Gt).is_positive());
        assert!(LinkOp::NotExists.is_negative());
        assert!(LinkOp::All(CmpOp::Ne).is_negative());
    }

    #[test]
    fn link_op_negation() {
        assert_eq!(LinkOp::Exists.negate(), LinkOp::NotExists);
        assert_eq!(LinkOp::Some(CmpOp::Lt).negate(), LinkOp::All(CmpOp::Ge));
        assert_eq!(LinkOp::All(CmpOp::Eq).negate(), LinkOp::Some(CmpOp::Ne));
        for op in [
            LinkOp::Exists,
            LinkOp::NotExists,
            LinkOp::Some(CmpOp::Le),
            LinkOp::All(CmpOp::Gt),
        ] {
            assert_eq!(op.negate().negate(), op);
        }
    }

    #[test]
    fn describe_strings() {
        assert_eq!(LinkOp::Some(CmpOp::Eq).describe(), "= some");
        assert_eq!(LinkOp::NotExists.describe(), "not exists");
    }
}
