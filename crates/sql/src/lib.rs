//! # nra-sql
//!
//! SQL front end for the nested relational subquery processor: a lexer and
//! recursive-descent parser for the SQL subset the paper works with
//! (`SELECT`/`FROM`/`WHERE` with `EXISTS`/`NOT EXISTS`/`IN`/`NOT IN`/
//! `θ SOME/ANY`/`θ ALL` subqueries at any nesting depth), and a binder that
//! produces a [`block::BoundQuery`] — the tree of query blocks, linking
//! predicates and correlated predicates in the paper's Section 2
//! terminology.

pub mod ast;
pub mod binder;
pub mod block;
pub mod bound;
pub mod error;
pub mod lexer;
pub mod normalize;
pub mod parser;
pub mod token;

pub use ast::{
    ArithOp, CompoundPart, Predicate, Quantifier, Query, ScalarExpr, SelectItem, SelectStmt,
    SetOpKind, TableRef,
};
pub use binder::{bind, parse_and_bind};
pub use block::{BoundQuery, BoundTable, LinkOp, QueryBlock, SubqueryEdge};
pub use bound::{BExpr, BPred};
pub use error::SqlError;
pub use parser::{parse, parse_analyze, parse_query, parse_statement, Statement};
