//! Bound (name-resolved) scalar expressions and predicates.
//!
//! After binding, every column reference is a fully qualified name
//! (`exposed_qualifier.column`) that is unique across the entire query, so
//! expressions can be evaluated against any intermediate relation whose
//! schema carries those names. Subquery predicates never appear here — the
//! binder lifts them into [`crate::block::SubqueryEdge`]s.

use nra_storage::{CmpOp, Truth, Value};

use crate::ast::ArithOp;

/// A bound scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum BExpr {
    /// Fully qualified column name.
    Col(String),
    Lit(Value),
    Arith {
        op: ArithOp,
        left: Box<BExpr>,
        right: Box<BExpr>,
    },
}

impl BExpr {
    pub fn col(name: impl Into<String>) -> BExpr {
        BExpr::Col(name.into())
    }

    /// Collect every referenced column name into `out`.
    pub fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            BExpr::Col(c) => out.push(c),
            BExpr::Lit(_) => {}
            BExpr::Arith { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
        }
    }

    pub fn columns(&self) -> Vec<&str> {
        let mut v = Vec::new();
        self.collect_columns(&mut v);
        v
    }

    /// If this expression is a bare column, its name.
    pub fn as_column(&self) -> Option<&str> {
        match self {
            BExpr::Col(c) => Some(c),
            _ => None,
        }
    }

    /// Evaluate arithmetic over SQL values: any NULL operand produces NULL.
    pub fn eval_arith(op: ArithOp, l: &Value, r: &Value) -> Value {
        use Value::*;
        fn to_f(v: &Value) -> Option<f64> {
            match v {
                Int(i) => Some(*i as f64),
                Decimal(d) => Some(*d as f64 / 100.0),
                Float(f) => Some(*f),
                _ => None,
            }
        }
        match (l, r) {
            (Null, _) | (_, Null) => Null,
            (Int(a), Int(b)) => match op {
                ArithOp::Add => Int(a + b),
                ArithOp::Sub => Int(a - b),
                ArithOp::Mul => Int(a * b),
                ArithOp::Div => {
                    if *b == 0 {
                        Null
                    } else {
                        Int(a / b)
                    }
                }
            },
            (Decimal(a), Decimal(b)) => match op {
                ArithOp::Add => Decimal(a + b),
                ArithOp::Sub => Decimal(a - b),
                ArithOp::Mul => Decimal(a * b / 100),
                ArithOp::Div => {
                    if *b == 0 {
                        Null
                    } else {
                        Decimal(a * 100 / b)
                    }
                }
            },
            _ => match (to_f(l), to_f(r)) {
                (Some(a), Some(b)) => match op {
                    ArithOp::Add => Float(a + b),
                    ArithOp::Sub => Float(a - b),
                    ArithOp::Mul => Float(a * b),
                    ArithOp::Div => {
                        if b == 0.0 {
                            Null
                        } else {
                            Float(a / b)
                        }
                    }
                },
                _ => Null,
            },
        }
    }
}

/// A bound predicate (no subqueries).
#[derive(Debug, Clone, PartialEq)]
pub enum BPred {
    Cmp {
        left: BExpr,
        op: CmpOp,
        right: BExpr,
    },
    Between {
        expr: BExpr,
        low: BExpr,
        high: BExpr,
        negated: bool,
    },
    IsNull {
        expr: BExpr,
        negated: bool,
    },
    InList {
        expr: BExpr,
        list: Vec<BExpr>,
        negated: bool,
    },
    And(Box<BPred>, Box<BPred>),
    Or(Box<BPred>, Box<BPred>),
    Not(Box<BPred>),
    /// Constant truth value (used by rewrites).
    Const(Truth),
}

impl BPred {
    pub fn cmp(left: BExpr, op: CmpOp, right: BExpr) -> BPred {
        BPred::Cmp { left, op, right }
    }

    /// Conjunction of a list of predicates (`TRUE` when empty).
    pub fn conjoin(mut preds: Vec<BPred>) -> BPred {
        match preds.len() {
            0 => BPred::Const(Truth::True),
            1 => preds.pop().unwrap(),
            _ => {
                let mut it = preds.into_iter();
                let first = it.next().unwrap();
                it.fold(first, |acc, p| BPred::And(Box::new(acc), Box::new(p)))
            }
        }
    }

    pub fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            BPred::Cmp { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            BPred::Between {
                expr, low, high, ..
            } => {
                expr.collect_columns(out);
                low.collect_columns(out);
                high.collect_columns(out);
            }
            BPred::IsNull { expr, .. } => expr.collect_columns(out),
            BPred::InList { expr, list, .. } => {
                expr.collect_columns(out);
                for e in list {
                    e.collect_columns(out);
                }
            }
            BPred::And(a, b) | BPred::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            BPred::Not(p) => p.collect_columns(out),
            BPred::Const(_) => {}
        }
    }

    pub fn columns(&self) -> Vec<&str> {
        let mut v = Vec::new();
        self.collect_columns(&mut v);
        v
    }

    /// If this predicate is `col θ col`, return the pair and operator.
    pub fn as_column_cmp(&self) -> Option<(&str, CmpOp, &str)> {
        match self {
            BPred::Cmp {
                left: BExpr::Col(l),
                op,
                right: BExpr::Col(r),
            } => Some((l.as_str(), *op, r.as_str())),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_columns_walks_everything() {
        let p = BPred::And(
            Box::new(BPred::cmp(
                BExpr::col("r.a"),
                CmpOp::Gt,
                BExpr::Lit(Value::Int(1)),
            )),
            Box::new(BPred::Between {
                expr: BExpr::col("r.b"),
                low: BExpr::col("s.c"),
                high: BExpr::Lit(Value::Int(9)),
                negated: false,
            }),
        );
        assert_eq!(p.columns(), vec!["r.a", "r.b", "s.c"]);
    }

    #[test]
    fn as_column_cmp_matches_simple_comparisons() {
        let p = BPred::cmp(BExpr::col("r.d"), CmpOp::Eq, BExpr::col("s.g"));
        assert_eq!(p.as_column_cmp(), Some(("r.d", CmpOp::Eq, "s.g")));
        let q = BPred::cmp(BExpr::col("r.d"), CmpOp::Eq, BExpr::Lit(Value::Int(1)));
        assert_eq!(q.as_column_cmp(), None);
    }

    #[test]
    fn arith_null_propagates() {
        assert_eq!(
            BExpr::eval_arith(ArithOp::Add, &Value::Null, &Value::Int(2)),
            Value::Null
        );
        assert_eq!(
            BExpr::eval_arith(ArithOp::Add, &Value::Int(2), &Value::Int(3)),
            Value::Int(5)
        );
        assert_eq!(
            BExpr::eval_arith(ArithOp::Mul, &Value::Decimal(250), &Value::Decimal(200)),
            Value::Decimal(500)
        );
        assert_eq!(
            BExpr::eval_arith(ArithOp::Div, &Value::Int(5), &Value::Int(0)),
            Value::Null
        );
    }

    #[test]
    fn conjoin_shapes() {
        assert_eq!(BPred::conjoin(vec![]), BPred::Const(Truth::True));
        let single = BPred::cmp(BExpr::col("a"), CmpOp::Eq, BExpr::col("b"));
        assert_eq!(BPred::conjoin(vec![single.clone()]), single.clone());
        assert!(matches!(
            BPred::conjoin(vec![single.clone(), single]),
            BPred::And(_, _)
        ));
    }
}
