//! Hand-written lexer for the SQL subset.

use crate::error::SqlError;
use crate::token::{Keyword, Token, TokenKind};

/// Tokenize `input` into a vector ending with an `Eof` token.
pub fn lex(input: &str) -> Result<Vec<Token>, SqlError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;

    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            c if c.is_ascii_whitespace() => {
                i += 1;
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    offset: start,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    offset: start,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    offset: start,
                });
                i += 1;
            }
            '.' => {
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    offset: start,
                });
                i += 1;
            }
            ';' => {
                tokens.push(Token {
                    kind: TokenKind::Semicolon,
                    offset: start,
                });
                i += 1;
            }
            '+' => {
                tokens.push(Token {
                    kind: TokenKind::Plus,
                    offset: start,
                });
                i += 1;
            }
            '-' => {
                tokens.push(Token {
                    kind: TokenKind::Minus,
                    offset: start,
                });
                i += 1;
            }
            '*' => {
                tokens.push(Token {
                    kind: TokenKind::StarOp,
                    offset: start,
                });
                i += 1;
            }
            '/' => {
                tokens.push(Token {
                    kind: TokenKind::Slash,
                    offset: start,
                });
                i += 1;
            }
            '=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    offset: start,
                });
                i += 1;
            }
            '<' => {
                i += 1;
                let kind = if i < bytes.len() && bytes[i] == b'=' {
                    i += 1;
                    TokenKind::LtEq
                } else if i < bytes.len() && bytes[i] == b'>' {
                    i += 1;
                    TokenKind::NotEq
                } else {
                    TokenKind::Lt
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
            }
            '>' => {
                i += 1;
                let kind = if i < bytes.len() && bytes[i] == b'=' {
                    i += 1;
                    TokenKind::GtEq
                } else {
                    TokenKind::Gt
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
            }
            '!' => {
                i += 1;
                if i < bytes.len() && bytes[i] == b'=' {
                    i += 1;
                    tokens.push(Token {
                        kind: TokenKind::NotEq,
                        offset: start,
                    });
                } else {
                    return Err(SqlError::lex(start, "expected `=` after `!`"));
                }
            }
            '\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(SqlError::lex(start, "unterminated string literal"));
                    }
                    if bytes[i] == b'\'' {
                        // doubled quote is an escaped quote
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                            continue;
                        }
                        i += 1;
                        break;
                    }
                    s.push(bytes[i] as char);
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    offset: start,
                });
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                    j += 1;
                }
                if j < bytes.len()
                    && bytes[j] == b'.'
                    && j + 1 < bytes.len()
                    && (bytes[j + 1] as char).is_ascii_digit()
                {
                    // decimal literal with up to two significant fraction digits
                    let int_part: i64 = input[i..j]
                        .parse()
                        .map_err(|_| SqlError::lex(start, "integer literal out of range"))?;
                    let mut k = j + 1;
                    while k < bytes.len() && (bytes[k] as char).is_ascii_digit() {
                        k += 1;
                    }
                    let frac_str = &input[j + 1..k];
                    if frac_str.len() > 2 {
                        return Err(SqlError::lex(
                            start,
                            "decimal literals support at most two fraction digits",
                        ));
                    }
                    let mut frac: i64 = frac_str
                        .parse()
                        .map_err(|_| SqlError::lex(start, "bad decimal literal"))?;
                    if frac_str.len() == 1 {
                        frac *= 10;
                    }
                    tokens.push(Token {
                        kind: TokenKind::Decimal(int_part * 100 + frac),
                        offset: start,
                    });
                    i = k;
                } else {
                    let v: i64 = input[i..j]
                        .parse()
                        .map_err(|_| SqlError::lex(start, "integer literal out of range"))?;
                    tokens.push(Token {
                        kind: TokenKind::Int(v),
                        offset: start,
                    });
                    i = j;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                let word = &input[i..j];
                let kind = match Keyword::parse(word) {
                    Some(k) => TokenKind::Keyword(k),
                    None => TokenKind::Ident(word.to_ascii_lowercase()),
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
                i = j;
            }
            other => {
                return Err(SqlError::lex(
                    start,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: input.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        lex(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            kinds("SeLeCt from"),
            vec![
                TokenKind::Keyword(Keyword::Select),
                TokenKind::Keyword(Keyword::From),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("= <> != < <= > >="),
            vec![
                TokenKind::Eq,
                TokenKind::NotEq,
                TokenKind::NotEq,
                TokenKind::Lt,
                TokenKind::LtEq,
                TokenKind::Gt,
                TokenKind::GtEq,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 12.5 3.07"),
            vec![
                TokenKind::Int(42),
                TokenKind::Decimal(1250),
                TokenKind::Decimal(307),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn too_many_fraction_digits_rejected() {
        assert!(lex("1.234").is_err());
    }

    #[test]
    fn strings_with_escaped_quote() {
        assert_eq!(
            kinds("'it''s'"),
            vec![TokenKind::Str("it's".into()), TokenKind::Eof]
        );
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn qualified_identifier() {
        assert_eq!(
            kinds("r.b"),
            vec![
                TokenKind::Ident("r".into()),
                TokenKind::Dot,
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("select -- comment here\n 1"),
            vec![
                TokenKind::Keyword(Keyword::Select),
                TokenKind::Int(1),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn identifiers_lowercased() {
        assert_eq!(
            kinds("Orders"),
            vec![TokenKind::Ident("orders".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn unexpected_character_errors() {
        assert!(lex("select @").is_err());
        assert!(lex("select !x").is_err());
    }
}
