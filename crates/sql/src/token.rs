//! Token definitions for the SQL subset.

use std::fmt;

/// Keywords recognized by the lexer (case-insensitive in the input).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    Select,
    Distinct,
    From,
    Where,
    And,
    Or,
    Not,
    In,
    Exists,
    Any,
    Some,
    All,
    Between,
    Is,
    Null,
    As,
    Date,
    True,
    False,
    Union,
    Intersect,
    Except,
    Order,
    By,
    Asc,
    Desc,
    Limit,
    Analyze,
}

impl Keyword {
    pub fn parse(word: &str) -> Option<Keyword> {
        let lower = word.to_ascii_lowercase();
        Some(match lower.as_str() {
            "select" => Keyword::Select,
            "distinct" => Keyword::Distinct,
            "from" => Keyword::From,
            "where" => Keyword::Where,
            "and" => Keyword::And,
            "or" => Keyword::Or,
            "not" => Keyword::Not,
            "in" => Keyword::In,
            "exists" => Keyword::Exists,
            "any" => Keyword::Any,
            "some" => Keyword::Some,
            "all" => Keyword::All,
            "between" => Keyword::Between,
            "is" => Keyword::Is,
            "null" => Keyword::Null,
            "as" => Keyword::As,
            "date" => Keyword::Date,
            "true" => Keyword::True,
            "false" => Keyword::False,
            "union" => Keyword::Union,
            "intersect" => Keyword::Intersect,
            "except" => Keyword::Except,
            "order" => Keyword::Order,
            "by" => Keyword::By,
            "asc" => Keyword::Asc,
            "desc" => Keyword::Desc,
            "limit" => Keyword::Limit,
            "analyze" => Keyword::Analyze,
            _ => return None,
        })
    }
}

/// A lexical token with its byte offset in the input (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub offset: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    Keyword(Keyword),
    /// Unquoted identifier, lowercased.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Decimal literal scaled by 100 (`12.5` lexes as `1250`).
    Decimal(i64),
    /// Single-quoted string literal.
    Str(String),
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Plus,
    Minus,
    StarOp,
    Slash,
    LParen,
    RParen,
    Comma,
    Dot,
    Semicolon,
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "{k:?}"),
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(i) => write!(f, "integer {i}"),
            TokenKind::Decimal(d) => write!(f, "decimal {}.{:02}", d / 100, (d % 100).abs()),
            TokenKind::Str(s) => write!(f, "string '{s}'"),
            TokenKind::Eq => write!(f, "`=`"),
            TokenKind::NotEq => write!(f, "`<>`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::LtEq => write!(f, "`<=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::GtEq => write!(f, "`>=`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::StarOp => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Dot => write!(f, "`.`"),
            TokenKind::Semicolon => write!(f, "`;`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}
