//! The canonical SQL statement normalizer.
//!
//! One normal form, three consumers: the slow-query log and the query
//! registry display statements in it, and the process-wide plan cache
//! *keys* on it — two textually different spellings of the same
//! statement (indentation, line breaks, trailing whitespace) must map to
//! the same cache entry, and a slow-log record must show exactly the
//! string the plan cache matched on, so operators can paste one into the
//! other.
//!
//! The normal form is deliberately conservative: collapse every run of
//! whitespace to a single space and trim the ends. Nothing
//! case-folds and no literals are parameterized — `SELECT` and `select`
//! are different keys, and `where a = 1` / `where a = 2` are different
//! statements. A smarter fingerprint (lowercased keywords, literals
//! replaced by `?`) would raise plan-cache hit rates on ad-hoc traffic,
//! but it would also make the displayed statement lie about what ran;
//! when that trade-off is revisited it must change here, for every
//! consumer at once.
//!
//! # Layering
//!
//! `nra-obs` sits *below* this crate (the parser emits trace events), so
//! the observability registry cannot call into here. Its copy —
//! [`queryreg::normalize_sql`] — must stay byte-for-byte identical to
//! [`normalize`]; the [`tests::agrees_with_the_slow_log_normalizer`]
//! property test pins the agreement over structured and adversarial
//! corpora, so a drift in either copy fails this crate's suite.
//!
//! [`queryreg::normalize_sql`]: nra_obs::queryreg::normalize_sql

/// Normalize `sql` to its canonical single-line form: runs of whitespace
/// (spaces, tabs, newlines — anything `char::is_whitespace`) collapse to
/// one space, and leading/trailing whitespace is trimmed.
///
/// ```
/// use nra_sql::normalize::normalize;
/// assert_eq!(
///     normalize("  select *\n\t from   t  "),
///     "select * from t"
/// );
/// ```
pub fn normalize(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len());
    let mut last_space = true;
    for ch in sql.chars() {
        if ch.is_whitespace() {
            if !last_space {
                out.push(' ');
                last_space = true;
            }
        } else {
            out.push(ch);
            last_space = false;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collapses_and_trims() {
        assert_eq!(normalize("select 1"), "select 1");
        assert_eq!(normalize("  select\t\t1\r\n"), "select 1");
        assert_eq!(normalize(""), "");
        assert_eq!(normalize(" \n\t "), "");
        assert_eq!(normalize("a  b"), "a b");
    }

    #[test]
    fn idempotent() {
        for s in ["select  a from t", "", "  x ", "a\nb\tc"] {
            assert_eq!(normalize(&normalize(s)), normalize(s));
        }
    }

    #[test]
    fn preserves_case_and_literals() {
        assert_eq!(normalize("SELECT A FROM T"), "SELECT A FROM T");
        assert_eq!(
            normalize("select 'two  spaces'"),
            "select 'two spaces'",
            "string literals are NOT protected — the normal form is \
             display-oriented; keys for literal-sensitive use must quote \
             responsibly"
        );
    }

    /// The layering-enforced duplicate in `nra_obs::queryreg` must agree
    /// byte-for-byte on every input: structured SQL, pathological
    /// whitespace, unicode, and a seeded pseudo-random corpus.
    #[test]
    fn agrees_with_the_slow_log_normalizer() {
        let corpus = [
            "",
            " ",
            "select 1",
            "  select *\n\t from   t  ",
            "select a,\n       b\nfrom t\nwhere a in (select b from s)",
            "\u{00a0}nbsp\u{00a0}is\u{00a0}whitespace\u{00a0}",
            "tab\tand\u{2028}line-sep\u{2029}para-sep",
            "ünïcode  テキスト \u{3000}ideographic",
            "trailing newline\n",
            "\n\nleading\n\n",
        ];
        for s in corpus {
            assert_eq!(
                normalize(s),
                nra_obs::queryreg::normalize_sql(s),
                "normalizers diverge on {s:?}"
            );
        }
        // Seeded pseudo-random byte soup (printable + whitespace mix):
        // a cheap xorshift so the corpus is deterministic and offline.
        let mut state: u64 = 0x9e3779b97f4a7c15;
        let alphabet: Vec<char> = " \t\n\r\u{000b}\u{000c}abcXYZ().,'=*".chars().collect();
        for _ in 0..500 {
            let mut s = String::new();
            for _ in 0..64 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                s.push(alphabet[(state % alphabet.len() as u64) as usize]);
            }
            assert_eq!(
                normalize(&s),
                nra_obs::queryreg::normalize_sql(&s),
                "normalizers diverge on {s:?}"
            );
        }
    }
}
