//! Recursive-descent parser for the SQL subset.

use nra_storage::{AggFunc, CmpOp, Value};

use crate::ast::*;
use crate::error::SqlError;
use crate::lexer::lex;
use crate::token::{Keyword, Token, TokenKind};

/// Parse a single `SELECT` statement (optionally `;`-terminated).
pub fn parse(input: &str) -> Result<SelectStmt, SqlError> {
    let q = parse_query(input)?;
    if !q.compounds.is_empty() || !q.order_by.is_empty() || q.limit.is_some() {
        return Err(SqlError::parse(
            0,
            "compound queries / ORDER BY / LIMIT are handled at the Query level              (use parse_query)",
        ));
    }
    Ok(q.first)
}

/// Parse a full query: `SELECT ... [UNION/INTERSECT/EXCEPT [ALL] SELECT
/// ...]* [ORDER BY expr [ASC|DESC], ...] [LIMIT n]`, optionally
/// `;`-terminated.
///
/// When query-lifecycle tracing is active ([`nra_obs::trace`]), the whole
/// lex + parse runs under a `parse` phase and a `Parsed` event reports the
/// token count.
pub fn parse_query(input: &str) -> Result<Query, SqlError> {
    let _phase = nra_obs::trace::phase(|| "parse".to_string());
    let tokens = lex(input)?;
    let ntokens = tokens.len();
    let mut p = Parser { tokens, pos: 0 };
    let first = p.select_stmt()?;

    let mut compounds = Vec::new();
    loop {
        let op = if p.eat_keyword(Keyword::Union) {
            SetOpKind::Union
        } else if p.eat_keyword(Keyword::Intersect) {
            SetOpKind::Intersect
        } else if p.eat_keyword(Keyword::Except) {
            SetOpKind::Except
        } else {
            break;
        };
        let all = p.eat_keyword(Keyword::All);
        let stmt = p.select_stmt()?;
        compounds.push(CompoundPart { op, all, stmt });
    }

    let mut order_by = Vec::new();
    if p.eat_keyword(Keyword::Order) {
        p.expect_keyword(Keyword::By)?;
        loop {
            let expr = p.scalar_expr()?;
            let desc = if p.eat_keyword(Keyword::Desc) {
                true
            } else {
                p.eat_keyword(Keyword::Asc);
                false
            };
            order_by.push((expr, desc));
            if p.peek_kind() != &TokenKind::Comma {
                break;
            }
            p.advance();
        }
    }

    let limit = if p.eat_keyword(Keyword::Limit) {
        match p.peek_kind().clone() {
            TokenKind::Int(n) if n >= 0 => {
                p.advance();
                Some(n as usize)
            }
            other => {
                return Err(SqlError::parse(
                    p.peek().offset,
                    format!("LIMIT takes a non-negative integer, found {other}"),
                ))
            }
        }
    } else {
        None
    };

    if p.peek_kind() == &TokenKind::Semicolon {
        p.advance();
    }
    p.expect(TokenKind::Eof)?;
    nra_obs::trace::emit(|| nra_obs::trace::TraceEvent::Parsed { tokens: ntokens });
    Ok(Query {
        first,
        compounds,
        order_by,
        limit,
    })
}

/// A top-level SQL statement: either a query or a utility statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Query(Box<Query>),
    /// `ANALYZE <table>` — gather row count, per-column NDV and null
    /// counts into the catalog for the planner's cardinality estimates.
    Analyze {
        table: String,
    },
}

/// Parse `ANALYZE <table> [;]` if the input is an ANALYZE statement,
/// returning the table name; `Ok(None)` when the input starts with
/// anything else (so query parsing — and its trace events — run exactly
/// once for regular queries).
pub fn parse_analyze(input: &str) -> Result<Option<String>, SqlError> {
    let tokens = lex(input)?;
    if tokens.first().map(|t| &t.kind) != Some(&TokenKind::Keyword(Keyword::Analyze)) {
        return Ok(None);
    }
    let mut p = Parser { tokens, pos: 0 };
    p.expect_keyword(Keyword::Analyze)?;
    let table = p.ident()?;
    if p.peek_kind() == &TokenKind::Semicolon {
        p.advance();
    }
    p.expect(TokenKind::Eof)?;
    Ok(Some(table))
}

/// Parse a full statement: `ANALYZE <table>` or a query.
pub fn parse_statement(input: &str) -> Result<Statement, SqlError> {
    match parse_analyze(input)? {
        Some(table) => Ok(Statement::Analyze { table }),
        None => Ok(Statement::Query(Box::new(parse_query(input)?))),
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn at_keyword(&self, k: Keyword) -> bool {
        self.peek_kind() == &TokenKind::Keyword(k)
    }

    fn eat_keyword(&mut self, k: Keyword) -> bool {
        if self.at_keyword(k) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, k: Keyword) -> Result<(), SqlError> {
        if self.eat_keyword(k) {
            Ok(())
        } else {
            Err(SqlError::parse(
                self.peek().offset,
                format!("expected {k:?}, found {}", self.peek_kind()),
            ))
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), SqlError> {
        if self.peek_kind() == &kind {
            self.advance();
            Ok(())
        } else {
            Err(SqlError::parse(
                self.peek().offset,
                format!("expected {kind}, found {}", self.peek_kind()),
            ))
        }
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        match self.peek_kind().clone() {
            TokenKind::Ident(s) => {
                self.advance();
                Ok(s)
            }
            other => Err(SqlError::parse(
                self.peek().offset,
                format!("expected identifier, found {other}"),
            )),
        }
    }

    fn select_stmt(&mut self) -> Result<SelectStmt, SqlError> {
        self.expect_keyword(Keyword::Select)?;
        let distinct = self.eat_keyword(Keyword::Distinct);
        let select = self.select_list()?;
        self.expect_keyword(Keyword::From)?;
        let from = self.table_refs()?;
        let where_clause = if self.eat_keyword(Keyword::Where) {
            Some(self.predicate()?)
        } else {
            None
        };
        Ok(SelectStmt {
            distinct,
            select,
            from,
            where_clause,
        })
    }

    fn select_list(&mut self) -> Result<Vec<SelectItem>, SqlError> {
        if self.peek_kind() == &TokenKind::StarOp {
            self.advance();
            return Ok(vec![SelectItem::Wildcard]);
        }
        let mut items = vec![SelectItem::Expr(self.scalar_expr()?)];
        while self.peek_kind() == &TokenKind::Comma {
            self.advance();
            items.push(SelectItem::Expr(self.scalar_expr()?));
        }
        Ok(items)
    }

    fn table_refs(&mut self) -> Result<Vec<TableRef>, SqlError> {
        let mut refs = vec![self.table_ref()?];
        while self.peek_kind() == &TokenKind::Comma {
            self.advance();
            refs.push(self.table_ref()?);
        }
        Ok(refs)
    }

    fn table_ref(&mut self) -> Result<TableRef, SqlError> {
        let mut table = self.ident()?;
        // Schema-qualified name (`nra_sys.queries`): the dotted pair is
        // kept as one catalog name; the exposed name defaults to the
        // part after the dot (see `TableRef::exposed`).
        if self.peek_kind() == &TokenKind::Dot {
            self.advance();
            let name = self.ident()?;
            table = format!("{table}.{name}");
        }
        let alias =
            if self.eat_keyword(Keyword::As) || matches!(self.peek_kind(), TokenKind::Ident(_)) {
                Some(self.ident()?)
            } else {
                None
            };
        Ok(TableRef { table, alias })
    }

    // ---- predicates ------------------------------------------------------

    fn predicate(&mut self) -> Result<Predicate, SqlError> {
        self.or_pred()
    }

    fn or_pred(&mut self) -> Result<Predicate, SqlError> {
        let mut left = self.and_pred()?;
        while self.eat_keyword(Keyword::Or) {
            let right = self.and_pred()?;
            left = Predicate::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_pred(&mut self) -> Result<Predicate, SqlError> {
        let mut left = self.not_pred()?;
        while self.eat_keyword(Keyword::And) {
            let right = self.not_pred()?;
            left = Predicate::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_pred(&mut self) -> Result<Predicate, SqlError> {
        if self.at_keyword(Keyword::Not) && !self.next_is_exists_after_not() {
            self.advance();
            let inner = self.not_pred()?;
            return Ok(Predicate::Not(Box::new(inner)));
        }
        self.primary_pred()
    }

    /// `NOT EXISTS (...)` is handled in `primary_pred` so the negation flag
    /// lands on the `Exists` node directly.
    fn next_is_exists_after_not(&self) -> bool {
        self.at_keyword(Keyword::Not)
            && self.tokens.get(self.pos + 1).map(|t| &t.kind)
                == Some(&TokenKind::Keyword(Keyword::Exists))
    }

    fn primary_pred(&mut self) -> Result<Predicate, SqlError> {
        // [NOT] EXISTS (subquery)
        if self.at_keyword(Keyword::Exists) || self.next_is_exists_after_not() {
            let negated = self.eat_keyword(Keyword::Not);
            self.expect_keyword(Keyword::Exists)?;
            self.expect(TokenKind::LParen)?;
            let query = Box::new(self.select_stmt()?);
            self.expect(TokenKind::RParen)?;
            return Ok(Predicate::Exists { query, negated });
        }
        // Parenthesized predicate vs parenthesized scalar expression:
        // try the predicate parse first and backtrack on failure. A
        // successful parenthesized-predicate parse can never be the prefix
        // of a comparison (SQL has no boolean comparisons), so accepting it
        // is safe.
        if self.peek_kind() == &TokenKind::LParen {
            let save = self.pos;
            self.advance();
            if let Ok(p) = self.predicate() {
                if self.peek_kind() == &TokenKind::RParen {
                    self.advance();
                    return Ok(p);
                }
            }
            self.pos = save;
        }
        let expr = self.scalar_expr()?;
        self.pred_postfix(expr)
    }

    fn pred_postfix(&mut self, expr: ScalarExpr) -> Result<Predicate, SqlError> {
        // IS [NOT] NULL
        if self.eat_keyword(Keyword::Is) {
            let negated = self.eat_keyword(Keyword::Not);
            self.expect_keyword(Keyword::Null)?;
            return Ok(Predicate::IsNull { expr, negated });
        }
        // [NOT] BETWEEN / [NOT] IN
        if self.at_keyword(Keyword::Not)
            || self.at_keyword(Keyword::Between)
            || self.at_keyword(Keyword::In)
        {
            let negated = self.eat_keyword(Keyword::Not);
            if self.eat_keyword(Keyword::Between) {
                let low = self.scalar_expr()?;
                self.expect_keyword(Keyword::And)?;
                let high = self.scalar_expr()?;
                return Ok(Predicate::Between {
                    expr,
                    low,
                    high,
                    negated,
                });
            }
            self.expect_keyword(Keyword::In)?;
            self.expect(TokenKind::LParen)?;
            if self.at_keyword(Keyword::Select) {
                let query = Box::new(self.select_stmt()?);
                self.expect(TokenKind::RParen)?;
                return Ok(Predicate::InSubquery {
                    expr,
                    query,
                    negated,
                });
            }
            let mut list = vec![self.scalar_expr()?];
            while self.peek_kind() == &TokenKind::Comma {
                self.advance();
                list.push(self.scalar_expr()?);
            }
            self.expect(TokenKind::RParen)?;
            return Ok(Predicate::InList {
                expr,
                list,
                negated,
            });
        }
        // comparison, possibly quantified
        let op = self.cmp_op()?;
        let quantifier = if self.eat_keyword(Keyword::Any) || self.eat_keyword(Keyword::Some) {
            Some(Quantifier::Some)
        } else if self.eat_keyword(Keyword::All) {
            Some(Quantifier::All)
        } else {
            None
        };
        match quantifier {
            Some(quantifier) => {
                self.expect(TokenKind::LParen)?;
                let query = Box::new(self.select_stmt()?);
                self.expect(TokenKind::RParen)?;
                Ok(Predicate::Quantified {
                    expr,
                    op,
                    quantifier,
                    query,
                })
            }
            None => {
                // `expr θ (SELECT ...)` is a scalar subquery comparison.
                if self.peek_kind() == &TokenKind::LParen
                    && self.tokens.get(self.pos + 1).map(|t| &t.kind)
                        == Some(&TokenKind::Keyword(Keyword::Select))
                {
                    self.advance();
                    let query = Box::new(self.select_stmt()?);
                    self.expect(TokenKind::RParen)?;
                    return Ok(Predicate::CmpSubquery { expr, op, query });
                }
                let right = self.scalar_expr()?;
                Ok(Predicate::Cmp {
                    left: expr,
                    op,
                    right,
                })
            }
        }
    }

    fn cmp_op(&mut self) -> Result<CmpOp, SqlError> {
        let op = match self.peek_kind() {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::NotEq => CmpOp::Ne,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::LtEq => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::GtEq => CmpOp::Ge,
            other => {
                return Err(SqlError::parse(
                    self.peek().offset,
                    format!("expected comparison operator, found {other}"),
                ))
            }
        };
        self.advance();
        Ok(op)
    }

    /// Parse the argument list of an aggregate function call; `name` has
    /// already been consumed.
    fn agg_call(&mut self, name: &str) -> Result<ScalarExpr, SqlError> {
        let offset = self.peek().offset;
        let func = match name {
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "sum" => AggFunc::Sum,
            "avg" => AggFunc::Avg,
            "count" => AggFunc::CountRows, // refined below for count(col)
            other => {
                return Err(SqlError::parse(
                    offset,
                    format!("unknown function `{other}` (supported: min, max, sum, avg, count)"),
                ))
            }
        };
        self.expect(TokenKind::LParen)?;
        if self.peek_kind() == &TokenKind::StarOp {
            if func != AggFunc::CountRows {
                return Err(SqlError::parse(offset, "`*` is only valid in count(*)"));
            }
            self.advance();
            self.expect(TokenKind::RParen)?;
            return Ok(ScalarExpr::Agg {
                func: AggFunc::CountRows,
                arg: None,
            });
        }
        let arg = self.scalar_expr()?;
        self.expect(TokenKind::RParen)?;
        let func = if func == AggFunc::CountRows {
            AggFunc::CountNonNull
        } else {
            func
        };
        Ok(ScalarExpr::Agg {
            func,
            arg: Some(Box::new(arg)),
        })
    }

    // ---- scalar expressions ---------------------------------------------

    fn scalar_expr(&mut self) -> Result<ScalarExpr, SqlError> {
        let mut left = self.term()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Plus => ArithOp::Add,
                TokenKind::Minus => ArithOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.term()?;
            left = ScalarExpr::Arith {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn term(&mut self) -> Result<ScalarExpr, SqlError> {
        let mut left = self.factor()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::StarOp => ArithOp::Mul,
                TokenKind::Slash => ArithOp::Div,
                _ => break,
            };
            self.advance();
            let right = self.factor()?;
            left = ScalarExpr::Arith {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn factor(&mut self) -> Result<ScalarExpr, SqlError> {
        match self.peek_kind().clone() {
            TokenKind::Int(v) => {
                self.advance();
                Ok(ScalarExpr::Literal(Value::Int(v)))
            }
            TokenKind::Decimal(v) => {
                self.advance();
                Ok(ScalarExpr::Literal(Value::Decimal(v)))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(ScalarExpr::Literal(Value::Str(s)))
            }
            TokenKind::Minus => {
                self.advance();
                let inner = self.factor()?;
                Ok(match inner {
                    ScalarExpr::Literal(Value::Int(v)) => ScalarExpr::Literal(Value::Int(-v)),
                    ScalarExpr::Literal(Value::Decimal(v)) => {
                        ScalarExpr::Literal(Value::Decimal(-v))
                    }
                    ScalarExpr::Literal(Value::Float(v)) => ScalarExpr::Literal(Value::Float(-v)),
                    other => ScalarExpr::Arith {
                        op: ArithOp::Sub,
                        left: Box::new(ScalarExpr::Literal(Value::Int(0))),
                        right: Box::new(other),
                    },
                })
            }
            TokenKind::Keyword(Keyword::Null) => {
                self.advance();
                Ok(ScalarExpr::Literal(Value::Null))
            }
            TokenKind::Keyword(Keyword::True) => {
                self.advance();
                Ok(ScalarExpr::Literal(Value::Bool(true)))
            }
            TokenKind::Keyword(Keyword::False) => {
                self.advance();
                Ok(ScalarExpr::Literal(Value::Bool(false)))
            }
            TokenKind::Keyword(Keyword::Date) => {
                self.advance();
                let offset = self.peek().offset;
                match self.peek_kind().clone() {
                    TokenKind::Str(s) => {
                        self.advance();
                        let days = parse_date(&s)
                            .ok_or_else(|| SqlError::parse(offset, "bad date literal"))?;
                        Ok(ScalarExpr::Literal(Value::Date(days)))
                    }
                    other => Err(SqlError::parse(
                        offset,
                        format!("expected date string after DATE, found {other}"),
                    )),
                }
            }
            TokenKind::LParen => {
                self.advance();
                let e = self.scalar_expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(first) => {
                self.advance();
                if self.peek_kind() == &TokenKind::LParen {
                    return self.agg_call(&first);
                }
                if self.peek_kind() == &TokenKind::Dot {
                    self.advance();
                    let name = self.ident()?;
                    Ok(ScalarExpr::Column {
                        qualifier: Some(first),
                        name,
                    })
                } else {
                    Ok(ScalarExpr::Column {
                        qualifier: None,
                        name: first,
                    })
                }
            }
            other => Err(SqlError::parse(
                self.peek().offset,
                format!("expected expression, found {other}"),
            )),
        }
    }
}

/// Parse `YYYY-MM-DD` into days since 1970-01-01 (proleptic Gregorian).
pub fn parse_date(s: &str) -> Option<i32> {
    nra_storage::value::parse_date_str(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_select() {
        let q = parse("select a, t.b from t where a > 1 and b = 'x'").unwrap();
        assert_eq!(q.select.len(), 2);
        assert_eq!(q.from[0].table, "t");
        assert!(q.where_clause.is_some());
    }

    #[test]
    fn parses_wildcard_and_alias() {
        let q = parse("select * from lineitem as l").unwrap();
        assert_eq!(q.select, vec![SelectItem::Wildcard]);
        assert_eq!(q.from[0].exposed(), "l");
        let q2 = parse("select * from lineitem l").unwrap();
        assert_eq!(q2.from[0].exposed(), "l");
    }

    #[test]
    fn parses_paper_query_q() {
        // The two-level nested Query Q from Section 2 of the paper.
        let q = parse(
            "select r.b, r.c, r.d from r \
             where r.a > 1 and r.b not in \
               (select s.e from s where s.f = 5 and r.d = s.g and s.h > all \
                  (select t.j from t where t.k = r.c and t.l <> s.i))",
        )
        .unwrap();
        let w = q.where_clause.unwrap();
        match w {
            Predicate::And(_, right) => match *right {
                Predicate::InSubquery { negated, query, .. } => {
                    assert!(negated);
                    match query.where_clause.unwrap() {
                        Predicate::And(_, inner) => {
                            assert!(matches!(
                                *inner,
                                Predicate::Quantified {
                                    quantifier: Quantifier::All,
                                    ..
                                }
                            ));
                        }
                        other => panic!("unexpected inner where: {other}"),
                    }
                }
                other => panic!("expected NOT IN, got {other}"),
            },
            other => panic!("expected AND, got {other}"),
        }
    }

    #[test]
    fn parses_quantifiers_and_exists() {
        let q = parse(
            "select a from t where a > all (select b from u) \
             and a < any (select b from u) and exists (select * from v) \
             and not exists (select * from w)",
        )
        .unwrap();
        let s = q.to_string();
        assert!(s.contains("all"));
        assert!(s.contains("some"));
        assert!(s.contains("not exists"));
    }

    #[test]
    fn not_wraps_predicates() {
        let q = parse("select a from t where not a = 1").unwrap();
        assert!(matches!(q.where_clause.unwrap(), Predicate::Not(_)));
    }

    #[test]
    fn parses_between_and_is_null() {
        let q = parse("select a from t where a between 1 and 10 and b is not null and c is null")
            .unwrap();
        let s = q.to_string();
        assert!(s.contains("between 1 and 10"));
        assert!(s.contains("is not null"));
    }

    #[test]
    fn parses_in_list() {
        let q = parse("select a from t where a not in (1, 2, 3)").unwrap();
        match q.where_clause.unwrap() {
            Predicate::InList { list, negated, .. } => {
                assert!(negated);
                assert_eq!(list.len(), 3);
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn parses_parenthesized_predicate_and_expression() {
        let q = parse("select a from t where (a = 1 or b = 2) and (a + b) > 3").unwrap();
        assert!(matches!(q.where_clause.unwrap(), Predicate::And(_, _)));
    }

    #[test]
    fn parses_arithmetic_precedence() {
        let q = parse("select a from t where a + b * 2 > 10").unwrap();
        match q.where_clause.unwrap() {
            Predicate::Cmp {
                left: ScalarExpr::Arith { op, .. },
                ..
            } => {
                assert_eq!(op, ArithOp::Add, "multiplication binds tighter");
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn parses_date_literals() {
        let q = parse("select a from t where d >= date '1995-01-01'").unwrap();
        match q.where_clause.unwrap() {
            Predicate::Cmp {
                right: ScalarExpr::Literal(Value::Date(days)),
                ..
            } => {
                assert_eq!(days, 9131); // 25 years * 365.25 ≈ 9131
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn date_epoch_is_zero() {
        assert_eq!(parse_date("1970-01-01"), Some(0));
        assert_eq!(parse_date("1970-01-02"), Some(1));
        assert_eq!(parse_date("1969-12-31"), Some(-1));
        assert_eq!(parse_date("2000-03-01"), Some(11017));
        assert_eq!(parse_date("nope"), None);
        assert_eq!(parse_date("1970-13-01"), None);
    }

    #[test]
    fn negative_literals() {
        let q = parse("select a from t where a > -5 and b > -2.50").unwrap();
        let s = q.to_string();
        assert!(s.contains("-5"));
        assert!(s.contains("-2.50"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("select from t").is_err());
        assert!(parse("select a t").is_err());
        assert!(parse("select a from t where").is_err());
        assert!(parse("select a from t where a >").is_err());
        assert!(parse("select a from t where a = 1 1").is_err());
        // `from t extra` is legal (alias without AS)
        assert!(parse("select a from t extra").is_ok());
    }

    #[test]
    fn analyze_statement_parses() {
        assert_eq!(
            parse_analyze("analyze orders").unwrap(),
            Some("orders".to_string())
        );
        assert_eq!(
            parse_analyze("ANALYZE Orders;").unwrap(),
            Some("orders".to_string())
        );
        assert_eq!(parse_analyze("select a from t").unwrap(), None);
        assert!(parse_analyze("analyze").is_err());
        assert!(parse_analyze("analyze t extra").is_err());
        match parse_statement("analyze t").unwrap() {
            Statement::Analyze { table } => assert_eq!(table, "t"),
            other => panic!("not an ANALYZE: {other:?}"),
        }
        assert!(matches!(
            parse_statement("select a from t").unwrap(),
            Statement::Query(_)
        ));
    }

    #[test]
    fn display_roundtrip_reparses() {
        let inputs = [
            "select a from t where a > all (select b from u where u.x = t.y)",
            "select r.b from r where r.b not in (select s.e from s where s.f = 5)",
            "select a, b from t, u where t.x = u.y and a between 1 and 2",
        ];
        for input in inputs {
            let once = parse(input).unwrap();
            let twice = parse(&once.to_string()).unwrap();
            assert_eq!(once, twice, "roundtrip failed for {input}");
        }
    }
}
