//! Error type for the SQL front end.

use std::fmt;

use nra_storage::StorageError;

/// Errors from lexing, parsing or binding.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lexical error at a byte offset.
    Lex { offset: usize, message: String },
    /// Parse error at a byte offset.
    Parse { offset: usize, message: String },
    /// Semantic (binding) error.
    Bind(String),
    /// Underlying catalog/schema error.
    Storage(StorageError),
}

impl SqlError {
    pub fn lex(offset: usize, message: impl Into<String>) -> SqlError {
        SqlError::Lex {
            offset,
            message: message.into(),
        }
    }

    pub fn parse(offset: usize, message: impl Into<String>) -> SqlError {
        SqlError::Parse {
            offset,
            message: message.into(),
        }
    }

    pub fn bind(message: impl Into<String>) -> SqlError {
        SqlError::Bind(message.into())
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { offset, message } => write!(f, "lex error at byte {offset}: {message}"),
            SqlError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            SqlError::Bind(m) => write!(f, "bind error: {m}"),
            SqlError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<StorageError> for SqlError {
    fn from(e: StorageError) -> SqlError {
        SqlError::Storage(e)
    }
}
