//! The binder: resolves names against the catalog and turns the AST into a
//! [`BoundQuery`] — a tree of query blocks with linking and correlated
//! predicates classified per the paper's Section 2 terminology.
//!
//! Key invariant established here: every bound column reference is a
//! *query-wide unique* qualified name. If two blocks reference the same
//! table (or alias), the binder renames the later instance (`lineitem`,
//! `lineitem_2`, ...), so the flattened joined relations built by the
//! execution strategies can carry every block's columns side by side
//! without collisions.

use std::collections::{HashMap, HashSet};

use nra_storage::{AggFunc, Catalog, CmpOp, Schema};

use crate::ast::{Predicate, Quantifier, ScalarExpr, SelectItem, SelectStmt};
use crate::block::{BoundQuery, BoundTable, LinkOp, QueryBlock, SubqueryEdge};
use crate::bound::{BExpr, BPred};
use crate::error::SqlError;

/// Bind a parsed statement against a catalog.
///
/// When query-lifecycle tracing is active ([`nra_obs::trace`]), binding
/// runs under a `bind` phase and a `Bound` event reports the block count
/// and the linking operators found during block analysis.
pub fn bind(stmt: &SelectStmt, catalog: &Catalog) -> Result<BoundQuery, SqlError> {
    let _phase = nra_obs::trace::phase(|| "bind".to_string());
    let mut binder = Binder {
        catalog,
        used_names: HashSet::new(),
        next_id: 1,
        qualifier_block: HashMap::new(),
    };
    let mut scopes = Vec::new();
    let (root, _, _) = binder.bind_block(stmt, &mut scopes, BlockRole::Root)?;
    let num_blocks = binder.next_id - 1;
    let query = BoundQuery {
        root,
        qualifier_block: binder.qualifier_block,
        num_blocks,
    };
    nra_obs::trace::emit(|| nra_obs::trace::TraceEvent::Bound {
        blocks: query.num_blocks,
        linking_ops: query.link_ops().iter().map(|op| op.describe()).collect(),
    });
    Ok(query)
}

/// Convenience: parse then bind.
pub fn parse_and_bind(sql: &str, catalog: &Catalog) -> Result<BoundQuery, SqlError> {
    let stmt = crate::parser::parse(sql)?;
    bind(&stmt, catalog)
}

#[derive(Clone, Copy, PartialEq)]
enum BlockRole {
    Root,
    /// Inner block whose select item is the linked attribute.
    InnerValue,
    /// Inner block of a scalar subquery comparison: the select item must
    /// be a single aggregate call.
    InnerAgg,
    /// Inner block of an `[NOT] EXISTS` (select list irrelevant).
    InnerExists,
}

/// One level of name scope: the tables visible in a block.
struct ScopeBlock {
    /// `(name as written in the query, exposed unique name, base schema)`
    tables: Vec<(String, String, Schema)>,
}

struct Binder<'a> {
    catalog: &'a Catalog,
    used_names: HashSet<String>,
    next_id: usize,
    qualifier_block: HashMap<String, usize>,
}

impl<'a> Binder<'a> {
    fn bind_block(
        &mut self,
        stmt: &SelectStmt,
        scopes: &mut Vec<ScopeBlock>,
        role: BlockRole,
    ) -> Result<(QueryBlock, Option<BExpr>, Option<AggFunc>), SqlError> {
        let id = self.next_id;
        self.next_id += 1;

        if stmt.from.is_empty() {
            return Err(SqlError::bind("FROM clause must name at least one table"));
        }

        // Resolve FROM items, uniquifying exposed qualifiers query-wide.
        let mut scope = ScopeBlock { tables: Vec::new() };
        let mut tables = Vec::new();
        for tref in &stmt.from {
            let table = self.catalog.table(&tref.table)?;
            let written = tref.exposed().to_string();
            // `__b<i>` qualifiers are reserved for the engine's synthesized
            // row-id / computed-link columns; a user table exposed under
            // that prefix would be misclassified by column-ownership checks.
            if written.starts_with("__b") {
                return Err(SqlError::bind(format!(
                    "table name or alias `{written}` collides with the reserved                      `__b` prefix; use a different alias"
                )));
            }
            if scope.tables.iter().any(|(w, _, _)| *w == written) {
                return Err(SqlError::bind(format!(
                    "duplicate table name `{written}` in FROM clause; use aliases"
                )));
            }
            let exposed = self.uniquify(&written);
            self.qualifier_block.insert(exposed.clone(), id);
            scope
                .tables
                .push((written, exposed.clone(), table.schema().clone()));
            tables.push(BoundTable {
                table: tref.table.clone(),
                exposed,
            });
        }
        scopes.push(scope);

        // Bind the select list.
        let mut select = Vec::new();
        let mut inner_expr = None;
        let mut agg_func = None;
        match role {
            BlockRole::Root => {
                for item in &stmt.select {
                    match item {
                        SelectItem::Wildcard => {
                            let scope = scopes.last().unwrap();
                            for (_, exposed, schema) in &scope.tables {
                                for col in schema.columns() {
                                    let name = format!("{exposed}.{}", col.base_name());
                                    select.push((name.clone(), BExpr::Col(name)));
                                }
                            }
                        }
                        SelectItem::Expr(e) => {
                            let bound = self.bind_scalar(e, scopes)?;
                            let name = match &bound {
                                BExpr::Col(c) => c.clone(),
                                _ => format!("expr{}", select.len() + 1),
                            };
                            select.push((name, bound));
                        }
                    }
                }
            }
            BlockRole::InnerValue => {
                if stmt.select.len() != 1 {
                    return Err(SqlError::bind(
                        "a subquery used with IN/SOME/ANY/ALL must select exactly one column",
                    ));
                }
                match &stmt.select[0] {
                    SelectItem::Wildcard => {
                        return Err(SqlError::bind(
                            "a subquery used with IN/SOME/ANY/ALL cannot select *",
                        ))
                    }
                    SelectItem::Expr(ScalarExpr::Agg { .. }) => {
                        return Err(SqlError::bind(
                            "an aggregate subquery cannot be used with IN/SOME/ANY/ALL; \
                             compare it directly (e.g. `a > (select max(b) ...)`)",
                        ))
                    }
                    SelectItem::Expr(e) => inner_expr = Some(self.bind_scalar(e, scopes)?),
                }
            }
            BlockRole::InnerAgg => {
                if stmt.select.len() != 1 {
                    return Err(SqlError::bind(
                        "a scalar subquery must select exactly one aggregate",
                    ));
                }
                match &stmt.select[0] {
                    SelectItem::Expr(ScalarExpr::Agg { func, arg }) => {
                        agg_func = Some(*func);
                        inner_expr = arg
                            .as_ref()
                            .map(|a| self.bind_scalar(a, scopes))
                            .transpose()?;
                    }
                    _ => {
                        return Err(SqlError::bind(
                            "a scalar subquery used in a comparison must select a single \
                             aggregate (min/max/sum/avg/count); plain-column scalar \
                             subqueries are not supported",
                        ))
                    }
                }
            }
            BlockRole::InnerExists => {
                // `EXISTS (SELECT anything ...)` — the select list is
                // semantically irrelevant; bind it only to validate names.
                for item in &stmt.select {
                    if let SelectItem::Expr(e) = item {
                        self.bind_scalar(e, scopes)?;
                    }
                }
            }
        }

        // Bind the WHERE clause: normalize NOT inward, split the top-level
        // conjunction, classify each conjunct.
        let mut local_preds = Vec::new();
        let mut correlated_preds = Vec::new();
        let mut children = Vec::new();
        if let Some(w) = &stmt.where_clause {
            let normalized = normalize_not(w.clone(), false);
            for conjunct in split_conjuncts(normalized) {
                match conjunct {
                    Predicate::Exists { query, negated } => {
                        let link = if negated {
                            LinkOp::NotExists
                        } else {
                            LinkOp::Exists
                        };
                        let (block, _, _) =
                            self.bind_block(&query, scopes, BlockRole::InnerExists)?;
                        children.push(SubqueryEdge {
                            link,
                            outer_expr: None,
                            inner_expr: None,
                            block,
                        });
                    }
                    Predicate::InSubquery {
                        expr,
                        query,
                        negated,
                    } => {
                        let outer = self.bind_scalar(&expr, scopes)?;
                        let link = if negated {
                            LinkOp::All(CmpOp::Ne)
                        } else {
                            LinkOp::Some(CmpOp::Eq)
                        };
                        let (block, inner, _) =
                            self.bind_block(&query, scopes, BlockRole::InnerValue)?;
                        children.push(SubqueryEdge {
                            link,
                            outer_expr: Some(outer),
                            inner_expr: inner,
                            block,
                        });
                    }
                    Predicate::Quantified {
                        expr,
                        op,
                        quantifier,
                        query,
                    } => {
                        let outer = self.bind_scalar(&expr, scopes)?;
                        let link = match quantifier {
                            Quantifier::Some => LinkOp::Some(op),
                            Quantifier::All => LinkOp::All(op),
                        };
                        let (block, inner, _) =
                            self.bind_block(&query, scopes, BlockRole::InnerValue)?;
                        children.push(SubqueryEdge {
                            link,
                            outer_expr: Some(outer),
                            inner_expr: inner,
                            block,
                        });
                    }
                    Predicate::CmpSubquery { expr, op, query } => {
                        let outer = self.bind_scalar(&expr, scopes)?;
                        let (block, inner, func) =
                            self.bind_block(&query, scopes, BlockRole::InnerAgg)?;
                        children.push(SubqueryEdge {
                            link: LinkOp::Agg {
                                op,
                                func: func.expect("InnerAgg role yields a function"),
                            },
                            outer_expr: Some(outer),
                            inner_expr: inner,
                            block,
                        });
                    }
                    other => {
                        if contains_subquery(&other) {
                            return Err(SqlError::bind(
                                "subquery predicates are only supported as top-level \
                                 conjuncts (not under OR or inside other predicates)",
                            ));
                        }
                        let bound = self.bind_pred(&other, scopes)?;
                        let own = &scopes.last().unwrap().tables;
                        let is_local = bound.columns().iter().all(|c| {
                            c.rsplit_once('.')
                                .map(|(q, _)| own.iter().any(|(_, e, _)| e == q))
                                .unwrap_or(false)
                        });
                        if is_local {
                            local_preds.push(bound);
                        } else {
                            correlated_preds.push(bound);
                        }
                    }
                }
            }
        }

        scopes.pop();
        Ok((
            QueryBlock {
                id,
                tables,
                select,
                distinct: stmt.distinct && role == BlockRole::Root,
                local_preds,
                correlated_preds,
                children,
            },
            inner_expr,
            agg_func,
        ))
    }

    fn uniquify(&mut self, desired: &str) -> String {
        let mut name = desired.to_string();
        let mut n = 1;
        while !self.used_names.insert(name.clone()) {
            n += 1;
            name = format!("{desired}_{n}");
        }
        name
    }

    fn bind_scalar(&mut self, e: &ScalarExpr, scopes: &[ScopeBlock]) -> Result<BExpr, SqlError> {
        Ok(match e {
            ScalarExpr::Literal(v) => BExpr::Lit(v.clone()),
            ScalarExpr::Column { qualifier, name } => {
                BExpr::Col(self.resolve_column(qualifier.as_deref(), name, scopes)?)
            }
            ScalarExpr::Arith { op, left, right } => BExpr::Arith {
                op: *op,
                left: Box::new(self.bind_scalar(left, scopes)?),
                right: Box::new(self.bind_scalar(right, scopes)?),
            },
            ScalarExpr::Agg { .. } => {
                return Err(SqlError::bind(
                    "aggregates are only allowed as the select item of a scalar subquery",
                ))
            }
        })
    }

    /// SQL scoping: search the current block's tables first, then enclosing
    /// blocks outward.
    fn resolve_column(
        &self,
        qualifier: Option<&str>,
        name: &str,
        scopes: &[ScopeBlock],
    ) -> Result<String, SqlError> {
        for scope in scopes.iter().rev() {
            match qualifier {
                Some(q) => {
                    if let Some((_, exposed, schema)) =
                        scope.tables.iter().find(|(written, _, _)| written == q)
                    {
                        return match schema.resolve(name) {
                            Ok(_) => Ok(format!("{exposed}.{name}")),
                            Err(_) => Err(SqlError::bind(format!(
                                "table `{q}` has no column `{name}`"
                            ))),
                        };
                    }
                }
                None => {
                    let matches: Vec<&(String, String, Schema)> = scope
                        .tables
                        .iter()
                        .filter(|(_, _, schema)| schema.try_resolve(name).is_some())
                        .collect();
                    match matches.len() {
                        0 => {}
                        1 => return Ok(format!("{}.{name}", matches[0].1)),
                        _ => return Err(SqlError::bind(format!("column `{name}` is ambiguous"))),
                    }
                }
            }
        }
        Err(SqlError::bind(match qualifier {
            Some(q) => format!("unknown column `{q}.{name}`"),
            None => format!("unknown column `{name}`"),
        }))
    }

    fn bind_pred(&mut self, p: &Predicate, scopes: &[ScopeBlock]) -> Result<BPred, SqlError> {
        Ok(match p {
            Predicate::Cmp { left, op, right } => BPred::Cmp {
                left: self.bind_scalar(left, scopes)?,
                op: *op,
                right: self.bind_scalar(right, scopes)?,
            },
            Predicate::Between {
                expr,
                low,
                high,
                negated,
            } => BPred::Between {
                expr: self.bind_scalar(expr, scopes)?,
                low: self.bind_scalar(low, scopes)?,
                high: self.bind_scalar(high, scopes)?,
                negated: *negated,
            },
            Predicate::IsNull { expr, negated } => BPred::IsNull {
                expr: self.bind_scalar(expr, scopes)?,
                negated: *negated,
            },
            Predicate::InList {
                expr,
                list,
                negated,
            } => BPred::InList {
                expr: self.bind_scalar(expr, scopes)?,
                list: list
                    .iter()
                    .map(|e| self.bind_scalar(e, scopes))
                    .collect::<Result<_, _>>()?,
                negated: *negated,
            },
            Predicate::And(a, b) => BPred::And(
                Box::new(self.bind_pred(a, scopes)?),
                Box::new(self.bind_pred(b, scopes)?),
            ),
            Predicate::Or(a, b) => BPred::Or(
                Box::new(self.bind_pred(a, scopes)?),
                Box::new(self.bind_pred(b, scopes)?),
            ),
            Predicate::Not(inner) => BPred::Not(Box::new(self.bind_pred(inner, scopes)?)),
            Predicate::Exists { .. }
            | Predicate::InSubquery { .. }
            | Predicate::Quantified { .. }
            | Predicate::CmpSubquery { .. } => {
                return Err(SqlError::bind(
                    "internal: subquery predicate reached bind_pred",
                ))
            }
        })
    }
}

/// Push `NOT` down to atoms. Exact in three-valued logic: De Morgan for
/// AND/OR, `¬(a θ b) = a θ̄ b`, toggled `negated` flags for the rest, and
/// `¬(A θ ALL q) = A θ̄ SOME q` (and dually) for quantified predicates.
fn normalize_not(p: Predicate, negate: bool) -> Predicate {
    match p {
        Predicate::Not(inner) => normalize_not(*inner, !negate),
        Predicate::And(a, b) => {
            let a = normalize_not(*a, negate);
            let b = normalize_not(*b, negate);
            if negate {
                Predicate::Or(Box::new(a), Box::new(b))
            } else {
                Predicate::And(Box::new(a), Box::new(b))
            }
        }
        Predicate::Or(a, b) => {
            let a = normalize_not(*a, negate);
            let b = normalize_not(*b, negate);
            if negate {
                Predicate::And(Box::new(a), Box::new(b))
            } else {
                Predicate::Or(Box::new(a), Box::new(b))
            }
        }
        Predicate::Cmp { left, op, right } if negate => Predicate::Cmp {
            left,
            op: op.negate(),
            right,
        },
        Predicate::Between {
            expr,
            low,
            high,
            negated,
        } if negate => Predicate::Between {
            expr,
            low,
            high,
            negated: !negated,
        },
        Predicate::IsNull { expr, negated } if negate => Predicate::IsNull {
            expr,
            negated: !negated,
        },
        Predicate::InList {
            expr,
            list,
            negated,
        } if negate => Predicate::InList {
            expr,
            list,
            negated: !negated,
        },
        Predicate::Exists { query, negated } if negate => Predicate::Exists {
            query,
            negated: !negated,
        },
        Predicate::InSubquery {
            expr,
            query,
            negated,
        } if negate => Predicate::InSubquery {
            expr,
            query,
            negated: !negated,
        },
        Predicate::Quantified {
            expr,
            op,
            quantifier,
            query,
        } if negate => {
            let quantifier = match quantifier {
                Quantifier::Some => Quantifier::All,
                Quantifier::All => Quantifier::Some,
            };
            Predicate::Quantified {
                expr,
                op: op.negate(),
                quantifier,
                query,
            }
        }
        // ¬(A θ (select agg ...)) = A θ̄ (select agg ...): a scalar
        // comparison, exact in 3VL.
        Predicate::CmpSubquery { expr, op, query } if negate => Predicate::CmpSubquery {
            expr,
            op: op.negate(),
            query,
        },
        other => other,
    }
}

/// Flatten the top-level conjunction.
fn split_conjuncts(p: Predicate) -> Vec<Predicate> {
    match p {
        Predicate::And(a, b) => {
            let mut v = split_conjuncts(*a);
            v.extend(split_conjuncts(*b));
            v
        }
        other => vec![other],
    }
}

fn contains_subquery(p: &Predicate) -> bool {
    match p {
        Predicate::Exists { .. }
        | Predicate::InSubquery { .. }
        | Predicate::Quantified { .. }
        | Predicate::CmpSubquery { .. } => true,
        Predicate::And(a, b) | Predicate::Or(a, b) => contains_subquery(a) || contains_subquery(b),
        Predicate::Not(inner) => contains_subquery(inner),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nra_storage::{Column, ColumnType, Table};

    /// Catalog with the paper's R(A,B,C,D), S(E,F,G,H,I), T(J,K,L).
    pub fn rst_catalog() -> Catalog {
        let mut cat = Catalog::new();
        let mk = |name: &str, cols: &[&str], pk: &str| {
            let schema = Schema::new(
                cols.iter()
                    .map(|c| {
                        if *c == pk {
                            Column::not_null(*c, ColumnType::Int)
                        } else {
                            Column::new(*c, ColumnType::Int)
                        }
                    })
                    .collect(),
            );
            let mut t = Table::new(name, schema);
            t.set_primary_key(&[pk]).unwrap();
            t
        };
        cat.add_table(mk("r", &["a", "b", "c", "d"], "d")).unwrap();
        cat.add_table(mk("s", &["e", "f", "g", "h", "i"], "i"))
            .unwrap();
        cat.add_table(mk("t", &["j", "k", "l"], "l")).unwrap();
        cat
    }

    const QUERY_Q: &str = "select r.b, r.c, r.d from r \
         where r.a > 1 and r.b not in \
           (select s.e from s where s.f = 5 and r.d = s.g and s.h > all \
              (select t.j from t where t.k = r.c and t.l <> s.i))";

    #[test]
    fn binds_paper_query_q() {
        let cat = rst_catalog();
        let bq = parse_and_bind(QUERY_Q, &cat).unwrap();
        assert_eq!(bq.num_blocks, 3);
        assert_eq!(bq.root.id, 1);
        assert_eq!(bq.root.select.len(), 3);
        assert_eq!(bq.root.local_preds.len(), 1); // r.a > 1
        assert_eq!(bq.root.children.len(), 1);

        let edge2 = &bq.root.children[0];
        assert_eq!(edge2.link, LinkOp::All(CmpOp::Ne)); // NOT IN
        assert_eq!(edge2.outer_expr, Some(BExpr::col("r.b")));
        assert_eq!(edge2.inner_expr, Some(BExpr::col("s.e")));
        let b2 = &edge2.block;
        assert_eq!(b2.id, 2);
        assert_eq!(b2.local_preds.len(), 1); // s.f = 5
        assert_eq!(b2.correlated_preds.len(), 1); // r.d = s.g
        assert_eq!(b2.children.len(), 1);

        let edge3 = &b2.children[0];
        assert_eq!(edge3.link, LinkOp::All(CmpOp::Gt));
        let b3 = &edge3.block;
        assert_eq!(b3.id, 3);
        // t.k = r.c correlates to block 1, t.l <> s.i to block 2.
        assert_eq!(b3.correlated_preds.len(), 2);
        assert!(bq.root.is_linear());
        assert!(!bq.is_linear_correlated(), "block 3 references block 1");
        assert!(!bq.has_mixed_links(), "both links are negative");
    }

    #[test]
    fn linear_correlated_detection() {
        let cat = rst_catalog();
        // The paper's §4.2.3 variant of Query Q: drop t.k = r.c, change
        // t.l <> s.i to t.l = s.i.
        let bq = parse_and_bind(
            "select r.b from r where r.b not in \
               (select s.e from s where r.d = s.g and s.h > all \
                  (select t.j from t where t.l = s.i))",
            &cat,
        )
        .unwrap();
        assert!(bq.is_linear_correlated());
    }

    #[test]
    fn scoping_resolves_unqualified_names_outward() {
        let cat = rst_catalog();
        let bq = parse_and_bind(
            "select b from r where exists (select * from s where g = d)",
            &cat,
        )
        .unwrap();
        let inner = &bq.root.children[0].block;
        // g resolves to s (inner), d to r (outer) -> correlated.
        assert_eq!(inner.correlated_preds.len(), 1);
        let cols = inner.correlated_preds[0].columns();
        assert!(cols.contains(&"s.g"));
        assert!(cols.contains(&"r.d"));
    }

    #[test]
    fn duplicate_table_reference_is_renamed() {
        let cat = rst_catalog();
        let bq = parse_and_bind(
            "select b from r where b in (select a from r r2 where r2.d = r.d)",
            &cat,
        )
        .unwrap();
        let inner = &bq.root.children[0].block;
        assert_eq!(inner.tables[0].exposed, "r2");
        assert_eq!(bq.owner_block("r2.a"), Some(2));
        assert_eq!(bq.owner_block("r.a"), Some(1));
    }

    #[test]
    fn same_table_same_name_gets_uniquified() {
        let cat = rst_catalog();
        let bq = parse_and_bind(
            "select b from r where exists (select * from r where a = 1)",
            &cat,
        );
        // Inner `r` must be renamed to keep qualifiers query-wide unique.
        let bq = bq.unwrap();
        assert_eq!(bq.root.children[0].block.tables[0].exposed, "r_2");
    }

    #[test]
    fn not_normalization_flips_quantifiers() {
        let cat = rst_catalog();
        let bq =
            parse_and_bind("select b from r where not b > all (select e from s)", &cat).unwrap();
        assert_eq!(bq.root.children[0].link, LinkOp::Some(CmpOp::Le));
    }

    #[test]
    fn not_exists_binds_negated() {
        let cat = rst_catalog();
        let bq = parse_and_bind(
            "select b from r where not exists (select * from s where s.g = r.d)",
            &cat,
        )
        .unwrap();
        assert_eq!(bq.root.children[0].link, LinkOp::NotExists);
        assert!(!bq.all_links_positive());
    }

    #[test]
    fn mixed_links_detected() {
        let cat = rst_catalog();
        let bq = parse_and_bind(
            "select b from r where b in (select e from s) \
             and b > all (select j from t)",
            &cat,
        )
        .unwrap();
        assert!(bq.has_mixed_links());
        assert!(!bq.root.is_linear(), "two children at the root");
        assert_eq!(bq.root.block_count(), 3);
        assert_eq!(bq.root.nesting_depth(), 1);
    }

    #[test]
    fn rejects_subquery_under_or() {
        let cat = rst_catalog();
        let err = parse_and_bind(
            "select b from r where a = 1 or exists (select * from s)",
            &cat,
        )
        .unwrap_err();
        assert!(matches!(err, SqlError::Bind(_)));
    }

    #[test]
    fn rejects_reserved_synthetic_prefix() {
        let cat = rst_catalog();
        let err = parse_and_bind("select a from r __b1", &cat).unwrap_err();
        assert!(err.to_string().contains("reserved"), "{err}");
    }

    #[test]
    fn rejects_bad_names() {
        let cat = rst_catalog();
        assert!(parse_and_bind("select b from missing", &cat).is_err());
        assert!(parse_and_bind("select nope from r", &cat).is_err());
        assert!(parse_and_bind("select r.nope from r", &cat).is_err());
        assert!(parse_and_bind("select x.b from r", &cat).is_err());
    }

    #[test]
    fn rejects_multi_column_value_subquery() {
        let cat = rst_catalog();
        assert!(parse_and_bind("select b from r where b in (select e, f from s)", &cat).is_err());
        assert!(parse_and_bind("select b from r where b in (select * from s)", &cat).is_err());
    }

    #[test]
    fn ambiguous_unqualified_column_rejected() {
        let cat = rst_catalog();
        // Both r and s are in scope in the inner block: `g` is fine (only
        // s has it) but a column present in both `r` and `t`? None exist,
        // so test within one block with two tables sharing no columns:
        // instead check ambiguity inside a single block listing the same
        // table twice under different aliases.
        let err = parse_and_bind("select a from r x, r y", &cat).unwrap_err();
        assert!(matches!(err, SqlError::Bind(_)));
    }

    #[test]
    fn wildcard_expands_all_from_tables() {
        let cat = rst_catalog();
        let bq = parse_and_bind("select * from t", &cat).unwrap();
        let names: Vec<&str> = bq.root.select.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["t.j", "t.k", "t.l"]);
    }

    #[test]
    fn exists_ignores_select_list() {
        let cat = rst_catalog();
        let bq = parse_and_bind(
            "select b from r where exists (select j, k from t where t.k = r.c)",
            &cat,
        )
        .unwrap();
        assert_eq!(bq.root.children[0].inner_expr, None);
    }
}
