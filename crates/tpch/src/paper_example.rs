//! The paper's running example: relations `R(A,B,C,D)`, `S(E,F,G,H,I)`,
//! `T(J,K,L)` and the two-level nested Query Q of Section 2.
//!
//! The published figure's exact tuple values are not recoverable from the
//! available text, so this instance is constructed to exercise every
//! phenomenon the example demonstrates:
//!
//! * an outer tuple whose inner partner fails the `ALL` test and must be
//!   *excluded from the set without discarding the outer tuple* (`r1` —
//!   the pseudo-selection case);
//! * a NULL linking attribute compared against a non-empty set, giving
//!   *unknown* (`r3`'s partner `s3` with `H = NULL`);
//! * a NULL local attribute filtered by the outer block (`r4`);
//! * empty vs non-empty sets distinguished through carried keys after the
//!   unnesting outer joins.
//!
//! The expected answer is derived by hand in the comments below and
//! doubles as a golden test for every execution strategy.

use nra_storage::{Catalog, Column, ColumnType, Schema, Table, Value};

/// The paper's Query Q (Section 2), verbatim modulo identifier case.
pub const QUERY_Q: &str = "select r.b, r.c, r.d from r \
     where r.a > 1 and r.b not in \
       (select s.e from s where s.f = 5 and r.d = s.g and s.h > all \
          (select t.j from t where t.k = r.c and t.l <> s.i))";

fn int_col(name: &str, pk: bool) -> Column {
    if pk {
        Column::not_null(name, ColumnType::Int)
    } else {
        Column::new(name, ColumnType::Int)
    }
}

fn i(v: i64) -> Value {
    Value::Int(v)
}

fn null() -> Value {
    Value::Null
}

/// Build the example catalog. Primary keys: `R.D`, `S.I`, `T.L`.
pub fn rst_catalog() -> Catalog {
    let mut cat = Catalog::new();

    let mut r = Table::new(
        "r",
        Schema::new(vec![
            int_col("a", false),
            int_col("b", false),
            int_col("c", false),
            int_col("d", true),
        ]),
    );
    r.set_primary_key(&["d"]).unwrap();
    r.insert_many(vec![
        vec![i(2), i(2), i(3), i(1)],     // r1
        vec![i(3), i(4), i(5), i(2)],     // r2
        vec![i(5), i(6), i(7), i(3)],     // r3
        vec![null(), null(), i(5), i(4)], // r4 (A is NULL)
    ])
    .unwrap();
    cat.add_table(r).unwrap();

    let mut s = Table::new(
        "s",
        Schema::new(vec![
            int_col("e", false),
            int_col("f", false),
            int_col("g", false),
            int_col("h", false),
            int_col("i", true),
        ]),
    );
    s.set_primary_key(&["i"]).unwrap();
    s.insert_many(vec![
        vec![i(2), i(5), i(1), i(9), i(1)],   // s1: partner of r1
        vec![i(4), i(5), i(2), i(3), i(2)],   // s2: partner of r2
        vec![i(6), i(5), i(3), null(), i(3)], // s3: partner of r3, H NULL
        vec![i(8), i(7), i(1), i(5), i(4)],   // s4: filtered out (F <> 5)
    ])
    .unwrap();
    cat.add_table(s).unwrap();

    let mut t = Table::new(
        "t",
        Schema::new(vec![
            int_col("j", false),
            int_col("k", false),
            int_col("l", true),
        ]),
    );
    t.set_primary_key(&["l"]).unwrap();
    t.insert_many(vec![
        vec![i(5), i(3), i(1)],   // t1: K matches r1.C, but L = s1.I
        vec![i(12), i(3), i(2)],  // t2: K matches r1.C
        vec![i(1), i(5), i(3)],   // t3: K matches r2.C
        vec![null(), i(4), i(4)], // t4: matches no one
        vec![i(2), i(7), i(5)],   // t5: K matches r3.C
    ])
    .unwrap();
    cat.add_table(t).unwrap();

    cat
}

/// Hand-derived answer of Query Q on [`rst_catalog`]:
///
/// * `r1` (A=2>1, B=2, C=3, D=1): qualifying S rows with F=5, G=1: {s1}.
///   For s1, the inner block is `{t.j | t.k = 3 ∧ t.l ≠ 1}` = {12} (t1 is
///   excluded by `l ≠ 1`). `s1.H = 9 > ALL {12}` is **false**, so s1 drops
///   out of the set — but r1 must survive with the now-empty set:
///   `2 NOT IN {}` is **true** → r1 answers.
/// * `r2` (B=4, C=5, D=2): partner s2; inner set `{t.j | k=5 ∧ l≠2}` =
///   {1}; `3 > ALL {1}` true → set = {4}; `4 NOT IN {4}` false → out.
/// * `r3` (B=6, C=7, D=3): partner s3; inner set `{t.j | k=7 ∧ l≠3}` =
///   {2}; `NULL > ALL {2}` is **unknown** → s3 drops out → set empty →
///   `6 NOT IN {}` true → r3 answers.
/// * `r4`: `A > 1` is unknown (A NULL) → out.
pub fn expected_query_q_result() -> Vec<Vec<Value>> {
    vec![
        vec![i(2), i(3), i(1)], // r1
        vec![i(6), i(7), i(3)], // r3
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_shape() {
        let cat = rst_catalog();
        assert_eq!(cat.table("r").unwrap().len(), 4);
        assert_eq!(cat.table("s").unwrap().len(), 4);
        assert_eq!(cat.table("t").unwrap().len(), 5);
        assert_eq!(cat.table("r").unwrap().primary_key(), &[3]);
    }

    #[test]
    fn query_q_parses() {
        let cat = rst_catalog();
        let bq = nra_sql::parse_and_bind(QUERY_Q, &cat).unwrap();
        assert_eq!(bq.num_blocks, 3);
        assert_eq!(bq.root.nesting_depth(), 2);
    }
}
