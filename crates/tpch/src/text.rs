//! Small text helpers: date rendering and synthetic names.

pub use nra_storage::value::civil_from_days;

/// Render a day count as an SQL `date 'YYYY-MM-DD'` literal.
pub fn date_literal(days: i32) -> String {
    let (y, m, d) = civil_from_days(days);
    format!("date '{y:04}-{m:02}-{d:02}'")
}

/// A deterministic synthetic name like `part#000042`.
pub fn name(prefix: &str, key: i64) -> String {
    format!("{prefix}#{key:06}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use nra_sql::parser::parse_date;

    #[test]
    fn civil_roundtrips_with_parse_date() {
        for days in [-1000, -1, 0, 1, 365, 9131, 10_000, 20_000] {
            let (y, m, d) = civil_from_days(days);
            let s = format!("{y:04}-{m:02}-{d:02}");
            assert_eq!(parse_date(&s), Some(days), "roundtrip for {days} via {s}");
        }
    }

    #[test]
    fn date_literal_parses() {
        assert_eq!(date_literal(0), "date '1970-01-01'");
        assert_eq!(date_literal(9131), "date '1995-01-01'");
    }

    #[test]
    fn names_are_fixed_width() {
        assert_eq!(name("part", 42), "part#000042");
    }
}
