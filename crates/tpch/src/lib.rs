//! # nra-tpch
//!
//! Data substrate for the paper's evaluation:
//!
//! * [`tables`] — TPC-H table schemas (with the `NOT NULL` switch on money
//!   columns that drives the paper's Query 1 ablation);
//! * [`gen`] — seeded, size-parameterised data generation whose
//!   selectivity knobs reproduce the paper's query-block cardinalities;
//! * [`queries`] — builders for the paper's Query 1, Query 2a/2b and
//!   Query 3a/3b/3c (with the three correlated-predicate variants);
//! * [`paper_example`] — the Section 2 running example (`R`/`S`/`T`,
//!   Query Q) with a hand-derived golden answer.

pub mod gen;
pub mod paper_example;
pub mod queries;
pub mod tables;
pub mod text;

pub use gen::{generate, TpchConfig};
pub use queries::{q1_agg_sql, q1_sql, q2_sql, q3_sql, ExistsKind, Q3Corr, Quant};
