//! The paper's benchmark queries (Section 5), parameterised by target
//! query-block sizes.
//!
//! Each builder computes the selection constants (`X1`, `X2`, `Y`, `Z`)
//! from the actual data so the blocks hit the requested cardinalities, and
//! returns the SQL text — the same text every execution strategy consumes.

use nra_storage::{Catalog, Value};

use crate::gen::DATE_LO;
use crate::text::date_literal;

/// The quantifier variant of Query 2/3 (`< any` vs `< all`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quant {
    Any,
    All,
}

impl Quant {
    fn sql(self) -> &'static str {
        match self {
            Quant::Any => "any",
            Quant::All => "all",
        }
    }
}

/// The existential variant of Query 3's innermost block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExistsKind {
    Exists,
    NotExists,
}

impl ExistsKind {
    fn sql(self) -> &'static str {
        match self {
            ExistsKind::Exists => "exists",
            ExistsKind::NotExists => "not exists",
        }
    }
}

/// Query 3's correlated-predicate variants (paper Figures 7–9, cases
/// (a)/(b)/(c)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Q3Corr {
    /// (a) `p_partkey = l_partkey and ps_suppkey = l_suppkey`
    EqEq,
    /// (b) `p_partkey <> l_partkey and ps_suppkey = l_suppkey`
    NeEq,
    /// (c) `p_partkey = l_partkey and ps_suppkey <> l_suppkey`
    EqNe,
}

impl Q3Corr {
    fn ops(self) -> (&'static str, &'static str) {
        match self {
            Q3Corr::EqEq => ("=", "="),
            Q3Corr::NeEq => ("<>", "="),
            Q3Corr::EqNe => ("=", "<>"),
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            Q3Corr::EqEq => "(a) =,=",
            Q3Corr::NeEq => "(b) <>,=",
            Q3Corr::EqNe => "(c) =,<>",
        }
    }
}

/// The `k`-th smallest non-NULL value of `table.col` (1-based). Used to
/// turn a target block size into a selection constant.
pub fn kth_value(cat: &Catalog, table: &str, col: &str, k: usize) -> Option<Value> {
    let t = cat.table(table).ok()?;
    let idx = t.schema().try_resolve(col)?;
    let mut vals: Vec<&Value> = t
        .data()
        .rows()
        .iter()
        .map(|r| &r[idx])
        .filter(|v| !v.is_null())
        .collect();
    if vals.is_empty() || k == 0 {
        return None;
    }
    let k = k.min(vals.len());
    vals.sort_by(|a, b| a.total_cmp(b));
    Some(vals[k - 1].clone())
}

/// Count the rows of `table` satisfying `col <= v` (NULLs excluded) —
/// used to report achieved block sizes.
pub fn count_le(cat: &Catalog, table: &str, col: &str, v: &Value) -> usize {
    let t = cat.table(table).expect("table");
    let idx = t.schema().resolve(col).expect("column");
    t.data()
        .rows()
        .iter()
        .filter(|r| {
            matches!(
                r[idx].sql_cmp(v),
                Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
            )
        })
        .count()
}

fn literal(v: &Value) -> String {
    match v {
        Value::Date(d) => date_literal(*d),
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        other => other.to_string(),
    }
}

/// Paper Query 1: one-level nested, `> ALL` linking operator.
///
/// ```sql
/// select o_orderkey, o_orderpriority from orders
/// where o_orderdate >= X1 and o_orderdate < X2
///   and o_totalprice > all (select l_extendedprice from lineitem
///                           where l_orderkey = o_orderkey
///                             and l_commitdate < l_receiptdate
///                             and l_shipdate < l_commitdate)
/// ```
///
/// `X1` is the start of the date range; `X2` is chosen so roughly
/// `outer_target` orders qualify.
pub fn q1_sql(cat: &Catalog, outer_target: usize) -> String {
    let x1 = date_literal(DATE_LO);
    let x2 =
        literal(&kth_value(cat, "orders", "o_orderdate", outer_target).expect("orders has rows"));
    format!(
        "select o_orderkey, o_orderpriority from orders \
         where o_orderdate >= {x1} and o_orderdate < {x2} \
         and o_totalprice > all (select l_extendedprice from lineitem \
           where l_orderkey = o_orderkey and l_commitdate < l_receiptdate \
           and l_shipdate < l_commitdate)"
    )
}

/// Paper Query 2: two-level linear nested query over
/// `part`/`partsupp`/`lineitem`.
///
/// `quant = Any` gives Query 2a (mixed `ANY`/`NOT EXISTS`); `All` gives
/// Query 2b (negative `ALL`/`NOT EXISTS`).
pub fn q2_sql(cat: &Catalog, quant: Quant, part_target: usize, partsupp_target: usize) -> String {
    let x2 = literal(&kth_value(cat, "part", "p_size", part_target).expect("part has rows"));
    let y = literal(
        &kth_value(cat, "partsupp", "ps_availqty", partsupp_target).expect("partsupp has rows"),
    );
    let q = quant.sql();
    format!(
        "select p_partkey, p_name from part \
         where p_size >= 1 and p_size <= {x2} \
         and p_retailprice < {q} (select ps_supplycost from partsupp \
           where ps_partkey = p_partkey and ps_availqty < {y} \
           and not exists (select * from lineitem \
             where ps_partkey = l_partkey and ps_suppkey = l_suppkey \
             and l_quantity = 1))"
    )
}

/// Paper Query 3: Query 2 with the innermost block correlated to *both*
/// outer blocks (`ps_partkey = l_partkey` becomes `p_partkey θ
/// l_partkey`), in the paper's three correlated-predicate variants.
///
/// * Q3a: `quant = All`, `exists = Exists` (mixed);
/// * Q3b: `quant = All`, `exists = NotExists` (negative);
/// * Q3c: `quant = Any`, `exists = Exists` (positive).
pub fn q3_sql(
    cat: &Catalog,
    quant: Quant,
    exists: ExistsKind,
    corr: Q3Corr,
    part_target: usize,
    partsupp_target: usize,
) -> String {
    let x2 = literal(&kth_value(cat, "part", "p_size", part_target).expect("part has rows"));
    let y = literal(
        &kth_value(cat, "partsupp", "ps_availqty", partsupp_target).expect("partsupp has rows"),
    );
    let q = quant.sql();
    let e = exists.sql();
    let (op1, op2) = corr.ops();
    format!(
        "select p_partkey, p_name from part \
         where p_size >= 1 and p_size <= {x2} \
         and p_retailprice < {q} (select ps_supplycost from partsupp \
           where ps_partkey = p_partkey and ps_availqty < {y} \
           and {e} (select * from lineitem \
             where p_partkey {op1} l_partkey and ps_suppkey {op2} l_suppkey \
             and l_quantity = 1))"
    )
}

/// Extension experiment: Query 1 with its `> ALL` linking predicate
/// replaced by the aggregate form the paper's Section 2 warns is *not*
/// equivalent in general (`> (SELECT MAX(...))`). With NOT NULL money
/// columns the two agree; the benchmark compares their costs.
pub fn q1_agg_sql(cat: &Catalog, outer_target: usize) -> String {
    let x1 = date_literal(DATE_LO);
    let x2 =
        literal(&kth_value(cat, "orders", "o_orderdate", outer_target).expect("orders has rows"));
    format!(
        "select o_orderkey, o_orderpriority from orders \
         where o_orderdate >= {x1} and o_orderdate < {x2} \
         and o_totalprice > (select max(l_extendedprice) from lineitem \
           where l_orderkey = o_orderkey and l_commitdate < l_receiptdate \
           and l_shipdate < l_commitdate)"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, TpchConfig};
    use nra_sql::parse_and_bind;

    fn cat() -> Catalog {
        generate(&TpchConfig::scaled(0.02))
    }

    #[test]
    fn kth_value_orders_the_column() {
        let cat = cat();
        let v1 = kth_value(&cat, "part", "p_size", 1).unwrap();
        let vn = kth_value(&cat, "part", "p_size", usize::MAX).unwrap();
        assert!(v1.sql_cmp(&vn) != Some(std::cmp::Ordering::Greater));
        assert!(kth_value(&cat, "part", "p_size", 0).is_none());
        assert!(kth_value(&cat, "part", "nope", 3).is_none());
    }

    #[test]
    fn q1_parses_and_binds() {
        let cat = cat();
        let sql = q1_sql(&cat, 100);
        let bq = parse_and_bind(&sql, &cat).unwrap();
        assert_eq!(bq.num_blocks, 2);
        assert!(bq.is_linear_correlated());
        assert!(!bq.all_links_positive());
    }

    #[test]
    fn q2_parses_and_binds_both_variants() {
        let cat = cat();
        for quant in [Quant::Any, Quant::All] {
            let sql = q2_sql(&cat, quant, 200, 300);
            let bq = parse_and_bind(&sql, &cat).unwrap();
            assert_eq!(bq.num_blocks, 3);
            assert!(bq.is_linear_correlated(), "Query 2 is linear correlated");
        }
    }

    #[test]
    fn q3_breaks_linear_correlation() {
        let cat = cat();
        let sql = q3_sql(&cat, Quant::All, ExistsKind::Exists, Q3Corr::EqEq, 200, 300);
        let bq = parse_and_bind(&sql, &cat).unwrap();
        assert_eq!(bq.num_blocks, 3);
        assert!(
            !bq.is_linear_correlated(),
            "the innermost block references part two levels up"
        );
    }

    #[test]
    fn q3_variants_produce_expected_operators() {
        let cat = cat();
        let b = q3_sql(
            &cat,
            Quant::All,
            ExistsKind::NotExists,
            Q3Corr::NeEq,
            100,
            100,
        );
        assert!(b.contains("not exists"));
        assert!(b.contains("p_partkey <> l_partkey"));
        let c = q3_sql(&cat, Quant::Any, ExistsKind::Exists, Q3Corr::EqNe, 100, 100);
        assert!(c.contains("< any"));
        assert!(c.contains("ps_suppkey <> l_suppkey"));
    }

    #[test]
    fn q1_agg_parses_and_matches_q1_on_not_null_data() {
        let cat = cat();
        let sql = q1_agg_sql(&cat, 120);
        let bq = parse_and_bind(&sql, &cat).unwrap();
        assert_eq!(bq.num_blocks, 2);
        // On NOT NULL data, `> ALL` and `> MAX` agree — but note the ALL
        // form is TRUE on the empty set while `> MAX` (NULL) is unknown,
        // so they only agree on outer tuples that have inner partners.
    }

    #[test]
    fn block_size_targets_are_roughly_hit() {
        let cat = cat();
        // part: 0.02 * 60_000 = 1200 rows; ask for 400.
        let x2 = kth_value(&cat, "part", "p_size", 400).unwrap();
        let got = count_le(&cat, "part", "p_size", &x2);
        let total = cat.table("part").unwrap().len();
        assert!(got >= 400, "at least the target: {got}");
        // p_size granularity is total/50 per distinct value.
        assert!(got <= 400 + total / 50 + 1, "not far past it: {got}");
    }
}
