//! TPC-H table schemas (the subset of columns the paper's experiments
//! touch, plus enough context columns to make the data realistic).
//!
//! The `not_null_link_columns` switch reproduces the paper's Query 1
//! observation: with a `NOT NULL` constraint on `l_extendedprice` (and the
//! other linked/linking money columns) System A can antijoin; without it —
//! even when no NULL is actually present — it cannot.

use nra_storage::{Column, ColumnType, Schema, Table};

fn money(name: &str, not_null: bool) -> Column {
    if not_null {
        Column::not_null(name, ColumnType::Decimal)
    } else {
        Column::new(name, ColumnType::Decimal)
    }
}

/// Build the (empty) `region` table.
pub fn region() -> Table {
    let mut t = Table::new(
        "region",
        Schema::new(vec![
            Column::not_null("r_regionkey", ColumnType::Int),
            Column::not_null("r_name", ColumnType::Str),
        ]),
    );
    t.set_primary_key(&["r_regionkey"]).unwrap();
    t
}

/// Build the (empty) `nation` table.
pub fn nation() -> Table {
    let mut t = Table::new(
        "nation",
        Schema::new(vec![
            Column::not_null("n_nationkey", ColumnType::Int),
            Column::not_null("n_name", ColumnType::Str),
            Column::not_null("n_regionkey", ColumnType::Int),
        ]),
    );
    t.set_primary_key(&["n_nationkey"]).unwrap();
    t
}

/// Build the (empty) `supplier` table.
pub fn supplier() -> Table {
    let mut t = Table::new(
        "supplier",
        Schema::new(vec![
            Column::not_null("s_suppkey", ColumnType::Int),
            Column::not_null("s_name", ColumnType::Str),
            Column::not_null("s_nationkey", ColumnType::Int),
            Column::not_null("s_acctbal", ColumnType::Decimal),
        ]),
    );
    t.set_primary_key(&["s_suppkey"]).unwrap();
    t
}

/// Build the (empty) `customer` table.
pub fn customer() -> Table {
    let mut t = Table::new(
        "customer",
        Schema::new(vec![
            Column::not_null("c_custkey", ColumnType::Int),
            Column::not_null("c_name", ColumnType::Str),
            Column::not_null("c_nationkey", ColumnType::Int),
            Column::not_null("c_acctbal", ColumnType::Decimal),
            Column::not_null("c_mktsegment", ColumnType::Str),
        ]),
    );
    t.set_primary_key(&["c_custkey"]).unwrap();
    t
}

/// Build the (empty) `part` table.
pub fn part(not_null_link_columns: bool) -> Table {
    let mut t = Table::new(
        "part",
        Schema::new(vec![
            Column::not_null("p_partkey", ColumnType::Int),
            Column::not_null("p_name", ColumnType::Str),
            Column::not_null("p_brand", ColumnType::Str),
            Column::not_null("p_size", ColumnType::Int),
            Column::not_null("p_container", ColumnType::Str),
            money("p_retailprice", not_null_link_columns),
        ]),
    );
    t.set_primary_key(&["p_partkey"]).unwrap();
    t
}

/// Build the (empty) `partsupp` table.
pub fn partsupp(not_null_link_columns: bool) -> Table {
    let mut t = Table::new(
        "partsupp",
        Schema::new(vec![
            Column::not_null("ps_partkey", ColumnType::Int),
            Column::not_null("ps_suppkey", ColumnType::Int),
            Column::not_null("ps_availqty", ColumnType::Int),
            money("ps_supplycost", not_null_link_columns),
        ]),
    );
    t.set_primary_key(&["ps_partkey", "ps_suppkey"]).unwrap();
    t
}

/// Build the (empty) `orders` table.
pub fn orders(not_null_link_columns: bool) -> Table {
    let mut t = Table::new(
        "orders",
        Schema::new(vec![
            Column::not_null("o_orderkey", ColumnType::Int),
            Column::not_null("o_custkey", ColumnType::Int),
            Column::not_null("o_orderstatus", ColumnType::Str),
            money("o_totalprice", not_null_link_columns),
            Column::not_null("o_orderdate", ColumnType::Date),
            Column::not_null("o_orderpriority", ColumnType::Str),
        ]),
    );
    t.set_primary_key(&["o_orderkey"]).unwrap();
    t
}

/// Build the (empty) `lineitem` table.
pub fn lineitem(not_null_link_columns: bool) -> Table {
    let mut t = Table::new(
        "lineitem",
        Schema::new(vec![
            Column::not_null("l_orderkey", ColumnType::Int),
            Column::not_null("l_linenumber", ColumnType::Int),
            Column::not_null("l_partkey", ColumnType::Int),
            Column::not_null("l_suppkey", ColumnType::Int),
            Column::not_null("l_quantity", ColumnType::Int),
            money("l_extendedprice", not_null_link_columns),
            Column::not_null("l_shipdate", ColumnType::Date),
            Column::not_null("l_commitdate", ColumnType::Date),
            Column::not_null("l_receiptdate", ColumnType::Date),
        ]),
    );
    t.set_primary_key(&["l_orderkey", "l_linenumber"]).unwrap();
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_keys_declared() {
        assert_eq!(part(true).primary_key().len(), 1);
        assert_eq!(partsupp(true).primary_key().len(), 2);
        assert_eq!(lineitem(true).primary_key().len(), 2);
    }

    #[test]
    fn link_column_nullability_switch() {
        let strict = lineitem(true);
        let loose = lineitem(false);
        let idx = strict.schema().resolve("l_extendedprice").unwrap();
        assert!(!strict.schema().column(idx).nullable);
        assert!(loose.schema().column(idx).nullable);
        // Non-link columns stay NOT NULL either way.
        let q = loose.schema().resolve("l_quantity").unwrap();
        assert!(!loose.schema().column(q).nullable);
    }
}
