//! Seeded, size-parameterised TPC-H-shaped data generation.
//!
//! The paper runs TPC-H at scale factor 1 on disk; what its experiments
//! actually sweep is the *cardinality of each query block* (tuples passing
//! the block's local predicates). This generator therefore exposes row
//! counts and selectivity knobs directly, so the benchmark harness can
//! reproduce the paper's block sizes (outer 4K–48K, inner 7K/16K/12K) at
//! laptop-friendly absolute scale. Distributions:
//!
//! * `p_size` uniform in `1..=50` — the paper's `p_size >= X1 AND p_size <=
//!   X2` knob selects multiples of 2% of `part`;
//! * `ps_availqty` uniform in `1..=10_000` — `ps_availqty < Y`;
//! * `l_quantity` uniform in `1..=quantity_levels` — `l_quantity = Z`
//!   selects `1/quantity_levels` of `lineitem`;
//! * `o_orderdate` uniform over 1992–1998 — the `o_orderdate` range knob;
//! * the Query 1 inner predicate (`l_commitdate < l_receiptdate AND
//!   l_shipdate < l_commitdate`) holds for exactly a configurable fraction
//!   of `lineitem`.

use nra_storage::rng::Pcg32;
use nra_storage::{Catalog, Value};

use crate::tables;
use crate::text;

/// First day of the order-date range (1992-01-01).
pub const DATE_LO: i32 = 8035;
/// One past the last day (1998-08-02, as in TPC-H).
pub const DATE_HI: i32 = 10440;

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct TpchConfig {
    pub seed: u64,
    pub orders: usize,
    pub lineitem: usize,
    pub part: usize,
    pub suppliers: usize,
    pub partsupp_per_part: usize,
    pub customers: usize,
    /// `l_quantity` is uniform in `1..=quantity_levels`.
    pub quantity_levels: i64,
    /// Fraction of `lineitem` rows satisfying Query 1's inner predicate.
    pub q1_inner_fraction: f64,
    /// Declare `NOT NULL` on the money columns used as linking/linked
    /// attributes (`o_totalprice`, `l_extendedprice`, `p_retailprice`,
    /// `ps_supplycost`).
    pub not_null_link_columns: bool,
    /// Fraction of NULLs injected into those columns when they are
    /// nullable (must be 0 when `not_null_link_columns`).
    pub null_fraction: f64,
}

impl TpchConfig {
    /// Paper-experiment proportions at a relative scale: `scaled(1.0)`
    /// supports the paper's largest block sizes (outer up to 48K tuples,
    /// inner blocks 16K and 12K, Query 1 inner 7K).
    pub fn scaled(scale: f64) -> TpchConfig {
        let s = |n: f64| ((n * scale).round() as usize).max(8);
        let lineitem = s(120_000.0);
        TpchConfig {
            seed: 42,
            orders: s(40_000.0),
            lineitem,
            part: s(60_000.0),
            suppliers: s(3_000.0),
            partsupp_per_part: 2,
            customers: s(10_000.0),
            quantity_levels: 10,
            q1_inner_fraction: 7_000.0 / 120_000.0,
            not_null_link_columns: true,
            null_fraction: 0.0,
        }
    }

    /// A small configuration for unit tests.
    pub fn tiny() -> TpchConfig {
        TpchConfig::scaled(0.01)
    }

    pub fn with_seed(mut self, seed: u64) -> TpchConfig {
        self.seed = seed;
        self
    }

    /// Drop the NOT NULL constraints on the money columns (optionally
    /// injecting actual NULLs) — the paper's Query 1 ablation.
    pub fn nullable_links(mut self, null_fraction: f64) -> TpchConfig {
        self.not_null_link_columns = false;
        self.null_fraction = null_fraction;
        self
    }
}

/// Generate a catalog according to `cfg`.
pub fn generate(cfg: &TpchConfig) -> Catalog {
    assert!(
        !(cfg.not_null_link_columns && cfg.null_fraction > 0.0),
        "cannot inject NULLs into NOT NULL columns"
    );
    let mut rng = Pcg32::new(cfg.seed);
    let mut cat = Catalog::new();

    // region / nation
    let mut region = tables::region();
    for (i, name) in ["africa", "america", "asia", "europe", "middle east"]
        .iter()
        .enumerate()
    {
        region
            .insert(vec![Value::Int(i as i64), Value::str(*name)])
            .unwrap();
    }
    cat.add_table(region).unwrap();

    let mut nation = tables::nation();
    for i in 0..25i64 {
        nation
            .insert(vec![
                Value::Int(i),
                Value::str(text::name("nation", i)),
                Value::Int(i % 5),
            ])
            .unwrap();
    }
    cat.add_table(nation).unwrap();

    // supplier
    let mut supplier = tables::supplier();
    for i in 1..=cfg.suppliers as i64 {
        supplier
            .insert(vec![
                Value::Int(i),
                Value::str(text::name("supplier", i)),
                Value::Int(rng.range_i64(0, 25)),
                Value::Decimal(rng.range_i64(-99_999, 999_999)),
            ])
            .unwrap();
    }
    cat.add_table(supplier).unwrap();

    // customer
    let mut customer = tables::customer();
    let segments = [
        "automobile",
        "building",
        "furniture",
        "machinery",
        "household",
    ];
    for i in 1..=cfg.customers as i64 {
        customer
            .insert(vec![
                Value::Int(i),
                Value::str(text::name("customer", i)),
                Value::Int(rng.range_i64(0, 25)),
                Value::Decimal(rng.range_i64(-99_999, 999_999)),
                Value::str(*rng.choose(&segments)),
            ])
            .unwrap();
    }
    cat.add_table(customer).unwrap();

    let maybe_null_money = |rng: &mut Pcg32, lo: i64, hi: i64| -> Value {
        if cfg.null_fraction > 0.0 && rng.bool(cfg.null_fraction) {
            Value::Null
        } else {
            Value::Decimal(rng.range_i64(lo, hi))
        }
    };

    // part
    let containers = ["sm case", "lg box", "med bag", "jumbo drum", "wrap pack"];
    let mut part = tables::part(cfg.not_null_link_columns);
    for i in 1..=cfg.part as i64 {
        let retail = maybe_null_money(&mut rng, 90_000, 200_000);
        part.insert(vec![
            Value::Int(i),
            Value::str(text::name("part", i)),
            Value::str(format!("brand#{}", rng.range_i64(10, 60))),
            Value::Int(rng.range_incl_i64(1, 50)),
            Value::str(*rng.choose(&containers)),
            retail,
        ])
        .unwrap();
    }
    cat.add_table(part).unwrap();

    // partsupp: `partsupp_per_part` distinct suppliers per part. Remember
    // the suppliers of each part so lineitem rows reference a real pair.
    let mut partsupp = tables::partsupp(cfg.not_null_link_columns);
    let mut part_suppliers: Vec<Vec<i64>> = Vec::with_capacity(cfg.part);
    for p in 1..=cfg.part as i64 {
        let mut supps = Vec::with_capacity(cfg.partsupp_per_part);
        while supps.len() < cfg.partsupp_per_part {
            let s = rng.range_incl_i64(1, cfg.suppliers as i64);
            if !supps.contains(&s) {
                supps.push(s);
            }
        }
        for &s in &supps {
            // Comparable in range to p_retailprice so the paper's
            // `p_retailprice < ANY/ALL (ps_supplycost...)` predicates have
            // useful selectivity.
            let cost = maybe_null_money(&mut rng, 50_000, 250_000);
            partsupp
                .insert(vec![
                    Value::Int(p),
                    Value::Int(s),
                    Value::Int(rng.range_incl_i64(1, 10_000)),
                    cost,
                ])
                .unwrap();
        }
        part_suppliers.push(supps);
    }
    cat.add_table(partsupp).unwrap();

    // orders
    let mut orders = tables::orders(cfg.not_null_link_columns);
    let priorities = ["1-urgent", "2-high", "3-medium", "4-not specified", "5-low"];
    for i in 1..=cfg.orders as i64 {
        let total = maybe_null_money(&mut rng, 100_000, 50_000_000);
        orders
            .insert(vec![
                Value::Int(i),
                Value::Int(rng.range_incl_i64(1, cfg.customers as i64)),
                Value::str(if rng.bool(0.5) { "o" } else { "f" }),
                total,
                Value::Date(rng.range_i64(DATE_LO as i64, DATE_HI as i64) as i32),
                Value::str(*rng.choose(&priorities)),
            ])
            .unwrap();
    }
    cat.add_table(orders).unwrap();

    // lineitem
    let mut lineitem = tables::lineitem(cfg.not_null_link_columns);
    for i in 1..=cfg.lineitem as i64 {
        let pkey = rng.range_incl_i64(1, cfg.part as i64);
        let supps = &part_suppliers[(pkey - 1) as usize];
        let skey = supps[rng.index(supps.len())];
        let ship = rng.range_i64(DATE_LO as i64, DATE_HI as i64) as i32;
        // Query 1's inner predicate (commit < receipt AND ship < commit)
        // holds with probability `q1_inner_fraction`.
        let (commit, receipt) = if rng.bool(cfg.q1_inner_fraction) {
            let c = ship + rng.range_incl_i64(1, 30) as i32;
            (c, c + rng.range_incl_i64(1, 30) as i32)
        } else if rng.bool(0.5) {
            // violate ship < commit
            let c = ship - rng.range_incl_i64(0, 15) as i32;
            (c, c + rng.range_incl_i64(1, 30) as i32)
        } else {
            // violate commit < receipt
            let c = ship + rng.range_incl_i64(1, 30) as i32;
            (c, c - rng.range_incl_i64(0, 15) as i32)
        };
        let price = maybe_null_money(&mut rng, 90_000, 10_000_000);
        lineitem
            .insert(vec![
                Value::Int(rng.range_incl_i64(1, cfg.orders as i64)),
                Value::Int(i),
                Value::Int(pkey),
                Value::Int(skey),
                Value::Int(rng.range_incl_i64(1, cfg.quantity_levels)),
                price,
                Value::Date(ship),
                Value::Date(commit),
                Value::Date(receipt),
            ])
            .unwrap();
    }
    cat.add_table(lineitem).unwrap();

    cat
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let cfg = TpchConfig::tiny();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert!(a
            .table("lineitem")
            .unwrap()
            .data()
            .multiset_eq(b.table("lineitem").unwrap().data()));
        let c = generate(&cfg.clone().with_seed(7));
        assert!(!a
            .table("lineitem")
            .unwrap()
            .data()
            .multiset_eq(c.table("lineitem").unwrap().data()));
    }

    #[test]
    fn row_counts_match_config() {
        let cfg = TpchConfig::tiny();
        let cat = generate(&cfg);
        assert_eq!(cat.table("orders").unwrap().len(), cfg.orders);
        assert_eq!(cat.table("lineitem").unwrap().len(), cfg.lineitem);
        assert_eq!(cat.table("part").unwrap().len(), cfg.part);
        assert_eq!(
            cat.table("partsupp").unwrap().len(),
            cfg.part * cfg.partsupp_per_part
        );
    }

    #[test]
    fn q1_inner_fraction_is_respected() {
        let cfg = TpchConfig::scaled(0.1);
        let cat = generate(&cfg);
        let li = cat.table("lineitem").unwrap();
        let s = li.schema();
        let (ship, commit, receipt) = (
            s.resolve("l_shipdate").unwrap(),
            s.resolve("l_commitdate").unwrap(),
            s.resolve("l_receiptdate").unwrap(),
        );
        let hits = li
            .data()
            .rows()
            .iter()
            .filter(|r| {
                r[commit].sql_cmp(&r[receipt]) == Some(std::cmp::Ordering::Less)
                    && r[ship].sql_cmp(&r[commit]) == Some(std::cmp::Ordering::Less)
            })
            .count();
        let expect = cfg.q1_inner_fraction * cfg.lineitem as f64;
        let tolerance = expect * 0.25;
        assert!(
            (hits as f64 - expect).abs() < tolerance,
            "hits {hits} vs expected {expect}"
        );
    }

    #[test]
    fn lineitem_references_real_partsupp_pairs() {
        let cfg = TpchConfig::tiny();
        let cat = generate(&cfg);
        let ps = cat.table("partsupp").unwrap();
        let pairs: std::collections::HashSet<(i64, i64)> = ps
            .data()
            .rows()
            .iter()
            .map(|r| match (&r[0], &r[1]) {
                (Value::Int(a), Value::Int(b)) => (*a, *b),
                _ => unreachable!(),
            })
            .collect();
        let li = cat.table("lineitem").unwrap();
        for r in li.data().rows() {
            let (p, s) = match (&r[2], &r[3]) {
                (Value::Int(a), Value::Int(b)) => (*a, *b),
                _ => unreachable!(),
            };
            assert!(pairs.contains(&(p, s)), "({p},{s}) not in partsupp");
        }
    }

    #[test]
    fn nullable_links_inject_nulls() {
        let cfg = TpchConfig::tiny().nullable_links(0.2);
        let cat = generate(&cfg);
        let li = cat.table("lineitem").unwrap();
        let idx = li.schema().resolve("l_extendedprice").unwrap();
        let nulls = li.data().rows().iter().filter(|r| r[idx].is_null()).count();
        assert!(nulls > 0);
    }

    #[test]
    #[should_panic(expected = "cannot inject NULLs")]
    fn null_injection_into_not_null_panics() {
        let mut cfg = TpchConfig::tiny();
        cfg.null_fraction = 0.5;
        generate(&cfg);
    }
}
