//! Secondary indexes over base tables.
//!
//! The paper's baseline ("System A") depends heavily on indexes: nested
//! iteration probes the inner block by index on the correlated column(s),
//! and Section 5 observes that the native plans degrade badly without them.
//! Two kinds are provided, matching the two access patterns the paper
//! describes: equality probes (hash) and ordered scans (B-tree-style).

use std::collections::{BTreeMap, HashMap};

use crate::tuple::{GroupKey, Tuple};
use crate::value::Value;

/// Hash index mapping a key (one or more columns) to the row ids holding it.
///
/// Rows whose key contains `NULL` are indexed under their key like any other
/// (grouping semantics); equality *probes* must skip NULL keys themselves,
/// since SQL equality never matches NULL. [`HashIndex::probe`] implements
/// that rule.
#[derive(Debug, Clone)]
pub struct HashIndex {
    key_cols: Vec<usize>,
    map: HashMap<GroupKey, Vec<usize>>,
}

impl HashIndex {
    /// Build over `rows`, keyed by `key_cols`.
    pub fn build(rows: &[Tuple], key_cols: &[usize]) -> HashIndex {
        let mut map: HashMap<GroupKey, Vec<usize>> = HashMap::new();
        for (rid, row) in rows.iter().enumerate() {
            map.entry(GroupKey::from_tuple(row, key_cols))
                .or_default()
                .push(rid);
        }
        HashIndex {
            key_cols: key_cols.to_vec(),
            map,
        }
    }

    pub fn key_cols(&self) -> &[usize] {
        &self.key_cols
    }

    /// Row ids whose key equals `key` under SQL equality. A probe key
    /// containing `NULL` matches nothing, as does a stored key containing
    /// `NULL`.
    pub fn probe(&self, key: &GroupKey) -> &[usize] {
        if key.has_null() {
            return &[];
        }
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Row ids grouped exactly as stored (grouping semantics: includes NULL
    /// keys). Used by grouping-style consumers, not by equality probes.
    pub fn group(&self, key: &GroupKey) -> &[usize] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

/// Key wrapper giving tuples of values a total order, for the ordered index.
#[derive(Debug, Clone, PartialEq)]
pub struct OrdKey(pub Vec<Value>);

impl Eq for OrdKey {}

impl PartialOrd for OrdKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        for (a, b) in self.0.iter().zip(&other.0) {
            let ord = a.total_cmp(b);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        self.0.len().cmp(&other.0.len())
    }
}

/// Ordered (B-tree-style) index: supports equality probes and range scans.
#[derive(Debug, Clone)]
pub struct OrderedIndex {
    key_cols: Vec<usize>,
    map: BTreeMap<OrdKey, Vec<usize>>,
}

impl OrderedIndex {
    pub fn build(rows: &[Tuple], key_cols: &[usize]) -> OrderedIndex {
        let mut map: BTreeMap<OrdKey, Vec<usize>> = BTreeMap::new();
        for (rid, row) in rows.iter().enumerate() {
            let key = OrdKey(key_cols.iter().map(|&c| row[c].clone()).collect());
            map.entry(key).or_default().push(rid);
        }
        OrderedIndex {
            key_cols: key_cols.to_vec(),
            map,
        }
    }

    pub fn key_cols(&self) -> &[usize] {
        &self.key_cols
    }

    /// Equality probe under SQL semantics (NULL matches nothing).
    pub fn probe(&self, key: &[Value]) -> &[usize] {
        if key.iter().any(Value::is_null) {
            return &[];
        }
        self.map
            .get(&OrdKey(key.to_vec()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Row ids with key in `[lo, hi)` under the total order. `NULL` keys
    /// sort first and are excluded (SQL range predicates never match NULL),
    /// so callers pass non-NULL bounds.
    pub fn range(&self, lo: &[Value], hi: &[Value]) -> Vec<usize> {
        let lo = OrdKey(lo.to_vec());
        let hi = OrdKey(hi.to_vec());
        self.map
            .range(lo..hi)
            .filter(|(k, _)| !k.0.iter().any(Value::is_null))
            .flat_map(|(_, v)| v.iter().copied())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Tuple> {
        vec![
            vec![Value::Int(1), Value::str("a")],
            vec![Value::Int(2), Value::str("b")],
            vec![Value::Int(1), Value::str("c")],
            vec![Value::Null, Value::str("d")],
        ]
    }

    #[test]
    fn hash_index_probe() {
        let idx = HashIndex::build(&rows(), &[0]);
        assert_eq!(idx.probe(&GroupKey(vec![Value::Int(1)])), &[0, 2]);
        assert_eq!(idx.probe(&GroupKey(vec![Value::Int(9)])), &[] as &[usize]);
        // NULL probe key matches nothing even though a NULL key is stored.
        assert_eq!(idx.probe(&GroupKey(vec![Value::Null])), &[] as &[usize]);
        // ... but grouping access can still reach it.
        assert_eq!(idx.group(&GroupKey(vec![Value::Null])), &[3]);
        assert_eq!(idx.distinct_keys(), 3);
    }

    #[test]
    fn ordered_index_probe_and_range() {
        let idx = OrderedIndex::build(&rows(), &[0]);
        assert_eq!(idx.probe(&[Value::Int(2)]), &[1]);
        assert_eq!(idx.probe(&[Value::Null]), &[] as &[usize]);
        let in_range = idx.range(&[Value::Int(1)], &[Value::Int(3)]);
        assert_eq!(in_range, vec![0, 2, 1]);
    }

    #[test]
    fn ordered_index_multi_column() {
        let rows = vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(1), Value::Int(20)],
            vec![Value::Int(2), Value::Int(10)],
        ];
        let idx = OrderedIndex::build(&rows, &[0, 1]);
        assert_eq!(idx.probe(&[Value::Int(1), Value::Int(20)]), &[1]);
        assert_eq!(idx.probe(&[Value::Int(1), Value::Int(30)]), &[] as &[usize]);
    }

    #[test]
    fn ordkey_total_order() {
        let a = OrdKey(vec![Value::Int(1)]);
        let b = OrdKey(vec![Value::Int(1), Value::Int(0)]);
        assert!(a < b, "shorter prefix sorts first");
    }
}
