//! Flat relation schemas.
//!
//! Column names are stored fully qualified (`"orders.o_orderkey"`, or a bare
//! name for base tables before qualification). Intermediate relations built
//! by the join pipeline concatenate schemas, so qualified names keep
//! resolution unambiguous across the whole query.

use std::fmt;

use crate::error::StorageError;
use crate::value::Value;

/// Declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    Bool,
    Int,
    Decimal,
    Float,
    Str,
    Date,
}

impl ColumnType {
    /// Whether `v` inhabits this type (`NULL` inhabits every type).
    pub fn admits(self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (ColumnType::Bool, Value::Bool(_))
                | (ColumnType::Int, Value::Int(_))
                | (ColumnType::Decimal, Value::Decimal(_))
                | (ColumnType::Float, Value::Float(_))
                | (ColumnType::Str, Value::Str(_))
                | (ColumnType::Date, Value::Date(_))
        )
    }
}

/// A column: name, type and nullability.
///
/// `nullable` records the presence or absence of a `NOT NULL` constraint.
/// The paper's Section 5 shows the baseline ("System A") planner changing
/// strategy based on exactly this piece of metadata, so we carry it through.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    pub name: String,
    pub ty: ColumnType,
    pub nullable: bool,
}

impl Column {
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Column {
        Column {
            name: name.into(),
            ty,
            nullable: true,
        }
    }

    pub fn not_null(name: impl Into<String>, ty: ColumnType) -> Column {
        Column {
            name: name.into(),
            ty,
            nullable: false,
        }
    }

    /// The part of the name after the final `.`, i.e. the bare column name.
    pub fn base_name(&self) -> &str {
        match self.name.rfind('.') {
            Some(i) => &self.name[i + 1..],
            None => &self.name,
        }
    }

    /// The qualifier before the final `.`, if any.
    pub fn qualifier(&self) -> Option<&str> {
        self.name.rfind('.').map(|i| &self.name[..i])
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    pub fn new(columns: Vec<Column>) -> Schema {
        Schema { columns }
    }

    pub fn empty() -> Schema {
        Schema { columns: vec![] }
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Position of a column by exact (qualified) name, falling back to a
    /// unique match on the bare name.
    ///
    /// Returns an error if the name is unknown or the bare name is
    /// ambiguous.
    pub fn resolve(&self, name: &str) -> Result<usize, StorageError> {
        if let Some(i) = self.columns.iter().position(|c| c.name == name) {
            return Ok(i);
        }
        let matches: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.base_name() == name)
            .map(|(i, _)| i)
            .collect();
        match matches.len() {
            1 => Ok(matches[0]),
            0 => Err(StorageError::UnknownColumn(name.to_string())),
            _ => Err(StorageError::AmbiguousColumn(name.to_string())),
        }
    }

    /// Like [`Schema::resolve`] but returns `None` instead of an error.
    pub fn try_resolve(&self, name: &str) -> Option<usize> {
        self.resolve(name).ok()
    }

    /// Indices of every column whose qualifier equals `qualifier`.
    pub fn columns_of(&self, qualifier: &str) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.qualifier() == Some(qualifier))
            .map(|(i, _)| i)
            .collect()
    }

    /// New schema with every column renamed to `qualifier.base_name`.
    pub fn qualified(&self, qualifier: &str) -> Schema {
        Schema {
            columns: self
                .columns
                .iter()
                .map(|c| Column {
                    name: format!("{qualifier}.{}", c.base_name()),
                    ty: c.ty,
                    nullable: c.nullable,
                })
                .collect(),
        }
    }

    /// Concatenation of two schemas (used by joins). In a joined schema the
    /// right side's columns become nullable if the join is outer; callers
    /// adjust nullability themselves via [`Schema::with_all_nullable`].
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Schema { columns }
    }

    /// Copy of this schema with every column marked nullable (outer-join
    /// padding can introduce `NULL` anywhere).
    pub fn with_all_nullable(&self) -> Schema {
        Schema {
            columns: self
                .columns
                .iter()
                .map(|c| Column {
                    name: c.name.clone(),
                    ty: c.ty,
                    nullable: true,
                })
                .collect(),
        }
    }

    /// Schema of a projection onto the given column indices.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema {
            columns: indices.iter().map(|&i| self.columns[i].clone()).collect(),
        }
    }

    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(
                f,
                "{}: {:?}{}",
                c.name,
                c.ty,
                if c.nullable { "" } else { " not null" }
            )?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rst_schema() -> Schema {
        Schema::new(vec![
            Column::new("R.A", ColumnType::Int),
            Column::new("R.B", ColumnType::Int),
            Column::not_null("R.D", ColumnType::Int),
        ])
    }

    #[test]
    fn resolve_qualified_and_bare() {
        let s = rst_schema();
        assert_eq!(s.resolve("R.B").unwrap(), 1);
        assert_eq!(s.resolve("B").unwrap(), 1);
        assert!(matches!(
            s.resolve("Z"),
            Err(StorageError::UnknownColumn(_))
        ));
    }

    #[test]
    fn resolve_ambiguous_bare_name() {
        let s = Schema::new(vec![
            Column::new("R.A", ColumnType::Int),
            Column::new("S.A", ColumnType::Int),
        ]);
        assert!(matches!(
            s.resolve("A"),
            Err(StorageError::AmbiguousColumn(_))
        ));
        assert_eq!(s.resolve("S.A").unwrap(), 1);
    }

    #[test]
    fn qualify_and_columns_of() {
        let s = Schema::new(vec![
            Column::new("x", ColumnType::Int),
            Column::new("y", ColumnType::Str),
        ])
        .qualified("t");
        assert_eq!(s.names(), vec!["t.x", "t.y"]);
        assert_eq!(s.columns_of("t"), vec![0, 1]);
        assert!(s.columns_of("u").is_empty());
    }

    #[test]
    fn concat_and_project() {
        let s = rst_schema().concat(&Schema::new(vec![Column::new("S.E", ColumnType::Int)]));
        assert_eq!(s.len(), 4);
        let p = s.project(&[3, 0]);
        assert_eq!(p.names(), vec!["S.E", "R.A"]);
    }

    #[test]
    fn admits_values() {
        assert!(ColumnType::Int.admits(&Value::Int(3)));
        assert!(ColumnType::Int.admits(&Value::Null));
        assert!(!ColumnType::Int.admits(&Value::str("x")));
    }

    #[test]
    fn with_all_nullable() {
        let s = rst_schema().with_all_nullable();
        assert!(s.columns().iter().all(|c| c.nullable));
    }
}
