//! Materialized flat relations.

use std::collections::HashMap;
use std::fmt;

use crate::error::StorageError;
use crate::schema::Schema;
use crate::tuple::{cmp_on, GroupKey, Tuple};

/// A materialized flat relation: a schema plus a vector of rows.
///
/// The query pipeline in this reproduction materializes its intermediates,
/// mirroring the paper's implementation (the stored procedure processed a
/// fully materialized "intermediate result" fetched from the SQL engine).
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    schema: Schema,
    rows: Vec<Tuple>,
}

impl Relation {
    pub fn new(schema: Schema) -> Relation {
        Relation {
            schema,
            rows: vec![],
        }
    }

    pub fn with_rows(schema: Schema, rows: Vec<Tuple>) -> Relation {
        debug_assert!(rows.iter().all(|r| r.len() == schema.len()));
        Relation { schema, rows }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    pub fn rows_mut(&mut self) -> &mut Vec<Tuple> {
        &mut self.rows
    }

    pub fn into_rows(self) -> Vec<Tuple> {
        self.rows
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Check a row against the schema (arity, column types, `NOT NULL`)
    /// without appending it. The durable insert path validates every row
    /// up front so a batch either logs-and-applies completely or leaves
    /// the table untouched.
    pub fn validate(&self, row: &[crate::value::Value]) -> Result<(), StorageError> {
        if row.len() != self.schema.len() {
            return Err(StorageError::ArityMismatch {
                expected: self.schema.len(),
                got: row.len(),
            });
        }
        for (v, c) in row.iter().zip(self.schema.columns()) {
            if v.is_null() && !c.nullable {
                return Err(StorageError::NullViolation {
                    column: c.name.clone(),
                });
            }
            if !c.ty.admits(v) {
                return Err(StorageError::TypeMismatch {
                    column: c.name.clone(),
                    value: v.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Append a row, validating arity, column types and `NOT NULL`
    /// constraints.
    pub fn push(&mut self, row: Tuple) -> Result<(), StorageError> {
        self.validate(&row)?;
        self.rows.push(row);
        Ok(())
    }

    /// Append a row without validation (used by operators whose output is
    /// correct by construction).
    pub fn push_unchecked(&mut self, row: Tuple) {
        debug_assert_eq!(row.len(), self.schema.len());
        self.rows.push(row);
    }

    /// Projection onto column indices (may duplicate or reorder columns).
    pub fn project(&self, indices: &[usize]) -> Relation {
        let schema = self.schema.project(indices);
        let rows = self
            .rows
            .iter()
            .map(|r| indices.iter().map(|&i| r[i].clone()).collect())
            .collect();
        Relation { schema, rows }
    }

    /// Stable in-place sort by the given columns under the total order of
    /// [`Value::total_cmp`] (`NULL` first).
    pub fn sort_by_columns(&mut self, cols: &[usize]) {
        self.rows.sort_by(|a, b| cmp_on(a, b, cols));
    }

    /// Multiset equality with another relation (row order ignored,
    /// duplicates counted). Schemas must have equal arity; column names are
    /// not compared so projected intermediates can be checked against
    /// hand-written expectations.
    pub fn multiset_eq(&self, other: &Relation) -> bool {
        if self.schema.len() != other.schema.len() || self.rows.len() != other.rows.len() {
            return false;
        }
        let all: Vec<usize> = (0..self.schema.len()).collect();
        let mut counts: HashMap<GroupKey, i64> = HashMap::new();
        for r in &self.rows {
            *counts.entry(GroupKey::from_tuple(r, &all)).or_insert(0) += 1;
        }
        for r in &other.rows {
            match counts.get_mut(&GroupKey::from_tuple(r, &all)) {
                Some(c) => *c -= 1,
                None => return false,
            }
        }
        counts.values().all(|&c| c == 0)
    }

    /// Distinct rows (set semantics), preserving first-occurrence order.
    pub fn distinct(&self) -> Relation {
        let all: Vec<usize> = (0..self.schema.len()).collect();
        let mut seen = std::collections::HashSet::new();
        let mut out = Relation::new(self.schema.clone());
        for r in &self.rows {
            if seen.insert(GroupKey::from_tuple(r, &all)) {
                out.push_unchecked(r.clone());
            }
        }
        out
    }
}

impl fmt::Display for Relation {
    /// Render as an aligned text table (used by examples and debugging).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let headers: Vec<String> = self
            .schema
            .columns()
            .iter()
            .map(|c| c.name.clone())
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, c) in cells.iter().enumerate() {
                write!(f, " {:w$} |", c, w = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<w$}|", "", w = w + 2)?;
        }
        writeln!(f)?;
        for row in &rendered {
            line(f, row)?;
        }
        write!(f, "({} rows)", self.rows.len())
    }
}

/// Build a relation from a compact literal description: column
/// `(name, type)` pairs and rows of values. Intended for tests and examples.
#[macro_export]
macro_rules! relation {
    ( [ $( ($name:expr, $ty:expr) ),* $(,)? ], [ $( [ $( $val:expr ),* $(,)? ] ),* $(,)? ] ) => {{
        let schema = $crate::schema::Schema::new(vec![
            $( $crate::schema::Column::new($name, $ty) ),*
        ]);
        let rows: Vec<Vec<$crate::value::Value>> = vec![
            $( vec![ $( $val ),* ] ),*
        ];
        $crate::relation::Relation::with_rows(schema, rows)
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType};
    use crate::value::Value;

    fn sample() -> Relation {
        let schema = Schema::new(vec![
            Column::new("t.a", ColumnType::Int),
            Column::not_null("t.b", ColumnType::Str),
        ]);
        let mut r = Relation::new(schema);
        r.push(vec![Value::Int(2), Value::str("y")]).unwrap();
        r.push(vec![Value::Int(1), Value::str("x")]).unwrap();
        r.push(vec![Value::Null, Value::str("z")]).unwrap();
        r
    }

    #[test]
    fn push_validates_arity_type_null() {
        let mut r = sample();
        assert!(matches!(
            r.push(vec![Value::Int(1)]),
            Err(StorageError::ArityMismatch { .. })
        ));
        assert!(matches!(
            r.push(vec![Value::str("no"), Value::str("x")]),
            Err(StorageError::TypeMismatch { .. })
        ));
        assert!(matches!(
            r.push(vec![Value::Int(1), Value::Null]),
            Err(StorageError::NullViolation { .. })
        ));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn sort_puts_null_first() {
        let mut r = sample();
        r.sort_by_columns(&[0]);
        assert!(r.rows()[0][0].is_null());
        assert_eq!(r.rows()[1][0], Value::Int(1));
        assert_eq!(r.rows()[2][0], Value::Int(2));
    }

    #[test]
    fn project_reorders() {
        let r = sample().project(&[1, 0]);
        assert_eq!(r.schema().names(), vec!["t.b", "t.a"]);
        assert_eq!(r.rows()[0], vec![Value::str("y"), Value::Int(2)]);
    }

    #[test]
    fn multiset_eq_ignores_order_counts_duplicates() {
        let a = relation!(
            [("x", ColumnType::Int)],
            [[Value::Int(1)], [Value::Int(1)], [Value::Int(2)]]
        );
        let b = relation!(
            [("x", ColumnType::Int)],
            [[Value::Int(2)], [Value::Int(1)], [Value::Int(1)]]
        );
        let c = relation!(
            [("x", ColumnType::Int)],
            [[Value::Int(2)], [Value::Int(2)], [Value::Int(1)]]
        );
        assert!(a.multiset_eq(&b));
        assert!(!a.multiset_eq(&c));
    }

    #[test]
    fn distinct_removes_duplicates() {
        let a = relation!(
            [("x", ColumnType::Int)],
            [
                [Value::Int(1)],
                [Value::Null],
                [Value::Int(1)],
                [Value::Null]
            ]
        );
        assert_eq!(a.distinct().len(), 2);
    }

    #[test]
    fn display_renders_table() {
        let s = sample().to_string();
        assert!(s.contains("t.a"));
        assert!(s.contains("(3 rows)"));
    }
}
