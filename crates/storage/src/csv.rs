//! Delimited-text (CSV / TPC-H `.tbl`) import and export.
//!
//! Lets the catalog load real data — in particular the `|`-separated
//! `.tbl` files produced by TPC-H `dbgen`, so the paper's experiments can
//! be re-run against authentic inputs instead of the synthetic generator.
//! No external dependency: the dialect is simple (configurable delimiter,
//! optional header, double-quote quoting with `""` escapes, empty field or
//! `NULL` ⇒ SQL NULL).

use std::io::{BufRead, Write};

use crate::error::StorageError;
use crate::relation::Relation;
use crate::schema::{ColumnType, Schema};
use crate::tuple::Tuple;
use crate::value::parse_date_str;
use crate::value::Value;

/// Import/export options.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    pub delimiter: u8,
    pub has_header: bool,
    /// Strings parsed as SQL NULL (besides the empty field).
    pub null_tokens: Vec<String>,
}

impl Default for CsvOptions {
    fn default() -> CsvOptions {
        CsvOptions {
            delimiter: b',',
            has_header: true,
            null_tokens: vec!["NULL".to_string(), "null".to_string()],
        }
    }
}

impl CsvOptions {
    /// The TPC-H `dbgen` dialect: `|`-separated, no header, trailing `|`.
    pub fn tbl() -> CsvOptions {
        CsvOptions {
            delimiter: b'|',
            has_header: false,
            null_tokens: vec![],
        }
    }
}

/// Split one record into fields (handles double-quoted fields with `""`
/// escapes; a trailing delimiter — dbgen style — yields a final empty
/// field which is dropped when the schema is one column shorter).
fn split_record(line: &str, delim: u8, expected: usize) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let delim = delim as char;
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            } else {
                cur.push(c);
            }
        } else if c == '"' && cur.is_empty() {
            in_quotes = true;
        } else if c == delim {
            fields.push(std::mem::take(&mut cur));
        } else {
            cur.push(c);
        }
    }
    fields.push(cur);
    // dbgen emits a trailing delimiter: tolerate one extra empty field.
    if fields.len() == expected + 1 && fields.last().is_some_and(String::is_empty) {
        fields.pop();
    }
    fields
}

/// Parse one field according to the column type.
fn parse_field(raw: &str, ty: ColumnType, opts: &CsvOptions) -> Result<Value, String> {
    if raw.is_empty() || opts.null_tokens.iter().any(|t| t == raw) {
        return Ok(Value::Null);
    }
    match ty {
        ColumnType::Int => raw
            .trim()
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| format!("bad integer `{raw}`")),
        ColumnType::Float => raw
            .trim()
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| format!("bad float `{raw}`")),
        ColumnType::Decimal => {
            let t = raw.trim();
            let (int_part, frac_part) = match t.split_once('.') {
                Some((i, f)) => (i, f),
                None => (t, ""),
            };
            let negative = int_part.starts_with('-');
            let units: i64 = int_part
                .parse()
                .map_err(|_| format!("bad decimal `{raw}`"))?;
            let mut frac = frac_part.to_string();
            frac.truncate(2);
            while frac.len() < 2 {
                frac.push('0');
            }
            let cents: i64 = if frac.is_empty() {
                0
            } else {
                frac.parse().map_err(|_| format!("bad decimal `{raw}`"))?
            };
            Ok(Value::Decimal(
                units * 100 + if negative { -cents } else { cents },
            ))
        }
        ColumnType::Str => Ok(Value::Str(raw.to_string())),
        ColumnType::Bool => match raw.trim().to_ascii_lowercase().as_str() {
            "true" | "t" | "1" => Ok(Value::Bool(true)),
            "false" | "f" | "0" => Ok(Value::Bool(false)),
            _ => Err(format!("bad boolean `{raw}`")),
        },
        ColumnType::Date => parse_date_str(raw.trim())
            .map(Value::Date)
            .ok_or_else(|| format!("bad date `{raw}` (expected YYYY-MM-DD)")),
    }
}

/// Read delimited records from `reader` into rows matching `schema`.
pub fn read_rows<R: BufRead>(
    reader: R,
    schema: &Schema,
    opts: &CsvOptions,
) -> Result<Vec<Tuple>, StorageError> {
    let mut rows = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| StorageError::Io(format!("line {}: {e}", lineno + 1)))?;
        if lineno == 0 && opts.has_header {
            continue;
        }
        if line.is_empty() {
            continue;
        }
        let fields = split_record(&line, opts.delimiter, schema.len());
        if fields.len() != schema.len() {
            return Err(StorageError::Io(format!(
                "line {}: expected {} fields, found {}",
                lineno + 1,
                schema.len(),
                fields.len()
            )));
        }
        let row: Tuple = fields
            .iter()
            .zip(schema.columns())
            .map(|(raw, col)| {
                parse_field(raw, col.ty, opts)
                    .map_err(|e| StorageError::Io(format!("line {}: {e}", lineno + 1)))
            })
            .collect::<Result<_, _>>()?;
        rows.push(row);
    }
    Ok(rows)
}

/// Write a relation as delimited text (header = column names when
/// `opts.has_header`).
pub fn write_relation<W: Write>(
    mut writer: W,
    rel: &Relation,
    opts: &CsvOptions,
) -> Result<(), StorageError> {
    let delim = opts.delimiter as char;
    let io = |e: std::io::Error| StorageError::Io(e.to_string());
    let quote = |s: &str| -> String {
        if s.contains(delim) || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    if opts.has_header {
        let header: Vec<String> = rel
            .schema()
            .columns()
            .iter()
            .map(|c| quote(c.name.as_str()))
            .collect();
        writeln!(writer, "{}", header.join(&delim.to_string())).map_err(io)?;
    }
    for row in rel.rows() {
        let fields: Vec<String> = row
            .iter()
            .map(|v| match v {
                Value::Null => String::new(),
                Value::Str(s) => quote(s),
                Value::Date(d) => {
                    let (y, m, day) = crate::value::civil_from_days(*d);
                    format!("{y:04}-{m:02}-{day:02}")
                }
                Value::Decimal(d) => {
                    let sign = if *d < 0 { "-" } else { "" };
                    let a = d.unsigned_abs();
                    format!("{sign}{}.{:02}", a / 100, a % 100)
                }
                other => other.to_string().trim_matches('\'').to_string(),
            })
            .collect();
        writeln!(writer, "{}", fields.join(&delim.to_string())).map_err(io)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::not_null("id", ColumnType::Int),
            Column::new("name", ColumnType::Str),
            Column::new("price", ColumnType::Decimal),
            Column::new("day", ColumnType::Date),
        ])
    }

    #[test]
    fn reads_csv_with_header_nulls_and_quotes() {
        let data = "id,name,price,day\n\
                    1,\"a,b\",12.50,1995-06-17\n\
                    2,NULL,,1970-01-01\n";
        let rows = read_rows(data.as_bytes(), &schema(), &CsvOptions::default()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][1], Value::str("a,b"));
        assert_eq!(rows[0][2], Value::Decimal(1250));
        assert_eq!(rows[0][3], Value::Date(9298));
        assert!(rows[1][1].is_null());
        assert!(rows[1][2].is_null());
    }

    #[test]
    fn reads_dbgen_tbl_with_trailing_delimiter() {
        let data = "1|widget|99.99|1992-01-01|\n2|gadget|0.50|1994-12-31|\n";
        let rows = read_rows(data.as_bytes(), &schema(), &CsvOptions::tbl()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], Value::Int(1));
        assert_eq!(rows[1][2], Value::Decimal(50));
    }

    #[test]
    fn negative_decimal_parses() {
        let s = Schema::new(vec![Column::new("p", ColumnType::Decimal)]);
        let rows = read_rows(
            "-3.25\n".as_bytes(),
            &s,
            &CsvOptions {
                has_header: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(rows[0][0], Value::Decimal(-325));
    }

    #[test]
    fn field_count_mismatch_errors() {
        let data = "1,foo\n";
        let err = read_rows(
            data.as_bytes(),
            &schema(),
            &CsvOptions {
                has_header: false,
                ..Default::default()
            },
        );
        assert!(matches!(err, Err(StorageError::Io(_))));
    }

    #[test]
    fn bad_values_error_with_line_numbers() {
        let data = "id,name,price,day\nx,foo,1.0,1995-01-01\n";
        let err = read_rows(data.as_bytes(), &schema(), &CsvOptions::default()).unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn roundtrip_write_then_read() {
        let mut rel = Relation::new(schema());
        rel.push(vec![
            Value::Int(7),
            Value::str("say \"hi\", ok"),
            Value::Decimal(12345),
            Value::Date(0),
        ])
        .unwrap();
        rel.push(vec![Value::Int(8), Value::Null, Value::Null, Value::Null])
            .unwrap();
        let mut buf = Vec::new();
        write_relation(&mut buf, &rel, &CsvOptions::default()).unwrap();
        let back = read_rows(buf.as_slice(), &schema(), &CsvOptions::default()).unwrap();
        assert_eq!(back, rel.rows().to_vec());
    }

    #[test]
    fn bool_parsing() {
        let s = Schema::new(vec![Column::new("b", ColumnType::Bool)]);
        let opts = CsvOptions {
            has_header: false,
            ..Default::default()
        };
        let rows = read_rows("true\nf\n1\n".as_bytes(), &s, &opts).unwrap();
        assert_eq!(
            rows,
            vec![
                vec![Value::Bool(true)],
                vec![Value::Bool(false)],
                vec![Value::Bool(true)]
            ]
        );
        assert!(read_rows("maybe\n".as_bytes(), &s, &opts).is_err());
    }
}
