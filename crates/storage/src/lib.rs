//! # nra-storage
//!
//! Flat relational substrate for the nested relational subquery processor:
//! scalar [`value::Value`]s with SQL three-valued logic, [`schema::Schema`]s
//! with qualified column names, materialized [`relation::Relation`]s, a
//! [`catalog::Catalog`] of base tables, and hash/ordered secondary
//! [`index`]es.
//!
//! Everything above this crate — the SQL front end, the flat execution
//! engine, and the nested relational algebra that is the paper's
//! contribution — is built on these types.

pub mod agg;
pub mod catalog;
pub mod checksum;
pub mod csv;
pub mod disk;
pub mod error;
pub mod index;
pub mod iofault;
pub mod iosim;
pub mod relation;
pub mod rng;
pub mod schema;
pub mod tuple;
pub mod value;
pub mod wal;

pub use agg::{aggregate, AggFunc};
pub use catalog::{Catalog, ColumnStats, Table, TableStats};
pub use error::StorageError;
pub use relation::Relation;
pub use schema::{Column, ColumnType, Schema};
pub use tuple::{GroupKey, Tuple};
pub use value::{CmpOp, Truth, Value};
