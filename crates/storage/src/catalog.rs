//! Catalog of base tables.
//!
//! A [`Table`] owns its data, primary-key declaration and any secondary
//! indexes. The catalog is what the SQL binder resolves `FROM` items
//! against, and what the baseline executor probes indexes on.

use std::collections::{HashMap, HashSet};
use std::sync::RwLock;

use crate::error::StorageError;
use crate::index::{HashIndex, OrderedIndex};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::{GroupKey, Tuple};
use crate::value::Value;

/// Per-column statistics gathered by [`Table::analyze`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnStats {
    pub name: String,
    /// Number of distinct non-null values.
    pub ndv: u64,
    /// Number of NULLs.
    pub null_count: u64,
}

/// Table-level statistics gathered by [`Table::analyze`] — the input to
/// the planner's cardinality estimates (selectivity `1/ndv` for equality
/// predicates, null fraction for `IS NULL`, row counts for scans).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableStats {
    pub row_count: u64,
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Stats for the named column, if present.
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns.iter().find(|c| c.name == name)
    }
}

/// A named base table with optional primary key and secondary indexes.
#[derive(Debug)]
pub struct Table {
    name: String,
    data: Relation,
    /// Column indices of the declared primary key (empty if none).
    primary_key: Vec<usize>,
    hash_indexes: Vec<HashIndex>,
    ordered_indexes: Vec<OrderedIndex>,
    /// Statistics from the last `ANALYZE`, if any. Interior-mutable so
    /// `ANALYZE` can run through the shared-catalog query path; inserts
    /// invalidate it like they invalidate indexes.
    stats: RwLock<Option<TableStats>>,
}

impl Clone for Table {
    fn clone(&self) -> Table {
        Table {
            name: self.name.clone(),
            data: self.data.clone(),
            primary_key: self.primary_key.clone(),
            hash_indexes: self.hash_indexes.clone(),
            ordered_indexes: self.ordered_indexes.clone(),
            stats: RwLock::new(self.stats.read().unwrap_or_else(|e| e.into_inner()).clone()),
        }
    }
}

impl Table {
    pub fn new(name: impl Into<String>, schema: Schema) -> Table {
        Table {
            name: name.into(),
            data: Relation::new(schema),
            primary_key: vec![],
            hash_indexes: vec![],
            ordered_indexes: vec![],
            stats: RwLock::new(None),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn schema(&self) -> &Schema {
        self.data.schema()
    }

    pub fn data(&self) -> &Relation {
        &self.data
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Declare the primary key by column names. The paper assumes "each
    /// relation has a unique non-null attribute served as a primary key";
    /// the nested relational operators use it (or a synthesized row id) as
    /// the emptiness marker after outer joins.
    pub fn set_primary_key(&mut self, cols: &[&str]) -> Result<(), StorageError> {
        let mut pk = Vec::with_capacity(cols.len());
        for c in cols {
            pk.push(self.data.schema().resolve(c)?);
        }
        self.primary_key = pk;
        Ok(())
    }

    pub fn primary_key(&self) -> &[usize] {
        &self.primary_key
    }

    /// Insert a validated row. Invalidates indexes (they are rebuilt on the
    /// next `ensure_*_index` call); bulk loading should insert everything
    /// first and index afterwards.
    pub fn insert(&mut self, row: Tuple) -> Result<(), StorageError> {
        self.data.push(row)?;
        self.hash_indexes.clear();
        self.ordered_indexes.clear();
        self.invalidate_stats();
        Ok(())
    }

    pub fn insert_many<I: IntoIterator<Item = Tuple>>(
        &mut self,
        rows: I,
    ) -> Result<(), StorageError> {
        for row in rows {
            self.data.push(row)?;
        }
        self.hash_indexes.clear();
        self.ordered_indexes.clear();
        self.invalidate_stats();
        Ok(())
    }

    fn invalidate_stats(&self) {
        *self.stats.write().unwrap_or_else(|e| e.into_inner()) = None;
    }

    /// Gather row count, per-column NDV and null counts (the `ANALYZE`
    /// statement), store them on the table, and return a copy. Fully
    /// deterministic — re-running over unchanged data yields identical
    /// stats — and idempotent.
    pub fn analyze(&self) -> TableStats {
        let schema = self.data.schema();
        let mut columns = Vec::with_capacity(schema.len());
        for (i, col) in schema.columns().iter().enumerate() {
            let mut distinct: HashSet<GroupKey> = HashSet::new();
            let mut null_count = 0u64;
            for row in self.data.rows() {
                match &row[i] {
                    Value::Null => null_count += 1,
                    v => {
                        distinct.insert(GroupKey(vec![v.clone()]));
                    }
                }
            }
            columns.push(ColumnStats {
                name: col.name.clone(),
                ndv: distinct.len() as u64,
                null_count,
            });
        }
        let stats = TableStats {
            row_count: self.data.len() as u64,
            columns,
        };
        *self.stats.write().unwrap_or_else(|e| e.into_inner()) = Some(stats.clone());
        stats
    }

    /// Install statistics directly, as if [`Table::analyze`] had produced
    /// them — used by crash recovery to replay a logged `ANALYZE` and by
    /// snapshot load, where rescanning would recompute the same values.
    pub fn set_stats(&self, stats: TableStats) {
        *self.stats.write().unwrap_or_else(|e| e.into_inner()) = Some(stats);
    }

    /// Statistics from the last [`Table::analyze`], if still valid.
    pub fn stats(&self) -> Option<TableStats> {
        self.stats.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Get (building if absent) a hash index on the named columns.
    pub fn ensure_hash_index(&mut self, cols: &[&str]) -> Result<&HashIndex, StorageError> {
        let key: Vec<usize> = cols
            .iter()
            .map(|c| self.data.schema().resolve(c))
            .collect::<Result<_, _>>()?;
        if let Some(pos) = self
            .hash_indexes
            .iter()
            .position(|ix| ix.key_cols() == key.as_slice())
        {
            return Ok(&self.hash_indexes[pos]);
        }
        self.hash_indexes
            .push(HashIndex::build(self.data.rows(), &key));
        Ok(self.hash_indexes.last().unwrap())
    }

    /// Get an existing hash index on the given key columns, if any.
    pub fn hash_index(&self, key: &[usize]) -> Option<&HashIndex> {
        self.hash_indexes.iter().find(|ix| ix.key_cols() == key)
    }

    /// Get (building if absent) an ordered index on the named columns.
    pub fn ensure_ordered_index(&mut self, cols: &[&str]) -> Result<&OrderedIndex, StorageError> {
        let key: Vec<usize> = cols
            .iter()
            .map(|c| self.data.schema().resolve(c))
            .collect::<Result<_, _>>()?;
        if let Some(pos) = self
            .ordered_indexes
            .iter()
            .position(|ix| ix.key_cols() == key.as_slice())
        {
            return Ok(&self.ordered_indexes[pos]);
        }
        self.ordered_indexes
            .push(OrderedIndex::build(self.data.rows(), &key));
        Ok(self.ordered_indexes.last().unwrap())
    }

    pub fn ordered_index(&self, key: &[usize]) -> Option<&OrderedIndex> {
        self.ordered_indexes.iter().find(|ix| ix.key_cols() == key)
    }
}

/// The collection of base tables a query runs against.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: HashMap<String, Table>,
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    pub fn add_table(&mut self, table: Table) -> Result<(), StorageError> {
        if self.tables.contains_key(table.name()) {
            return Err(StorageError::DuplicateTable(table.name().to_string()));
        }
        self.tables.insert(table.name().to_string(), table);
        Ok(())
    }

    pub fn table(&self, name: &str) -> Result<&Table, StorageError> {
        self.tables
            .get(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, StorageError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType};
    use crate::tuple::GroupKey;
    use crate::value::Value;

    fn table() -> Table {
        let schema = Schema::new(vec![
            Column::not_null("id", ColumnType::Int),
            Column::new("v", ColumnType::Int),
        ]);
        let mut t = Table::new("t", schema);
        t.set_primary_key(&["id"]).unwrap();
        t.insert_many(vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(2), Value::Null],
        ])
        .unwrap();
        t
    }

    #[test]
    fn primary_key_resolution() {
        let t = table();
        assert_eq!(t.primary_key(), &[0]);
    }

    #[test]
    fn ensure_hash_index_is_idempotent_and_probeable() {
        let mut t = table();
        t.ensure_hash_index(&["v"]).unwrap();
        let ix = t.ensure_hash_index(&["v"]).unwrap();
        assert_eq!(ix.probe(&GroupKey(vec![Value::Int(10)])), &[0]);
        assert_eq!(t.hash_index(&[1]).unwrap().distinct_keys(), 2);
    }

    #[test]
    fn insert_invalidates_indexes() {
        let mut t = table();
        t.ensure_hash_index(&["id"]).unwrap();
        t.insert(vec![Value::Int(3), Value::Int(30)]).unwrap();
        assert!(t.hash_index(&[0]).is_none(), "index dropped after insert");
        let ix = t.ensure_hash_index(&["id"]).unwrap();
        assert_eq!(ix.probe(&GroupKey(vec![Value::Int(3)])), &[2]);
    }

    #[test]
    fn catalog_add_lookup_duplicate() {
        let mut c = Catalog::new();
        c.add_table(table()).unwrap();
        assert!(c.table("t").is_ok());
        assert!(matches!(
            c.add_table(table()),
            Err(StorageError::DuplicateTable(_))
        ));
        assert!(matches!(
            c.table("missing"),
            Err(StorageError::UnknownTable(_))
        ));
        assert_eq!(c.table_names(), vec!["t"]);
    }

    #[test]
    fn analyze_is_idempotent_and_invalidated_by_insert() {
        let mut t = table();
        assert!(t.stats().is_none(), "no stats before ANALYZE");
        let s1 = t.analyze();
        assert_eq!(s1.row_count, 2);
        assert_eq!(s1.column("id").unwrap().ndv, 2);
        assert_eq!(s1.column("v").unwrap().ndv, 1);
        assert_eq!(s1.column("v").unwrap().null_count, 1);
        let s2 = t.analyze();
        assert_eq!(s1, s2, "ANALYZE is idempotent over unchanged data");
        assert_eq!(t.stats(), Some(s2));
        t.insert(vec![Value::Int(3), Value::Int(30)]).unwrap();
        assert!(t.stats().is_none(), "insert invalidates stats");
        assert_eq!(t.analyze().row_count, 3);
    }

    #[test]
    fn clone_carries_stats() {
        let t = table();
        t.analyze();
        let c = t.clone();
        assert_eq!(c.stats(), t.stats());
    }

    #[test]
    fn ordered_index_roundtrip() {
        let mut t = table();
        let ix = t.ensure_ordered_index(&["id"]).unwrap();
        assert_eq!(ix.range(&[Value::Int(1)], &[Value::Int(3)]).len(), 2);
    }
}
