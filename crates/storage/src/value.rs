//! Scalar values and SQL three-valued logic.
//!
//! Every attribute in the flat relational substrate holds a [`Value`]. SQL
//! semantics make `NULL` a first-class citizen: any comparison involving
//! `NULL` yields the third truth value *unknown*, which is modelled by
//! [`Truth`]. The nested relational approach of the paper is specifically
//! designed to stay correct in the presence of `NULL`s (its motivating
//! examples break the classical antijoin rewrites), so the semantics in this
//! module are load-bearing for everything above it.

use std::cmp::Ordering;
use std::fmt;

/// SQL three-valued logic truth value.
///
/// `WHERE` clauses keep a tuple only when the predicate evaluates to
/// [`Truth::True`]; both `False` and `Unknown` reject it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Truth {
    True,
    False,
    Unknown,
}

impl Truth {
    /// Kleene conjunction.
    pub fn and(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::False, _) | (_, Truth::False) => Truth::False,
            (Truth::True, Truth::True) => Truth::True,
            _ => Truth::Unknown,
        }
    }

    /// Kleene disjunction.
    pub fn or(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::True, _) | (_, Truth::True) => Truth::True,
            (Truth::False, Truth::False) => Truth::False,
            _ => Truth::Unknown,
        }
    }

    /// Kleene negation.
    #[allow(clippy::should_implement_trait)] // 3VL negation, deliberately named `not`
    pub fn not(self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
        }
    }

    /// `WHERE`-clause semantics: only `TRUE` passes.
    pub fn is_true(self) -> bool {
        self == Truth::True
    }

    /// Convenience constructor from a two-valued bool.
    pub fn from_bool(b: bool) -> Truth {
        if b {
            Truth::True
        } else {
            Truth::False
        }
    }
}

impl From<bool> for Truth {
    fn from(b: bool) -> Truth {
        Truth::from_bool(b)
    }
}

/// Comparison operators `θ ∈ {=, ≠, <, ≤, >, ≥}` as used in linking and
/// correlated predicates throughout the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Apply the operator to an ordering between two non-NULL values.
    pub fn eval(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }

    /// Logical negation: `¬(a θ b) = a θ̄ b`.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// Operand swap: `a θ b  ⇔  b θ' a`.
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// SQL spelling, for display and for the parser round-trip tests.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A scalar SQL value.
///
/// `Decimal` is a fixed-point value scaled by 100 (two fractional digits),
/// which covers TPC-H money columns while keeping values hashable and exactly
/// comparable. `Date` counts days since 1970-01-01.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    /// Fixed point, scaled by 100: `Decimal(12345)` is `123.45`.
    Decimal(i64),
    Float(f64),
    Str(String),
    /// Days since the Unix epoch.
    Date(i32),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Build a decimal from integral and hundredth parts.
    pub fn decimal(units: i64, cents: i64) -> Value {
        Value::Decimal(units * 100 + cents)
    }

    /// SQL comparison between two values.
    ///
    /// Returns `None` when either side is `NULL` (the comparison is
    /// *unknown*) or when the types are not comparable. Numeric types
    /// (`Int`, `Decimal`, `Float`) compare with each other by numeric value.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Decimal(a), Decimal(b)) => Some(a.cmp(b)),
            (Date(a), Date(b)) => Some(a.cmp(b)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => a.partial_cmp(b),
            // Cross-type numeric comparisons.
            (Int(a), Decimal(b)) => (a.checked_mul(100)).map(|a| a.cmp(b)),
            (Decimal(a), Int(b)) => (b.checked_mul(100)).map(|b| a.cmp(&b)),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Decimal(a), Float(b)) => (*a as f64 / 100.0).partial_cmp(b),
            (Float(a), Decimal(b)) => a.partial_cmp(&(*b as f64 / 100.0)),
            _ => None,
        }
    }

    /// Evaluate `self θ other` under SQL three-valued semantics.
    pub fn sql_compare(&self, op: CmpOp, other: &Value) -> Truth {
        match self.sql_cmp(other) {
            Some(ord) => Truth::from_bool(op.eval(ord)),
            None => Truth::Unknown,
        }
    }

    /// Total order used for sorting and ordered indexes (not SQL
    /// semantics): `NULL` sorts first, then values ordered by type tag, then
    /// by value; `Float` uses IEEE total ordering.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn tag(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) => 2,
                Decimal(_) => 3,
                Float(_) => 4,
                Str(_) => 5,
                Date(_) => 6,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Decimal(a), Decimal(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            _ => tag(self).cmp(&tag(other)),
        }
    }

    /// Grouping equality: like SQL `GROUP BY`, `NULL` matches `NULL` and
    /// values must be of the same type.
    pub fn group_eq(&self, other: &Value) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }

    /// Feed this value into a hasher consistently with [`Value::group_eq`].
    pub fn group_hash<H: std::hash::Hasher>(&self, state: &mut H) {
        use std::hash::Hash;
        use Value::*;
        match self {
            Null => 0u8.hash(state),
            Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            Int(i) => {
                2u8.hash(state);
                i.hash(state);
            }
            Decimal(d) => {
                3u8.hash(state);
                d.hash(state);
            }
            Float(f) => {
                4u8.hash(state);
                f.to_bits().hash(state);
            }
            Str(s) => {
                5u8.hash(state);
                s.hash(state);
            }
            Date(d) => {
                6u8.hash(state);
                d.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Decimal(d) => {
                let sign = if *d < 0 { "-" } else { "" };
                let a = d.unsigned_abs();
                write!(f, "{sign}{}.{:02}", a / 100, a % 100)
            }
            Value::Float(x) => write!(f, "{x}"),
            // SQL string literal form: embedded quotes are doubled.
            Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Value::Date(d) => {
                let (y, m, day) = civil_from_days(*d);
                write!(f, "date '{y:04}-{m:02}-{day:02}'")
            }
        }
    }
}

/// Convert a `(year, month, day)` civil date to days since 1970-01-01
/// (Howard Hinnant's `days_from_civil`).
pub fn days_from_civil(y: i64, m: u32, d: u32) -> i32 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = ((m + 9) % 12) as i64;
    let doy = (153 * mp + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    (era * 146097 + doe - 719468) as i32
}

/// Parse `YYYY-MM-DD` into days since 1970-01-01; `None` on malformed
/// input.
pub fn parse_date_str(s: &str) -> Option<i32> {
    let mut parts = s.split('-');
    // A leading '-' would make the first segment empty: negative years are
    // out of scope for this SQL subset.
    let y: i64 = parts.next()?.parse().ok()?;
    let m: u32 = parts.next()?.parse().ok()?;
    let d: u32 = parts.next()?.parse().ok()?;
    if parts.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    Some(days_from_civil(y, m, d))
}

/// Convert days since 1970-01-01 to `(year, month, day)` in the proleptic
/// Gregorian calendar (Howard Hinnant's `civil_from_days`).
pub fn civil_from_days(z: i32) -> (i64, u32, u32) {
    let z = z as i64 + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_displays_as_sql_literal() {
        assert_eq!(Value::Date(0).to_string(), "date '1970-01-01'");
        assert_eq!(Value::Date(9298).to_string(), "date '1995-06-17'");
        assert_eq!(Value::Date(-1).to_string(), "date '1969-12-31'");
    }

    #[test]
    fn kleene_and_truth_table() {
        use Truth::*;
        assert_eq!(True.and(True), True);
        assert_eq!(True.and(False), False);
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(False.and(Unknown), False);
        assert_eq!(Unknown.and(Unknown), Unknown);
    }

    #[test]
    fn kleene_or_truth_table() {
        use Truth::*;
        assert_eq!(False.or(False), False);
        assert_eq!(False.or(True), True);
        assert_eq!(Unknown.or(True), True);
        assert_eq!(Unknown.or(False), Unknown);
        assert_eq!(Unknown.or(Unknown), Unknown);
    }

    #[test]
    fn kleene_not() {
        use Truth::*;
        assert_eq!(True.not(), False);
        assert_eq!(False.not(), True);
        assert_eq!(Unknown.not(), Unknown);
    }

    #[test]
    fn null_comparisons_are_unknown() {
        let five = Value::Int(5);
        assert_eq!(five.sql_compare(CmpOp::Eq, &Value::Null), Truth::Unknown);
        assert_eq!(Value::Null.sql_compare(CmpOp::Ne, &five), Truth::Unknown);
        assert_eq!(
            Value::Null.sql_compare(CmpOp::Eq, &Value::Null),
            Truth::Unknown
        );
    }

    #[test]
    fn cmp_op_eval() {
        let a = Value::Int(3);
        let b = Value::Int(7);
        assert_eq!(a.sql_compare(CmpOp::Lt, &b), Truth::True);
        assert_eq!(a.sql_compare(CmpOp::Ge, &b), Truth::False);
        assert_eq!(a.sql_compare(CmpOp::Ne, &b), Truth::True);
        assert_eq!(a.sql_compare(CmpOp::Eq, &a.clone()), Truth::True);
    }

    #[test]
    fn cmp_op_negate_flip() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            for ord in [Ordering::Less, Ordering::Equal, Ordering::Greater] {
                assert_eq!(
                    op.negate().eval(ord),
                    !op.eval(ord),
                    "negate {op:?} {ord:?}"
                );
                assert_eq!(
                    op.flip().eval(ord.reverse()),
                    op.eval(ord),
                    "flip {op:?} {ord:?}"
                );
            }
        }
    }

    #[test]
    fn cross_type_numeric_comparison() {
        assert_eq!(
            Value::Int(5).sql_compare(CmpOp::Eq, &Value::Decimal(500)),
            Truth::True
        );
        assert_eq!(
            Value::Decimal(250).sql_compare(CmpOp::Lt, &Value::Int(3)),
            Truth::True
        );
        assert_eq!(
            Value::Float(2.5).sql_compare(CmpOp::Eq, &Value::Decimal(250)),
            Truth::True
        );
    }

    #[test]
    fn incomparable_types_are_unknown() {
        assert_eq!(
            Value::Int(1).sql_compare(CmpOp::Eq, &Value::str("x")),
            Truth::Unknown
        );
    }

    #[test]
    fn total_cmp_null_first_and_reflexive() {
        let vals = [
            Value::Null,
            Value::Bool(true),
            Value::Int(-3),
            Value::Decimal(100),
            Value::Float(0.5),
            Value::str("abc"),
            Value::Date(10),
        ];
        for (i, a) in vals.iter().enumerate() {
            assert_eq!(a.total_cmp(a), Ordering::Equal);
            for b in &vals[i + 1..] {
                assert_eq!(a.total_cmp(b), Ordering::Less);
                assert_eq!(b.total_cmp(a), Ordering::Greater);
            }
        }
    }

    #[test]
    fn group_eq_matches_nulls() {
        assert!(Value::Null.group_eq(&Value::Null));
        assert!(!Value::Null.group_eq(&Value::Int(0)));
        assert!(Value::Int(4).group_eq(&Value::Int(4)));
    }

    #[test]
    fn decimal_display() {
        assert_eq!(Value::Decimal(12345).to_string(), "123.45");
        assert_eq!(Value::Decimal(-7).to_string(), "-0.07");
        assert_eq!(Value::decimal(9, 5).to_string(), "9.05");
    }
}
