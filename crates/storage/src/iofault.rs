//! Deterministic I/O fault injection for the durability layer.
//!
//! The engine-side harness (`nra_engine::faultinject`) covers in-memory
//! operator sites; this module covers the storage-side I/O sites that the
//! crash-recovery harness exercises. It reuses the same `NRA_FAULT`
//! grammar — `site:nth[:kind[:ms]]`, comma-separated — with its own site
//! and kind vocabulary:
//!
//! * sites: `wal-append`, `wal-fsync`, `checkpoint-write`,
//!   `snapshot-rename`
//! * kinds: `short-write` (a prefix of the buffer reaches disk), `crash`
//!   (the process "dies" before the bytes land), `io-error` (a transient
//!   failure with no on-disk effect), `delay` (sleep `ms`, then succeed)
//!
//! Entries naming engine sites or engine kinds are ignored here (and vice
//! versa), so one `NRA_FAULT` value can arm both harnesses. Tests install
//! a plan thread-locally via [`install`] so parallel tests cannot see each
//! other's faults; the process-wide `NRA_FAULT` fallback (parsed once) is
//! what CLI/CI smokes use.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Fault site: appending a record to the write-ahead log.
pub const WAL_APPEND: &str = "wal-append";
/// Fault site: fsyncing the write-ahead log after an append.
pub const WAL_FSYNC: &str = "wal-fsync";
/// Fault site: writing the temporary snapshot file during a checkpoint.
pub const CHECKPOINT_WRITE: &str = "checkpoint-write";
/// Fault site: atomically renaming the snapshot into place.
pub const SNAPSHOT_RENAME: &str = "snapshot-rename";

/// All storage-side I/O fault sites.
pub const IO_SITES: [&str; 4] = [WAL_APPEND, WAL_FSYNC, CHECKPOINT_WRITE, SNAPSHOT_RENAME];

/// What an armed I/O fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFaultKind {
    /// Only a prefix of the buffer reaches disk, then the writer fails.
    ShortWrite,
    /// The simulated process dies before the bytes are written.
    Crash,
    /// A transient I/O error with no on-disk effect.
    IoError,
    /// Sleep for the given milliseconds, then proceed normally.
    Delay(u64),
}

impl IoFaultKind {
    fn parse(kind: &str, ms: Option<&str>) -> Option<IoFaultKind> {
        match (kind, ms) {
            ("short-write", None) => Some(IoFaultKind::ShortWrite),
            ("crash", None) => Some(IoFaultKind::Crash),
            ("io-error", None) => Some(IoFaultKind::IoError),
            ("delay", ms) => Some(IoFaultKind::Delay(
                ms.and_then(|m| m.parse().ok()).unwrap_or(10),
            )),
            _ => None,
        }
    }
}

/// The observable failure returned to the I/O call site when a fault
/// fires ([`IoFaultKind::Delay`] sleeps inside [`hit`] and never
/// surfaces).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFailure {
    ShortWrite,
    Crash,
    IoError,
}

#[derive(Debug)]
struct IoSpec {
    site: String,
    nth: u64,
    kind: IoFaultKind,
    hits: AtomicU64,
}

/// A set of armed I/O faults; fires each spec exactly once, on the
/// `nth` time its site is reached.
#[derive(Debug, Default)]
pub struct IoFaultPlan {
    specs: Vec<IoSpec>,
}

impl IoFaultPlan {
    pub fn push(&mut self, site: &str, nth: u64, kind: IoFaultKind) {
        self.specs.push(IoSpec {
            site: site.to_string(),
            nth: nth.max(1),
            kind,
            hits: AtomicU64::new(0),
        });
    }

    /// Parse the `NRA_FAULT` grammar, keeping only entries whose site is
    /// one of [`IO_SITES`] and whose kind is an I/O kind. Anything else
    /// is ignored here — `nra_engine::config::validate_env` is the strict
    /// gate that rejects genuinely malformed specs up front.
    pub fn parse(spec: &str) -> IoFaultPlan {
        let mut plan = IoFaultPlan::default();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let mut parts = entry.split(':');
            let (site, nth, kind, ms) = (parts.next(), parts.next(), parts.next(), parts.next());
            let (Some(site), Some(nth)) = (site, nth) else {
                continue;
            };
            if !IO_SITES.contains(&site) {
                continue;
            }
            let Ok(nth) = nth.parse::<u64>() else {
                continue;
            };
            let Some(kind) = IoFaultKind::parse(kind.unwrap_or("io-error"), ms) else {
                continue;
            };
            plan.push(site, nth, kind);
        }
        plan
    }

    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    fn observe(&self, site: &str) -> Option<IoFailure> {
        for spec in &self.specs {
            if spec.site != site {
                continue;
            }
            let n = spec.hits.fetch_add(1, Ordering::SeqCst) + 1;
            if n != spec.nth {
                continue;
            }
            match spec.kind {
                IoFaultKind::ShortWrite => return Some(IoFailure::ShortWrite),
                IoFaultKind::Crash => return Some(IoFailure::Crash),
                IoFaultKind::IoError => return Some(IoFailure::IoError),
                IoFaultKind::Delay(ms) => {
                    std::thread::sleep(Duration::from_millis(ms));
                    return None;
                }
            }
        }
        None
    }
}

thread_local! {
    static LOCAL: RefCell<Option<Arc<IoFaultPlan>>> = const { RefCell::new(None) };
}

static FROM_ENV: OnceLock<Option<Arc<IoFaultPlan>>> = OnceLock::new();

/// Arm `plan` for the current thread; disarmed when the guard drops.
pub fn install(plan: IoFaultPlan) -> IoFaultGuard {
    LOCAL.with(|l| *l.borrow_mut() = Some(Arc::new(plan)));
    IoFaultGuard { _priv: () }
}

/// RAII guard returned by [`install`].
#[derive(Debug)]
pub struct IoFaultGuard {
    _priv: (),
}

impl Drop for IoFaultGuard {
    fn drop(&mut self) {
        LOCAL.with(|l| *l.borrow_mut() = None);
    }
}

/// Probe an I/O fault site. Returns the failure to simulate, or `None`
/// to proceed normally. The thread-local plan (tests) takes precedence;
/// otherwise the process-wide plan parsed once from `NRA_FAULT` applies.
pub fn hit(site: &str) -> Option<IoFailure> {
    if let Some(f) = LOCAL
        .with(|l| l.borrow().clone())
        .and_then(|p| p.observe(site))
    {
        return Some(f);
    }
    FROM_ENV
        .get_or_init(|| {
            std::env::var("NRA_FAULT")
                .ok()
                .map(|s| IoFaultPlan::parse(&s))
                .filter(|p| !p.is_empty())
                .map(Arc::new)
        })
        .as_ref()
        .and_then(|p| p.observe(site))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_keeps_io_entries_only() {
        let plan = IoFaultPlan::parse(
            "join-build:1:panic,wal-append:2:short-write,wal-fsync:1:alloc,\
             checkpoint-write:1:io-error,snapshot-rename:1:crash,wal-append:1:delay:5,bogus",
        );
        assert_eq!(plan.specs.len(), 4);
        assert_eq!(plan.specs[0].site, WAL_APPEND);
        assert_eq!(plan.specs[0].nth, 2);
        assert_eq!(plan.specs[0].kind, IoFaultKind::ShortWrite);
        assert_eq!(plan.specs[3].kind, IoFaultKind::Delay(5));
    }

    #[test]
    fn nth_counting_fires_once() {
        let mut plan = IoFaultPlan::default();
        plan.push(WAL_APPEND, 2, IoFaultKind::IoError);
        assert_eq!(plan.observe(WAL_APPEND), None);
        assert_eq!(plan.observe(WAL_APPEND), Some(IoFailure::IoError));
        assert_eq!(plan.observe(WAL_APPEND), None);
        assert_eq!(plan.observe(WAL_FSYNC), None);
    }

    #[test]
    fn install_is_thread_local() {
        let mut plan = IoFaultPlan::default();
        plan.push(WAL_FSYNC, 1, IoFaultKind::Crash);
        let guard = install(plan);
        assert_eq!(hit(WAL_FSYNC), Some(IoFailure::Crash));
        let other = std::thread::spawn(|| hit(WAL_FSYNC)).join().unwrap();
        assert_eq!(other, None);
        drop(guard);
        assert_eq!(hit(WAL_FSYNC), None);
    }
}
