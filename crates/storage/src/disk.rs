//! Disk persistence: a compact binary codec for catalog state and the
//! checksummed, versioned snapshot files that checkpoints produce.
//!
//! A snapshot is the full catalog at a known LSN:
//!
//! ```text
//! "NRASNAP1"  magic, 8 bytes
//! crc: u32    CRC-32 of everything after this field
//! version: u32  format version (currently 1)
//! lsn: u64    last log record folded into this snapshot
//! tables: u32, then per table the same encoding the WAL uses for
//!             CREATE TABLE (name, columns, primary key, rows, stats)
//! ```
//!
//! Snapshots are installed atomically: written to `snapshot-<lsn>.tmp`,
//! fsynced, renamed to `snapshot-<lsn>.nra`, directory fsynced. A crash
//! at any point leaves either the old snapshot or the new one — never a
//! half-written file under the final name. Stray `.tmp` files are
//! ignored by recovery and swept by the next checkpoint.

use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::catalog::{Catalog, ColumnStats, Table, TableStats};
use crate::checksum::crc32;
use crate::error::StorageError;
use crate::iofault::{self, IoFailure};
use crate::schema::{Column, ColumnType, Schema};
use crate::tuple::Tuple;
use crate::value::Value;

const MAGIC: &[u8; 8] = b"NRASNAP1";
const FORMAT_VERSION: u32 = 1;

fn io_err(context: &str, e: std::io::Error) -> StorageError {
    StorageError::Io(format!("{context}: {e}"))
}

// ---------------------------------------------------------------------
// Primitive codec
// ---------------------------------------------------------------------

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// A bounds-checked reader over an encoded byte slice. Decode errors are
/// plain strings; callers wrap them into [`StorageError::Corruption`]
/// with file/LSN context.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    pub(crate) fn is_at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.buf.len() - self.pos < n {
            return Err(format!(
                "unexpected end of record: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn i64(&mut self) -> Result<i64, String> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn str(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| format!("invalid UTF-8 string: {e}"))
    }
}

// ---------------------------------------------------------------------
// Values, columns, stats, tables
// ---------------------------------------------------------------------

pub(crate) fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(0),
        Value::Bool(b) => {
            buf.push(1);
            buf.push(*b as u8);
        }
        Value::Int(i) => {
            buf.push(2);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        Value::Decimal(c) => {
            buf.push(3);
            buf.extend_from_slice(&c.to_le_bytes());
        }
        Value::Float(f) => {
            buf.push(4);
            buf.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            buf.push(5);
            put_str(buf, s);
        }
        Value::Date(d) => {
            buf.push(6);
            buf.extend_from_slice(&d.to_le_bytes());
        }
    }
}

pub(crate) fn get_value(cur: &mut Cursor<'_>) -> Result<Value, String> {
    Ok(match cur.u8()? {
        0 => Value::Null,
        1 => Value::Bool(cur.u8()? != 0),
        2 => Value::Int(cur.i64()?),
        3 => Value::Decimal(cur.i64()?),
        4 => Value::Float(f64::from_bits(cur.u64()?)),
        5 => Value::Str(cur.str()?),
        6 => Value::Date(i32::from_le_bytes(cur.take(4)?.try_into().unwrap())),
        tag => return Err(format!("unknown value tag {tag}")),
    })
}

fn type_tag(ty: ColumnType) -> u8 {
    match ty {
        ColumnType::Bool => 0,
        ColumnType::Int => 1,
        ColumnType::Decimal => 2,
        ColumnType::Float => 3,
        ColumnType::Str => 4,
        ColumnType::Date => 5,
    }
}

fn type_from_tag(tag: u8) -> Result<ColumnType, String> {
    Ok(match tag {
        0 => ColumnType::Bool,
        1 => ColumnType::Int,
        2 => ColumnType::Decimal,
        3 => ColumnType::Float,
        4 => ColumnType::Str,
        5 => ColumnType::Date,
        _ => return Err(format!("unknown column type tag {tag}")),
    })
}

fn put_stats(buf: &mut Vec<u8>, stats: &TableStats) {
    put_u64(buf, stats.row_count);
    put_u32(buf, stats.columns.len() as u32);
    for c in &stats.columns {
        put_str(buf, &c.name);
        put_u64(buf, c.ndv);
        put_u64(buf, c.null_count);
    }
}

fn get_stats(cur: &mut Cursor<'_>) -> Result<TableStats, String> {
    let row_count = cur.u64()?;
    let n = cur.u32()? as usize;
    let mut columns = Vec::with_capacity(n);
    for _ in 0..n {
        columns.push(ColumnStats {
            name: cur.str()?,
            ndv: cur.u64()?,
            null_count: cur.u64()?,
        });
    }
    Ok(TableStats { row_count, columns })
}

pub(crate) fn put_rows(buf: &mut Vec<u8>, rows: &[Tuple]) {
    put_u64(buf, rows.len() as u64);
    for row in rows {
        put_u32(buf, row.len() as u32);
        for v in row {
            put_value(buf, v);
        }
    }
}

pub(crate) fn get_rows(cur: &mut Cursor<'_>) -> Result<Vec<Tuple>, String> {
    let n = cur.u64()? as usize;
    let mut rows = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let arity = cur.u32()? as usize;
        let mut row = Vec::with_capacity(arity.min(1 << 16));
        for _ in 0..arity {
            row.push(get_value(cur)?);
        }
        rows.push(row);
    }
    Ok(rows)
}

/// Encode a full table — name, schema, primary key, rows and (if
/// present) `ANALYZE` stats. The same encoding serves as the snapshot's
/// per-table body and the WAL's `CREATE TABLE` payload, so a table
/// created with pre-loaded rows is one atomic record.
pub(crate) fn put_table(buf: &mut Vec<u8>, table: &Table) {
    put_str(buf, table.name());
    let cols = table.schema().columns();
    put_u32(buf, cols.len() as u32);
    for c in cols {
        put_str(buf, &c.name);
        buf.push(type_tag(c.ty));
        buf.push(c.nullable as u8);
    }
    put_u32(buf, table.primary_key().len() as u32);
    for &i in table.primary_key() {
        put_u32(buf, i as u32);
    }
    put_rows(buf, table.data().rows());
    match table.stats() {
        Some(stats) => {
            buf.push(1);
            put_stats(buf, &stats);
        }
        None => buf.push(0),
    }
}

pub(crate) fn get_table(cur: &mut Cursor<'_>) -> Result<Table, String> {
    let name = cur.str()?;
    let ncols = cur.u32()? as usize;
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let cname = cur.str()?;
        let ty = type_from_tag(cur.u8()?)?;
        let nullable = cur.u8()? != 0;
        let col = if nullable {
            Column::new(cname, ty)
        } else {
            Column::not_null(cname, ty)
        };
        columns.push(col);
    }
    let mut table = Table::new(name, Schema::new(columns));
    let npk = cur.u32()? as usize;
    let mut pk_names: Vec<String> = Vec::with_capacity(npk);
    for _ in 0..npk {
        let i = cur.u32()? as usize;
        let col = table
            .schema()
            .columns()
            .get(i)
            .ok_or_else(|| format!("primary key index {i} out of range"))?;
        pk_names.push(col.name.clone());
    }
    let pk_refs: Vec<&str> = pk_names.iter().map(String::as_str).collect();
    table
        .set_primary_key(&pk_refs)
        .map_err(|e| format!("invalid primary key: {e}"))?;
    let rows = get_rows(cur)?;
    table
        .insert_many(rows)
        .map_err(|e| format!("row fails schema validation: {e}"))?;
    if cur.u8()? != 0 {
        table.set_stats(get_stats(cur)?);
    }
    Ok(table)
}

// ---------------------------------------------------------------------
// Snapshot files
// ---------------------------------------------------------------------

fn snapshot_name(lsn: u64) -> String {
    format!("snapshot-{lsn:020}.nra")
}

fn encode_snapshot(catalog: &Catalog, lsn: u64) -> Vec<u8> {
    let mut body = Vec::new();
    put_u32(&mut body, FORMAT_VERSION);
    put_u64(&mut body, lsn);
    let names = catalog.table_names();
    put_u32(&mut body, names.len() as u32);
    for name in names {
        let table = catalog.table(name).expect("listed table exists");
        put_table(&mut body, table);
    }
    let mut out = Vec::with_capacity(body.len() + 12);
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, crc32(&body));
    out.extend_from_slice(&body);
    out
}

fn decode_snapshot(file: &str, bytes: &[u8]) -> Result<(Catalog, u64), StorageError> {
    let corrupt = |lsn: u64, detail: String| StorageError::Corruption {
        file: file.to_string(),
        lsn,
        detail,
    };
    if bytes.len() < 12 || &bytes[..8] != MAGIC {
        return Err(corrupt(0, "missing or truncated snapshot header".into()));
    }
    let stored_crc = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    let body = &bytes[12..];
    if crc32(body) != stored_crc {
        return Err(corrupt(0, "snapshot checksum mismatch".into()));
    }
    let mut cur = Cursor::new(body);
    let decode = |cur: &mut Cursor<'_>| -> Result<(Catalog, u64), String> {
        let version = cur.u32()?;
        if version != FORMAT_VERSION {
            return Err(format!("unsupported snapshot format version {version}"));
        }
        let lsn = cur.u64()?;
        let ntables = cur.u32()? as usize;
        let mut catalog = Catalog::new();
        for _ in 0..ntables {
            let table = get_table(cur)?;
            catalog
                .add_table(table)
                .map_err(|e| format!("duplicate table in snapshot: {e}"))?;
        }
        if !cur.is_at_end() {
            return Err("trailing bytes after last table".into());
        }
        Ok((catalog, lsn))
    };
    decode(&mut cur).map_err(|detail| corrupt(0, detail))
}

fn sync_dir(dir: &Path) -> Result<(), StorageError> {
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| io_err("fsync directory", e))
}

/// Write the catalog as a new snapshot at `lsn` and atomically install
/// it. Honors the `checkpoint-write` and `snapshot-rename` fault sites;
/// note that a `crash` at `snapshot-rename` fires *after* the rename
/// (the process dies with the snapshot installed but the log not yet
/// truncated — recovery must skip records at or below the snapshot LSN).
pub fn write_snapshot(dir: &Path, catalog: &Catalog, lsn: u64) -> Result<PathBuf, StorageError> {
    let bytes = encode_snapshot(catalog, lsn);
    let tmp = dir.join(format!("snapshot-{lsn:020}.tmp"));
    let dest = dir.join(snapshot_name(lsn));
    let write_tmp = |data: &[u8]| -> Result<(), StorageError> {
        let mut f = File::create(&tmp).map_err(|e| io_err("create snapshot tmp", e))?;
        f.write_all(data)
            .map_err(|e| io_err("write snapshot tmp", e))?;
        f.sync_all().map_err(|e| io_err("fsync snapshot tmp", e))
    };
    match iofault::hit(iofault::CHECKPOINT_WRITE) {
        Some(IoFailure::ShortWrite) => {
            write_tmp(&bytes[..bytes.len() / 2])?;
            return Err(StorageError::Io(
                "injected short write at checkpoint-write (partial snapshot tmp left behind)"
                    .into(),
            ));
        }
        Some(IoFailure::Crash) => {
            write_tmp(&bytes)?;
            return Err(StorageError::Io(
                "injected crash at checkpoint-write (snapshot tmp complete but not installed)"
                    .into(),
            ));
        }
        Some(IoFailure::IoError) => {
            return Err(StorageError::Io(
                "injected I/O error at checkpoint-write".into(),
            ));
        }
        None => {}
    }
    write_tmp(&bytes)?;
    match iofault::hit(iofault::SNAPSHOT_RENAME) {
        Some(IoFailure::Crash) => {
            fs::rename(&tmp, &dest).map_err(|e| io_err("rename snapshot", e))?;
            sync_dir(dir)?;
            return Err(StorageError::Io(
                "injected crash at snapshot-rename (snapshot installed, log not yet truncated)"
                    .into(),
            ));
        }
        Some(_) => {
            return Err(StorageError::Io(
                "injected I/O error at snapshot-rename".into(),
            ));
        }
        None => {}
    }
    fs::rename(&tmp, &dest).map_err(|e| io_err("rename snapshot", e))?;
    sync_dir(dir)?;
    Ok(dest)
}

/// Load the newest snapshot in `dir`, if any, returning the catalog, its
/// LSN and its file name. A damaged newest snapshot is unrecoverable —
/// older snapshots were swept at the checkpoint that installed it and
/// the log was truncated, so falling back would silently lose commits.
pub fn load_latest_snapshot(dir: &Path) -> Result<Option<(Catalog, u64, String)>, StorageError> {
    let mut best: Option<(u64, PathBuf)> = None;
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err("read db directory", e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| io_err("read db directory", e))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        let Some(lsn) = name
            .strip_prefix("snapshot-")
            .and_then(|s| s.strip_suffix(".nra"))
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        if best.as_ref().map(|(l, _)| lsn > *l).unwrap_or(true) {
            best = Some((lsn, entry.path()));
        }
    }
    let Some((_, path)) = best else {
        return Ok(None);
    };
    let file = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let bytes = fs::read(&path).map_err(|e| io_err("read snapshot", e))?;
    let (catalog, lsn) = decode_snapshot(&file, &bytes)?;
    Ok(Some((catalog, lsn, file)))
}

/// Best-effort sweep of snapshots older than `keep_lsn` and any stray
/// `.tmp` files. Failure to delete is harmless — recovery always picks
/// the newest valid snapshot.
pub fn sweep_snapshots(dir: &Path, keep_lsn: u64) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let stale_tmp = name.starts_with("snapshot-") && name.ends_with(".tmp");
        let old_snapshot = name
            .strip_prefix("snapshot-")
            .and_then(|s| s.strip_suffix(".nra"))
            .and_then(|s| s.parse::<u64>().ok())
            .map(|lsn| lsn < keep_lsn)
            .unwrap_or(false);
        if stale_tmp || old_snapshot {
            let _ = fs::remove_file(entry.path());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_catalog() -> Catalog {
        let mut cat = Catalog::new();
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                Column::not_null("t.id", ColumnType::Int),
                Column::new("t.price", ColumnType::Decimal),
                Column::new("t.name", ColumnType::Str),
                Column::new("t.ok", ColumnType::Bool),
                Column::new("t.ratio", ColumnType::Float),
                Column::new("t.day", ColumnType::Date),
            ]),
        );
        t.set_primary_key(&["t.id"]).unwrap();
        t.insert_many(vec![
            vec![
                Value::Int(1),
                Value::Decimal(12345),
                Value::str("widget"),
                Value::Bool(true),
                Value::Float(0.5),
                Value::Date(9000),
            ],
            vec![
                Value::Int(2),
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
            ],
        ])
        .unwrap();
        t.analyze();
        cat.add_table(t).unwrap();
        cat
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("nra-disk-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn snapshot_roundtrip_preserves_everything() {
        let dir = tmpdir("roundtrip");
        let cat = sample_catalog();
        write_snapshot(&dir, &cat, 7).unwrap();
        let (loaded, lsn, file) = load_latest_snapshot(&dir).unwrap().unwrap();
        assert_eq!(lsn, 7);
        assert!(file.contains("00000000000000000007"));
        let orig = cat.table("t").unwrap();
        let got = loaded.table("t").unwrap();
        assert_eq!(got.data(), orig.data());
        assert_eq!(got.primary_key(), orig.primary_key());
        assert_eq!(got.stats(), orig.stats());
        assert_eq!(
            got.schema().columns()[0].nullable,
            orig.schema().columns()[0].nullable
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn newest_snapshot_wins_and_sweep_removes_older() {
        let dir = tmpdir("sweep");
        let cat = sample_catalog();
        write_snapshot(&dir, &cat, 3).unwrap();
        write_snapshot(&dir, &cat, 11).unwrap();
        let (_, lsn, _) = load_latest_snapshot(&dir).unwrap().unwrap();
        assert_eq!(lsn, 11);
        sweep_snapshots(&dir, 11);
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec![snapshot_name(11)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_is_detected_as_corruption() {
        let dir = tmpdir("bitflip");
        write_snapshot(&dir, &sample_catalog(), 5).unwrap();
        let path = dir.join(snapshot_name(5));
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        match load_latest_snapshot(&dir) {
            Err(StorageError::Corruption { file, .. }) => assert!(file.contains("snapshot")),
            other => panic!("expected corruption, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
