//! Tuples and hashable grouping keys.

use std::hash::{Hash, Hasher};

use crate::value::Value;

/// A flat tuple: one [`Value`] per schema column.
pub type Tuple = Vec<Value>;

/// A hashable, equatable key extracted from a tuple for grouping, hash
/// joins and hash indexes.
///
/// Uses *grouping* semantics: `NULL` equals `NULL` (like `GROUP BY`), floats
/// compare by bit pattern. SQL join semantics ("NULL matches nothing") are
/// enforced by the operators, not by this key type: equijoin operators must
/// refuse to probe or insert keys containing `NULL` (see
/// `nra-engine::ops::join`).
#[derive(Debug, Clone, PartialEq)]
pub struct GroupKey(pub Vec<Value>);

impl GroupKey {
    /// Extract the key formed by `cols` from `tuple`.
    pub fn from_tuple(tuple: &[Value], cols: &[usize]) -> GroupKey {
        GroupKey(cols.iter().map(|&c| tuple[c].clone()).collect())
    }

    /// True when any component is `NULL` (such a key can never satisfy an
    /// SQL equality predicate).
    pub fn has_null(&self) -> bool {
        self.0.iter().any(Value::is_null)
    }
}

impl Eq for GroupKey {}

impl Hash for GroupKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for v in &self.0 {
            v.group_hash(state);
        }
    }
}

/// Total-order comparison of two tuples restricted to `cols`, suitable for
/// sorting (see [`Value::total_cmp`]).
pub fn cmp_on(a: &[Value], b: &[Value], cols: &[usize]) -> std::cmp::Ordering {
    for &c in cols {
        let ord = a[c].total_cmp(&b[c]);
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

/// Grouping equality of two tuples restricted to `cols` (`NULL` matches
/// `NULL`).
pub fn group_eq_on(a: &[Value], b: &[Value], cols: &[usize]) -> bool {
    cols.iter().all(|&c| a[c].group_eq(&b[c]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn group_key_null_equality() {
        let k1 = GroupKey(vec![Value::Null, Value::Int(1)]);
        let k2 = GroupKey(vec![Value::Null, Value::Int(1)]);
        assert_eq!(k1, k2);
        let mut m = HashMap::new();
        m.insert(k1, 7);
        assert_eq!(m.get(&k2), Some(&7));
    }

    #[test]
    fn group_key_has_null() {
        assert!(GroupKey(vec![Value::Int(1), Value::Null]).has_null());
        assert!(!GroupKey(vec![Value::Int(1)]).has_null());
    }

    #[test]
    fn from_tuple_extracts_columns() {
        let t = vec![Value::Int(1), Value::str("a"), Value::Int(3)];
        let k = GroupKey::from_tuple(&t, &[2, 0]);
        assert_eq!(k.0, vec![Value::Int(3), Value::Int(1)]);
    }

    #[test]
    fn float_keys_hash_by_bits() {
        let k1 = GroupKey(vec![Value::Float(0.5)]);
        let k2 = GroupKey(vec![Value::Float(0.5)]);
        assert_eq!(k1, k2);
        let mut m = HashMap::new();
        m.insert(k1, ());
        assert!(m.contains_key(&k2));
    }

    #[test]
    fn cmp_on_and_group_eq_on() {
        let a = vec![Value::Int(1), Value::Null];
        let b = vec![Value::Int(1), Value::Null];
        let c = vec![Value::Int(2), Value::Null];
        assert_eq!(cmp_on(&a, &b, &[0, 1]), std::cmp::Ordering::Equal);
        assert!(group_eq_on(&a, &b, &[0, 1]));
        assert!(!group_eq_on(&a, &c, &[0]));
        assert_eq!(cmp_on(&a, &c, &[0]), std::cmp::Ordering::Less);
    }
}
