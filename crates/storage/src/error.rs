//! Error type for the storage substrate.

use std::fmt;

/// Errors raised by schema resolution, catalog operations and data loading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    UnknownColumn(String),
    AmbiguousColumn(String),
    UnknownTable(String),
    DuplicateTable(String),
    ArityMismatch {
        expected: usize,
        got: usize,
    },
    TypeMismatch {
        column: String,
        value: String,
    },
    NullViolation {
        column: String,
    },
    /// I/O or format error while importing/exporting data.
    Io(String),
    /// Unrecoverable damage in a persistent file (snapshot or
    /// write-ahead log): a checksum mismatch or undecodable record that
    /// is *not* a torn tail. Recovery refuses to start rather than
    /// silently dropping committed data.
    Corruption {
        file: String,
        lsn: u64,
        detail: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            StorageError::AmbiguousColumn(c) => write!(f, "ambiguous column name: {c}"),
            StorageError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            StorageError::DuplicateTable(t) => write!(f, "table already exists: {t}"),
            StorageError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "tuple arity mismatch: expected {expected} values, got {got}"
                )
            }
            StorageError::TypeMismatch { column, value } => {
                write!(
                    f,
                    "value {value} does not match the type of column {column}"
                )
            }
            StorageError::NullViolation { column } => {
                write!(f, "NULL value in NOT NULL column {column}")
            }
            StorageError::Io(m) => write!(f, "I/O error: {m}"),
            StorageError::Corruption { file, lsn, detail } => {
                write!(f, "corruption in `{file}` at lsn {lsn}: {detail}")
            }
        }
    }
}

impl std::error::Error for StorageError {}
