//! Append-only write-ahead log for durable catalog mutations.
//!
//! File layout: an 8-byte magic (`NRAWAL01`) followed by records:
//!
//! ```text
//! len: u32    body length in bytes
//! crc: u32    CRC-32 of the body
//! body:       lsn: u64 | kind: u8 | payload
//! ```
//!
//! Record kinds: `1` CREATE TABLE (full table encoding — schema, primary
//! key, any pre-loaded rows, stats), `2` INSERT (table name + rows), `3`
//! ANALYZE (table name + stats). Records are appended and fsynced before
//! the in-memory catalog mutates (write-ahead), so every acknowledged
//! mutation is on disk and every on-disk record past the last checkpoint
//! replays cleanly.
//!
//! **Torn-tail rule.** Appends extend the file left-to-right, so a crash
//! mid-append damages only the *final* record: a short header, a body
//! running past end-of-file, or a checksum mismatch on the last record
//! are all torn tails — recovery drops the tail, truncates the file and
//! reports what was dropped. Damage anywhere *before* the final record
//! cannot come from a torn append; that is corruption, and recovery
//! refuses to start rather than guess.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::catalog::TableStats;
use crate::checksum::crc32;
use crate::disk::{self, Cursor};
use crate::error::StorageError;
use crate::iofault::{self, IoFailure};
use crate::tuple::Tuple;

const MAGIC: &[u8; 8] = b"NRAWAL01";
const HEADER: usize = 8; // len + crc
const MIN_BODY: usize = 9; // lsn + kind
/// Sanity bound on a single record; a length field beyond this is
/// treated as corruption, not a torn tail.
const MAX_BODY: u32 = 1 << 30;

fn io_err(context: &str, e: std::io::Error) -> StorageError {
    StorageError::Io(format!("{context}: {e}"))
}

/// A logged catalog mutation.
#[derive(Debug, Clone)]
pub enum WalRecord {
    /// A new table, encoded in full (schema, primary key, rows, stats)
    /// so that creating a pre-populated table is one atomic record.
    CreateTable(crate::catalog::Table),
    Insert {
        table: String,
        rows: Vec<Tuple>,
    },
    Analyze {
        table: String,
        stats: TableStats,
    },
}

impl WalRecord {
    fn encode_body(&self, lsn: u64) -> Vec<u8> {
        let mut body = Vec::new();
        disk::put_u64(&mut body, lsn);
        match self {
            WalRecord::CreateTable(table) => {
                body.push(1);
                disk::put_table(&mut body, table);
            }
            WalRecord::Insert { table, rows } => {
                body.push(2);
                disk::put_str(&mut body, table);
                disk::put_rows(&mut body, rows);
            }
            WalRecord::Analyze { table, stats } => {
                body.push(3);
                disk::put_str(&mut body, table);
                // Reuse the table-stats encoding from the snapshot codec.
                let mut tmp = Vec::new();
                disk::put_u64(&mut tmp, stats.row_count);
                disk::put_u32(&mut tmp, stats.columns.len() as u32);
                for c in &stats.columns {
                    disk::put_str(&mut tmp, &c.name);
                    disk::put_u64(&mut tmp, c.ndv);
                    disk::put_u64(&mut tmp, c.null_count);
                }
                body.extend_from_slice(&tmp);
            }
        }
        body
    }

    fn decode_body(body: &[u8]) -> Result<(u64, WalRecord), String> {
        let mut cur = Cursor::new(body);
        let lsn = cur.u64()?;
        let kind = cur.u8()?;
        let rec = match kind {
            1 => WalRecord::CreateTable(disk::get_table(&mut cur)?),
            2 => {
                let table = cur.str()?;
                let rows = disk::get_rows(&mut cur)?;
                WalRecord::Insert { table, rows }
            }
            3 => {
                let table = cur.str()?;
                let row_count = cur.u64()?;
                let n = cur.u32()? as usize;
                let mut columns = Vec::with_capacity(n);
                for _ in 0..n {
                    columns.push(crate::catalog::ColumnStats {
                        name: cur.str()?,
                        ndv: cur.u64()?,
                        null_count: cur.u64()?,
                    });
                }
                WalRecord::Analyze {
                    table,
                    stats: TableStats { row_count, columns },
                }
            }
            k => return Err(format!("unknown record kind {k}")),
        };
        if !cur.is_at_end() {
            return Err("trailing bytes after record payload".into());
        }
        Ok((lsn, rec))
    }
}

/// Append handle over the log. Write-ahead discipline: [`WalWriter::append_sync`]
/// returns only after the record is written *and* fsynced; an fsync
/// failure rolls the unacknowledged suffix back so the on-disk log never
/// contains records the caller was not told about. After a short write
/// the handle is poisoned — the file has torn bytes only recovery may
/// repair, so further appends fail fast until the database is reopened.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    len: u64,
    poisoned: bool,
}

impl WalWriter {
    /// Open (creating and stamping the magic if needed) the log for
    /// appending. Call after [`replay`] has validated/repaired the file.
    pub fn open_append(path: &Path) -> Result<WalWriter, StorageError> {
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)
            .map_err(|e| io_err("open wal", e))?;
        let len = file.metadata().map_err(|e| io_err("stat wal", e))?.len();
        let len = if len == 0 {
            file.write_all(MAGIC)
                .map_err(|e| io_err("write wal magic", e))?;
            file.sync_data().map_err(|e| io_err("fsync wal magic", e))?;
            MAGIC.len() as u64
        } else {
            len
        };
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            len,
            poisoned: false,
        })
    }

    pub fn len(&self) -> u64 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len <= MAGIC.len() as u64
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether an earlier failed write left the on-disk tail in an
    /// unknown state; every further append is refused until reopen.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Append one record and fsync it. Returns the number of bytes
    /// appended. Honors the `wal-append` and `wal-fsync` fault sites.
    pub fn append_sync(&mut self, lsn: u64, rec: &WalRecord) -> Result<u64, StorageError> {
        if self.poisoned {
            return Err(StorageError::Io(
                "write-ahead log poisoned by an earlier failed write; reopen the database".into(),
            ));
        }
        let body = rec.encode_body(lsn);
        let mut buf = Vec::with_capacity(HEADER + body.len());
        buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
        buf.extend_from_slice(&crc32(&body).to_le_bytes());
        buf.extend_from_slice(&body);
        let start = self.len;
        match iofault::hit(iofault::WAL_APPEND) {
            Some(IoFailure::ShortWrite) => {
                // A prefix of the record reaches disk: exactly the torn
                // tail recovery must truncate.
                let torn = &buf[..buf.len() / 2];
                self.file
                    .write_all(torn)
                    .map_err(|e| io_err("write wal (torn)", e))?;
                let _ = self.file.sync_data();
                self.poisoned = true;
                return Err(StorageError::Io(format!(
                    "injected short write at wal-append (wrote {} of {} bytes)",
                    torn.len(),
                    buf.len()
                )));
            }
            Some(IoFailure::Crash) => {
                self.poisoned = true;
                return Err(StorageError::Io(
                    "injected crash at wal-append (record not written)".into(),
                ));
            }
            Some(IoFailure::IoError) => {
                return Err(StorageError::Io("injected I/O error at wal-append".into()));
            }
            None => {}
        }
        if let Err(e) = self.file.write_all(&buf) {
            self.poisoned = true;
            return Err(io_err("write wal record", e));
        }
        let fsync_failed = iofault::hit(iofault::WAL_FSYNC).map(|_| {
            StorageError::Io("injected fsync failure at wal-fsync (append rolled back)".into())
        });
        let fsync_failed = match fsync_failed {
            Some(e) => Some(e),
            None => self
                .file
                .sync_data()
                .map_err(|e| io_err("fsync wal", e))
                .err(),
        };
        if let Some(e) = fsync_failed {
            // The caller will treat this append as not-committed, so the
            // bytes must not resurface at recovery: roll the file back.
            // (The handle is in append mode, so the next write lands at
            // the truncated end.) If even the rollback fails, poison.
            if self.file.set_len(start).is_err() {
                self.poisoned = true;
            }
            return Err(e);
        }
        self.len = start + buf.len() as u64;
        Ok(buf.len() as u64)
    }

    /// Truncate the log back to just the magic (after a checkpoint has
    /// folded every record into a snapshot).
    pub fn reset(&mut self) -> Result<(), StorageError> {
        self.file
            .set_len(MAGIC.len() as u64)
            .map_err(|e| io_err("truncate wal", e))?;
        self.file.sync_data().map_err(|e| io_err("fsync wal", e))?;
        self.len = MAGIC.len() as u64;
        Ok(())
    }
}

/// The result of scanning the log at open.
#[derive(Debug, Default)]
pub struct ReplayOutcome {
    /// Every decodable record, in log order (the caller filters out
    /// records already folded into the snapshot by LSN).
    pub records: Vec<(u64, WalRecord)>,
    /// File offset just past the last good record — the truncation
    /// point when a torn tail was found.
    pub good_len: u64,
    /// Torn-tail damage found (and to be repaired by truncation).
    pub dropped_records: u64,
    pub dropped_bytes: u64,
}

/// Scan the log, validating checksums. Torn tails (see the module doc's
/// torn-tail rule) are reported in the outcome for the caller to
/// truncate; damage before the final record is unrecoverable and
/// returns [`StorageError::Corruption`].
pub fn replay(path: &Path) -> Result<ReplayOutcome, StorageError> {
    let file_name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string());
    let corrupt = |lsn: u64, detail: String| StorageError::Corruption {
        file: file_name.clone(),
        lsn,
        detail,
    };
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)
                .map_err(|e| io_err("read wal", e))?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(ReplayOutcome::default()),
        Err(e) => return Err(io_err("open wal", e)),
    }
    let mut out = ReplayOutcome::default();
    if bytes.is_empty() {
        return Ok(out);
    }
    if bytes.len() < MAGIC.len() {
        // A crash while stamping a brand-new log: nothing was ever
        // appended, so treat it as empty and let the writer re-stamp.
        out.dropped_bytes = bytes.len() as u64;
        out.good_len = 0;
        return Ok(out);
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(corrupt(0, "bad magic: not a write-ahead log".into()));
    }
    let mut pos = MAGIC.len();
    let mut last_lsn = 0u64;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < HEADER {
            // Torn header on the final (partial) record.
            out.dropped_records = 1;
            out.dropped_bytes = remaining as u64;
            out.good_len = pos as u64;
            return Ok(out);
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let stored_crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len < MIN_BODY as u32 || len > MAX_BODY {
            // The header is written before the body, so a fully present
            // header with an absurd length was not torn — it was damaged
            // in place.
            return Err(corrupt(
                last_lsn,
                format!("implausible record length {len} at offset {pos}"),
            ));
        }
        let len = len as usize;
        if remaining < HEADER + len {
            // Body runs past end-of-file: torn final record.
            out.dropped_records = 1;
            out.dropped_bytes = remaining as u64;
            out.good_len = pos as u64;
            return Ok(out);
        }
        let body = &bytes[pos + HEADER..pos + HEADER + len];
        if crc32(body) != stored_crc {
            if pos + HEADER + len == bytes.len() {
                // Checksum mismatch on the very last record: torn tail.
                out.dropped_records = 1;
                out.dropped_bytes = remaining as u64;
                out.good_len = pos as u64;
                return Ok(out);
            }
            return Err(corrupt(
                last_lsn,
                format!("checksum mismatch at offset {pos} (not the final record)"),
            ));
        }
        let (lsn, rec) = WalRecord::decode_body(body).map_err(|detail| {
            corrupt(
                last_lsn,
                format!("undecodable record at offset {pos}: {detail}"),
            )
        })?;
        if lsn <= last_lsn && last_lsn != 0 {
            return Err(corrupt(
                lsn,
                format!("non-monotonic lsn {lsn} after {last_lsn} at offset {pos}"),
            ));
        }
        last_lsn = lsn;
        out.records.push((lsn, rec));
        pos += HEADER + len;
    }
    out.good_len = pos as u64;
    Ok(out)
}

/// Truncate a repairable torn tail off the log (recovery's repair step).
pub fn truncate_to(path: &Path, len: u64) -> Result<(), StorageError> {
    let file = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| io_err("open wal for repair", e))?;
    file.set_len(len)
        .map_err(|e| io_err("truncate wal tail", e))?;
    file.sync_all().map_err(|e| io_err("fsync repaired wal", e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Table;
    use crate::schema::{Column, ColumnType, Schema};
    use crate::value::Value;
    use std::fs;

    fn tmpfile(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("nra-wal-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d.join("wal.log")
    }

    fn sample_table() -> Table {
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                Column::not_null("t.id", ColumnType::Int),
                Column::new("t.v", ColumnType::Str),
            ]),
        );
        t.set_primary_key(&["t.id"]).unwrap();
        t
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::CreateTable(sample_table()),
            WalRecord::Insert {
                table: "t".into(),
                rows: vec![
                    vec![Value::Int(1), Value::str("a")],
                    vec![Value::Int(2), Value::Null],
                ],
            },
            WalRecord::Analyze {
                table: "t".into(),
                stats: TableStats {
                    row_count: 2,
                    columns: vec![crate::catalog::ColumnStats {
                        name: "t.id".into(),
                        ndv: 2,
                        null_count: 0,
                    }],
                },
            },
        ]
    }

    fn write_log(path: &Path) -> Vec<WalRecord> {
        let mut w = WalWriter::open_append(path).unwrap();
        let recs = sample_records();
        for (i, r) in recs.iter().enumerate() {
            w.append_sync(i as u64 + 1, r).unwrap();
        }
        recs
    }

    #[test]
    fn append_replay_roundtrip() {
        let path = tmpfile("roundtrip");
        let recs = write_log(&path);
        let out = replay(&path).unwrap();
        assert_eq!(out.dropped_records, 0);
        assert_eq!(out.records.len(), recs.len());
        for (i, (lsn, rec)) in out.records.iter().enumerate() {
            assert_eq!(*lsn, i as u64 + 1);
            match (rec, &recs[i]) {
                (WalRecord::CreateTable(a), WalRecord::CreateTable(b)) => {
                    assert_eq!(a.name(), b.name());
                    assert_eq!(a.schema().columns(), b.schema().columns());
                    assert_eq!(a.primary_key(), b.primary_key());
                }
                (
                    WalRecord::Insert {
                        table: ta,
                        rows: ra,
                    },
                    WalRecord::Insert {
                        table: tb,
                        rows: rb,
                    },
                ) => {
                    assert_eq!(ta, tb);
                    assert_eq!(ra, rb);
                }
                (
                    WalRecord::Analyze {
                        table: ta,
                        stats: sa,
                    },
                    WalRecord::Analyze {
                        table: tb,
                        stats: sb,
                    },
                ) => {
                    assert_eq!(ta, tb);
                    assert_eq!(sa, sb);
                }
                (a, b) => panic!("variant mismatch: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let path = tmpfile("torn");
        write_log(&path);
        let clean = fs::read(&path).unwrap();
        // Simulate a crash mid-append: a partial record at the end.
        let mut torn = clean.clone();
        torn.extend_from_slice(&[42, 0, 0, 0, 7, 7]); // short header+crc fragment
        fs::write(&path, &torn).unwrap();
        let out = replay(&path).unwrap();
        assert_eq!(out.records.len(), 3);
        assert_eq!(out.dropped_records, 1);
        assert_eq!(out.dropped_bytes, 6);
        assert_eq!(out.good_len, clean.len() as u64);
        truncate_to(&path, out.good_len).unwrap();
        let repaired = replay(&path).unwrap();
        assert_eq!(repaired.dropped_records, 0);
        assert_eq!(repaired.records.len(), 3);
    }

    #[test]
    fn torn_final_record_body_is_dropped() {
        let path = tmpfile("torn-body");
        write_log(&path);
        let clean = fs::read(&path).unwrap();
        let mut torn = clean.clone();
        // Header claims 100 bytes; only 10 arrive before the "crash".
        torn.extend_from_slice(&100u32.to_le_bytes());
        torn.extend_from_slice(&0u32.to_le_bytes());
        torn.extend_from_slice(&[1; 10]);
        fs::write(&path, &torn).unwrap();
        let out = replay(&path).unwrap();
        assert_eq!(out.records.len(), 3);
        assert_eq!(out.dropped_records, 1);
        assert_eq!(out.good_len, clean.len() as u64);
    }

    #[test]
    fn mid_log_bit_flip_is_corruption() {
        let path = tmpfile("midflip");
        write_log(&path);
        let mut bytes = fs::read(&path).unwrap();
        // Flip a payload byte of the first record (well before the tail).
        bytes[MAGIC.len() + HEADER + 10] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        match replay(&path) {
            Err(StorageError::Corruption { file, detail, .. }) => {
                assert!(file.contains("wal"), "file = {file}");
                assert!(detail.contains("checksum"), "detail = {detail}");
            }
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn fsync_failure_rolls_back_the_append() {
        let path = tmpfile("fsync-rollback");
        let mut w = WalWriter::open_append(&path).unwrap();
        w.append_sync(1, &sample_records()[0]).unwrap();
        let committed = w.len();
        let mut plan = iofault::IoFaultPlan::default();
        plan.push(iofault::WAL_FSYNC, 1, crate::iofault::IoFaultKind::IoError);
        let guard = iofault::install(plan);
        let err = w.append_sync(2, &sample_records()[1]).unwrap_err();
        drop(guard);
        assert!(matches!(err, StorageError::Io(_)));
        assert_eq!(fs::metadata(&path).unwrap().len(), committed);
        // The writer is not poisoned after a clean rollback.
        w.append_sync(2, &sample_records()[1]).unwrap();
        let out = replay(&path).unwrap();
        assert_eq!(out.records.len(), 2);
    }

    #[test]
    fn short_write_poisons_until_reopen() {
        let path = tmpfile("poison");
        let mut w = WalWriter::open_append(&path).unwrap();
        let mut plan = iofault::IoFaultPlan::default();
        plan.push(
            iofault::WAL_APPEND,
            1,
            crate::iofault::IoFaultKind::ShortWrite,
        );
        let guard = iofault::install(plan);
        w.append_sync(1, &sample_records()[0]).unwrap_err();
        drop(guard);
        let err = w.append_sync(2, &sample_records()[1]).unwrap_err();
        assert!(err.to_string().contains("poisoned"), "err = {err}");
        // Recovery repairs the torn tail.
        let out = replay(&path).unwrap();
        assert_eq!(out.records.len(), 0);
        assert_eq!(out.dropped_records, 1);
    }

    #[test]
    fn reset_empties_the_log() {
        let path = tmpfile("reset");
        write_log(&path);
        let mut w = WalWriter::open_append(&path).unwrap();
        assert!(!w.is_empty());
        w.reset().unwrap();
        assert!(w.is_empty());
        let out = replay(&path).unwrap();
        assert!(out.records.is_empty());
        assert_eq!(out.dropped_records, 0);
    }
}
