//! Vendored CRC-32 (IEEE 802.3, reflected) for snapshot and WAL record
//! checksums. Table-driven, built at compile time — the workspace stays
//! free of external crates.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (same polynomial and conventions as zlib/PNG).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = b"write-ahead log record".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at byte {byte} bit {bit}");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
