//! A small vendored PRNG (PCG-XSH-RR 64/32, O'Neill 2014).
//!
//! The workspace builds in offline sandboxes where external crates cannot
//! be resolved, so the `rand` crate is replaced by this generator. It is
//! used everywhere the repo needs reproducible pseudo-randomness: the
//! TPC-H-shaped data generator (`nra-tpch`), the deterministic property
//! tests, and the benchmark harness. It is **not** cryptographic and is
//! not meant to be.

/// Deterministic 32-bit PCG generator with 64-bit state.
#[derive(Debug, Clone)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

impl Pcg32 {
    /// Seed the generator. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Pcg32 {
        let mut rng = Pcg32 {
            state: 0,
            // Default PCG stream constant; must be odd.
            inc: 1442695040888963407,
        };
        rng.state = rng.state.wrapping_mul(PCG_MULT).wrapping_add(rng.inc);
        rng.state = rng.state.wrapping_add(seed);
        rng.state = rng.state.wrapping_mul(PCG_MULT).wrapping_add(rng.inc);
        rng
    }

    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Uniform in `[0, bound)` without modulo bias (Lemire rejection).
    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Rejection zone keeps the mapping uniform.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            if r >= threshold {
                return r % bound;
            }
        }
    }

    /// Uniform integer in the half-open range `[lo, hi)`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "range_i64: empty range {lo}..{hi}");
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add(self.bounded(span) as i64)
    }

    /// Uniform integer in the closed range `[lo, hi]`.
    pub fn range_incl_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "range_incl_i64: empty range {lo}..={hi}");
        if lo == i64::MIN && hi == i64::MAX {
            return self.next_u64() as i64;
        }
        let span = hi.wrapping_sub(lo) as u64 + 1;
        lo.wrapping_add(self.bounded(span) as i64)
    }

    /// Uniform index in `[0, n)` — the common "pick an element" case.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index: empty range");
        self.bounded(n as u64) as usize
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with success probability `p`.
    pub fn bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.index(xs.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u32> = {
            let mut r = Pcg32::new(42);
            (0..8).map(|_| r.next_u32()).collect()
        };
        let b: Vec<u32> = {
            let mut r = Pcg32::new(42);
            (0..8).map(|_| r.next_u32()).collect()
        };
        let c: Vec<u32> = {
            let mut r = Pcg32::new(43);
            (0..8).map(|_| r.next_u32()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Pcg32::new(7);
        for _ in 0..10_000 {
            let v = r.range_i64(-5, 5);
            assert!((-5..5).contains(&v));
            let w = r.range_incl_i64(1, 50);
            assert!((1..=50).contains(&w));
            let i = r.index(3);
            assert!(i < 3);
            let f = r.f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut r = Pcg32::new(1);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[r.index(10)] += 1;
        }
        for &c in &counts {
            let expected = n / 10;
            assert!(
                (c as i64 - expected as i64).unsigned_abs() < (expected / 10) as u64,
                "bucket count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn bool_matches_probability() {
        let mut r = Pcg32::new(9);
        let hits = (0..100_000).filter(|_| r.bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits {hits}");
    }
}
